//! Blocks and their identifiers.
//!
//! The paper reduces proof-of-work to an abstract record with a parent
//! pointer (Section III): the only property the analysis uses is that
//! every block extends exactly one parent. Block "hashes" are therefore
//! arena indices, which preserves that property exactly.

use std::fmt;

/// Round counter (the protocol proceeds in discrete rounds).
pub type Round = u64;

/// Identifier of an honest-miner group (the simulator partitions honest
/// miners into at most two delivery groups; see `adversary`).
pub type GroupId = usize;

/// A block identifier: an index into the [`BlockTree`](crate::tree::BlockTree) arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// The genesis block's id (always index 0).
    pub const GENESIS: BlockId = BlockId(0);

    /// The raw arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Who mined a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Mined by an honest miner belonging to the given delivery group.
    Honest(GroupId),
    /// Mined by the adversary.
    Adversary,
    /// The genesis block (mined by no one).
    Genesis,
}

impl Provenance {
    /// `true` iff the block was mined by an honest miner.
    #[must_use]
    pub fn is_honest(self) -> bool {
        matches!(self, Provenance::Honest(_))
    }

    /// `true` iff the block was mined by the adversary.
    #[must_use]
    pub fn is_adversary(self) -> bool {
        matches!(self, Provenance::Adversary)
    }
}

/// Block metadata stored in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// This block's id.
    pub id: BlockId,
    /// Parent block (self-referential for genesis).
    pub parent: BlockId,
    /// Distance from genesis (genesis has height 0).
    pub height: u64,
    /// Round in which the block was mined (0 for genesis).
    pub round: Round,
    /// Who mined it.
    pub provenance: Provenance,
}

impl Block {
    /// `true` iff this is the genesis block.
    #[must_use]
    pub fn is_genesis(&self) -> bool {
        self.id == BlockId::GENESIS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_constants() {
        assert_eq!(BlockId::GENESIS.index(), 0);
        assert_eq!(BlockId::GENESIS.to_string(), "#0");
    }

    #[test]
    fn provenance_predicates() {
        assert!(Provenance::Honest(0).is_honest());
        assert!(!Provenance::Honest(1).is_adversary());
        assert!(Provenance::Adversary.is_adversary());
        assert!(!Provenance::Adversary.is_honest());
        assert!(!Provenance::Genesis.is_honest());
        assert!(!Provenance::Genesis.is_adversary());
    }

    #[test]
    fn block_id_ordering_follows_creation_order() {
        assert!(BlockId(1) < BlockId(2));
    }
}
