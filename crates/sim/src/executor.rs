//! A persistent work-stealing executor shared by every fan-out in the
//! workspace.
//!
//! Before this module existed, every Monte-Carlo trial wave, splitting
//! stage, and experiment cell spun up its own `std::thread::scope`: a
//! 100-cell sweep paid 100 rounds of thread churn and got zero
//! cell-level parallelism. The executor replaces all of those scopes
//! with **one** long-lived pool of workers (per-worker deques plus a
//! shared injector, plain `std` only) that outlives any individual
//! job. Trial waves, splitting stages, exact solves, and whole
//! experiment cells are all submitted as jobs to the same pool, so
//! independent sweep cells pipeline across the same workers and grid
//! wall-clock approaches `max(cell)` instead of `sum(cell)` on a
//! multi-core host.
//!
//! # Determinism contract
//!
//! The executor never touches a random stream and never influences
//! *what* a unit of work computes — only *where* it runs. A job is a
//! contiguous range of unit indices `0..total`; each unit's inputs
//! (its jump-seeded RNG stream, its config) are derived from the unit
//! index alone by the caller, and results are reduced **in unit-index
//! order** at the join. Scheduling therefore cannot perturb any
//! aggregate: outputs are bit-identical for every pool width, job
//! width, and steal interleaving, which is exactly the contract the
//! old scoped fan-outs had (see METHODOLOGY.md, "Executor
//! determinism").
//!
//! # Task kinds and deadlock freedom
//!
//! Tasks come in two kinds. [`TaskKind::Leaf`] tasks (trial-wave
//! slots, splitting-stage slots) never join anything. A
//! [`TaskKind::Composite`] task (an experiment cell) may itself submit
//! leaf jobs and join them. A join never blocks idly while work is
//! queued: it *helps*, executing queued tasks — leaf tasks always, and
//! composite tasks only when the job being joined is itself composite
//! (i.e. the joiner sits at the top of the hierarchy). This bounds the
//! execution stack to `grid join → cell → wave join → wave slot` and
//! makes a width-1 pool — or even a pool whose only worker is busy
//! running the joining cell — complete every job without deadlock,
//! because the joiner can always run its own outstanding slots inline.
//!
//! # One pool per process
//!
//! [`global()`] lazily creates the process-wide pool; its width
//! defaults to [`std::thread::available_parallelism`] and can be fixed
//! *before first use* with [`configure_global_width`] (the `--jobs`
//! CLI flag). Plan-level `threads` knobs no longer spawn OS threads —
//! they only bound how many pool slots a job occupies — so concurrent
//! [`crate::spec::ExperimentPlan`]s can no longer oversubscribe the
//! host: the pool owns every worker thread in the process.
//!
//! Jobs whose effective width is 1 (and single-unit jobs) run inline
//! on the caller thread without touching — or even creating — the
//! pool, so single-threaded runs keep their exact pre-executor
//! performance profile.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Which scheduling class a job's tasks belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Never joins another job; safe for anyone to help-execute.
    Leaf,
    /// May submit and join leaf jobs (an experiment cell). Only joiners
    /// of composite jobs help-execute these.
    Composite,
}

type TaskFn = Box<dyn FnOnce() + Send + 'static>;

struct Task {
    composite: bool,
    run: TaskFn,
}

/// Monotonic counters describing pool activity, for `--verbose`
/// diagnostics and the one-pool-per-process regression tests. None of
/// these values ever feeds a simulation result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Worker threads this pool has ever spawned (== width once the
    /// pool exists; it never grows per job).
    pub threads_spawned: u64,
    /// Jobs that went through the queues (excludes inline jobs).
    pub jobs_submitted: u64,
    /// Jobs that ran entirely inline on the caller thread.
    pub jobs_inline: u64,
    /// Tasks executed by workers and helping joiners.
    pub tasks_executed: u64,
    /// Tasks taken from another worker's deque or from the injector by
    /// a thread that did not enqueue them.
    pub steals: u64,
}

#[derive(Default)]
struct Stats {
    threads_spawned: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_inline: AtomicU64,
    tasks_executed: AtomicU64,
    steals: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Shared {
    /// Pool identity for the thread-local worker tag (distinguishes
    /// pools when unit tests create local ones next to the global).
    id: u64,
    injector: Mutex<VecDeque<Task>>,
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Queued-but-unclaimed task count; lets sleepy workers re-check
    /// for work under the sleep lock without scanning every queue.
    pending: AtomicU64,
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    stats: Stats,
}

thread_local! {
    /// `(pool id, worker index)` of the pool this thread works for, or
    /// `(0, usize::MAX)` for non-worker threads.
    static WORKER: Cell<(u64, usize)> = const { Cell::new((0, usize::MAX)) };
}

static POOL_IDS: AtomicU64 = AtomicU64::new(1);

impl Shared {
    /// The calling thread's worker index in *this* pool, if any.
    fn worker_index(&self) -> Option<usize> {
        let (pool, idx) = WORKER.get();
        (pool == self.id && idx != usize::MAX).then_some(idx)
    }

    fn submit(&self, task: Task) {
        match self.worker_index() {
            Some(me) => lock(&self.deques[me]).push_back(task),
            None => lock(&self.injector).push_back(task),
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        // Notify under the sleep lock so a worker that just found the
        // queues empty cannot miss the wakeup.
        let _guard = lock(&self.sleep);
        self.wake.notify_all();
    }

    /// Pop the newest task from `deque` if its kind is allowed.
    fn pop_back_if(&self, deque: &Mutex<VecDeque<Task>>, allow_composite: bool) -> Option<Task> {
        let mut guard = lock(deque);
        let ok = guard
            .back()
            .is_some_and(|t| allow_composite || !t.composite);
        if !ok {
            return None;
        }
        let task = guard.pop_back();
        drop(guard);
        self.pending.fetch_sub(1, Ordering::SeqCst);
        task
    }

    /// Pop the oldest task from `deque` if its kind is allowed.
    fn pop_front_if(&self, deque: &Mutex<VecDeque<Task>>, allow_composite: bool) -> Option<Task> {
        let mut guard = lock(deque);
        let ok = guard
            .front()
            .is_some_and(|t| allow_composite || !t.composite);
        if !ok {
            return None;
        }
        let task = guard.pop_front();
        drop(guard);
        self.pending.fetch_sub(1, Ordering::SeqCst);
        task
    }

    /// Find a runnable task: own deque (LIFO), then the injector, then
    /// steal from the other workers (FIFO).
    fn find_task(&self, allow_composite: bool) -> Option<Task> {
        let me = self.worker_index();
        if let Some(i) = me {
            if let Some(t) = self.pop_back_if(&self.deques[i], allow_composite) {
                return Some(t);
            }
        }
        if let Some(t) = self.pop_front_if(&self.injector, allow_composite) {
            if me.is_some() {
                self.stats.steals.fetch_add(1, Ordering::Relaxed);
            }
            return Some(t);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(t) = self.pop_front_if(&self.deques[victim], allow_composite) {
                self.stats.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    fn run_task(&self, task: Task) {
        self.stats.tasks_executed.fetch_add(1, Ordering::Relaxed);
        (task.run)();
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    WORKER.set((shared.id, me));
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(task) = shared.find_task(true) {
            shared.run_task(task);
            continue;
        }
        let guard = lock(&shared.sleep);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.pending.load(Ordering::SeqCst) > 0 {
            continue; // a submit raced our scan; rescan
        }
        // The timeout is a belt-and-braces liveness bound; the submit
        // path always notifies under the sleep lock.
        let _ = shared
            .wake
            .wait_timeout(guard, Duration::from_millis(50))
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// The state a job shares between its slot tasks and its joiner.
struct JobCore<T> {
    next: AtomicU64,
    total: u64,
    results: Mutex<Vec<(u64, T)>>,
    done: Condvar,
}

/// A work-stealing pool. Most code wants the process-wide [`global()`]
/// pool (via the free [`run_ordered`] / [`run_ordered_with`]
/// functions); constructing a local pool is for tests.
pub struct Executor {
    shared: Arc<Shared>,
    width: usize,
    /// Join handles for locally owned workers; empty for the detached
    /// global pool.
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Executor {
    /// A local pool with `width` workers (min 1), shut down on drop.
    pub fn new(width: usize) -> Executor {
        Executor::build(width, false)
    }

    fn build(width: usize, detached: bool) -> Executor {
        let width = width.max(1);
        let shared = Arc::new(Shared {
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            deques: (0..width).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicU64::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
        });
        let mut handles = Vec::new();
        for me in 0..width {
            let shared = Arc::clone(&shared);
            shared.stats.threads_spawned.fetch_add(1, Ordering::Relaxed);
            let handle = std::thread::Builder::new()
                .name(format!("sim-exec-{me}"))
                .spawn(move || worker_loop(shared, me))
                .expect("executor: spawning a worker thread failed"); // detlint: allow(panic-expect) -- OS thread exhaustion at pool creation is unrecoverable for the process
            if !detached {
                handles.push(handle);
            }
        }
        Executor {
            shared,
            width,
            handles,
        }
    }

    /// The number of worker threads this pool owns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// A snapshot of this pool's activity counters.
    pub fn stats(&self) -> ExecutorStats {
        let s = &self.shared.stats;
        ExecutorStats {
            threads_spawned: s.threads_spawned.load(Ordering::Relaxed),
            jobs_submitted: s.jobs_submitted.load(Ordering::Relaxed),
            jobs_inline: s.jobs_inline.load(Ordering::Relaxed),
            tasks_executed: s.tasks_executed.load(Ordering::Relaxed),
            steals: s.steals.load(Ordering::Relaxed),
        }
    }

    /// Run `total` units through the pool and return results in unit
    /// order. See [`run_ordered_with`] for the full contract.
    pub fn run_ordered<T, F>(&self, total: u64, width: usize, kind: TaskKind, run_unit: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(u64) -> T + Send + Sync + 'static,
    {
        self.run_ordered_with(total, width, kind, run_unit, |_, _| {})
    }

    /// Run units `0..total` of a job, occupying at most `width` pool
    /// slots, and return the results **in unit-index order** —
    /// bit-identical for every pool width and steal interleaving.
    ///
    /// `on_complete(i, &result)` fires on the calling thread once per
    /// unit, in **completion order** (useful for streaming progress);
    /// the returned `Vec` is always in unit order. Jobs with an
    /// effective width of one run inline on the caller without
    /// touching the pool.
    pub fn run_ordered_with<T, F, C>(
        &self,
        total: u64,
        width: usize,
        kind: TaskKind,
        run_unit: F,
        mut on_complete: C,
    ) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(u64) -> T + Send + Sync + 'static,
        C: FnMut(u64, &T),
    {
        if total == 0 {
            return Vec::new();
        }
        let slots = width
            .min(usize::try_from(total).unwrap_or(usize::MAX))
            .max(1);
        if slots == 1 {
            self.shared
                .stats
                .jobs_inline
                .fetch_add(1, Ordering::Relaxed);
            return run_inline(total, &run_unit, &mut on_complete);
        }
        self.shared
            .stats
            .jobs_submitted
            .fetch_add(1, Ordering::Relaxed);
        let core = Arc::new(JobCore {
            next: AtomicU64::new(0),
            total,
            results: Mutex::new(Vec::new()),
            done: Condvar::new(),
        });
        let runner = Arc::new(run_unit);
        for _ in 0..slots {
            let core = Arc::clone(&core);
            let runner = Arc::clone(&runner);
            self.shared.submit(Task {
                composite: kind == TaskKind::Composite,
                // Each slot pulls unit indices until the job is
                // exhausted — the same pull loop the scoped fan-outs
                // used, so work distribution semantics are unchanged.
                run: Box::new(move || loop {
                    let i = core.next.fetch_add(1, Ordering::Relaxed);
                    if i >= core.total {
                        break;
                    }
                    let result = runner(i);
                    let mut results = lock(&core.results);
                    results.push((i, result));
                    core.done.notify_all();
                }),
            });
        }
        // Join: drain finished units, help-execute queued tasks while
        // any remain, park briefly otherwise. Helping is what makes a
        // narrow pool deadlock-free (see module docs).
        let allow_composite = kind == TaskKind::Composite;
        let mut out: Vec<Option<T>> = (0..total).map(|_| None).collect();
        let mut collected: u64 = 0;
        while collected < total {
            let drained: Vec<(u64, T)> = {
                let mut results = lock(&core.results);
                std::mem::take(&mut *results)
            };
            if !drained.is_empty() {
                for (i, result) in drained {
                    on_complete(i, &result);
                    out[usize::try_from(i).unwrap_or(usize::MAX)] = Some(result);
                    collected += 1;
                }
                continue;
            }
            if let Some(task) = self.shared.find_task(allow_composite) {
                self.shared.run_task(task);
                continue;
            }
            let results = lock(&core.results);
            if results.is_empty() {
                let _ = core
                    .done
                    .wait_timeout(results, Duration::from_millis(1))
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        out.into_iter()
            .map(|slot| match slot {
                Some(result) => result,
                None => panic!("executor: a unit index produced no result"), // detlint: allow(panic-macro) -- the join loop counts exactly one pushed result per unit index before exiting
            })
            .collect()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        if self.handles.is_empty() {
            return; // detached (global) pool: workers live for the process
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = lock(&self.shared.sleep);
            self.shared.wake.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn run_inline<T, F, C>(total: u64, run_unit: &F, on_complete: &mut C) -> Vec<T>
where
    F: Fn(u64) -> T,
    C: FnMut(u64, &T),
{
    (0..total)
        .map(|i| {
            let result = run_unit(i);
            on_complete(i, &result);
            result
        })
        .collect()
}

static GLOBAL: OnceLock<Executor> = OnceLock::new();
static CONFIGURED_WIDTH: AtomicU64 = AtomicU64::new(0);
static GLOBAL_POOLS_CREATED: AtomicU64 = AtomicU64::new(0);

fn default_width() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Fix the global pool's width (0 = auto-detect) **before first use**.
/// Returns `false` if the pool already exists, in which case the call
/// had no effect. Wired to the bench CLI `--jobs` flag.
pub fn configure_global_width(width: usize) -> bool {
    CONFIGURED_WIDTH.store(width as u64, Ordering::SeqCst);
    GLOBAL.get().is_none()
}

/// The process-wide pool, created on first call. Its worker threads
/// are detached: they live for the remainder of the process.
pub fn global() -> &'static Executor {
    GLOBAL.get_or_init(|| {
        GLOBAL_POOLS_CREATED.fetch_add(1, Ordering::SeqCst);
        let configured = usize::try_from(CONFIGURED_WIDTH.load(Ordering::SeqCst)).unwrap_or(0);
        let width = if configured == 0 {
            default_width()
        } else {
            configured
        };
        Executor::build(width, true)
    })
}

/// The width the global pool has — or would have, if it has not been
/// created yet. Never creates the pool.
pub fn global_width() -> usize {
    if let Some(pool) = GLOBAL.get() {
        return pool.width();
    }
    let configured = usize::try_from(CONFIGURED_WIDTH.load(Ordering::SeqCst)).unwrap_or(0);
    if configured == 0 {
        default_width()
    } else {
        configured
    }
}

/// [`ExecutorStats`] for the global pool; all-zero if it has never
/// been created (every job so far ran inline).
pub fn global_stats() -> ExecutorStats {
    GLOBAL.get().map(Executor::stats).unwrap_or_default()
}

/// How many times [`global()`] has constructed a pool. At most 1 per
/// process by construction; the one-pool regression tests assert it.
pub fn global_pools_created() -> u64 {
    GLOBAL_POOLS_CREATED.load(Ordering::SeqCst)
}

/// [`Executor::run_ordered`] on the global pool. Width-1 and
/// single-unit jobs run inline without creating the pool.
pub fn run_ordered<T, F>(total: u64, width: usize, kind: TaskKind, run_unit: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(u64) -> T + Send + Sync + 'static,
{
    run_ordered_with(total, width, kind, run_unit, |_, _| {})
}

/// [`Executor::run_ordered_with`] on the global pool. Width-1 and
/// single-unit jobs run inline without creating the pool.
pub fn run_ordered_with<T, F, C>(
    total: u64,
    width: usize,
    kind: TaskKind,
    run_unit: F,
    mut on_complete: C,
) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(u64) -> T + Send + Sync + 'static,
    C: FnMut(u64, &T),
{
    if total == 0 {
        return Vec::new();
    }
    let slots = width
        .min(usize::try_from(total).unwrap_or(usize::MAX))
        .max(1);
    if slots == 1 {
        return run_inline(total, &run_unit, &mut on_complete);
    }
    global().run_ordered_with(total, width, kind, run_unit, on_complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ordered_results_match_inline_for_every_width() {
        let expected: Vec<u64> = (0..97).map(|i| i * i + 1).collect();
        for width in [1, 2, 4, 8] {
            let pool = Executor::new(2);
            let got = pool.run_ordered(97, width, TaskKind::Leaf, |i| i * i + 1);
            assert_eq!(got, expected, "width {width}");
        }
    }

    #[test]
    fn single_width_jobs_run_inline_without_touching_workers() {
        let pool = Executor::new(3);
        let got = pool.run_ordered(50, 1, TaskKind::Leaf, |i| i + 7);
        assert_eq!(got, (7..57).collect::<Vec<u64>>());
        let stats = pool.stats();
        assert_eq!(stats.jobs_inline, 1);
        assert_eq!(stats.jobs_submitted, 0);
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    fn pool_threads_are_spawned_once_not_per_job() {
        let pool = Executor::new(3);
        for _ in 0..5 {
            let _ = pool.run_ordered(32, 4, TaskKind::Leaf, |i| i);
        }
        let stats = pool.stats();
        assert_eq!(stats.threads_spawned, 3, "{stats:?}");
        assert_eq!(stats.jobs_submitted, 5, "{stats:?}");
    }

    #[test]
    fn streaming_callback_sees_every_unit_exactly_once() {
        let pool = Executor::new(2);
        let mut seen = vec![0u32; 40];
        let got = pool.run_ordered_with(
            40,
            4,
            TaskKind::Leaf,
            |i| i * 3,
            |i, r| {
                assert_eq!(*r, i * 3);
                seen[usize::try_from(i).unwrap()] += 1;
            },
        );
        assert_eq!(got, (0..40).map(|i| i * 3).collect::<Vec<u64>>());
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    /// The deadlock regression the helping join exists for: a width-1
    /// pool runs composite tasks that each submit and join a nested
    /// leaf job on the same pool.
    #[test]
    fn nested_leaf_jobs_inside_composites_complete_on_a_width_1_pool() {
        let pool = Arc::new(Executor::new(1));
        let inner = Arc::clone(&pool);
        let got = pool.run_ordered(4, 4, TaskKind::Composite, move |cell| {
            inner
                .run_ordered(8, 4, TaskKind::Leaf, move |i| cell * 100 + i)
                .iter()
                .sum::<u64>()
        });
        let expected: Vec<u64> = (0..4)
            .map(|cell| (0..8).map(|i| cell * 100 + i).sum())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_jobs_return_empty() {
        let pool = Executor::new(2);
        let got: Vec<u64> = pool.run_ordered(0, 4, TaskKind::Leaf, |i| i);
        assert!(got.is_empty());
    }

    #[test]
    fn work_is_pulled_not_preassigned() {
        // All units claimed through one shared counter: the number of
        // distinct executing threads never exceeds the slot count, and
        // every unit index is claimed exactly once.
        let pool = Executor::new(4);
        let claims = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&claims);
        let got = pool.run_ordered(100, 2, TaskKind::Leaf, move |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(got, (0..100).collect::<Vec<u64>>());
        assert_eq!(claims.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn global_pool_is_created_at_most_once() {
        let _ = run_ordered(16, 2, TaskKind::Leaf, |i| i);
        let _ = run_ordered(16, 4, TaskKind::Leaf, |i| i);
        assert!(global_pools_created() <= 1);
        let stats = global_stats();
        assert_eq!(stats.threads_spawned, global().width() as u64);
    }
}
