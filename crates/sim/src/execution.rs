//! The round-loop engine tying oracle, network, adversary and detectors
//! together.
//!
//! Round `r` proceeds exactly as in the paper's Section III:
//!
//! 1. **Receive** — deliveries scheduled for round `r` become visible;
//!    each honest group adopts the longest chain it now knows
//!    (first-seen tie-break).
//! 2. **Mine** — every miner makes its one hash query; honest successes
//!    extend their group's tip (parallel queries: same-round honest
//!    blocks of one group are siblings, so honest height grows by ≤ 1);
//!    the adversary's `q` successes are sequential and mine wherever its
//!    strategy chooses.
//! 3. **Schedule** — honest blocks reach their own group immediately and
//!    other groups after the adversary-chosen delay `∈ [1, Δ]`;
//!    adversary releases are scheduled likewise.

use crate::adversary::Adversary;
use crate::block::{BlockId, Provenance, Round};
use crate::config::SimConfig;
use crate::consistency::ChainTracker;
use crate::events::{ConvergenceDetector, RoundState, SuffixTracker};
use crate::metrics::SimReport;
use crate::network::Network;
use crate::oracle::MiningOracle;
use crate::tree::BlockTree;
use probability::rng::Xoshiro256PlusPlus;

/// Per-round record kept when round logging is enabled (see
/// [`Simulation::enable_round_log`]); feeds the sliding-window Lemma-1
/// analysis in `consistency-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRecord {
    /// Honest blocks mined this round.
    pub honest: u32,
    /// Adversary blocks mined this round.
    pub adversary: u32,
    /// Whether a convergence opportunity completed this round.
    pub convergence_completed: bool,
}

/// A running simulation.
pub struct Simulation {
    config: SimConfig,
    tree: BlockTree,
    network: Network,
    tracker: ChainTracker,
    oracle: MiningOracle,
    adversary: Box<dyn Adversary>,
    suffix: SuffixTracker,
    convergence: ConvergenceDetector,
    round: Round,
    honest_blocks: u64,
    adversary_blocks: u64,
    h_rounds: u64,
    h1_rounds: u64,
    round_log: Option<Vec<RoundRecord>>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("config", &self.config)
            .field("round", &self.round)
            .field("adversary", &self.adversary.name())
            .field("blocks", &self.tree.len())
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation from a validated config and a strategy.
    ///
    /// Honest miners are split evenly across the delivery groups the
    /// strategy requests (1 or 2).
    pub fn new(config: SimConfig, adversary: Box<dyn Adversary>) -> Self {
        let n_groups = adversary.group_count();
        assert!(n_groups == 1 || n_groups == 2, "1 or 2 honest groups");
        let n_honest = config.n_honest();
        let group_sizes = if n_groups == 1 {
            [n_honest, 0]
        } else {
            [n_honest / 2, n_honest - n_honest / 2]
        };
        let rng = Xoshiro256PlusPlus::seed_from_u64(config.seed);
        Simulation {
            tree: BlockTree::new(),
            network: Network::new(),
            tracker: ChainTracker::new(n_groups),
            oracle: MiningOracle::new(group_sizes, config.n_adversary(), config.hardness, rng),
            adversary,
            suffix: SuffixTracker::new(config.delta),
            convergence: ConvergenceDetector::new(config.delta),
            round: 0,
            honest_blocks: 0,
            adversary_blocks: 0,
            h_rounds: 0,
            h1_rounds: 0,
            round_log: None,
            config,
        }
    }

    /// Turns on per-round logging (honest/adversary block counts and
    /// convergence completions). Must be called before stepping.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already advanced.
    pub fn enable_round_log(&mut self) {
        assert_eq!(self.round, 0, "enable logging before the first step");
        self.round_log = Some(Vec::new());
    }

    /// The per-round log, if enabled.
    pub fn round_log(&self) -> Option<&[RoundRecord]> {
        self.round_log.as_deref()
    }

    /// The simulation's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current round number.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Read access to the block tree.
    pub fn tree(&self) -> &BlockTree {
        &self.tree
    }

    /// Both group tips (duplicated in the single-group setting).
    fn group_tips(&self) -> [BlockId; 2] {
        if self.tracker.n_groups() == 1 {
            [self.tracker.tip(0), self.tracker.tip(0)]
        } else {
            [self.tracker.tip(0), self.tracker.tip(1)]
        }
    }

    /// Advances the simulation by one round.
    pub fn step(&mut self) {
        self.round += 1;
        let round = self.round;
        let delta = self.config.delta;
        let n_groups = self.tracker.n_groups();

        // 1. Receive.
        for delivery in self.network.due(round) {
            if delivery.group < n_groups {
                self.tracker
                    .consider(delivery.group, delivery.block, &self.tree);
            }
        }

        // 2. Mine (honest).
        let outcome = self.oracle.sample_round();
        let honest_total = outcome.honest_total();
        self.honest_blocks += honest_total;
        if honest_total >= 1 {
            self.h_rounds += 1;
        }
        if honest_total == 1 {
            self.h1_rounds += 1;
        }
        for group in 0..n_groups {
            let successes = outcome.honest_per_group[group];
            if successes == 0 {
                continue;
            }
            // Parallel queries: all of this group's blocks extend the
            // pre-mining tip and are siblings.
            let base = self.tracker.tip(group);
            let mut first_new = None;
            for _ in 0..successes {
                let block = self.tree.add_block(base, round, Provenance::Honest(group));
                if first_new.is_none() {
                    first_new = Some(block);
                }
                // Other groups hear about every mined block after the
                // adversary-chosen delay.
                for other in 0..n_groups {
                    if other == group {
                        continue;
                    }
                    let delay = self
                        .adversary
                        .honest_delay(round, group, other)
                        .clamp(1, delta);
                    self.network.schedule(block, other, round + delay);
                }
            }
            // The mining group sees its own first block immediately.
            if let Some(block) = first_new {
                self.tracker.consider(group, block, &self.tree);
            }
        }

        // 3. Adversary mining and releases.
        self.adversary_blocks += outcome.adversary;
        let tips = self.group_tips();
        let releases = self
            .adversary
            .act(round, &tips, &mut self.tree, outcome.adversary);
        for release in releases {
            if release.group >= n_groups {
                continue;
            }
            let delay = release.delay.clamp(1, delta);
            self.network
                .schedule(release.block, release.group, round + delay);
        }

        // 4. Detectors.
        self.suffix.update(RoundState::from_count(honest_total));
        let before = self.convergence.count();
        self.convergence.update(honest_total);
        if let Some(log) = &mut self.round_log {
            log.push(RoundRecord {
                honest: honest_total.min(u32::MAX as u64) as u32,
                adversary: outcome.adversary.min(u32::MAX as u64) as u32,
                convergence_completed: self.convergence.count() > before,
            });
        }
    }

    /// Runs `rounds` further rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Produces the aggregated report for everything simulated so far.
    pub fn report(&self) -> SimReport {
        let n_groups = self.tracker.n_groups();
        let group_tips: Vec<BlockId> = (0..n_groups).map(|g| self.tracker.tip(g)).collect();
        let group_heights: Vec<u64> = (0..n_groups).map(|g| self.tracker.height(g)).collect();
        let (chain_honest, chain_adversary) = self.tree.chain_composition(group_tips[0]);
        SimReport {
            rounds: self.round,
            honest_blocks: self.honest_blocks,
            adversary_blocks: self.adversary_blocks,
            convergence_opportunities: self.convergence.count(),
            h_rounds: self.h_rounds,
            h1_rounds: self.h1_rounds,
            suffix_occupancy: self.suffix.occupancy().to_vec(),
            suffix_rounds: self.suffix.rounds_counted(),
            group_tips,
            group_heights,
            max_reorg_depth: self.tracker.max_reorg_depth(),
            max_divergence_depth: self.tracker.max_divergence_depth(),
            reorg_count: self.tracker.reorg_count(),
            chain_honest_blocks: chain_honest,
            chain_adversary_blocks: chain_adversary,
        }
    }
}

/// Convenience wrapper: builds, runs and reports in one call.
///
/// ```
/// use nakamoto_sim::config::SimConfig;
/// use nakamoto_sim::adversary::ImmediateReleaseAdversary;
/// use nakamoto_sim::execution::run_simulation;
///
/// let cfg = SimConfig::new(100, 0.2, 1e-3, 2, 42)?;
/// let report = run_simulation(cfg, Box::new(ImmediateReleaseAdversary::new()), 10_000);
/// assert!(report.honest_blocks > 0);
/// # Ok::<(), nakamoto_sim::config::ConfigError>(())
/// ```
pub fn run_simulation(config: SimConfig, adversary: Box<dyn Adversary>, rounds: u64) -> SimReport {
    let mut sim = Simulation::new(config, adversary);
    sim.run(rounds);
    sim.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BalanceAdversary, ImmediateReleaseAdversary, PrivateChainAdversary};

    fn cfg(n: u64, nu: f64, p: f64, delta: u64, seed: u64) -> SimConfig {
        SimConfig::new(n, nu, p, delta, seed).unwrap()
    }

    #[test]
    fn honest_only_run_grows_chain() {
        let report = run_simulation(
            cfg(100, 0.0, 1e-3, 2, 1),
            Box::new(ImmediateReleaseAdversary::new()),
            50_000,
        );
        assert_eq!(report.adversary_blocks, 0);
        assert!(report.honest_blocks > 0);
        // E[honest] = T·np = 50000 · 0.1 = 5000; allow wide tolerance.
        let expected = 50_000.0 * 100.0 * 1e-3;
        assert!(
            (report.honest_blocks as f64 - expected).abs() < 0.1 * expected,
            "honest {} vs expected {expected}",
            report.honest_blocks
        );
        assert!(report.group_heights[0] > 0);
        assert_eq!(report.chain_adversary_blocks, 0);
        assert_eq!(report.chain_quality(), 1.0);
    }

    #[test]
    fn single_group_immediate_release_has_no_divergence() {
        let report = run_simulation(
            cfg(50, 0.2, 1e-3, 3, 2),
            Box::new(ImmediateReleaseAdversary::new()),
            30_000,
        );
        assert_eq!(report.max_divergence_depth, 0, "one group cannot diverge");
        // Immediate release keeps reorgs shallow (height ties only).
        assert!(
            report.max_reorg_depth <= 2,
            "reorg {}",
            report.max_reorg_depth
        );
    }

    #[test]
    fn adversary_block_rate_matches_eq_27() {
        let n = 200u64;
        let nu = 0.3;
        let p = 2e-3;
        let rounds = 100_000u64;
        let report = run_simulation(
            cfg(n, nu, p, 2, 3),
            Box::new(ImmediateReleaseAdversary::new()),
            rounds,
        );
        // E[A] = T·νn·p = 100000 · 60 · 0.002 = 12000.
        let expected = rounds as f64 * nu * n as f64 * p;
        let got = report.adversary_blocks as f64;
        assert!(
            (got - expected).abs() < 0.05 * expected,
            "A = {got} vs {expected}"
        );
    }

    #[test]
    fn convergence_margin_positive_in_good_regime() {
        // c = 1/(pnΔ) = 1/(1e-4·100·2) = 50 ≫ 2µ/ln(µ/ν): very safe.
        let report = run_simulation(
            cfg(100, 0.1, 1e-5, 2, 4),
            Box::new(PrivateChainAdversary::new(2)),
            400_000,
        );
        assert!(
            report.convergence_opportunities > report.adversary_blocks,
            "C = {} should exceed A = {}",
            report.convergence_opportunities,
            report.adversary_blocks
        );
        assert!(report.convergence_margin() > 0);
    }

    #[test]
    fn private_chain_adversary_causes_reorgs() {
        // Slow-ish chain, strong adversary: reorgs must appear.
        let report = run_simulation(
            cfg(100, 0.4, 5e-3, 4, 5),
            Box::new(PrivateChainAdversary::new(4)),
            100_000,
        );
        assert!(report.reorg_count > 0, "expected reorgs");
        assert!(report.max_reorg_depth >= 1);
        // The adversary's released blocks appear on the honest chain.
        assert!(report.chain_adversary_blocks > 0);
        assert!(report.chain_quality() < 1.0);
    }

    #[test]
    fn balance_adversary_splits_views() {
        let report = run_simulation(
            cfg(100, 0.4, 5e-3, 8, 6),
            Box::new(BalanceAdversary::new(8)),
            100_000,
        );
        assert_eq!(report.group_tips.len(), 2);
        assert!(
            report.max_divergence_depth >= 2,
            "balance attack should create divergence, got {}",
            report.max_divergence_depth
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_simulation(
            cfg(80, 0.25, 1e-3, 3, 99),
            Box::new(PrivateChainAdversary::new(3)),
            20_000,
        );
        let b = run_simulation(
            cfg(80, 0.25, 1e-3, 3, 99),
            Box::new(PrivateChainAdversary::new(3)),
            20_000,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn h_round_counts_consistent() {
        let report = run_simulation(
            cfg(100, 0.2, 1e-3, 2, 12),
            Box::new(ImmediateReleaseAdversary::new()),
            50_000,
        );
        assert!(report.h1_rounds <= report.h_rounds);
        assert!(report.h_rounds <= report.rounds);
        assert!(report.honest_blocks >= report.h_rounds);
        // Suffix occupancy covers all counted rounds.
        assert_eq!(
            report.suffix_occupancy.iter().sum::<u64>(),
            report.suffix_rounds
        );
        assert!(report.suffix_rounds <= report.rounds);
    }

    #[test]
    fn step_by_step_equals_run() {
        let mut a = Simulation::new(
            cfg(60, 0.2, 1e-3, 2, 5),
            Box::new(ImmediateReleaseAdversary::new()),
        );
        let mut b = Simulation::new(
            cfg(60, 0.2, 1e-3, 2, 5),
            Box::new(ImmediateReleaseAdversary::new()),
        );
        a.run(1000);
        for _ in 0..1000 {
            b.step();
        }
        assert_eq!(a.report(), b.report());
    }
}
