//! The round-loop engine tying oracle, network, adversary and detectors
//! together.
//!
//! Round `r` proceeds exactly as in the paper's Section III:
//!
//! 1. **Receive** — deliveries scheduled for round `r` become visible;
//!    each honest group adopts the longest chain it now knows
//!    (first-seen tie-break).
//! 2. **Mine** — every miner makes its one hash query; honest successes
//!    extend their group's tip (parallel queries: same-round honest
//!    blocks of one group are siblings, so honest height grows by ≤ 1);
//!    the adversary's `q` successes are sequential and mine wherever its
//!    strategy chooses.
//! 3. **Schedule** — honest blocks reach their own group immediately and
//!    other groups after the adversary-chosen delay `∈ [1, Δ]`;
//!    adversary releases are scheduled likewise.
//!
//! # Hot path
//!
//! The engine is generic over the adversary, so strategy calls are
//! statically dispatched ([`run_simulation_with`]); the historical
//! boxed entry point [`run_simulation`] is a thin wrapper. Mining is
//! sampled through the oracle's gap interface: instead of drawing block
//! counts round by round, the engine draws the geometric gap to the
//! next proof-of-work success and buffers that round's outcome. In
//! [`Simulation::run`], quiet stretches of a gap with no pending
//! delivery are then skipped in O(1) for strategies that declare
//! [`Adversary::supports_fast_forward`] — in the paper's interesting
//! regimes (`c ≥ 1`, i.e. most rounds mine nothing) this is the
//! difference between O(T) and O(#blocks · Δ) work per run.
//!
//! Long runs also stay in bounded memory: every
//! [`DEFAULT_PRUNE_INTERVAL`] rounds the engine prunes the block
//! tree (and the trackers' chain storage) below the common ancestor of
//! every *live* block — group tips, in-flight deliveries, and blocks
//! the adversary still references — which no future reorg can cross.

use crate::adversary::Adversary;
use crate::block::{BlockId, Provenance, Round};
use crate::config::SimConfig;
use crate::consistency::ChainTracker;
use crate::events::{ConvergenceDetector, RoundState, SuffixTracker};
use crate::metrics::SimReport;
use crate::network::Network;
use crate::oracle::{MiningOracle, RoundOutcome};
use crate::tree::BlockTree;
use probability::rng::Xoshiro256PlusPlus;

/// Default number of rounds between automatic prunes of the block tree
/// and tracker storage (see [`Simulation::set_prune_interval`]).
pub const DEFAULT_PRUNE_INTERVAL: u64 = 4_096;

/// Even split of the honest miners across the delivery groups — the
/// single policy shared by construction and mid-run oracle
/// re-derivation, so a reconfigured engine can never disagree with a
/// freshly built one about who mines.
fn split_honest(n_groups: usize, n_honest: u64) -> [u64; 2] {
    if n_groups == 1 {
        [n_honest, 0]
    } else {
        [n_honest / 2, n_honest - n_honest / 2]
    }
}

/// Per-round record kept when round logging is enabled (see
/// [`Simulation::enable_round_log`]); feeds the sliding-window Lemma-1
/// analysis in `consistency-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRecord {
    /// Honest blocks mined this round.
    pub honest: u32,
    /// Adversary blocks mined this round.
    pub adversary: u32,
    /// Whether a convergence opportunity completed this round.
    pub convergence_completed: bool,
}

/// A running simulation, generic over the adversary strategy so the
/// per-round strategy calls are statically dispatched. The default
/// parameter keeps the historical boxed API compiling unchanged.
///
/// A simulation with a `Clone` adversary is itself `Clone`: the
/// splitting estimator snapshots entrance states this way and restarts
/// them on fresh streams via [`Simulation::reseed_mining`].
#[derive(Clone)]
pub struct Simulation<A: Adversary = Box<dyn Adversary>> {
    config: SimConfig,
    tree: BlockTree,
    network: Network,
    tracker: ChainTracker,
    oracle: MiningOracle,
    adversary: A,
    suffix: SuffixTracker,
    convergence: ConvergenceDetector,
    round: Round,
    honest_blocks: u64,
    adversary_blocks: u64,
    h_rounds: u64,
    h1_rounds: u64,
    round_log: Option<Vec<RoundRecord>>,
    /// Reusable buffer for the per-round delivery drain.
    delivery_buf: Vec<crate::network::Delivery>,
    /// Reusable buffer for the per-round adversary releases.
    release_buf: Vec<crate::adversary::ReleaseDirective>,
    /// Buffered mining outcome: `Some((k, out))` means the next `k − 1`
    /// rounds are quiet and the `k`-th applies `out` (which has ≥ 1
    /// success). Refilled from the oracle's gap sampler when empty.
    pending_outcome: Option<(u64, RoundOutcome)>,
    /// Sub-adversary miner counts for strategies that split the
    /// corrupted population ([`Adversary::sub_miner_counts`]); `None`
    /// drives the monolithic [`Adversary::act`] path.
    sub_counts: Option<Vec<u64>>,
    /// Sub-adversary split of the buffered `pending_outcome`, captured
    /// at sampling time (the oracle's split buffer is overwritten by the
    /// next sample, but the buffered outcome applies rounds later).
    pending_split: Vec<u64>,
    /// All-zero split handed to [`Adversary::act_split`] on quiet
    /// rounds; kept at the current sub count.
    zero_split: Vec<u64>,
    /// Rounds between automatic prunes; `None` disables pruning.
    prune_interval: Option<u64>,
    last_prune: Round,
}

impl<A: Adversary> std::fmt::Debug for Simulation<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("config", &self.config)
            .field("round", &self.round)
            .field("adversary", &self.adversary.name())
            .field("blocks", &self.tree.len())
            .finish()
    }
}

impl<A: Adversary> Simulation<A> {
    /// Creates a simulation from a validated config and a strategy,
    /// seeding the mining RNG from `config.seed`.
    ///
    /// Honest miners are split evenly across the delivery groups the
    /// strategy requests (1 or 2).
    pub fn new(config: SimConfig, adversary: A) -> Self {
        let rng = Xoshiro256PlusPlus::seed_from_u64(config.seed);
        Simulation::with_rng(config, adversary, rng)
    }

    /// Creates a simulation driving mining from an explicit generator,
    /// ignoring `config.seed`. This is how the Monte-Carlo engine hands
    /// each trial its own `jump()`-derived disjoint stream.
    pub fn with_rng(config: SimConfig, adversary: A, rng: Xoshiro256PlusPlus) -> Self {
        let n_groups = adversary.group_count();
        assert!(n_groups == 1 || n_groups == 2, "1 or 2 honest groups");
        let group_sizes = split_honest(n_groups, config.n_honest());
        let sub_counts = adversary.sub_miner_counts(config.n_adversary());
        let mut oracle = MiningOracle::new(group_sizes, config.n_adversary(), config.hardness, rng);
        oracle.set_adversary_split(sub_counts.as_deref());
        let n_subs = sub_counts.as_ref().map_or(0, Vec::len);
        Simulation {
            tree: BlockTree::new(),
            network: Network::new(),
            tracker: ChainTracker::new(n_groups),
            oracle,
            adversary,
            suffix: SuffixTracker::new(config.delta),
            convergence: ConvergenceDetector::new(config.delta),
            round: 0,
            honest_blocks: 0,
            adversary_blocks: 0,
            h_rounds: 0,
            h1_rounds: 0,
            round_log: None,
            delivery_buf: Vec::new(),
            release_buf: Vec::new(),
            pending_outcome: None,
            sub_counts,
            pending_split: Vec::new(),
            zero_split: vec![0; n_subs],
            prune_interval: Some(DEFAULT_PRUNE_INTERVAL),
            last_prune: 0,
            config,
        }
    }

    /// Turns on per-round logging (honest/adversary block counts and
    /// convergence completions). Must be called before stepping.
    /// Disables the quiet-gap bulk skip (each logged round needs its
    /// own record) but not gap-based sampling.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has already advanced.
    pub fn enable_round_log(&mut self) {
        assert_eq!(self.round, 0, "enable logging before the first step");
        self.round_log = Some(Vec::new());
    }

    /// The per-round log, if enabled.
    pub fn round_log(&self) -> Option<&[RoundRecord]> {
        self.round_log.as_deref()
    }

    /// The simulation's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current round number.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Read access to the block tree.
    pub fn tree(&self) -> &BlockTree {
        &self.tree
    }

    /// Read access to the adversary strategy.
    pub fn adversary(&self) -> &A {
        &self.adversary
    }

    /// Mutable access to the adversary strategy. The scenario layer
    /// uses this at phase boundaries (between [`Simulation::run`]
    /// segments) to switch the active strategy or network regime; a
    /// fast-forward-capable strategy must only be mutated between
    /// segments, never mid-run.
    pub fn adversary_mut(&mut self) -> &mut A {
        &mut self.adversary
    }

    /// Snapshot of the mining generator state (see
    /// [`crate::oracle::MiningOracle::rng_clone`]); the scenario
    /// phase-boundary tests use this to compare a reconfigured engine
    /// against a from-scratch engine started at the boundary.
    #[must_use]
    pub fn mining_rng(&self) -> Xoshiro256PlusPlus {
        self.oracle.rng_clone()
    }

    /// Replaces the mining generator with `rng`, discarding the
    /// buffered quiet-gap outcome (and its captured sub-adversary
    /// split) sampled from the old stream. This is the splitting
    /// estimator's replica restart: a cloned entrance state continues
    /// under its own disjoint stream, and because geometric gaps are
    /// memoryless, restarting the gap at the boundary leaves the
    /// process law identical to never having buffered at all (the same
    /// argument [`Simulation::reconfigure_mining`] relies on).
    pub fn reseed_mining(&mut self, rng: Xoshiro256PlusPlus) {
        self.oracle.replace_rng(rng);
        self.pending_outcome = None;
        self.pending_split.clear();
    }

    /// The run's consistency depth so far: the deeper of the deepest
    /// single-group reorg and the deepest simultaneous cross-group
    /// divergence. `T`-consistency has been violated iff this exceeds
    /// `T` (see [`SimReport::is_consistent`]) — which makes the depth a
    /// monotone level function for the splitting estimator: it never
    /// decreases, and it can only change inside [`Simulation::step`],
    /// never during a quiet-gap skip (no deliveries, no mining).
    #[must_use]
    pub fn consistency_depth(&self) -> u64 {
        self.tracker
            .max_reorg_depth()
            .max(self.tracker.max_divergence_depth())
    }

    /// Re-derives the mining oracle for a new adversary fraction and
    /// hardness, continuing the current random stream. This is the
    /// engine half of a scenario *power shift*: subpopulation sizes and
    /// all gap-sampler constants are recomputed, and the buffered
    /// quiet-gap outcome — sampled under the old law — is discarded, so
    /// mining from here on is distributed exactly as in a fresh engine
    /// started at this round (geometric gaps are memoryless, so
    /// restarting the gap at the boundary does not skew the law).
    ///
    /// `Δ` is deliberately *not* reconfigurable: the streaming suffix
    /// and convergence detectors are derived from it at construction,
    /// so the model's delay bound is fixed for the lifetime of a run.
    /// Scenario network regimes vary the realised delays *within*
    /// `[1, Δ]` instead.
    ///
    /// The adversary's sub-adversary split is re-derived at the same
    /// time (a scenario strategy switch into or out of a composed phase
    /// changes it even when ν and p do not), so the oracle-level
    /// success allocation always matches the active strategy.
    ///
    /// No-op when the parameters *and* the sub split are unchanged (so
    /// a phase boundary between identical phases leaves the run
    /// bit-identical to an unsplit run).
    ///
    /// # Panics
    ///
    /// Panics if the new parameters violate the model constraints of
    /// [`SimConfig::validate`].
    pub fn reconfigure_mining(&mut self, adversary_fraction: f64, hardness: f64) {
        let params_changed = adversary_fraction != self.config.adversary_fraction
            || hardness != self.config.hardness;
        let mut new_config = self.config;
        new_config.adversary_fraction = adversary_fraction;
        new_config.hardness = hardness;
        let new_subs = self.adversary.sub_miner_counts(new_config.n_adversary());
        if !params_changed && new_subs == self.sub_counts {
            return;
        }
        new_config
            .validate()
            .expect("reconfigured parameters must satisfy the model constraints"); // detlint: allow(panic-expect) -- scenario phases are validated by Scenario::new before any reconfigure
        self.config = new_config;
        let group_sizes = split_honest(self.tracker.n_groups(), self.config.n_honest());
        self.oracle
            .reconfigure(group_sizes, self.config.n_adversary(), hardness);
        self.oracle.set_adversary_split(new_subs.as_deref());
        self.zero_split.clear();
        self.zero_split
            .resize(new_subs.as_ref().map_or(0, Vec::len), 0);
        self.sub_counts = new_subs;
        // The buffered gap (and its captured split) were sampled under
        // the old law; discard both — gaps are memoryless, so this does
        // not skew the post-boundary distribution.
        self.pending_outcome = None;
        self.pending_split.clear();
    }

    /// Re-derives both streaming detectors for a new *effective* delay
    /// bound — the scenario layer's per-phase `Δ_effective` hook,
    /// mirroring [`Simulation::reconfigure_mining`] for the measurement
    /// side. The suffix tracker restarts as a fresh tracker for
    /// `delta` (its state space is Δ-dependent); the convergence
    /// detector resets its pattern machinery but carries the cumulative
    /// opportunity count, so per-phase counts remain snapshot diffs.
    /// Both resets are proven equivalent to constructing fresh
    /// detectors at the boundary (see the detector `reconfigure_*`
    /// tests in [`crate::events`]).
    ///
    /// The *network* bound Δ is untouched: realised delays are still
    /// clamped to the config's `[1, Δ]`. `Δ_effective` only changes
    /// what the detectors treat as a long-enough quiet gap — e.g. a
    /// calm phase measured at `Δ_eff = 1` counts every isolated honest
    /// block as a convergence opportunity.
    ///
    /// Must only be called between [`Simulation::run`] segments.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0`.
    pub fn reconfigure_detectors(&mut self, delta: u64) {
        self.suffix.reconfigure(delta);
        self.convergence.reconfigure(delta);
    }

    /// The delay bound the streaming detectors are currently derived
    /// from: the config's Δ unless re-derived through
    /// [`Simulation::reconfigure_detectors`].
    #[must_use]
    pub fn detector_delta(&self) -> u64 {
        debug_assert_eq!(self.suffix.delta(), self.convergence.delta());
        self.suffix.delta()
    }

    /// Sets the automatic prune cadence (`None` disables pruning, e.g.
    /// to keep the full tree for post-run forensics). Pruning never
    /// changes any simulation observable — it only bounds memory — so
    /// the default ([`DEFAULT_PRUNE_INTERVAL`]) is safe for all runs.
    pub fn set_prune_interval(&mut self, interval: Option<u64>) {
        assert!(interval != Some(0), "prune interval must be ≥ 1 round");
        self.prune_interval = interval;
    }

    /// Samples the next gap outcome, capturing its sub-adversary split
    /// into the engine buffer: the oracle's split is overwritten by the
    /// next sample, but the buffered outcome only applies after the
    /// quiet stretch it heads.
    fn sample_gap_outcome(&mut self) -> Option<(u64, RoundOutcome)> {
        let sampled = self.oracle.sample_gap_to_success();
        if self.sub_counts.is_some() {
            self.pending_split.clear();
            self.pending_split
                .extend_from_slice(self.oracle.adversary_split());
        }
        sampled
    }

    /// Both group tips (duplicated in the single-group setting).
    fn group_tips(&self) -> [BlockId; 2] {
        if self.tracker.n_groups() == 1 {
            [self.tracker.tip(0), self.tracker.tip(0)]
        } else {
            [self.tracker.tip(0), self.tracker.tip(1)]
        }
    }

    /// Advances the simulation by one round.
    pub fn step(&mut self) {
        self.round += 1;
        let round = self.round;
        let delta = self.config.delta;
        let n_groups = self.tracker.n_groups();

        // 1. Receive. Most executed rounds have nothing due, so the
        // drain (and its buffer dance) is gated on the ring's next-due
        // line; the drain line still advances so the ring's window
        // arithmetic stays tight for later schedules.
        let mut delivered = false;
        if self.network.next_due().is_some_and(|due| due <= round) {
            let mut deliveries = std::mem::take(&mut self.delivery_buf);
            self.network.drain_due_into(round, &mut deliveries);
            for delivery in &deliveries {
                if delivery.group < n_groups {
                    self.tracker
                        .consider(delivery.group, delivery.block, &self.tree);
                }
            }
            delivered = !deliveries.is_empty();
            self.delivery_buf = deliveries;
        } else {
            self.network.advance_drained(round);
        }

        // 2. Mine (honest). The outcome comes from the gap buffer: when
        // it is empty the oracle samples how many all-quiet rounds
        // precede the next success together with that round's counts.
        // `applied_success` marks the round that consumes the buffered
        // success outcome — the only round whose sub-adversary split
        // (captured at sampling time) is nonzero.
        let mut applied_success = false;
        let outcome = match &mut self.pending_outcome {
            Some((1, out)) => {
                applied_success = true;
                let out = *out;
                self.pending_outcome = None;
                out
            }
            // Decrement in place: the common buffered-quiet round never
            // rewrites the whole option.
            Some((left, _)) => {
                *left -= 1;
                RoundOutcome::quiet()
            }
            None => match self.sample_gap_outcome() {
                Some((1, out)) => {
                    applied_success = true;
                    out
                }
                Some((gap, out)) => {
                    self.pending_outcome = Some((gap - 1, out));
                    RoundOutcome::quiet()
                }
                // No miners exist: every round is quiet.
                None => RoundOutcome::quiet(),
            },
        };
        let honest_total = outcome.honest_total();
        self.honest_blocks += honest_total;
        if honest_total >= 1 {
            self.h_rounds += 1;
        }
        if honest_total == 1 {
            self.h1_rounds += 1;
        }
        for group in 0..n_groups {
            let successes = outcome.honest_per_group[group];
            if successes == 0 {
                continue;
            }
            // Parallel queries: all of this group's blocks extend the
            // pre-mining tip and are siblings.
            let base = self.tracker.tip(group);
            let mut first_new = None;
            for _ in 0..successes {
                let block = self.tree.add_block(base, round, Provenance::Honest(group));
                if first_new.is_none() {
                    first_new = Some(block);
                }
                // Other groups hear about every mined block after the
                // adversary-chosen delay.
                for other in 0..n_groups {
                    if other == group {
                        continue;
                    }
                    let delay = self
                        .adversary
                        .honest_delay(round, group, other)
                        .clamp(1, delta);
                    self.network.schedule(block, other, round + delay);
                }
            }
            // The mining group sees its own first block immediately.
            if let Some(block) = first_new {
                self.tracker.consider(group, block, &self.tree);
            }
        }

        // 3. Adversary mining and releases. On executed rounds with no
        // successes and no deliveries, a fast-forward-capable strategy's
        // `act` is a no-op by the same contract the quiet-gap bulk skip
        // relies on (nothing it observes has changed since its last
        // call), so the call — and the release buffer dance — is elided.
        self.adversary_blocks += outcome.adversary;
        let eventless = honest_total == 0 && outcome.adversary == 0 && !delivered;
        if !eventless || !self.adversary.supports_fast_forward() {
            let tips = self.group_tips();
            let mut releases = std::mem::take(&mut self.release_buf);
            releases.clear();
            if self.sub_counts.is_none() {
                self.adversary.act(
                    round,
                    &tips,
                    &mut self.tree,
                    outcome.adversary,
                    &mut releases,
                );
            } else {
                // Split-budget strategy: hand over the per-sub-adversary
                // success counts the oracle allocated for this round.
                let split = if applied_success {
                    &self.pending_split
                } else {
                    &self.zero_split
                };
                debug_assert_eq!(split.iter().sum::<u64>(), outcome.adversary);
                self.adversary
                    .act_split(round, &tips, &mut self.tree, split, &mut releases);
            }
            for release in &releases {
                if release.group >= n_groups {
                    continue;
                }
                let delay = release.delay.clamp(1, delta);
                self.network
                    .schedule(release.block, release.group, round + delay);
            }
            self.release_buf = releases;
        }
        // Engine invariant: every delay is clamped to ≥ 1 above, so no
        // engine-originated schedule can land at or before the drain
        // line and trip the network's re-timing fallback (see
        // `Network::schedule`'s contract).
        debug_assert_eq!(
            self.network.late_schedules(),
            0,
            "engine scheduled into the past"
        );

        // 4. Detectors.
        self.suffix.update(RoundState::from_count(honest_total));
        let before = self.convergence.count();
        self.convergence.update(honest_total);
        if let Some(log) = &mut self.round_log {
            log.push(RoundRecord {
                honest: honest_total.min(u32::MAX as u64) as u32,
                adversary: outcome.adversary.min(u32::MAX as u64) as u32,
                convergence_completed: self.convergence.count() > before,
            });
        }

        // 5. Housekeeping.
        self.maybe_prune();
    }

    /// Runs `rounds` further rounds.
    ///
    /// For strategies declaring [`Adversary::supports_fast_forward`],
    /// stretches of buffered quiet rounds with no delivery due are
    /// consumed in bulk: by the trait contract the skipped `act` calls
    /// are no-ops, deliveries cannot materialise out of thin air, and
    /// the detectors advance by closed form, so the result is
    /// bit-identical to stepping round by round (see the
    /// `step_by_step_equals_run` test).
    pub fn run(&mut self, rounds: u64) {
        let target = self.round + rounds;
        let fast = self.fast_forward_enabled();
        while self.round < target {
            self.step();
            if !fast {
                continue;
            }
            let skip = self.plan_quiet_skip(target);
            if skip > 0 {
                self.skip_quiet(skip);
            }
        }
    }

    /// Whether the quiet-gap bulk skip applies to this run: the
    /// strategy declares [`Adversary::supports_fast_forward`] and no
    /// per-round log demands that every round execute for real.
    /// Constant for the lifetime of a run (logging can only be enabled
    /// at round zero), so [`Simulation::run`] and the lockstep batch
    /// engine both evaluate it once per run segment.
    pub(crate) fn fast_forward_enabled(&self) -> bool {
        self.adversary.supports_fast_forward() && self.round_log.is_none()
    }

    /// The fast-path epilogue of one run-loop iteration: eagerly
    /// refills the gap buffer and returns how many quiet rounds may be
    /// consumed in bulk before `target`, the next buffered success, or
    /// the next delivery — whichever is nearest. Shared between
    /// [`Simulation::run`], [`Simulation::run_until_depth`] and the
    /// lockstep batch engine so every driver advances a lane through
    /// the identical op sequence (and hence the identical random
    /// stream).
    pub(crate) fn plan_quiet_skip(&mut self, target: u64) -> u64 {
        // Refill the gap buffer eagerly: sampling order (and hence
        // the random stream) is unchanged, but the round that would
        // otherwise execute just to draw the next gap becomes
        // skippable like the rest of the quiet stretch.
        if self.pending_outcome.is_none() {
            self.pending_outcome = self.sample_gap_outcome();
        }
        let Some((left, _)) = self.pending_outcome else {
            return 0;
        };
        // Rounds strictly before the buffered success round are
        // quiet; stop early for the run target and for the next
        // delivery (its round must execute for real).
        let mut skip = (left - 1).min(target - self.round);
        if let Some(due) = self.network.next_due() {
            skip = skip.min(due.saturating_sub(self.round + 1));
        }
        skip
    }

    /// Runs until the consistency depth reaches `depth` or the round
    /// counter reaches the absolute round `horizon`, whichever comes
    /// first; returns whether the depth was reached. Unlike
    /// [`Simulation::run`]'s relative `rounds`, `horizon` is absolute
    /// so a cloned replica resumed mid-run races toward the same finish
    /// line as its parent.
    ///
    /// Uses the same quiet-gap bulk skip as [`Simulation::run`]; the
    /// depth check after each real step is exact because the depth can
    /// only change inside [`Simulation::step`] (skipped rounds deliver
    /// nothing and mine nothing).
    pub fn run_until_depth(&mut self, horizon: u64, depth: u64) -> bool {
        if self.consistency_depth() >= depth {
            return true;
        }
        let fast = self.fast_forward_enabled();
        while self.round < horizon {
            self.step();
            if self.consistency_depth() >= depth {
                return true;
            }
            if !fast {
                continue;
            }
            let skip = self.plan_quiet_skip(horizon);
            if skip > 0 {
                self.skip_quiet(skip);
            }
        }
        false
    }

    /// Consumes `k` quiet rounds in O(min(k, Δ)): no mining, no
    /// deliveries, no strategy calls — only the round counter, the gap
    /// buffer, and the streaming detectors advance. `pub(crate)` for
    /// the lockstep batch engine, whose per-lane advance phase is this
    /// exact call.
    pub(crate) fn skip_quiet(&mut self, k: u64) {
        debug_assert!(self.network.next_due().map_or(true, |d| d > self.round + k));
        self.round += k;
        if let Some((left, _)) = &mut self.pending_outcome {
            debug_assert!(*left > k);
            *left -= k;
        }
        self.suffix.advance_n_run(k);
        self.convergence.advance_n_run(k);
        self.maybe_prune();
    }

    fn maybe_prune(&mut self) {
        let Some(interval) = self.prune_interval else {
            return;
        };
        if self.round - self.last_prune < interval {
            return;
        }
        self.last_prune = self.round;
        // The finalized point: the common ancestor of everything that
        // can still influence the future — group tips, blocks in
        // flight, and blocks the adversary holds. Every future block
        // descends from one of these, so no later reorg can cross it.
        let mut root = self.tracker.tip(0);
        for g in 1..self.tracker.n_groups() {
            root = self.tree.common_ancestor(root, self.tracker.tip(g));
        }
        for block in self.network.pending_blocks() {
            root = self.tree.common_ancestor(root, block);
        }
        for block in self.adversary.live_blocks() {
            root = self.tree.common_ancestor(root, block);
        }
        if root != self.tree.root() {
            self.tree.prune_to(root);
            self.tracker.prune_below(self.tree.height(root));
        }
    }

    /// Produces the aggregated report for everything simulated so far.
    pub fn report(&self) -> SimReport {
        let n_groups = self.tracker.n_groups();
        let group_tips: Vec<BlockId> = (0..n_groups).map(|g| self.tracker.tip(g)).collect();
        let group_heights: Vec<u64> = (0..n_groups).map(|g| self.tracker.height(g)).collect();
        let (chain_honest, chain_adversary) = self.tree.chain_composition(group_tips[0]);
        SimReport {
            rounds: self.round,
            honest_blocks: self.honest_blocks,
            adversary_blocks: self.adversary_blocks,
            convergence_opportunities: self.convergence.count(),
            h_rounds: self.h_rounds,
            h1_rounds: self.h1_rounds,
            suffix_occupancy: self.suffix.occupancy().to_vec(),
            suffix_rounds: self.suffix.rounds_counted(),
            group_tips,
            group_heights,
            max_reorg_depth: self.tracker.max_reorg_depth(),
            max_divergence_depth: self.tracker.max_divergence_depth(),
            reorg_count: self.tracker.reorg_count(),
            chain_honest_blocks: chain_honest,
            chain_adversary_blocks: chain_adversary,
        }
    }
}

/// Statically dispatched convenience wrapper: builds, runs and reports
/// in one call. This is the hot-path entry point — the adversary's
/// methods are monomorphized into the round loop.
///
/// ```
/// use nakamoto_sim::config::SimConfig;
/// use nakamoto_sim::adversary::PrivateChainAdversary;
/// use nakamoto_sim::execution::run_simulation_with;
///
/// let cfg = SimConfig::new(100, 0.2, 1e-3, 2, 42)?;
/// let report = run_simulation_with(cfg, PrivateChainAdversary::new(2), 10_000);
/// assert!(report.honest_blocks > 0);
/// # Ok::<(), nakamoto_sim::config::ConfigError>(())
/// ```
pub fn run_simulation_with<A: Adversary>(
    config: SimConfig,
    adversary: A,
    rounds: u64,
) -> SimReport {
    let mut sim = Simulation::new(config, adversary);
    sim.run(rounds);
    sim.report()
}

/// Boxed convenience wrapper kept for heterogeneous call sites (e.g.
/// tables ranging over strategies); delegates to
/// [`run_simulation_with`].
///
/// ```
/// use nakamoto_sim::config::SimConfig;
/// use nakamoto_sim::adversary::ImmediateReleaseAdversary;
/// use nakamoto_sim::execution::run_simulation;
///
/// let cfg = SimConfig::new(100, 0.2, 1e-3, 2, 42)?;
/// let report = run_simulation(cfg, Box::new(ImmediateReleaseAdversary::new()), 10_000);
/// assert!(report.honest_blocks > 0);
/// # Ok::<(), nakamoto_sim::config::ConfigError>(())
/// ```
#[must_use]
pub fn run_simulation(config: SimConfig, adversary: Box<dyn Adversary>, rounds: u64) -> SimReport {
    run_simulation_with(config, adversary, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BalanceAdversary, ImmediateReleaseAdversary, PrivateChainAdversary};

    fn cfg(n: u64, nu: f64, p: f64, delta: u64, seed: u64) -> SimConfig {
        SimConfig::new(n, nu, p, delta, seed).unwrap()
    }

    #[test]
    fn honest_only_run_grows_chain() {
        let report = run_simulation(
            cfg(100, 0.0, 1e-3, 2, 1),
            Box::new(ImmediateReleaseAdversary::new()),
            50_000,
        );
        assert_eq!(report.adversary_blocks, 0);
        assert!(report.honest_blocks > 0);
        // E[honest] = T·np = 50000 · 0.1 = 5000; allow wide tolerance.
        let expected = 50_000.0 * 100.0 * 1e-3;
        assert!(
            (report.honest_blocks as f64 - expected).abs() < 0.1 * expected,
            "honest {} vs expected {expected}",
            report.honest_blocks
        );
        assert!(report.group_heights[0] > 0);
        assert_eq!(report.chain_adversary_blocks, 0);
        assert_eq!(report.chain_quality(), 1.0);
    }

    #[test]
    fn single_group_immediate_release_has_no_divergence() {
        let report = run_simulation(
            cfg(50, 0.2, 1e-3, 3, 2),
            Box::new(ImmediateReleaseAdversary::new()),
            30_000,
        );
        assert_eq!(report.max_divergence_depth, 0, "one group cannot diverge");
        // Immediate release keeps reorgs shallow (height ties only).
        assert!(
            report.max_reorg_depth <= 2,
            "reorg {}",
            report.max_reorg_depth
        );
    }

    #[test]
    fn adversary_block_rate_matches_eq_27() {
        let n = 200u64;
        let nu = 0.3;
        let p = 2e-3;
        let rounds = 100_000u64;
        let report = run_simulation(
            cfg(n, nu, p, 2, 3),
            Box::new(ImmediateReleaseAdversary::new()),
            rounds,
        );
        // E[A] = T·νn·p = 100000 · 60 · 0.002 = 12000.
        let expected = rounds as f64 * nu * n as f64 * p;
        let got = report.adversary_blocks as f64;
        assert!(
            (got - expected).abs() < 0.05 * expected,
            "A = {got} vs {expected}"
        );
    }

    #[test]
    fn convergence_margin_positive_in_good_regime() {
        // c = 1/(pnΔ) = 1/(1e-4·100·2) = 50 ≫ 2µ/ln(µ/ν): very safe.
        let report = run_simulation(
            cfg(100, 0.1, 1e-5, 2, 4),
            Box::new(PrivateChainAdversary::new(2)),
            400_000,
        );
        assert!(
            report.convergence_opportunities > report.adversary_blocks,
            "C = {} should exceed A = {}",
            report.convergence_opportunities,
            report.adversary_blocks
        );
        assert!(report.convergence_margin() > 0);
    }

    #[test]
    fn private_chain_adversary_causes_reorgs() {
        // Slow-ish chain, strong adversary: reorgs must appear.
        let report = run_simulation(
            cfg(100, 0.4, 5e-3, 4, 5),
            Box::new(PrivateChainAdversary::new(4)),
            100_000,
        );
        assert!(report.reorg_count > 0, "expected reorgs");
        assert!(report.max_reorg_depth >= 1);
        // The adversary's released blocks appear on the honest chain.
        assert!(report.chain_adversary_blocks > 0);
        assert!(report.chain_quality() < 1.0);
    }

    #[test]
    fn balance_adversary_splits_views() {
        let report = run_simulation(
            cfg(100, 0.4, 5e-3, 8, 6),
            Box::new(BalanceAdversary::new(8)),
            100_000,
        );
        assert_eq!(report.group_tips.len(), 2);
        assert!(
            report.max_divergence_depth >= 2,
            "balance attack should create divergence, got {}",
            report.max_divergence_depth
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_simulation(
            cfg(80, 0.25, 1e-3, 3, 99),
            Box::new(PrivateChainAdversary::new(3)),
            20_000,
        );
        let b = run_simulation(
            cfg(80, 0.25, 1e-3, 3, 99),
            Box::new(PrivateChainAdversary::new(3)),
            20_000,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn h_round_counts_consistent() {
        let report = run_simulation(
            cfg(100, 0.2, 1e-3, 2, 12),
            Box::new(ImmediateReleaseAdversary::new()),
            50_000,
        );
        assert!(report.h1_rounds <= report.h_rounds);
        assert!(report.h_rounds <= report.rounds);
        assert!(report.honest_blocks >= report.h_rounds);
        // Suffix occupancy covers all counted rounds.
        assert_eq!(
            report.suffix_occupancy.iter().sum::<u64>(),
            report.suffix_rounds
        );
        assert!(report.suffix_rounds <= report.rounds);
    }

    #[test]
    fn step_by_step_equals_run() {
        // `run` bulk-skips quiet gaps; `step` executes every round. The
        // reports must be bit-identical for every fast-forward-capable
        // strategy.
        for delta in [1u64, 2, 4] {
            let mut a = Simulation::new(
                cfg(60, 0.2, 1e-3, delta, 5),
                ImmediateReleaseAdversary::new(),
            );
            let mut b = Simulation::new(
                cfg(60, 0.2, 1e-3, delta, 5),
                ImmediateReleaseAdversary::new(),
            );
            a.run(5000);
            for _ in 0..5000 {
                b.step();
            }
            assert_eq!(a.report(), b.report(), "Δ = {delta}");
        }
        let mut a = Simulation::new(cfg(60, 0.3, 2e-3, 3, 7), PrivateChainAdversary::new(3));
        let mut b = Simulation::new(cfg(60, 0.3, 2e-3, 3, 7), PrivateChainAdversary::new(3));
        a.run(20_000);
        for _ in 0..20_000 {
            b.step();
        }
        assert_eq!(a.report(), b.report());
        let mut a = Simulation::new(cfg(60, 0.3, 2e-3, 3, 8), BalanceAdversary::new(3));
        let mut b = Simulation::new(cfg(60, 0.3, 2e-3, 3, 8), BalanceAdversary::new(3));
        a.run(20_000);
        for _ in 0..20_000 {
            b.step();
        }
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn static_and_boxed_dispatch_agree() {
        let a = run_simulation_with(
            cfg(80, 0.25, 1e-3, 3, 99),
            PrivateChainAdversary::new(3),
            20_000,
        );
        let b = run_simulation(
            cfg(80, 0.25, 1e-3, 3, 99),
            Box::new(PrivateChainAdversary::new(3)),
            20_000,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn pruning_never_changes_results() {
        // Satellite regression: 50k-round private-chain run, pruned
        // vs unpruned trees must agree on every observable, including
        // the consistency depths.
        let mk = || {
            Simulation::new(
                SimConfig::from_c(100, 4, 1.0, 0.35, 1234).unwrap(),
                PrivateChainAdversary::new(4),
            )
        };
        let mut pruned = mk();
        let mut unpruned = mk();
        unpruned.set_prune_interval(None);
        pruned.run(50_000);
        unpruned.run(50_000);
        let a = pruned.report();
        let b = unpruned.report();
        assert_eq!(a, b, "pruning must be behaviour-invisible");
        assert_eq!(a.max_reorg_depth, b.max_reorg_depth);
        assert_eq!(a.max_divergence_depth, b.max_divergence_depth);
        assert!(
            pruned.tree().len() < unpruned.tree().len(),
            "pruned {} vs unpruned {}",
            pruned.tree().len(),
            unpruned.tree().len()
        );
        // Same check under the balance attack (two groups, divergence).
        let mk = || {
            Simulation::new(
                SimConfig::from_c(100, 4, 1.0, 0.4, 77).unwrap(),
                BalanceAdversary::new(4),
            )
        };
        let mut pruned = mk();
        let mut unpruned = mk();
        unpruned.set_prune_interval(None);
        pruned.run(50_000);
        unpruned.run(50_000);
        assert_eq!(pruned.report(), unpruned.report());
    }

    #[test]
    fn pruned_long_run_holds_bounded_tree() {
        // Acceptance: a 10⁷-round private-chain run keeps a bounded
        // resident block count. The bound covers the live fork window
        // (private lead + unfinalized suffix) plus up to one prune
        // interval of fresh blocks.
        let cfg = SimConfig::from_c(100, 4, 8.0, 0.3, 2024).unwrap();
        let mut sim = Simulation::new(cfg, PrivateChainAdversary::new(4));
        const CAP: usize = 8_192;
        let mut peak = 0usize;
        for _ in 0..1_000 {
            sim.run(10_000);
            peak = peak.max(sim.tree().len());
        }
        assert_eq!(sim.round(), 10_000_000);
        assert!(
            peak <= CAP,
            "peak resident block count {peak} exceeds {CAP}"
        );
        // Sanity: the run really did mine a deep chain.
        assert!(sim.report().group_heights[0] > 100_000);
    }
}
