//! Per-round state classification and the paper's pattern detectors.
//!
//! Each round is classified as `N` (no honest block), `H₁` (exactly one
//! honest block) or `H` with multiplicity (Eqs. 4–6). Two streaming
//! detectors consume that classification:
//!
//! * [`SuffixTracker`] — runs the paper's suffix Markov chain `C_F`
//!   (Fig. 2) forward and records state occupancies, so simulation runs
//!   can be compared against the closed-form stationary distribution
//!   (Eqs. 37a–37d).
//! * [`ConvergenceDetector`] — counts *convergence opportunities*: the
//!   pattern `H N^{≥Δ} H₁ N^Δ` of Section V-A, whose rate is
//!   `ᾱ^{2Δ}α₁` (Eq. 44).

/// Classification of a round by honest mining successes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoundState {
    /// No honest block mined (`N`), probability `ᾱ`.
    NoHonest,
    /// Exactly one honest block mined (`H₁`), probability `α₁`.
    OneHonest,
    /// Two or more honest blocks mined, probability `α − α₁`.
    ManyHonest,
}

impl RoundState {
    /// Classifies a round from its honest block count.
    #[must_use]
    pub fn from_count(honest_blocks: u64) -> Self {
        match honest_blocks {
            0 => RoundState::NoHonest,
            1 => RoundState::OneHonest,
            _ => RoundState::ManyHonest,
        }
    }

    /// `true` for any `H` round (at least one honest block).
    #[must_use]
    pub fn is_h(self) -> bool {
        !matches!(self, RoundState::NoHonest)
    }
}

/// Index layout of the `2Δ+1` suffix states (matching Eq. 29):
///
/// | index | state |
/// |---|---|
/// | `0` | `HN^{≤Δ−1}H` |
/// | `a ∈ 1..Δ` | `HN^{≤Δ−1}HN^a` |
/// | `Δ` | `HN^{≥Δ}` |
/// | `Δ+1+b`, `b ∈ 0..Δ` | `HN^{≥Δ}HN^b` |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuffixState {
    /// `HN^{≤Δ−1}H`: an H round following a short (< Δ) N-run.
    RecentH,
    /// `HN^{≤Δ−1}HN^a`: `a ∈ 1..=Δ−1` N rounds since a [`SuffixState::RecentH`].
    ShortGap(u64),
    /// `HN^{≥Δ}`: at least Δ consecutive N rounds since the last H.
    LongGap,
    /// `HN^{≥Δ}HN^b`: an H after a long gap, followed by `b ∈ 0..=Δ−1` N rounds.
    AfterLongGap(u64),
}

impl SuffixState {
    /// Flat index in `0..2Δ+1` (see the module table).
    #[must_use]
    pub fn index(self, delta: u64) -> usize {
        match self {
            SuffixState::RecentH => 0,
            SuffixState::ShortGap(a) => {
                assert!(a >= 1 && a < delta, "ShortGap arm out of range");
                a as usize
            }
            SuffixState::LongGap => delta as usize,
            SuffixState::AfterLongGap(b) => {
                assert!(b < delta, "AfterLongGap arm out of range");
                (delta + 1 + b) as usize
            }
        }
    }

    /// Inverse of [`SuffixState::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ 2Δ+1`.
    #[must_use]
    pub fn from_index(index: usize, delta: u64) -> Self {
        let d = delta as usize;
        if index == 0 {
            SuffixState::RecentH
        } else if index < d {
            SuffixState::ShortGap(index as u64)
        } else if index == d {
            SuffixState::LongGap
        } else if index <= 2 * d {
            SuffixState::AfterLongGap((index - d - 1) as u64)
        } else {
            panic!("suffix state index {index} out of range for Δ={delta}"); // detlint: allow(panic-macro) -- callers enumerate indices below suffix_state_count
        }
    }

    /// Number of suffix states for a given Δ: `2Δ+1`.
    #[must_use]
    pub fn count(delta: u64) -> usize {
        2 * delta as usize + 1
    }
}

/// Streaming evaluation of the suffix chain `C_F`.
///
/// Occupancy counting starts once the tracker has seen enough history
/// for the suffix state to be well defined (two `H` rounds, as in the
/// paper's "sufficiently large t" proviso).
///
/// Internally the state is kept as its flat [`SuffixState::index`]
/// rather than the enum: the transition function is then pure index
/// arithmetic (`H` always returns to index 0 except out of `LongGap`;
/// `N` climbs consecutive indices until the absorbing `LongGap`),
/// which keeps the twice-per-event update off the branchy enum match.
/// Observable behaviour is identical to the enum-driven automaton.
#[derive(Debug, Clone)]
pub struct SuffixTracker {
    delta: u64,
    /// Flat state index, or [`SUFFIX_WARMUP`] while undefined.
    state_idx: u64,
    h_rounds_seen: u64,
    /// N rounds since the last H, maintained during warm-up so the first
    /// defined state can distinguish `HN^{<Δ}H` from `HN^{≥Δ}H`.
    warmup_gap: u64,
    occupancy: Vec<u64>,
    rounds_counted: u64,
}

/// Sentinel index for the warm-up phase (state not yet defined).
const SUFFIX_WARMUP: u64 = u64::MAX;

impl SuffixTracker {
    /// Creates a tracker for delay bound `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0`.
    #[must_use]
    pub fn new(delta: u64) -> Self {
        assert!(delta >= 1, "Δ must be at least 1");
        SuffixTracker {
            delta,
            state_idx: SUFFIX_WARMUP,
            h_rounds_seen: 0,
            warmup_gap: 0,
            occupancy: vec![0; SuffixState::count(delta)],
            rounds_counted: 0,
        }
    }

    /// The delay bound `Δ` the tracker was derived from. Both streaming
    /// detectors are parameterised by the *model bound* `Δ`, not by the
    /// realised per-message delays, so they remain valid across
    /// scenario phase boundaries that re-schedule delays within
    /// `[1, Δ]` (calm, adversarial, or eclipse regimes) — the engine
    /// asserts this invariant when reconfiguring mining mid-run.
    #[must_use]
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// Re-derives the tracker for a new delay bound, mirroring
    /// [`crate::oracle::MiningOracle::reconfigure`] at a scenario phase
    /// boundary. The suffix state space (`2Δ+1` states) and the meaning
    /// of every occupancy slot depend on `Δ`, so tallies under different
    /// bounds cannot be merged: after `reconfigure` the tracker is
    /// **bit-identical to a freshly constructed `SuffixTracker::new
    /// (delta)`** — warm-up restarts and the occupancy tally is empty
    /// (see the `reconfigure_equals_fresh_tracker` test). Callers that
    /// want the pre-boundary occupancy must snapshot it first, exactly
    /// as the scenario layer snapshots reports at phase boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0`.
    pub fn reconfigure(&mut self, delta: u64) {
        *self = SuffixTracker::new(delta);
    }

    /// The current suffix state, if defined yet.
    #[must_use]
    pub fn state(&self) -> Option<SuffixState> {
        (self.state_idx != SUFFIX_WARMUP)
            .then(|| SuffixState::from_index(self.state_idx as usize, self.delta))
    }

    /// Per-state visit counts (indexed per [`SuffixState::index`]).
    #[must_use]
    pub fn occupancy(&self) -> &[u64] {
        &self.occupancy
    }

    /// Number of rounds included in [`SuffixTracker::occupancy`].
    #[must_use]
    pub fn rounds_counted(&self) -> u64 {
        self.rounds_counted
    }

    /// Consumes one round.
    pub fn update(&mut self, round_state: RoundState) {
        let is_h = round_state.is_h();
        let delta = self.delta;
        if self.state_idx == SUFFIX_WARMUP {
            // Warm-up: the suffix needs two H's of history. On the
            // second H the state is HN^{≤Δ−1}H or HN^{≥Δ}H depending on
            // the tracked gap between the two H's.
            if is_h {
                self.h_rounds_seen += 1;
                if self.h_rounds_seen >= 2 {
                    let idx = if self.warmup_gap >= delta {
                        delta + 1
                    } else {
                        0
                    };
                    self.state_idx = idx;
                    self.occupancy[idx as usize] += 1;
                    self.rounds_counted += 1;
                } else {
                    self.warmup_gap = 0;
                }
            } else if self.h_rounds_seen > 0 {
                self.warmup_gap += 1;
            }
            return;
        }
        self.h_rounds_seen += u64::from(is_h);
        // Index-arithmetic transitions (see the layout table above):
        // an H round lands on RecentH (0) except out of LongGap, which
        // starts an AfterLongGap run; an N round climbs the current
        // consecutive-index run, wrapping into the absorbing LongGap
        // from either run's end (ShortGap(Δ−1) = Δ−1, AfterLongGap(Δ−1)
        // = 2Δ).
        let idx = self.state_idx;
        let next = if is_h {
            if idx == delta {
                delta + 1
            } else {
                0
            }
        } else if idx == delta || idx == 2 * delta {
            delta
        } else {
            idx + 1
        };
        self.state_idx = next;
        self.occupancy[next as usize] += 1;
        self.rounds_counted += 1;
    }

    /// Consumes `k` consecutive `N` (no-honest-block) rounds at once.
    ///
    /// Exactly equivalent to `k` calls of
    /// `update(RoundState::NoHonest)`, but O(min(k, Δ)): the suffix
    /// state reaches the absorbing-on-`N` state `HN^{≥Δ}` after at most
    /// Δ transitions, so the remaining occupancy is added in bulk. This
    /// is what lets the simulator fast-forward quiet gaps in O(1).
    pub fn advance_n_run(&mut self, k: u64) {
        if k == 0 {
            return;
        }
        let idx = self.state_idx;
        if idx == SUFFIX_WARMUP {
            // Warm-up: N rounds only grow the tracked gap (and only
            // once an H has been seen); nothing is counted.
            if self.h_rounds_seen > 0 {
                self.warmup_gap += k;
            }
            return;
        }
        let delta = self.delta;
        self.rounds_counted += k;
        if idx == delta {
            // Already absorbed: the whole run is charged to LongGap.
            self.occupancy[delta as usize] += k;
            return;
        }
        // Under N the state climbs consecutive indices (idx+1, idx+2, …)
        // up to the end of its run — index Δ (which *is* LongGap) for a
        // ShortGap run, index 2Δ for an AfterLongGap run — after which
        // LongGap absorbs the remainder. The climbed slots are
        // consecutive, so the occupancy charge is a plain slice sweep.
        let stop = if idx < delta { delta } else { 2 * delta };
        let climb = (stop - idx).min(k);
        // detlint: allow(panic-slice-index) -- idx + climb <= stop <= 2*delta, the last occupancy slot
        for slot in &mut self.occupancy[(idx + 1) as usize..=(idx + climb) as usize] {
            *slot += 1;
        }
        if k > stop - idx {
            self.occupancy[delta as usize] += k - (stop - idx);
            self.state_idx = delta;
        } else {
            self.state_idx = idx + climb;
        }
    }

    /// Empirical state distribution (occupancy / rounds counted).
    ///
    /// # Panics
    ///
    /// Panics if no rounds have been counted yet.
    #[must_use]
    pub fn empirical_distribution(&self) -> Vec<f64> {
        assert!(self.rounds_counted > 0, "no rounds counted yet");
        self.occupancy
            .iter()
            .map(|&c| c as f64 / self.rounds_counted as f64)
            .collect()
    }
}

/// Streaming count of convergence opportunities
/// (`… H N^{≥Δ} H₁ N^Δ`, Section V-A).
///
/// A convergence opportunity completes at round `t` when:
/// 1. some earlier `H` round exists,
/// 2. followed by ≥ Δ consecutive `N` rounds,
/// 3. then an `H₁` round (exactly one honest block) at `t − Δ`,
/// 4. then Δ consecutive `N` rounds through `t`.
#[derive(Debug, Clone)]
pub struct ConvergenceDetector {
    delta: u64,
    n_run: u64,
    seen_h: bool,
    /// Rounds of `N` still needed to complete a pending pattern.
    pending: Option<u64>,
    count: u64,
}

impl ConvergenceDetector {
    /// Creates a detector for delay bound `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0`.
    #[must_use]
    pub fn new(delta: u64) -> Self {
        assert!(delta >= 1, "Δ must be at least 1");
        ConvergenceDetector {
            delta,
            n_run: 0,
            seen_h: false,
            pending: None,
            count: 0,
        }
    }

    /// The delay bound `Δ` the detector was derived from (fixed for the
    /// detector's lifetime; see [`SuffixTracker::delta`] for why this
    /// is safe across scenario phase boundaries).
    #[must_use]
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// Re-derives the detector for a new delay bound, mirroring
    /// [`crate::oracle::MiningOracle::reconfigure`] at a scenario phase
    /// boundary. The pattern machinery (`N`-run length, pending tail,
    /// leading-`H` memory) is Δ-dependent and resets exactly as in a
    /// fresh detector, while the cumulative opportunity [`count`] — a
    /// plain additive counter, like the engine's block tallies — is
    /// carried across the boundary. Equivalently: after `reconfigure`,
    /// the detector behaves **bit-identically to a freshly constructed
    /// `ConvergenceDetector::new(delta)` whose count starts at the
    /// boundary value** (see the `reconfigure_equals_fresh_detector`
    /// test), so per-phase opportunity counts are still snapshot diffs.
    ///
    /// [`count`]: ConvergenceDetector::count
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0`.
    pub fn reconfigure(&mut self, delta: u64) {
        let carried = self.count;
        *self = ConvergenceDetector::new(delta);
        self.count = carried;
    }

    /// Number of completed convergence opportunities so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Consumes one round given its honest block count.
    pub fn update(&mut self, honest_blocks: u64) {
        match RoundState::from_count(honest_blocks) {
            RoundState::NoHonest => {
                if let Some(remaining) = self.pending {
                    if remaining == 1 {
                        self.count += 1;
                        self.pending = None;
                    } else {
                        self.pending = Some(remaining - 1);
                    }
                }
                self.n_run += 1;
            }
            state => {
                // Any H round cancels a pending pattern (the N^Δ tail is
                // broken) and may start a new one.
                let qualifies =
                    state == RoundState::OneHonest && self.seen_h && self.n_run >= self.delta;
                self.pending = if qualifies { Some(self.delta) } else { None };
                self.seen_h = true;
                self.n_run = 0;
            }
        }
    }

    /// Consumes `k` consecutive `N` rounds at once; O(1) and exactly
    /// equivalent to `k` calls of `update(0)` (the quiet-gap
    /// fast-forward path of the simulator).
    pub fn advance_n_run(&mut self, k: u64) {
        if let Some(remaining) = self.pending {
            if remaining <= k {
                self.count += 1;
                self.pending = None;
            } else {
                self.pending = Some(remaining - k);
            }
        }
        self.n_run += k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(detector: &mut ConvergenceDetector, pattern: &str) {
        // 'h' = H₁, 'H' = many honest, '.' = N.
        for ch in pattern.chars() {
            match ch {
                'h' => detector.update(1),
                'H' => detector.update(3),
                '.' => detector.update(0),
                _ => panic!("bad pattern char {ch}"),
            }
        }
    }

    #[test]
    fn round_state_classification() {
        assert_eq!(RoundState::from_count(0), RoundState::NoHonest);
        assert_eq!(RoundState::from_count(1), RoundState::OneHonest);
        assert_eq!(RoundState::from_count(5), RoundState::ManyHonest);
        assert!(!RoundState::NoHonest.is_h());
        assert!(RoundState::OneHonest.is_h());
        assert!(RoundState::ManyHonest.is_h());
    }

    #[test]
    fn basic_pattern_detected() {
        // Δ = 2: H, then ≥2 N, then H1, then 2 N → one opportunity.
        let mut d = ConvergenceDetector::new(2);
        feed(&mut d, "h..h..");
        assert_eq!(d.count(), 1);
    }

    #[test]
    fn pattern_requires_leading_h() {
        // No H before the N-run: not an opportunity.
        let mut d = ConvergenceDetector::new(2);
        feed(&mut d, "..h..");
        assert_eq!(d.count(), 0);
    }

    #[test]
    fn pattern_requires_h1_not_many() {
        let mut d = ConvergenceDetector::new(2);
        feed(&mut d, "h..H..");
        assert_eq!(d.count(), 0);
    }

    #[test]
    fn pattern_requires_long_enough_leading_gap() {
        let mut d = ConvergenceDetector::new(3);
        feed(&mut d, "h..h...");
        assert_eq!(d.count(), 0, "only 2 < Δ = 3 leading N rounds");
        let mut d = ConvergenceDetector::new(3);
        feed(&mut d, "h...h...");
        assert_eq!(d.count(), 1);
    }

    #[test]
    fn tail_interrupted_by_h_cancels() {
        let mut d = ConvergenceDetector::new(3);
        feed(&mut d, "h...h..h");
        assert_eq!(d.count(), 0);
    }

    #[test]
    fn consecutive_opportunities() {
        // Δ = 1: pattern is H N h N; chain several.
        let mut d = ConvergenceDetector::new(1);
        feed(&mut d, "h.h.h.h.");
        // After the first "h." warm-up, every "h." completes: h(1).h(2).h(3).
        assert_eq!(d.count(), 3);
    }

    #[test]
    fn opportunity_counted_exactly_at_completion() {
        let mut d = ConvergenceDetector::new(2);
        feed(&mut d, "h..h.");
        assert_eq!(d.count(), 0, "tail N^Δ not yet complete");
        feed(&mut d, ".");
        assert_eq!(d.count(), 1);
    }

    #[test]
    fn suffix_state_index_bijection() {
        for delta in [1u64, 2, 3, 8] {
            let n = SuffixState::count(delta);
            assert_eq!(n, 2 * delta as usize + 1);
            for i in 0..n {
                let s = SuffixState::from_index(i, delta);
                assert_eq!(s.index(delta), i, "Δ={delta} index {i}");
            }
        }
    }

    #[test]
    fn suffix_tracker_follows_paper_example() {
        // Paper's worked example (Section V-A): Δ = 3, states
        // H,N,H,H,N,N,H,N,N,N give F₇..F₁₀ = RecentH, ShortGap(1),
        // ShortGap(2), LongGap.
        let mut t = SuffixTracker::new(3);
        let rounds = [1u64, 0, 1, 1, 0, 0, 1, 0, 0, 0];
        let mut states = Vec::new();
        for &h in &rounds {
            t.update(RoundState::from_count(h));
            states.push(t.state());
        }
        assert_eq!(states[6], Some(SuffixState::RecentH), "F₇");
        assert_eq!(states[7], Some(SuffixState::ShortGap(1)), "F₈");
        assert_eq!(states[8], Some(SuffixState::ShortGap(2)), "F₉");
        assert_eq!(states[9], Some(SuffixState::LongGap), "F₁₀");
    }

    #[test]
    fn suffix_tracker_long_gap_then_h() {
        let mut t = SuffixTracker::new(2);
        // H H (warm up) N N N (long gap) H → AfterLongGap(0), N → AfterLongGap(1), N → LongGap.
        for &h in &[1u64, 1, 0, 0, 0, 1, 0, 0] {
            t.update(RoundState::from_count(h));
        }
        assert_eq!(t.state(), Some(SuffixState::LongGap));
        let mut t2 = SuffixTracker::new(2);
        for &h in &[1u64, 1, 0, 0, 0, 1, 0] {
            t2.update(RoundState::from_count(h));
        }
        assert_eq!(t2.state(), Some(SuffixState::AfterLongGap(1)));
    }

    #[test]
    fn suffix_tracker_delta_one_has_no_short_gap() {
        let mut t = SuffixTracker::new(1);
        for &h in &[1u64, 1, 0] {
            t.update(RoundState::from_count(h));
        }
        // With Δ = 1 a single N jumps straight to LongGap.
        assert_eq!(t.state(), Some(SuffixState::LongGap));
        assert_eq!(SuffixState::count(1), 3);
    }

    #[test]
    fn warmup_skips_undefined_prefix() {
        let mut t = SuffixTracker::new(2);
        t.update(RoundState::NoHonest);
        t.update(RoundState::NoHonest);
        assert_eq!(t.state(), None);
        assert_eq!(t.rounds_counted(), 0);
        t.update(RoundState::OneHonest); // first H
        assert_eq!(t.state(), None, "one H is not enough history");
        t.update(RoundState::OneHonest); // second H
        assert_eq!(t.state(), Some(SuffixState::RecentH));
        assert_eq!(t.rounds_counted(), 1);
    }

    /// Brute-force reference for the detector: O(T·Δ) direct pattern
    /// scan, used to validate the streaming automaton (also by the
    /// randomized sweeps below).
    pub(super) fn naive_convergence_count(rounds: &[u64], delta: u64) -> u64 {
        let d = delta as usize;
        let mut count = 0;
        // A pattern completes at index t with H₁ at u = t − Δ.
        for t in d..rounds.len() {
            let u = t - d;
            if rounds[u] != 1 {
                continue;
            }
            if rounds[u + 1..=t].iter().any(|&h| h != 0) {
                continue;
            }
            // Count the maximal N-run immediately before u.
            let mut gap = 0usize;
            while gap < u && rounds[u - 1 - gap] == 0 {
                gap += 1;
            }
            // Need ≥ Δ N's and an H round before the run.
            if gap >= d && u > gap && rounds[u - 1 - gap] >= 1 {
                count += 1;
            }
        }
        count
    }

    #[test]
    fn detector_matches_naive_reference_on_fixed_cases() {
        let cases: [(&[u64], u64); 4] = [
            (&[1, 0, 0, 1, 0, 0], 2),
            (&[1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0], 3),
            (&[2, 0, 1, 0, 1, 0, 1, 0], 1),
            (&[0, 0, 1, 0, 0, 1, 0, 0], 2),
        ];
        for (rounds, delta) in cases {
            let mut d = ConvergenceDetector::new(delta);
            for &h in rounds {
                d.update(h);
            }
            assert_eq!(
                d.count(),
                naive_convergence_count(rounds, delta),
                "Δ={delta}, rounds {rounds:?}"
            );
        }
    }

    #[test]
    fn detectors_expose_their_delta() {
        assert_eq!(SuffixTracker::new(5).delta(), 5);
        assert_eq!(ConvergenceDetector::new(3).delta(), 3);
    }

    #[test]
    fn occupancy_sums_to_rounds_counted() {
        let mut t = SuffixTracker::new(3);
        let pattern = [1u64, 0, 0, 1, 0, 0, 0, 0, 1, 1, 0, 1, 0, 0, 0, 1];
        for &h in &pattern {
            t.update(RoundState::from_count(h));
        }
        let sum: u64 = t.occupancy().iter().sum();
        assert_eq!(sum, t.rounds_counted());
        let dist = t.empirical_distribution();
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}

// Deterministic randomized sweeps (in-tree RNG; proptest is unavailable
// in the offline build environment).
#[cfg(test)]
mod randomized_tests {
    use super::tests::naive_convergence_count;
    use super::*;
    use probability::rng::{RandomSource, SplitMix64};

    #[test]
    fn streaming_detector_equals_naive_reference() {
        let mut rng = SplitMix64::new(0xE7_01);
        for _ in 0..256 {
            let delta = rng.next_range(1, 5);
            let len = rng.next_below(200) as usize;
            // Biased towards N rounds so long gaps actually occur
            // (weights 4:2:1 for h = 0, 1, 2).
            let rounds: Vec<u64> = (0..len)
                .map(|_| match rng.next_below(7) {
                    0..=3 => 0,
                    4 | 5 => 1,
                    _ => 2,
                })
                .collect();
            let mut detector = ConvergenceDetector::new(delta);
            for &h in &rounds {
                detector.update(h);
            }
            assert_eq!(
                detector.count(),
                naive_convergence_count(&rounds, delta),
                "detector disagrees with naive reference: delta={delta} rounds={rounds:?}"
            );
        }
    }

    /// Bulk quiet advance must be indistinguishable from per-round
    /// updates for both detectors, from any reachable starting state.
    #[test]
    fn advance_n_run_equals_per_round_updates() {
        let mut rng = SplitMix64::new(0xE7_03);
        for _ in 0..256 {
            let delta = rng.next_range(1, 6);
            // Random warm-up prefix to land in an arbitrary state.
            let prefix_len = rng.next_below(30) as usize;
            let prefix: Vec<u64> = (0..prefix_len).map(|_| rng.next_below(3)).collect();
            let k = rng.next_below(40);
            let mut bulk_suffix = SuffixTracker::new(delta);
            let mut step_suffix = SuffixTracker::new(delta);
            let mut bulk_conv = ConvergenceDetector::new(delta);
            let mut step_conv = ConvergenceDetector::new(delta);
            for &h in &prefix {
                bulk_suffix.update(RoundState::from_count(h));
                step_suffix.update(RoundState::from_count(h));
                bulk_conv.update(h);
                step_conv.update(h);
            }
            bulk_suffix.advance_n_run(k);
            bulk_conv.advance_n_run(k);
            for _ in 0..k {
                step_suffix.update(RoundState::NoHonest);
                step_conv.update(0);
            }
            assert_eq!(bulk_suffix.state(), step_suffix.state(), "Δ={delta} k={k}");
            assert_eq!(
                bulk_suffix.occupancy(),
                step_suffix.occupancy(),
                "Δ={delta} k={k} prefix={prefix:?}"
            );
            assert_eq!(bulk_suffix.rounds_counted(), step_suffix.rounds_counted());
            assert_eq!(bulk_conv.count(), step_conv.count(), "Δ={delta} k={k}");
            // Continue both with a shared random tail: internal state
            // (n_run, pending, warmup_gap) must also have converged.
            let tail_len = rng.next_below(30) as usize;
            for _ in 0..tail_len {
                let h = rng.next_below(3);
                bulk_suffix.update(RoundState::from_count(h));
                step_suffix.update(RoundState::from_count(h));
                bulk_conv.update(h);
                step_conv.update(h);
            }
            assert_eq!(bulk_suffix.occupancy(), step_suffix.occupancy());
            assert_eq!(bulk_conv.count(), step_conv.count());
        }
    }

    /// Phase-boundary contract for the scenario layer's per-phase
    /// Δ_effective detectors: after `reconfigure(d)`, a tracker must be
    /// bit-identical to a fresh `SuffixTracker::new(d)` on any shared
    /// suffix stream, from any reachable pre-boundary state.
    #[test]
    fn reconfigure_equals_fresh_tracker() {
        let mut rng = SplitMix64::new(0xE7_04);
        for _ in 0..128 {
            let old_delta = rng.next_range(1, 6);
            let new_delta = rng.next_range(1, 6);
            let mut live = SuffixTracker::new(old_delta);
            for _ in 0..rng.next_below(60) {
                live.update(RoundState::from_count(rng.next_below(3)));
            }
            live.reconfigure(new_delta);
            let mut fresh = SuffixTracker::new(new_delta);
            assert_eq!(live.delta(), new_delta);
            for _ in 0..rng.next_below(80) {
                let h = rng.next_below(3);
                live.update(RoundState::from_count(h));
                fresh.update(RoundState::from_count(h));
            }
            assert_eq!(live.state(), fresh.state(), "Δ {old_delta} → {new_delta}");
            assert_eq!(live.occupancy(), fresh.occupancy());
            assert_eq!(live.rounds_counted(), fresh.rounds_counted());
        }
    }

    /// Same contract for the convergence detector, with the cumulative
    /// count carried: the reconfigured detector must count exactly what
    /// a fresh detector counts, offset by the boundary count.
    #[test]
    fn reconfigure_equals_fresh_detector() {
        let mut rng = SplitMix64::new(0xE7_05);
        for _ in 0..128 {
            let old_delta = rng.next_range(1, 6);
            let new_delta = rng.next_range(1, 6);
            let mut live = ConvergenceDetector::new(old_delta);
            for _ in 0..rng.next_below(60) {
                live.update(rng.next_below(3));
            }
            live.reconfigure(new_delta);
            let boundary = live.count();
            let mut fresh = ConvergenceDetector::new(new_delta);
            assert_eq!(live.delta(), new_delta);
            // Exercise both the per-round and the bulk-quiet interfaces.
            for _ in 0..rng.next_below(20) {
                let h = rng.next_below(3);
                live.update(h);
                fresh.update(h);
                let k = rng.next_below(3 * new_delta + 2);
                live.advance_n_run(k);
                fresh.advance_n_run(k);
            }
            assert_eq!(
                live.count(),
                boundary + fresh.count(),
                "Δ {old_delta} → {new_delta}: carried count must offset a fresh detector"
            );
        }
    }

    #[test]
    fn suffix_tracker_never_panics_and_counts_every_round_after_warmup() {
        let mut rng = SplitMix64::new(0xE7_02);
        for _ in 0..256 {
            let delta = rng.next_range(1, 7);
            let len = rng.next_below(300) as usize;
            let rounds: Vec<u64> = (0..len).map(|_| rng.next_below(4)).collect();
            let mut tracker = SuffixTracker::new(delta);
            let mut h_seen = 0u64;
            let mut defined_rounds = 0u64;
            for &h in &rounds {
                tracker.update(RoundState::from_count(h));
                if h > 0 {
                    h_seen += 1;
                }
                if h_seen >= 2 {
                    defined_rounds += 1;
                }
            }
            assert_eq!(tracker.rounds_counted(), defined_rounds);
        }
    }
}
