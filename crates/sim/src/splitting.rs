//! Multilevel-splitting rare-event estimator for consistency failures.
//!
//! The paper's theorems bound failure probabilities around 10⁻⁹ —
//! far below anything a direct Monte-Carlo fan-out can resolve: at
//! `n` trials the Wilson interval for zero observed failures is
//! `[0, ≈3/n]`, so every feasible budget reports "0 [0, 0.3]" against
//! a bound of 10⁻⁹. This module estimates those probabilities with
//! fixed-effort importance splitting instead.
//!
//! # Level function
//!
//! The level function is the run's **consistency depth**
//! ([`crate::execution::Simulation::consistency_depth`]): the deeper of
//! the deepest reorg and the deepest cross-group divergence. It is
//! monotone non-decreasing over a run, and a `T`-consistency violation
//! is exactly the event `depth ≥ T + 1` — so the rare event factors
//! through the nested levels `depth ≥ 1, depth ≥ 2, …, depth ≥ T + 1`.
//!
//! # Fixed-effort splitting
//!
//! Stage 1 launches `effort` independent replicas from round 0 (on the
//! *same* `jump()`-derived streams a plain [`crate::montecarlo::run_trials`]
//! fan-out would use) and runs each until it crosses the first level or
//! its round horizon expires. Stage `k` then resamples `effort` replicas
//! with replacement from stage `k−1`'s crossing states (cloning the full
//! engine state at the crossing round), hands each clone a fresh
//! disjoint stream via [`crate::execution::Simulation::reseed_mining`]
//! (sound because geometric mining gaps are memoryless), and races them
//! toward the next level. The failure probability estimate is the
//! product of per-stage crossing fractions, with the relative-error
//! accounting of [`probability::rare_event::product_estimate`].
//!
//! # Determinism contract
//!
//! Identical to the trial engine's: parent selections and replica
//! streams are derived from `config.seed` alone before any worker
//! starts, and stage results are reduced in replica order, so a
//! [`SplittingRun`]'s statistics are bit-identical for any thread
//! count. With no intermediate levels (a single-stage "degenerate"
//! schedule) the estimator *is* the plain Monte-Carlo failure fraction,
//! bit for bit.

use crate::adversary::Adversary;
use crate::config::{ConfigError, SimConfig};
use crate::execution::Simulation;
use crate::executor::{self, TaskKind};
use crate::montecarlo::{effective_threads, trial_streams};
use probability::rare_event::{product_estimate, LevelOutcome};
use probability::rng::{RandomSource, SplitMix64};
use std::sync::Arc;
use std::time::Instant; // detlint: allow(det-wallclock) -- wall time is reported, not mixed into results

/// Domain-separation tag mixed into `config.seed` for the stage-seed
/// stream, keeping stage-≥2 replica streams distinct from the stage-1
/// streams (which deliberately coincide with `run_trials`' streams).
const STAGE_SEED_TAG: u64 = 0x5350_4C49_5454_494E;

/// A fixed-effort splitting experiment: `effort` replicas per level,
/// racing toward `depth ≥ max(thresholds) + 1` within `rounds` rounds.
///
/// `config.seed` is the master seed; as with
/// [`crate::montecarlo::TrialPlan`], the thread count affects wall-clock
/// time only, never results.
#[derive(Debug, Clone, PartialEq)]
pub struct SplittingPlan {
    /// Shared simulation parameters; `config.seed` is the master seed.
    pub config: SimConfig,
    /// Round horizon per replica (absolute: a replica cloned at round
    /// `r` races from `r` to `rounds`).
    pub rounds: u64,
    /// Consistency thresholds `T` to estimate `P[depth ≥ T+1]` for.
    pub thresholds: Vec<u64>,
    /// Intermediate depth levels strictly below `max(thresholds) + 1`:
    /// `None` selects the automatic unit ladder `1, 2, …, max(T)`;
    /// `Some(vec![])` is the degenerate single-stage schedule (plain
    /// Monte-Carlo); explicit levels are merged with every `T + 1`.
    pub levels: Option<Vec<u64>>,
    /// Replicas launched per stage (≥ 1).
    pub effort: u64,
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
}

impl SplittingPlan {
    /// Creates a validated plan with the automatic unit level ladder.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid config, `rounds == 0`,
    /// `effort == 0`, or empty `thresholds`.
    pub fn new(
        config: SimConfig,
        rounds: u64,
        effort: u64,
        thresholds: Vec<u64>,
    ) -> Result<Self, ConfigError> {
        let plan = SplittingPlan {
            config,
            rounds,
            thresholds,
            levels: None,
            effort,
            threads: 0,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// Sets the intermediate level schedule (builder style); see
    /// [`SplittingPlan::levels`] for the `None` / `Some(vec![])`
    /// semantics.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the levels are not strictly
    /// increasing, contain 0, or reach past `max(thresholds)`.
    pub fn with_levels(mut self, levels: Option<Vec<u64>>) -> Result<Self, ConfigError> {
        self.levels = levels;
        self.validate()?;
        Ok(self)
    }

    /// Sets the worker thread count (builder style); `0` selects one
    /// worker per available CPU.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Re-checks every plan invariant (useful after mutating the public
    /// fields directly).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.config.validate()?;
        if self.rounds == 0 {
            return Err(ConfigError::new(
                "a splitting plan needs at least one round (rounds = 0)",
            ));
        }
        if self.effort == 0 {
            return Err(ConfigError::new(
                "a splitting plan needs at least one replica per level (effort = 0)",
            ));
        }
        let Some(&max_t) = self.thresholds.iter().max() else {
            return Err(ConfigError::new(
                "a splitting plan needs at least one consistency threshold",
            ));
        };
        if let Some(levels) = &self.levels {
            for (i, &level) in levels.iter().enumerate() {
                if level == 0 {
                    return Err(ConfigError::new("splitting levels must be ≥ 1"));
                }
                if level > max_t {
                    return Err(ConfigError::new(format!(
                        "splitting level {level} reaches past the largest threshold {max_t}"
                    )));
                }
                if i > 0 && levels[i - 1] >= level {
                    return Err(ConfigError::new(
                        "splitting levels must be strictly increasing",
                    ));
                }
            }
        }
        Ok(())
    }

    /// The full stage ladder in crossing order: the intermediate levels
    /// (automatic unit ladder when unset) merged with `T + 1` for every
    /// threshold, sorted and deduplicated.
    #[must_use]
    pub fn stage_levels(&self) -> Vec<u64> {
        let Some(&max_t) = self.thresholds.iter().max() else {
            return Vec::new();
        };
        let mut ladder: Vec<u64> = match &self.levels {
            None => (1..=max_t + 1).collect(),
            Some(levels) => {
                let mut ladder = levels.clone();
                ladder.extend(self.thresholds.iter().map(|&t| t + 1));
                ladder.sort_unstable();
                ladder.dedup();
                ladder
            }
        };
        ladder.retain(|&l| l <= max_t + 1);
        ladder
    }

    /// Runs the plan; see [`run_splitting`].
    pub fn run<A, F>(&self, make_adversary: F) -> SplittingRun
    where
        A: Adversary + Clone + Send + Sync + 'static,
        F: Fn(u64) -> A + Send + Sync + 'static,
    {
        run_splitting(self, make_adversary)
    }
}

/// One stage of a splitting run: how many of the `effort` replicas
/// crossed `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelStats {
    /// The consistency depth this stage raced toward.
    pub level: u64,
    /// Replicas that reached it before the round horizon.
    pub hits: u64,
    /// Replicas launched (the fixed effort).
    pub effort: u64,
}

/// The splitting estimate for one consistency threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplittingEstimate {
    /// The consistency threshold `T`.
    pub threshold: u64,
    /// Estimated `P[T-consistency violated within the horizon]` — the
    /// product of stage crossing fractions through level `T + 1`.
    pub probability: f64,
    /// Relative error (one standard error / estimate); `None` when the
    /// chain starved before level `T + 1`.
    pub relative_error: Option<f64>,
    /// The level at which the chain starved (zero hits), if it did at
    /// or below `T + 1`.
    pub starved_at: Option<u64>,
}

impl SplittingEstimate {
    /// One-standard-error half-width `probability · relative_error`;
    /// `None` for a starved chain.
    #[must_use]
    pub fn standard_error(&self) -> Option<f64> {
        self.relative_error.map(|re| self.probability * re)
    }
}

/// Result of [`run_splitting`]: per-threshold estimates, the full stage
/// ladder, and wall-clock metrics (which, as for the trial engine,
/// *do* depend on thread count while the statistics never do).
#[derive(Debug, Clone)]
pub struct SplittingRun {
    /// One estimate per plan threshold, in plan order.
    pub estimates: Vec<SplittingEstimate>,
    /// Per-stage crossing statistics, in ladder order; truncated at the
    /// first starved stage (later stages have no entrance states).
    pub levels: Vec<LevelStats>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock seconds for all stages.
    pub elapsed_secs: f64,
    /// Rounds simulated across every replica of every stage.
    pub total_rounds: u64,
    /// Aggregate simulated-round throughput.
    pub rounds_per_sec: f64,
}

impl SplittingRun {
    /// The estimate for threshold `t`, if `t` was a plan threshold.
    #[must_use]
    pub fn estimate_at(&self, t: u64) -> Option<&SplittingEstimate> {
        self.estimates.iter().find(|e| e.threshold == t)
    }
}

/// One stage's fan-out: runs `run_one(replica)` for every replica index
/// as one ordered job on the shared [`crate::executor`] pool and
/// reduces the results **in replica order** (the mirror of
/// `fan_out_reports`, carrying engine states instead of reports).
/// Returns the survivors (index order, `None` for replicas that missed
/// the level), the rounds simulated, and the job width used.
fn fan_out_stage<A, F>(
    effort: u64,
    requested_threads: usize,
    run_one: F,
) -> (Vec<Option<Simulation<A>>>, u64, usize)
where
    A: Adversary + Clone + Send + Sync + 'static,
    F: Fn(u64) -> (Option<Simulation<A>>, u64) + Send + Sync + 'static,
{
    let threads = effective_threads(requested_threads, effort);
    let slots = executor::run_ordered(effort, threads, TaskKind::Leaf, run_one);
    debug_assert_eq!(slots.len() as u64, effort);
    let mut rounds_total = 0u64;
    let survivors = slots
        .into_iter()
        .map(|(survivor, rounds)| {
            rounds_total += rounds;
            survivor
        })
        .collect();
    (survivors, rounds_total, threads)
}

/// Runs a fixed-effort splitting experiment.
///
/// `make_adversary` builds the strategy for first-stage replica `i`
/// exactly as [`crate::montecarlo::run_trials`] does for trial `i`;
/// later stages clone the adversary (mid-attack state included) along
/// with the rest of the engine.
///
/// The returned statistics are bit-identical for a fixed
/// `plan.config.seed` regardless of `plan.threads`.
///
/// # Panics
///
/// Panics if the plan's public fields were mutated into an invalid
/// state after construction (see [`SplittingPlan::validate`]).
pub fn run_splitting<A, F>(plan: &SplittingPlan, make_adversary: F) -> SplittingRun
where
    A: Adversary + Clone + Send + Sync + 'static,
    F: Fn(u64) -> A + Send + Sync + 'static,
{
    plan.validate()
        .expect("invalid splitting plan: construct through SplittingPlan::new"); // detlint: allow(panic-expect) -- documented # Panics contract for post-construction field mutation
    let make_adversary = Arc::new(make_adversary);
    let ladder = plan.stage_levels();
    let effort = plan.effort;
    // detlint: allow(det-wallclock) -- wall time is reported, not mixed into results
    let started = Instant::now();
    let mut stage_seeder = SplitMix64::new(plan.config.seed ^ STAGE_SEED_TAG);
    let mut level_stats: Vec<LevelStats> = Vec::with_capacity(ladder.len());
    let mut total_rounds = 0u64;
    let mut threads_used = 1usize;
    let mut entrants: Vec<Simulation<A>> = Vec::new();

    for (stage, &level) in ladder.iter().enumerate() {
        let (survivors, stage_rounds, threads) = if stage == 0 {
            // Stage 1 replicas are plain trials: same streams, same
            // adversary factory, same engine entry as `run_trials` — a
            // degenerate (single-stage) schedule reproduces the plain
            // Monte-Carlo failure count bit for bit.
            let streams = Arc::new(trial_streams(plan.config.seed, effort));
            let make_adversary = Arc::clone(&make_adversary);
            let config = plan.config;
            let rounds = plan.rounds;
            let run_one = move |replica: u64| {
                let rng = streams[replica as usize].clone();
                let mut sim = Simulation::with_rng(config, make_adversary(replica), rng);
                let hit = sim.run_until_depth(rounds, level);
                let consumed = sim.round();
                (hit.then_some(sim), consumed)
            };
            fan_out_stage(effort, plan.threads, run_one)
        } else {
            // Later stages: resample entrance states with replacement
            // and restart each clone on its own disjoint stream. Both
            // the parent selections and the streams are fixed before
            // the fan-out, so scheduling cannot perturb them.
            let stage_seed = stage_seeder.next_u64();
            let selection_seed = stage_seeder.next_u64();
            let mut selection = SplitMix64::new(selection_seed);
            let parents: Vec<usize> = (0..effort)
                .map(|_| selection.next_below(entrants.len() as u64) as usize)
                .collect();
            let parents = Arc::new(parents);
            let streams = Arc::new(trial_streams(stage_seed, effort));
            let entrance = Arc::new(std::mem::take(&mut entrants));
            let rounds = plan.rounds;
            let run_one = move |replica: u64| {
                let mut sim = entrance[parents[replica as usize]].clone();
                let entered_at = sim.round();
                sim.reseed_mining(streams[replica as usize].clone());
                let hit = sim.run_until_depth(rounds, level);
                let consumed = sim.round() - entered_at;
                (hit.then_some(sim), consumed)
            };
            fan_out_stage(effort, plan.threads, run_one)
        };
        threads_used = threads_used.max(threads);
        total_rounds += stage_rounds;
        entrants = survivors.into_iter().flatten().collect();
        let hits = entrants.len() as u64;
        level_stats.push(LevelStats {
            level,
            hits,
            effort,
        });
        if hits == 0 {
            // Level starvation: no entrance states remain, so every
            // deeper level (and every threshold above it) estimates 0.
            break;
        }
    }

    let estimates = plan
        .thresholds
        .iter()
        .map(|&t| {
            let stages: Vec<&LevelStats> =
                level_stats.iter().filter(|s| s.level <= t + 1).collect();
            let outcomes: Vec<LevelOutcome> = stages
                .iter()
                .map(|s| LevelOutcome {
                    hits: s.hits,
                    trials: s.effort,
                })
                .collect();
            let product = product_estimate(&outcomes);
            SplittingEstimate {
                threshold: t,
                probability: product.probability,
                relative_error: product.relative_error,
                starved_at: product.starved_at.map(|i| stages[i].level),
            }
        })
        .collect();

    let elapsed_secs = started.elapsed().as_secs_f64();
    SplittingRun {
        estimates,
        levels: level_stats,
        threads: threads_used,
        elapsed_secs,
        total_rounds,
        rounds_per_sec: total_rounds as f64 / elapsed_secs.max(f64::MIN_POSITIVE),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{ImmediateReleaseAdversary, PrivateChainAdversary};
    use crate::montecarlo::TrialPlan;

    fn cfg(seed: u64) -> SimConfig {
        SimConfig::from_c(60, 3, 1.0, 0.35, seed).unwrap()
    }

    #[test]
    fn plan_validation_rejects_bad_inputs() {
        assert!(SplittingPlan::new(cfg(1), 0, 8, vec![2]).is_err());
        assert!(SplittingPlan::new(cfg(1), 100, 0, vec![2]).is_err());
        assert!(SplittingPlan::new(cfg(1), 100, 8, vec![]).is_err());
        let plan = SplittingPlan::new(cfg(1), 100, 8, vec![4]).unwrap();
        assert!(plan.clone().with_levels(Some(vec![0])).is_err(), "level 0");
        assert!(
            plan.clone().with_levels(Some(vec![2, 2])).is_err(),
            "not strictly increasing"
        );
        assert!(
            plan.clone().with_levels(Some(vec![5])).is_err(),
            "past the largest threshold"
        );
        assert!(plan.with_levels(Some(vec![1, 3])).is_ok());
    }

    #[test]
    fn stage_ladder_merges_levels_and_thresholds() {
        let plan = SplittingPlan::new(cfg(1), 100, 8, vec![2, 6]).unwrap();
        assert_eq!(plan.stage_levels(), vec![1, 2, 3, 4, 5, 6, 7]);
        let plan = plan.with_levels(Some(vec![2, 4])).unwrap();
        // Explicit levels ∪ {T+1} = {2, 4} ∪ {3, 7}.
        assert_eq!(plan.stage_levels(), vec![2, 3, 4, 7]);
        let degenerate = SplittingPlan::new(cfg(1), 100, 8, vec![4])
            .unwrap()
            .with_levels(Some(vec![]))
            .unwrap();
        assert_eq!(degenerate.stage_levels(), vec![5]);
    }

    /// Satellite edge case: a single-stage (degenerate) schedule must
    /// reduce to the plain Monte-Carlo estimator, bit for bit — same
    /// streams, same failure count, same point estimate.
    #[test]
    fn degenerate_schedule_reduces_to_plain_monte_carlo() {
        let trials = 24;
        let threshold = 2u64;
        let rounds = 4_000;
        for seed in [11u64, 23, 77] {
            let mc = TrialPlan::new(cfg(seed), rounds, trials)
                .unwrap()
                .thresholds(vec![threshold])
                .run(|_| PrivateChainAdversary::new(3));
            let split = SplittingPlan::new(cfg(seed), rounds, trials, vec![threshold])
                .unwrap()
                .with_levels(Some(vec![]))
                .unwrap()
                .run(|_| PrivateChainAdversary::new(3));
            let failures = mc.aggregate.failures_at(threshold).unwrap();
            assert_eq!(split.levels.len(), 1, "one stage");
            assert_eq!(split.levels[0].hits, failures, "seed {seed}");
            let estimate = split.estimate_at(threshold).unwrap();
            assert_eq!(
                estimate.probability,
                failures as f64 / trials as f64,
                "seed {seed}"
            );
        }
    }

    /// Satellite edge case: thread-count bit-identity at 1/2/4/8
    /// workers (the CI determinism job picks this test up by name).
    #[test]
    fn splitting_independent_of_thread_count() {
        let plan = SplittingPlan::new(cfg(42), 3_000, 16, vec![3]).unwrap();
        let reference = plan
            .clone()
            .with_threads(1)
            .run(|_| PrivateChainAdversary::new(3));
        for threads in [2usize, 4, 8] {
            let other = plan
                .clone()
                .with_threads(threads)
                .run(|_| PrivateChainAdversary::new(3));
            assert_eq!(
                reference.estimates, other.estimates,
                "estimates differ at {threads} threads"
            );
            assert_eq!(
                reference.levels, other.levels,
                "level stats differ at {threads} threads"
            );
            assert_eq!(reference.total_rounds, other.total_rounds);
        }
    }

    /// Satellite edge case: zero successes at an intermediate level.
    /// With no adversary and one group, the consistency depth can reach
    /// shallow levels (same-round sibling ties) but never deep ones, so
    /// the chain starves and deeper thresholds report a clean zero.
    #[test]
    fn intermediate_level_starvation_reports_zero() {
        let config = SimConfig::new(50, 0.0, 2e-3, 2, 9).unwrap();
        let run = SplittingPlan::new(config, 3_000, 12, vec![12])
            .unwrap()
            .run(|_| ImmediateReleaseAdversary::new());
        let starved = run.levels.last().unwrap();
        assert_eq!(starved.hits, 0, "deep levels must starve");
        assert!(
            (run.levels.len() as u64) < 13,
            "ladder must truncate at the starved stage"
        );
        let estimate = run.estimate_at(12).unwrap();
        assert_eq!(estimate.probability, 0.0);
        assert_eq!(estimate.relative_error, None);
        assert_eq!(estimate.standard_error(), None);
        assert_eq!(estimate.starved_at, Some(starved.level));
    }

    #[test]
    fn multi_threshold_estimates_are_nested_products() {
        let run = SplittingPlan::new(cfg(7), 4_000, 20, vec![1, 3])
            .unwrap()
            .run(|_| PrivateChainAdversary::new(3));
        // Recompute each estimate from the level stats by hand.
        for estimate in &run.estimates {
            let expected: f64 = run
                .levels
                .iter()
                .filter(|s| s.level <= estimate.threshold + 1)
                .map(|s| s.hits as f64 / s.effort as f64)
                .product();
            if estimate.starved_at.is_none() {
                assert!((estimate.probability - expected).abs() < 1e-15);
            }
        }
        // Deeper thresholds can never be more likely.
        let p1 = run.estimate_at(1).unwrap().probability;
        let p3 = run.estimate_at(3).unwrap().probability;
        assert!(p3 <= p1, "P[depth ≥ 4] = {p3} > P[depth ≥ 2] = {p1}");
        assert!((0.0..=1.0).contains(&p1));
    }

    #[test]
    fn throughput_fields_populated() {
        let run = SplittingPlan::new(cfg(3), 500, 4, vec![1])
            .unwrap()
            .run(|_| PrivateChainAdversary::new(3));
        assert!(run.elapsed_secs > 0.0);
        assert!(run.total_rounds > 0);
        assert!(run.rounds_per_sec > 0.0);
        assert!(run.threads >= 1);
    }
}
