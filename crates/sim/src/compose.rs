//! Composed adversaries: N sub-strategies acting **simultaneously**
//! over a shared mining-power budget.
//!
//! The paper's consistency bounds are adversary-agnostic — they hold
//! against *any* schedule the Δ-bounded adversary can produce, not just
//! the pure withholding, balancing, or selfish-mining strategies the
//! stationary simulator ships. The scenario layer (PR 3) lets those
//! strategies *alternate* across phases; this module lets them *run at
//! once*: a [`ComposedAdversary`] splits the corrupted miners across
//! sub-strategies by weight and, each round, hands every sub-strategy
//! the PoW successes its own miners scored.
//!
//! # Oracle-level success allocation
//!
//! The per-round allocation is not done by the adversary: the engine
//! configures the mining oracle with the sub-adversary miner counts
//! ([`crate::adversary::Adversary::sub_miner_counts`]), and the oracle
//! splits each sampled adversary total across the sub-populations by a
//! multivariate hypergeometric draw on the **per-trial mining stream**
//! (see [`crate::oracle::MiningOracle::set_adversary_split`]). Two
//! consequences:
//!
//! * the joint law over `[group 0, group 1, sub 1, …, sub m]` is
//!   exactly the flat hypergeometric split of the round total — each
//!   sub-adversary mines precisely like `weightᵢ/Σw` of the corrupted
//!   miners, and
//! * composition inherits the Monte-Carlo engine's determinism for
//!   free: aggregates are **bit-identical at any thread count**, and a
//!   degenerate composition (one sub-strategy, or zero-weight
//!   passengers) consumes no extra randomness, so it is bit-identical
//!   to the bare strategy.
//!
//! # Arbitration
//!
//! Sub-strategies share one block tree and one delivery network, so
//! their decisions interact: Balance's branch-levelling blocks raise
//! the public height Selfish reacts to, Selfish's revealed fork becomes
//! the tip Balance feeds its next balancing block to, and so on. Most
//! of that interplay composes naturally through the shared state; what
//! does *not* compose is **release scheduling** — a splitter (Balance)
//! needs the two honest groups to keep divergent views, while a
//! revealer (PrivateChain / Selfish / Honest) announces the same block
//! to *both* groups, merging the views the splitter is spending its
//! budget to keep apart.
//!
//! The arbiter resolves that conflict by **priority = sub order**:
//!
//! 1. duplicate directives for the same `(block, group)` are merged to
//!    the earliest delay, and
//! 2. while the two group views differ, a both-group release emitted by
//!    a sub-strategy ranked *below* an active Balance sub has its copy
//!    to the **leading** group delayed to the full Δ — the most the
//!    model's scheduling power allows — keeping the split alive up to
//!    Δ−1 more rounds while still honouring the release. Directives
//!    from sub-strategies ranked above every Balance sub pass
//!    unchanged.
//!
//! Put Balance first to protect the split; put the fork strategy first
//! to protect its reveal timing. [`ComposedAdversary::throttled_releases`]
//! counts how often rule 2 fired.
//!
//! # Example
//!
//! ```
//! use nakamoto_sim::compose::{ComposedAdversary, Composition, SubSpec};
//! use nakamoto_sim::config::SimConfig;
//! use nakamoto_sim::execution::run_simulation_with;
//! use nakamoto_sim::scenario::StrategyKind;
//!
//! let cfg = SimConfig::from_c(100, 4, 1.0, 0.4, 7)?;
//! let composition = Composition::new(vec![
//!     SubSpec::new(StrategyKind::Balance, 3),
//!     SubSpec::new(StrategyKind::Selfish, 1),
//! ])?;
//! let report = run_simulation_with(
//!     cfg,
//!     ComposedAdversary::new(cfg.delta, composition),
//!     50_000,
//! );
//! assert!(report.adversary_blocks > 0);
//! # Ok::<(), nakamoto_sim::config::ConfigError>(())
//! ```

use crate::adversary::{
    Adversary, BalanceAdversary, ImmediateReleaseAdversary, PrivateChainAdversary, ReleaseDirective,
};
use crate::block::{BlockId, Round};
use crate::config::ConfigError;
use crate::scenario::StrategyKind;
use crate::selfish::SelfishMiningAdversary;
use crate::tree::BlockTree;

/// One sub-strategy of a composition: a base strategy plus its share of
/// the corrupted miners, as an integer weight (shares are `weight / Σ
/// weights`; the actual miner counts are apportioned by largest
/// remainder, see [`apportion_miners`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubSpec {
    /// The sub-strategy (must not itself be
    /// [`StrategyKind::Composed`]; compositions do not nest).
    pub strategy: StrategyKind,
    /// Relative share of the corrupted miners. A zero-weight sub is a
    /// validated no-op: it never mines, is never consulted, and leaves
    /// the run bit-identical to the composition without it.
    pub weight: u64,
}

impl SubSpec {
    /// Creates a sub-strategy spec.
    #[must_use]
    pub fn new(strategy: StrategyKind, weight: u64) -> Self {
        SubSpec { strategy, weight }
    }
}

/// A validated list of sub-strategies with positive total weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Composition {
    subs: Vec<SubSpec>,
}

impl Composition {
    /// Validates and builds a composition.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `subs` is empty, the total weight is
    /// zero, or a sub-strategy is itself [`StrategyKind::Composed`]
    /// (compositions do not nest — a nested composition is just a
    /// flattened weight list).
    pub fn new(subs: Vec<SubSpec>) -> Result<Self, ConfigError> {
        if subs.is_empty() {
            return Err(ConfigError::new(
                "a composition needs at least one sub-strategy",
            ));
        }
        if subs.iter().map(|s| s.weight).sum::<u64>() == 0 {
            return Err(ConfigError::new(
                "a composition needs positive total weight",
            ));
        }
        for (i, sub) in subs.iter().enumerate() {
            if matches!(sub.strategy, StrategyKind::Composed(_)) {
                return Err(ConfigError::new(format!(
                    "sub-strategy {i} is itself a composition; compositions do not nest"
                )));
            }
        }
        Ok(Composition { subs })
    }

    /// The sub-strategies, in priority order.
    #[must_use]
    pub fn subs(&self) -> &[SubSpec] {
        &self.subs
    }

    /// Whether any *active* (positive-weight) sub-strategy needs two
    /// honest delivery groups.
    #[must_use]
    pub fn needs_two_groups(&self) -> bool {
        self.subs
            .iter()
            .any(|s| s.weight > 0 && matches!(s.strategy, StrategyKind::Balance))
    }
}

/// Apportions `total` miners across integer `weights` by largest
/// remainder (quota = `total·wᵢ/Σw`, floors first, leftover miners to
/// the largest fractional remainders, ties to the lowest index) — the
/// single deterministic policy shared by engine configuration and
/// re-configuration, mirroring how `split_honest` pins the honest
/// split.
///
/// # Panics
///
/// Panics if `weights` sums to zero (ruled out by
/// [`Composition::new`]).
#[must_use]
pub fn apportion_miners(total: u64, weights: &[u64]) -> Vec<u64> {
    let w_total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    assert!(w_total > 0, "apportionment over zero total weight");
    let mut counts = Vec::with_capacity(weights.len());
    let mut remainders = Vec::with_capacity(weights.len());
    for (i, &w) in weights.iter().enumerate() {
        let num = u128::from(total) * u128::from(w);
        counts.push((num / w_total) as u64);
        remainders.push((num % w_total, i));
    }
    let leftover = total - counts.iter().sum::<u64>();
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in remainders.iter().take(leftover as usize) {
        counts[i] += 1;
    }
    counts
}

/// Per-sub persistent strategy state.
#[derive(Debug, Clone)]
enum SubState {
    Honest(ImmediateReleaseAdversary),
    Private(PrivateChainAdversary),
    Balance(BalanceAdversary),
    Selfish(SelfishMiningAdversary),
}

impl SubState {
    fn new(kind: StrategyKind, delta: u64) -> Self {
        match kind {
            StrategyKind::Honest => SubState::Honest(ImmediateReleaseAdversary::new()),
            StrategyKind::PrivateChain => SubState::Private(PrivateChainAdversary::new(delta)),
            StrategyKind::Balance => SubState::Balance(BalanceAdversary::new(delta)),
            StrategyKind::Selfish => SubState::Selfish(SelfishMiningAdversary::new(delta)),
            StrategyKind::Composed(_) => unreachable!("rejected by Composition::new"), // detlint: allow(panic-macro) -- Composition::new rejects nested Composed kinds
        }
    }

    fn act(
        &mut self,
        round: Round,
        group_tips: &[BlockId; 2],
        tree: &mut BlockTree,
        successes: u64,
        releases: &mut Vec<ReleaseDirective>,
    ) {
        match self {
            SubState::Honest(a) => a.act(round, group_tips, tree, successes, releases),
            SubState::Private(a) => a.act(round, group_tips, tree, successes, releases),
            SubState::Balance(a) => a.act(round, group_tips, tree, successes, releases),
            SubState::Selfish(a) => a.act(round, group_tips, tree, successes, releases),
        }
    }

    fn honest_delay(&mut self, round: Round, from: usize, to: usize) -> u64 {
        match self {
            SubState::Honest(a) => a.honest_delay(round, from, to),
            SubState::Private(a) => a.honest_delay(round, from, to),
            SubState::Balance(a) => a.honest_delay(round, from, to),
            SubState::Selfish(a) => a.honest_delay(round, from, to),
        }
    }

    fn live_blocks(&self) -> Vec<BlockId> {
        match self {
            SubState::Honest(a) => a.live_blocks(),
            SubState::Private(a) => a.live_blocks(),
            SubState::Balance(a) => a.live_blocks(),
            SubState::Selfish(a) => a.live_blocks(),
        }
    }

    /// Dormant-fork bookkeeping (see the scenario layer): abandon an
    /// overtaken fork and track the public tip while nothing is
    /// withheld, so a dormant composition never pins the tree pruner.
    fn track_dormant(&mut self, best: BlockId, tree: &BlockTree) {
        match self {
            SubState::Private(a) => {
                a.abandon_if_behind(best, tree);
                if a.withheld_len() == 0 {
                    a.rebase(best);
                }
            }
            SubState::Selfish(a) => {
                a.abandon_if_behind(best, tree);
                if a.withheld_len() == 0 {
                    a.rebase(best, tree);
                }
            }
            SubState::Honest(_) | SubState::Balance(_) => {}
        }
    }
}

/// N sub-strategies running concurrently over a shared mining-power
/// budget, with oracle-level hypergeometric success allocation and a
/// priority-ordered release arbiter (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct ComposedAdversary {
    delta: u64,
    weights: Vec<u64>,
    subs: Vec<SubState>,
    /// Priority index of the first active Balance sub, if any — the
    /// boundary below which rule 2 of the arbiter applies.
    first_balance: Option<usize>,
    throttled_releases: u64,
}

impl ComposedAdversary {
    /// Builds the composed adversary for delay bound `delta`.
    #[must_use]
    pub fn new(delta: u64, composition: Composition) -> Self {
        let weights: Vec<u64> = composition.subs().iter().map(|s| s.weight).collect();
        let subs: Vec<SubState> = composition
            .subs()
            .iter()
            .map(|s| SubState::new(s.strategy, delta))
            .collect();
        let first_balance = composition
            .subs()
            .iter()
            .position(|s| s.weight > 0 && matches!(s.strategy, StrategyKind::Balance));
        ComposedAdversary {
            delta,
            weights,
            subs,
            first_balance,
            throttled_releases: 0,
        }
    }

    /// How often the arbiter's split-preservation rule delayed a
    /// view-merging release (see the [module docs](self)).
    #[must_use]
    pub fn throttled_releases(&self) -> u64 {
        self.throttled_releases
    }

    /// Dormant-phase hook for the scenario layer: applied every round
    /// a *different* strategy is active, so frozen sub-forks are
    /// abandoned once overtaken and empty fork bases track the public
    /// tip instead of pinning the pruner.
    pub(crate) fn track_dormant(&mut self, best: BlockId, tree: &BlockTree) {
        for (sub, &w) in self.subs.iter_mut().zip(&self.weights) {
            if w > 0 {
                sub.track_dormant(best, tree);
            }
        }
    }

    /// The arbiter (module docs, rules 1–2), applied to the directives
    /// this round appended (`releases[start..]`).
    fn arbitrate(
        &mut self,
        group_tips: &[BlockId; 2],
        tree: &BlockTree,
        releases: &mut Vec<ReleaseDirective>,
        start: usize,
        guard_start: Option<usize>,
    ) {
        // Rule 2: below an active Balance sub, both-group releases have
        // their leading-group copy delayed to Δ while the views differ.
        if let Some(guard) = guard_start {
            if group_tips[0] != group_tips[1] {
                let lagging = if tree.height(group_tips[0]) <= tree.height(group_tips[1]) {
                    0
                } else {
                    1
                };
                let leading = 1 - lagging;
                for i in guard..releases.len() {
                    if releases[i].group != leading || releases[i].delay >= self.delta {
                        continue;
                    }
                    let block = releases[i].block;
                    let merging = releases[guard..] // detlint: allow(panic-slice-index) -- inside `for i in guard..releases.len()`, so guard < len
                        .iter()
                        .any(|r| r.block == block && r.group == lagging);
                    if merging {
                        releases[i].delay = self.delta;
                        self.throttled_releases += 1;
                    }
                }
            }
        }
        // Rule 1: merge duplicate (block, group) directives to the
        // earliest delay, keeping first-occurrence order.
        let mut i = start;
        while i < releases.len() {
            let mut j = i + 1;
            while j < releases.len() {
                if releases[j].block == releases[i].block && releases[j].group == releases[i].group
                {
                    let delay = releases[i].delay.min(releases[j].delay);
                    releases[i].delay = delay;
                    releases.remove(j);
                } else {
                    j += 1;
                }
            }
            i += 1;
        }
    }
}

impl Adversary for ComposedAdversary {
    fn name(&self) -> &'static str {
        "composed"
    }

    fn group_count(&self) -> usize {
        // Same predicate as the arbiter guard: an active Balance sub
        // is what splits the honest views.
        if self.first_balance.is_some() {
            2
        } else {
            1
        }
    }

    fn honest_delay(&mut self, round: Round, from: usize, to: usize) -> u64 {
        // The most adversarial request among the active sub-strategies:
        // the composition controls the network at least as tightly as
        // each of its parts (the engine clamps to [1, Δ]).
        let mut delay = 1;
        for (sub, &w) in self.subs.iter_mut().zip(&self.weights) {
            if w > 0 {
                delay = delay.max(sub.honest_delay(round, from, to));
            }
        }
        delay
    }

    fn sub_miner_counts(&self, n_adversary: u64) -> Option<Vec<u64>> {
        Some(apportion_miners(n_adversary, &self.weights))
    }

    fn act(
        &mut self,
        _round: Round,
        _group_tips: &[BlockId; 2],
        _tree: &mut BlockTree,
        _successes: u64,
        _releases: &mut Vec<ReleaseDirective>,
    ) {
        // detlint: allow(panic-macro) -- the engine drives composed adversaries through act_split only
        unreachable!(
            "ComposedAdversary is driven through act_split: the engine selects it \
             automatically for strategies whose sub_miner_counts() is Some"
        );
    }

    fn act_split(
        &mut self,
        round: Round,
        group_tips: &[BlockId; 2],
        tree: &mut BlockTree,
        successes: &[u64],
        releases: &mut Vec<ReleaseDirective>,
    ) {
        debug_assert_eq!(successes.len(), self.subs.len());
        let start = releases.len();
        let mut guard_start = None;
        for (i, (sub, &k)) in self.subs.iter_mut().zip(successes).enumerate() {
            if self.weights[i] == 0 {
                continue;
            }
            sub.act(round, group_tips, tree, k, releases);
            if self.first_balance == Some(i) {
                guard_start = Some(releases.len());
            }
        }
        self.arbitrate(group_tips, tree, releases, start, guard_start);
    }

    fn supports_fast_forward(&self) -> bool {
        // Every sub-strategy is round-invariant, the allocation is
        // oracle-level (a quiet round allocates nothing and draws
        // nothing), and the arbiter depends only on observable state —
        // an all-zero act_split after a no-release call is a no-op.
        true
    }

    fn live_blocks(&self) -> Vec<BlockId> {
        let mut blocks = Vec::new();
        for (sub, &w) in self.subs.iter().zip(&self.weights) {
            if w > 0 {
                blocks.extend(sub.live_blocks());
            }
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::execution::{run_simulation_with, Simulation};
    use crate::montecarlo::TrialPlan;

    fn composition(specs: &[(StrategyKind, u64)]) -> Composition {
        Composition::new(
            specs
                .iter()
                .map(|&(strategy, weight)| SubSpec::new(strategy, weight))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn composition_validation() {
        assert!(Composition::new(vec![]).is_err(), "empty");
        assert!(
            Composition::new(vec![SubSpec::new(StrategyKind::Balance, 0)]).is_err(),
            "zero total weight"
        );
        assert!(
            Composition::new(vec![SubSpec::new(StrategyKind::Composed(0), 1)]).is_err(),
            "nested composition"
        );
        let c = composition(&[(StrategyKind::Balance, 2), (StrategyKind::Selfish, 1)]);
        assert!(c.needs_two_groups());
        let c = composition(&[(StrategyKind::Balance, 0), (StrategyKind::Selfish, 1)]);
        assert!(!c.needs_two_groups(), "zero-weight balance forces nothing");
    }

    #[test]
    fn apportionment_is_exact_and_deterministic() {
        assert_eq!(apportion_miners(10, &[1, 1]), vec![5, 5]);
        assert_eq!(apportion_miners(10, &[3, 1]), vec![8, 2]);
        assert_eq!(apportion_miners(0, &[3, 1]), vec![0, 0]);
        assert_eq!(
            apportion_miners(7, &[1, 0, 1]),
            vec![4, 0, 3],
            "tie → low index"
        );
        assert_eq!(apportion_miners(1, &[1, 1, 1]), vec![1, 0, 0]);
        for total in [0u64, 1, 7, 40, 1000] {
            for weights in [&[1u64, 2, 3][..], &[5, 0, 5], &[7], &[2, 2, 2, 1]] {
                let counts = apportion_miners(total, weights);
                assert_eq!(
                    counts.iter().sum::<u64>(),
                    total,
                    "{total} over {weights:?}"
                );
                for (c, &w) in counts.iter().zip(weights) {
                    assert!(w > 0 || *c == 0, "zero weight must get zero miners");
                }
            }
        }
    }

    #[test]
    fn arbiter_merges_duplicate_directives() {
        let mut adv = ComposedAdversary::new(
            4,
            composition(&[(StrategyKind::Honest, 1), (StrategyKind::Honest, 1)]),
        );
        let tree = BlockTree::new();
        let block = BlockId::GENESIS;
        let mut releases = vec![
            ReleaseDirective {
                block,
                group: 0,
                delay: 3,
            },
            ReleaseDirective {
                block,
                group: 1,
                delay: 1,
            },
            ReleaseDirective {
                block,
                group: 0,
                delay: 1,
            },
        ];
        adv.arbitrate(&[block, block], &tree, &mut releases, 0, None);
        assert_eq!(
            releases,
            vec![
                ReleaseDirective {
                    block,
                    group: 0,
                    delay: 1
                },
                ReleaseDirective {
                    block,
                    group: 1,
                    delay: 1
                },
            ],
            "duplicates merged to the earliest delay, order kept"
        );
    }

    /// Tentpole degenerate case: a single-sub composition must be
    /// bit-identical to the bare strategy — the composition layer, the
    /// oracle sub-split, and the arbiter all add zero behaviour and
    /// zero randomness.
    #[test]
    fn single_sub_composition_equals_bare_strategy() {
        let rounds = 30_000;
        let cases: [(StrategyKind, u64); 4] = [
            (StrategyKind::Honest, 31),
            (StrategyKind::PrivateChain, 32),
            (StrategyKind::Balance, 33),
            (StrategyKind::Selfish, 34),
        ];
        for (kind, seed) in cases {
            let cfg = SimConfig::from_c(100, 4, 1.0, 0.35, seed).unwrap();
            let composed = run_simulation_with(
                cfg,
                ComposedAdversary::new(cfg.delta, composition(&[(kind, 7)])),
                rounds,
            );
            let bare = match kind {
                StrategyKind::Honest => {
                    run_simulation_with(cfg, ImmediateReleaseAdversary::new(), rounds)
                }
                StrategyKind::PrivateChain => {
                    run_simulation_with(cfg, PrivateChainAdversary::new(cfg.delta), rounds)
                }
                StrategyKind::Balance => {
                    run_simulation_with(cfg, BalanceAdversary::new(cfg.delta), rounds)
                }
                StrategyKind::Selfish => {
                    run_simulation_with(cfg, SelfishMiningAdversary::new(cfg.delta), rounds)
                }
                StrategyKind::Composed(_) => unreachable!(),
            };
            assert_eq!(composed, bare, "{kind:?}");
        }
    }

    /// Tentpole degenerate case: a zero-power sub-adversary is a no-op —
    /// the run is bit-identical with and without the passenger, for any
    /// passenger kind and position.
    #[test]
    fn zero_power_sub_adversary_is_a_noop() {
        let rounds = 30_000;
        let cfg = SimConfig::from_c(100, 4, 1.0, 0.4, 41).unwrap();
        let reference = run_simulation_with(
            cfg,
            ComposedAdversary::new(cfg.delta, composition(&[(StrategyKind::PrivateChain, 3)])),
            rounds,
        );
        for passenger in [
            StrategyKind::Honest,
            StrategyKind::PrivateChain,
            StrategyKind::Balance,
            StrategyKind::Selfish,
        ] {
            for specs in [
                &[(StrategyKind::PrivateChain, 3), (passenger, 0)][..],
                &[(passenger, 0), (StrategyKind::PrivateChain, 3)][..],
            ] {
                let padded = run_simulation_with(
                    cfg,
                    ComposedAdversary::new(cfg.delta, composition(specs)),
                    rounds,
                );
                assert_eq!(padded, reference, "passenger {passenger:?} in {specs:?}");
            }
        }
        // And against the bare strategy itself.
        let bare = run_simulation_with(cfg, PrivateChainAdversary::new(cfg.delta), rounds);
        assert_eq!(reference, bare);
    }

    /// A genuine two-sub composition splits the block budget by weight:
    /// each sub-population mines ≈ its share of the adversary rate, and
    /// both strategies leave their signature on the run.
    #[test]
    fn two_sub_composition_splits_budget_by_weight() {
        let cfg = SimConfig::from_c(100, 4, 1.0, 0.4, 47).unwrap();
        let mut sim = Simulation::new(
            cfg,
            ComposedAdversary::new(
                cfg.delta,
                composition(&[(StrategyKind::Balance, 3), (StrategyKind::PrivateChain, 1)]),
            ),
        );
        sim.run(200_000);
        let report = sim.report();
        // 0.4 × 100 = 40 adversary miners → 30/10 split; adversary rate
        // is pνn per round.
        let expected = 200_000.0 * cfg.hardness * 40.0;
        let got = report.adversary_blocks as f64;
        assert!(
            (got - expected).abs() < 0.1 * expected,
            "rate {got} vs {expected}"
        );
        assert_eq!(report.group_tips.len(), 2, "balance sub forces two groups");
        assert!(
            report.max_divergence_depth >= 2,
            "balance sub splits the views"
        );
        assert!(report.reorg_count > 0, "private sub forces reorgs");
    }

    /// The arbiter's split-preservation rule fires when a revealer is
    /// ranked below Balance, and is structurally silent when Balance is
    /// ranked last.
    #[test]
    fn arbiter_throttles_view_merging_releases_below_balance() {
        let cfg = SimConfig::from_c(100, 4, 1.0, 0.45, 53).unwrap();
        let run = |specs: &[(StrategyKind, u64)]| {
            let mut sim =
                Simulation::new(cfg, ComposedAdversary::new(cfg.delta, composition(specs)));
            sim.run(200_000);
            sim.adversary().throttled_releases()
        };
        let protected = run(&[(StrategyKind::Balance, 2), (StrategyKind::PrivateChain, 2)]);
        assert!(
            protected > 0,
            "a private-chain reveal below balance must get throttled"
        );
        let unprotected = run(&[(StrategyKind::PrivateChain, 2), (StrategyKind::Balance, 2)]);
        assert_eq!(
            unprotected, 0,
            "above balance, reveals pass through untouched"
        );
    }

    /// Acceptance: composed-adversary Monte-Carlo aggregates are
    /// bit-identical at 1, 2, 4 and 8 worker threads for a fixed master
    /// seed (the oracle-level allocation rides the per-trial mining
    /// stream, so composition adds no thread-sensitive randomness).
    #[test]
    fn composed_aggregate_independent_of_thread_count() {
        let cfg = SimConfig::from_c(80, 3, 1.0, 0.4, 61).unwrap();
        let make = move || {
            ComposedAdversary::new(
                cfg.delta,
                composition(&[
                    (StrategyKind::Balance, 2),
                    (StrategyKind::Selfish, 1),
                    (StrategyKind::PrivateChain, 1),
                ]),
            )
        };
        let plan = TrialPlan::new(cfg, 5_000, 8)
            .unwrap()
            .thresholds(vec![0, 6, 12]);
        let reference = plan.clone().with_threads(1).run(move |_| make());
        assert_eq!(reference.aggregate.trials, 8);
        assert!(reference.aggregate.total_adversary_blocks > 0);
        for threads in [2usize, 4, 8] {
            let other = plan.clone().with_threads(threads).run(move |_| make());
            assert_eq!(
                reference.aggregate, other.aggregate,
                "composed aggregate differs at {threads} threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "driven through act_split")]
    fn act_without_split_is_a_contract_violation() {
        let mut adv = ComposedAdversary::new(
            2,
            composition(&[(StrategyKind::Honest, 1), (StrategyKind::Selfish, 1)]),
        );
        let mut tree = BlockTree::new();
        let mut releases = Vec::new();
        adv.act(
            1,
            &[BlockId::GENESIS, BlockId::GENESIS],
            &mut tree,
            1,
            &mut releases,
        );
    }

    #[test]
    fn live_blocks_union_over_active_subs() {
        let mut adv = ComposedAdversary::new(
            4,
            composition(&[
                (StrategyKind::PrivateChain, 1),
                (StrategyKind::Selfish, 1),
                (StrategyKind::PrivateChain, 0),
            ]),
        );
        let mut tree = BlockTree::new();
        let mut releases = Vec::new();
        // Both active fork subs mine one withheld block each.
        adv.act_split(
            1,
            &[BlockId::GENESIS, BlockId::GENESIS],
            &mut tree,
            &[1, 1, 0],
            &mut releases,
        );
        let live = adv.live_blocks();
        assert_eq!(live.len(), 2, "one live tip per active fork sub");
        assert_ne!(live[0], live[1], "independent forks");
    }
}
