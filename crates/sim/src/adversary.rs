//! Adversary strategies.
//!
//! The model (Section III) lets the adversary ① delay/reorder messages
//! up to Δ rounds and ② direct all corrupted miners (q sequential hash
//! queries per round). A strategy decides:
//!
//! * how long each honest block announcement is delayed per receiving
//!   group ([`Adversary::honest_delay`]), and
//! * where its own PoW successes mine and when/to whom blocks are
//!   released ([`Adversary::act`]).
//!
//! Three strategies are provided:
//!
//! * [`ImmediateReleaseAdversary`] — behaves honestly; the baseline.
//! * [`PrivateChainAdversary`] — max-delays honest blocks and mines a
//!   withheld fork, releasing it when the public chain threatens to
//!   catch up (the classic double-spend / consistency attack).
//! * [`BalanceAdversary`] — splits the honest miners into two groups,
//!   max-delays cross-group traffic, and spends its own blocks keeping
//!   both branches level (the PSS-style attack of Remark 8.5 that
//!   motivates the paper's red line in Figure 1).

use crate::block::{BlockId, Provenance, Round};
use crate::tree::BlockTree;

/// A directive to deliver `block` to honest group `group` after `delay`
/// rounds (clamped by the engine to `[1, Δ]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleaseDirective {
    /// Block to deliver.
    pub block: BlockId,
    /// Receiving honest group.
    pub group: usize,
    /// Delivery delay in rounds from the current round.
    pub delay: u64,
}

/// The higher of the two group tips, ties favouring group 0 — the
/// tie-break every strategy (and the scenario composition's rebase)
/// must share, or tied states would pick divergent mining bases.
pub(crate) fn best_tip(tree: &BlockTree, group_tips: &[BlockId; 2]) -> BlockId {
    if tree.height(group_tips[0]) >= tree.height(group_tips[1]) {
        group_tips[0]
    } else {
        group_tips[1]
    }
}

/// An adversary strategy driving delays and corrupted mining.
pub trait Adversary {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;

    /// Number of honest delivery groups the strategy wants (1 or 2).
    fn group_count(&self) -> usize {
        1
    }

    /// Delay, in rounds, applied to an honest block mined by
    /// `from_group` when delivered to `to_group` (`from ≠ to`). The
    /// engine clamps the result to `[1, Δ]`.
    fn honest_delay(&mut self, round: Round, from_group: usize, to_group: usize) -> u64;

    /// Reacts to this round's `successes` adversary PoW wins: mines
    /// private blocks by mutating `tree` and appends release directives
    /// to `releases` (an engine-owned buffer reused across rounds, so
    /// the per-round hot path never allocates; it arrives empty).
    /// `group_tips` holds each honest group's current tip (duplicated
    /// for single-group strategies).
    fn act(
        &mut self,
        round: Round,
        group_tips: &[BlockId; 2],
        tree: &mut BlockTree,
        successes: u64,
        releases: &mut Vec<ReleaseDirective>,
    );

    /// Miner counts of the strategy's sub-adversaries, for strategies
    /// that split the corrupted population across several concurrently
    /// running sub-strategies (see [`crate::compose`]). `None` — the
    /// default — means the strategy is monolithic and the engine drives
    /// it through [`Adversary::act`] with the round's total.
    ///
    /// When `Some(counts)` is returned, the engine configures the
    /// mining oracle to split each round's adversary successes across
    /// the sub-populations hypergeometrically (at the oracle level, on
    /// the per-trial mining stream — so composition inherits the
    /// Monte-Carlo engine's thread-count bit-identity for free) and
    /// drives the strategy through [`Adversary::act_split`] instead.
    /// `counts` must sum to `n_adversary` and stay fixed between engine
    /// (re)configurations.
    fn sub_miner_counts(&self, n_adversary: u64) -> Option<Vec<u64>> {
        let _ = n_adversary;
        None
    }

    /// Split-budget variant of [`Adversary::act`]: `successes[i]` is the
    /// number of PoW wins sub-adversary `i` scored this round (parallel
    /// to [`Adversary::sub_miner_counts`]). The engine calls this —
    /// never `act` — for strategies that declare a sub split. The
    /// default forwards the summed total to [`Adversary::act`], so
    /// monolithic strategies never notice it exists.
    fn act_split(
        &mut self,
        round: Round,
        group_tips: &[BlockId; 2],
        tree: &mut BlockTree,
        successes: &[u64],
        releases: &mut Vec<ReleaseDirective>,
    ) {
        self.act(round, group_tips, tree, successes.iter().sum(), releases);
    }

    /// `true` iff the strategy is *round-invariant*, which lets the
    /// engine fast-forward quiet gaps (rounds with no PoW success and
    /// no delivery) in O(1) instead of calling [`Adversary::act`] once
    /// per round. A strategy may declare this when:
    ///
    /// * its decisions depend only on the observable state (group tips,
    ///   tree, successes) and its own accumulated state — never on the
    ///   round number itself (using the round merely to stamp mined
    ///   blocks is fine), and
    /// * an [`Adversary::act`] call with zero successes and unchanged
    ///   tips/tree, immediately after a call that scheduled no
    ///   releases, is a no-op that schedules nothing.
    ///
    /// Defaults to `false`: unknown strategies keep the exact
    /// call-every-round semantics.
    fn supports_fast_forward(&self) -> bool {
        false
    }

    /// Blocks the strategy still holds references to (e.g. the tip of a
    /// withheld fork). The engine keeps the ancestor closure of these
    /// alive when pruning the block tree; everything else below the
    /// finalized common prefix may be discarded. Defaults to none.
    fn live_blocks(&self) -> Vec<BlockId> {
        Vec::new()
    }
}

/// Boxed strategies forward every method, so `Box<dyn Adversary>` (and
/// `Box<ConcreteAdversary>`) can drive the generic, statically
/// dispatched engine.
impl<A: Adversary + ?Sized> Adversary for Box<A> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn group_count(&self) -> usize {
        (**self).group_count()
    }

    fn honest_delay(&mut self, round: Round, from_group: usize, to_group: usize) -> u64 {
        (**self).honest_delay(round, from_group, to_group)
    }

    fn act(
        &mut self,
        round: Round,
        group_tips: &[BlockId; 2],
        tree: &mut BlockTree,
        successes: u64,
        releases: &mut Vec<ReleaseDirective>,
    ) {
        (**self).act(round, group_tips, tree, successes, releases);
    }

    fn sub_miner_counts(&self, n_adversary: u64) -> Option<Vec<u64>> {
        (**self).sub_miner_counts(n_adversary)
    }

    fn act_split(
        &mut self,
        round: Round,
        group_tips: &[BlockId; 2],
        tree: &mut BlockTree,
        successes: &[u64],
        releases: &mut Vec<ReleaseDirective>,
    ) {
        (**self).act_split(round, group_tips, tree, successes, releases);
    }

    fn supports_fast_forward(&self) -> bool {
        (**self).supports_fast_forward()
    }

    fn live_blocks(&self) -> Vec<BlockId> {
        (**self).live_blocks()
    }
}

/// Baseline adversary: publishes everything immediately and never
/// withholds — its blocks simply add to the longest chain.
#[derive(Debug, Clone, Default)]
pub struct ImmediateReleaseAdversary;

impl ImmediateReleaseAdversary {
    /// Creates the baseline adversary.
    #[must_use]
    pub fn new() -> Self {
        ImmediateReleaseAdversary
    }
}

impl Adversary for ImmediateReleaseAdversary {
    fn name(&self) -> &'static str {
        "immediate-release"
    }

    fn supports_fast_forward(&self) -> bool {
        true
    }

    fn honest_delay(&mut self, _round: Round, _from: usize, _to: usize) -> u64 {
        1
    }

    fn act(
        &mut self,
        round: Round,
        group_tips: &[BlockId; 2],
        tree: &mut BlockTree,
        successes: u64,
        releases: &mut Vec<ReleaseDirective>,
    ) {
        // Honest behaviour: mine on the highest tip visible anywhere and
        // announce to every group at the minimum delay. In the native
        // single-group setting both tips coincide and the group-1
        // directives are filtered by the engine; under a two-group
        // scenario composition they are what keeps the baseline honest.
        let mut tip = best_tip(tree, group_tips);
        for _ in 0..successes {
            tip = tree.add_block(tip, round, Provenance::Adversary);
            for group in 0..2 {
                releases.push(ReleaseDirective {
                    block: tip,
                    group,
                    delay: 1,
                });
            }
        }
    }
}

/// Withholds a private fork while max-delaying honest blocks; releases
/// the fork when the public chain gets within one block of it, forcing
/// the deepest reorg the accumulated private lead allows.
#[derive(Debug, Clone)]
pub struct PrivateChainAdversary {
    delta: u64,
    private_tip: BlockId,
    /// Private blocks not yet released, oldest first.
    withheld: Vec<BlockId>,
}

impl PrivateChainAdversary {
    /// Creates the private-chain adversary for delay bound `delta`.
    #[must_use]
    pub fn new(delta: u64) -> Self {
        PrivateChainAdversary {
            delta,
            private_tip: BlockId::GENESIS,
            withheld: Vec::new(),
        }
    }

    /// Current number of withheld blocks.
    #[must_use]
    pub fn withheld_len(&self) -> usize {
        self.withheld.len()
    }

    /// Restarts the private fork from `tip` (the scenario layer's
    /// phase-transition hook: while the strategy is dormant its fork
    /// base tracks the public tip, so it never references a block the
    /// tree may have pruned). Only meaningful when nothing is withheld;
    /// a frozen non-empty fork is kept alive across phases instead.
    pub(crate) fn rebase(&mut self, tip: BlockId) {
        debug_assert!(self.withheld.is_empty(), "rebase would drop a live fork");
        self.private_tip = tip;
        self.withheld.clear();
    }

    /// Adopts `public_tip` and drops the withheld fork iff the fork has
    /// strictly fallen behind — exactly the strategy's own first move
    /// on its next [`Adversary::act`]. The scenario layer applies this
    /// to *dormant* forks every round so an overtaken frozen fork stops
    /// pinning the tree pruner for the rest of its dormant phase.
    pub(crate) fn abandon_if_behind(&mut self, public_tip: BlockId, tree: &BlockTree) {
        if tree.height(self.private_tip) < tree.height(public_tip) {
            self.private_tip = public_tip;
            self.withheld.clear();
        }
    }
}

impl Adversary for PrivateChainAdversary {
    fn name(&self) -> &'static str {
        "private-chain"
    }

    fn supports_fast_forward(&self) -> bool {
        true
    }

    fn live_blocks(&self) -> Vec<BlockId> {
        // The withheld fork hangs off `private_tip`'s ancestor chain;
        // keeping the tip alive keeps the whole fork alive.
        vec![self.private_tip]
    }

    fn honest_delay(&mut self, _round: Round, _from: usize, _to: usize) -> u64 {
        self.delta
    }

    fn act(
        &mut self,
        round: Round,
        group_tips: &[BlockId; 2],
        tree: &mut BlockTree,
        successes: u64,
        releases: &mut Vec<ReleaseDirective>,
    ) {
        // One height lookup per tip; the private height is then tracked
        // arithmetically (each mined block extends the tip by exactly
        // one), so the hot path never re-walks the arena.
        let h0 = tree.height(group_tips[0]);
        let h1 = tree.height(group_tips[1]);
        let (public_tip, public_height) = if h0 >= h1 {
            (group_tips[0], h0)
        } else {
            (group_tips[1], h1)
        };

        // Abandon a fallen-behind private fork (same move as
        // `abandon_if_behind`, reusing the heights already in hand).
        let mut private_height = tree.height(self.private_tip);
        if private_height < public_height {
            self.private_tip = public_tip;
            self.withheld.clear();
            private_height = public_height;
        }

        for _ in 0..successes {
            self.private_tip = tree.add_block(self.private_tip, round, Provenance::Adversary);
            self.withheld.push(self.private_tip);
        }
        private_height += successes;

        // Release the fork when the lead shrinks to one block: the
        // public network adopts the strictly longer private chain and
        // every honest block since the fork point is discarded.
        if !self.withheld.is_empty()
            && private_height > public_height
            && private_height - public_height <= 1
        {
            for &block in &self.withheld {
                for group in 0..2 {
                    releases.push(ReleaseDirective {
                        block,
                        group,
                        delay: 1,
                    });
                }
            }
            self.withheld.clear();
        }
    }
}

/// Splits the honest miners into two groups kept on two balanced
/// branches: cross-group honest traffic is delayed the full Δ, and the
/// adversary mines on whichever branch is behind, releasing instantly —
/// and *only* — to that branch's group. While its block budget keeps
/// up, the two branches grow in lock-step and never merge — consistency
/// fails at arbitrary depth.
#[derive(Debug, Clone)]
pub struct BalanceAdversary {
    delta: u64,
}

impl BalanceAdversary {
    /// Creates the balance adversary for delay bound `delta`.
    #[must_use]
    pub fn new(delta: u64) -> Self {
        BalanceAdversary { delta }
    }
}

impl Adversary for BalanceAdversary {
    fn name(&self) -> &'static str {
        "balance"
    }

    fn supports_fast_forward(&self) -> bool {
        true
    }

    fn group_count(&self) -> usize {
        2
    }

    fn honest_delay(&mut self, _round: Round, _from: usize, _to: usize) -> u64 {
        self.delta
    }

    fn act(
        &mut self,
        round: Round,
        group_tips: &[BlockId; 2],
        tree: &mut BlockTree,
        successes: u64,
        releases: &mut Vec<ReleaseDirective>,
    ) {
        let mut tips = *group_tips;
        for _ in 0..successes {
            // Extend the branch that is behind (ties favour branch 0 so
            // the two branches stay distinct).
            let lagging = if tree.height(tips[0]) <= tree.height(tips[1]) {
                0
            } else {
                1
            };
            let block = tree.add_block(tips[lagging], round, Provenance::Adversary);
            tips[lagging] = block;
            // Deliver only to the lagging group: the boost keeps that
            // group on its branch, and the other group must never see
            // the balancing block directly or the views would merge.
            releases.push(ReleaseDirective {
                block,
                group: lagging,
                delay: 1,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with_public_chain(len: u64) -> (BlockTree, BlockId) {
        let mut tree = BlockTree::new();
        let mut tip = BlockId::GENESIS;
        for r in 1..=len {
            tip = tree.add_block(tip, r, Provenance::Honest(0));
        }
        (tree, tip)
    }

    /// Test convenience: run `act` into a fresh buffer.
    fn act_collect<A: Adversary>(
        adv: &mut A,
        round: Round,
        tips: [BlockId; 2],
        tree: &mut BlockTree,
        successes: u64,
    ) -> Vec<ReleaseDirective> {
        let mut out = Vec::new();
        adv.act(round, &tips, tree, successes, &mut out);
        out
    }

    #[test]
    fn immediate_release_publishes_every_success() {
        let (mut tree, tip) = tree_with_public_chain(3);
        let mut adv = ImmediateReleaseAdversary::new();
        let releases = act_collect(&mut adv, 4, [tip, tip], &mut tree, 2);
        assert_eq!(releases.len(), 2 * 2, "2 blocks × 2 groups");
        // Successes chain on one another.
        assert_eq!(tree.height(releases[3].block), 5);
        assert!(releases.iter().all(|r| r.delay == 1));
        assert_eq!(
            releases.iter().filter(|r| r.group == 0).count(),
            2,
            "every block announced to every group"
        );
        assert_eq!(adv.honest_delay(4, 0, 1), 1);
    }

    #[test]
    fn private_chain_withholds_until_threatened() {
        let (mut tree, tip) = tree_with_public_chain(2);
        let mut adv = PrivateChainAdversary::new(8);
        assert_eq!(adv.honest_delay(1, 0, 1), 8, "max-delays honest blocks");
        // Adversary gets 3 successes: private chain reaches height 5 > 2.
        let releases = act_collect(&mut adv, 3, [tip, tip], &mut tree, 3);
        assert!(releases.is_empty(), "lead of 3 is safe; keep withholding");
        assert_eq!(adv.withheld_len(), 3);
        // Public chain grows to height 4: lead shrinks to 1 → release.
        let mut public_tip = tip;
        for r in 4..=5 {
            public_tip = tree.add_block(public_tip, r, Provenance::Honest(0));
        }
        let releases = act_collect(&mut adv, 6, [public_tip, public_tip], &mut tree, 0);
        assert_eq!(releases.len(), 3 * 2, "3 blocks × 2 groups");
        assert_eq!(adv.withheld_len(), 0);
    }

    #[test]
    fn private_chain_abandons_when_behind() {
        let (mut tree, tip) = tree_with_public_chain(5);
        let mut adv = PrivateChainAdversary::new(4);
        // One success from genesis-height private tip: it is behind the
        // public chain, so it restarts from the public tip.
        let _ = act_collect(&mut adv, 6, [tip, tip], &mut tree, 1);
        assert_eq!(tree.height(adv.private_tip), 6);
    }

    #[test]
    fn balance_extends_lagging_branch() {
        let mut tree = BlockTree::new();
        // Branch 0 has height 2, branch 1 height 1.
        let a1 = tree.add_block(BlockId::GENESIS, 1, Provenance::Honest(0));
        let a2 = tree.add_block(a1, 2, Provenance::Honest(0));
        let b1 = tree.add_block(BlockId::GENESIS, 1, Provenance::Honest(1));
        let mut adv = BalanceAdversary::new(5);
        assert_eq!(adv.group_count(), 2);
        let releases = act_collect(&mut adv, 3, [a2, b1], &mut tree, 1);
        assert_eq!(releases.len(), 1);
        let block = releases[0].block;
        // The new block extends branch 1 (the lagging one) and is
        // released only to that group, immediately.
        assert!(tree.is_ancestor(b1, block));
        assert_eq!(releases[0].group, 1);
        assert_eq!(releases[0].delay, 1);
    }

    #[test]
    fn balance_splits_budget_across_branches() {
        let mut tree = BlockTree::new();
        let mut adv = BalanceAdversary::new(3);
        // From a level start, two successes go to alternating branches
        // (0 first, then the other branch is lagging).
        let releases = act_collect(
            &mut adv,
            1,
            [BlockId::GENESIS, BlockId::GENESIS],
            &mut tree,
            2,
        );
        assert_eq!(releases.len(), 2);
        let first = releases[0].block;
        let second = releases[1].block;
        assert_eq!(tree.height(first), 1);
        assert_eq!(
            tree.height(second),
            1,
            "second success balances the other branch"
        );
        assert_ne!(first, second);
    }
}
