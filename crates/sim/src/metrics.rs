//! Run-level metrics and the final report.

use crate::block::BlockId;

/// Aggregated results of a simulation run.
///
/// All counts refer to the window actually simulated. Analytical
/// expectations for comparison: `E[honest_blocks] = T·µnp`,
/// `E[adversary_blocks] = T·νnp` (Eq. 27), and
/// `E[convergence_opportunities] ≈ T·ᾱ^{2Δ}α₁` (Eq. 26).
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Rounds simulated.
    pub rounds: u64,
    /// Total honest blocks mined (all groups, including wasted siblings).
    pub honest_blocks: u64,
    /// Total adversary blocks mined (the paper's `A(t₀, t₀+T−1)`).
    pub adversary_blocks: u64,
    /// Completed convergence opportunities (the paper's `C(t₀, t₀+T−1)`).
    pub convergence_opportunities: u64,
    /// Rounds in which at least one honest block was mined (`H` rounds).
    pub h_rounds: u64,
    /// Rounds in which exactly one honest block was mined (`H₁` rounds).
    pub h1_rounds: u64,
    /// Empirical suffix-chain occupancy (length `2Δ+1`, paper Fig. 2
    /// states; see `events::SuffixState` for the index layout).
    pub suffix_occupancy: Vec<u64>,
    /// Rounds included in `suffix_occupancy` (excludes warm-up).
    pub suffix_rounds: u64,
    /// Final tip of each honest group.
    pub group_tips: Vec<BlockId>,
    /// Final chain height of each honest group.
    pub group_heights: Vec<u64>,
    /// Deepest single-group reorg observed.
    pub max_reorg_depth: u64,
    /// Deepest simultaneous cross-group divergence observed.
    pub max_divergence_depth: u64,
    /// Number of reorgs.
    pub reorg_count: u64,
    /// Honest blocks on group 0's final chain.
    pub chain_honest_blocks: u64,
    /// Adversary blocks on group 0's final chain.
    pub chain_adversary_blocks: u64,
}

impl SimReport {
    /// Chain growth rate: blocks of height gained per round by group 0.
    #[must_use]
    pub fn chain_growth_rate(&self) -> f64 {
        self.group_heights[0] as f64 / self.rounds as f64
    }

    /// Chain quality: honest fraction of group 0's final chain.
    ///
    /// Returns 1.0 for an empty chain (vacuous quality).
    #[must_use]
    pub fn chain_quality(&self) -> f64 {
        let total = self.chain_honest_blocks + self.chain_adversary_blocks;
        if total == 0 {
            return 1.0;
        }
        self.chain_honest_blocks as f64 / total as f64
    }

    /// Empirical convergence-opportunity rate `C/T`.
    #[must_use]
    pub fn convergence_rate(&self) -> f64 {
        self.convergence_opportunities as f64 / self.rounds as f64
    }

    /// Empirical adversary block rate `A/T`.
    #[must_use]
    pub fn adversary_rate(&self) -> f64 {
        self.adversary_blocks as f64 / self.rounds as f64
    }

    /// `true` iff the run exhibited no violation of `T`-consistency.
    #[must_use]
    pub fn is_consistent(&self, t: u64) -> bool {
        self.max_reorg_depth <= t && self.max_divergence_depth <= t
    }

    /// The margin the paper's Lemma 1 requires to be positive:
    /// `C(t₀,t₀+T−1) − A(t₀,t₀+T−1)`.
    #[must_use]
    pub fn convergence_margin(&self) -> i64 {
        self.convergence_opportunities as i64 - self.adversary_blocks as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            rounds: 1000,
            honest_blocks: 90,
            adversary_blocks: 10,
            convergence_opportunities: 25,
            h_rounds: 85,
            h1_rounds: 80,
            suffix_occupancy: vec![10, 20, 30],
            suffix_rounds: 60,
            group_tips: vec![BlockId::GENESIS],
            group_heights: vec![70],
            max_reorg_depth: 3,
            max_divergence_depth: 5,
            reorg_count: 2,
            chain_honest_blocks: 60,
            chain_adversary_blocks: 10,
        }
    }

    #[test]
    fn derived_rates() {
        let r = report();
        assert!((r.chain_growth_rate() - 0.07).abs() < 1e-12);
        assert!((r.chain_quality() - 60.0 / 70.0).abs() < 1e-12);
        assert!((r.convergence_rate() - 0.025).abs() < 1e-12);
        assert!((r.adversary_rate() - 0.01).abs() < 1e-12);
        assert_eq!(r.convergence_margin(), 15);
    }

    #[test]
    fn consistency_threshold() {
        let r = report();
        assert!(!r.is_consistent(4), "divergence 5 > 4");
        assert!(r.is_consistent(5));
    }

    #[test]
    fn empty_chain_quality_is_vacuous() {
        let mut r = report();
        r.chain_honest_blocks = 0;
        r.chain_adversary_blocks = 0;
        assert_eq!(r.chain_quality(), 1.0);
    }
}
