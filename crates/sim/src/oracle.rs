//! The mining oracle.
//!
//! The paper's model gives every miner one hash query per round, each
//! succeeding independently with probability `p`; the number of honest
//! blocks per round is therefore `binom(n_honest, p)` and the number of
//! adversary blocks `binom(n_adversary, p)` (Eqs. 7–9 and 27). The
//! oracle samples those counts directly instead of looping over miners,
//! which is what makes 10⁷-round runs feasible.

use probability::binomial::Binomial;
use probability::rng::Xoshiro256PlusPlus;

/// Per-round mining outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Honest successes per group (`groups[g]` = number of honest blocks
    /// mined by group `g` this round).
    pub honest_per_group: [u64; 2],
    /// Number of adversary successes this round.
    pub adversary: u64,
}

impl RoundOutcome {
    /// Total honest successes over all groups.
    pub fn honest_total(&self) -> u64 {
        self.honest_per_group.iter().sum()
    }
}

/// Samples per-round block counts for honest groups and the adversary.
#[derive(Debug, Clone)]
pub struct MiningOracle {
    group_dists: [Option<Binomial>; 2],
    adversary_dist: Option<Binomial>,
    rng: Xoshiro256PlusPlus,
}

impl MiningOracle {
    /// Creates an oracle.
    ///
    /// `group_sizes` are the honest miner counts of up to two delivery
    /// groups (use `[n_honest, 0]` for the single-group setting);
    /// `n_adversary` the corrupted miner count; `p` the PoW hardness.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1)` (validated upstream by `SimConfig`).
    pub fn new(group_sizes: [u64; 2], n_adversary: u64, p: f64, rng: Xoshiro256PlusPlus) -> Self {
        let make = |n: u64| {
            if n == 0 {
                None
            } else {
                Some(Binomial::new(n, p).expect("hardness validated by SimConfig"))
            }
        };
        MiningOracle {
            group_dists: [make(group_sizes[0]), make(group_sizes[1])],
            adversary_dist: make(n_adversary),
            rng,
        }
    }

    /// Samples one round.
    pub fn sample_round(&mut self) -> RoundOutcome {
        let mut honest_per_group = [0u64; 2];
        for (slot, dist) in honest_per_group.iter_mut().zip(self.group_dists.iter()) {
            if let Some(d) = dist {
                *slot = d.sample(&mut self.rng);
            }
        }
        let adversary = self
            .adversary_dist
            .as_ref()
            .map_or(0, |d| d.sample(&mut self.rng));
        RoundOutcome {
            honest_per_group,
            adversary,
        }
    }

    /// The probability that no honest miner succeeds in one round —
    /// the paper's `ᾱ` restricted to this oracle's honest population.
    pub fn alpha_bar(&self) -> f64 {
        self.group_dists
            .iter()
            .flatten()
            .map(|d| d.prob_zero())
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn empty_groups_never_mine() {
        let mut o = MiningOracle::new([0, 0], 0, 0.5, rng(1));
        for _ in 0..100 {
            let out = o.sample_round();
            assert_eq!(out.honest_total(), 0);
            assert_eq!(out.adversary, 0);
        }
    }

    #[test]
    fn honest_rate_matches_mean() {
        let p = 1e-3;
        let n = 500u64;
        let mut o = MiningOracle::new([n, 0], 0, p, rng(2));
        let rounds = 200_000;
        let total: u64 = (0..rounds).map(|_| o.sample_round().honest_total()).sum();
        let mean = total as f64 / rounds as f64;
        let expected = n as f64 * p;
        assert!(
            (mean - expected).abs() < 0.02 * expected + 0.01,
            "mean {mean}"
        );
    }

    #[test]
    fn adversary_rate_matches_mean() {
        let p = 2e-3;
        let mut o = MiningOracle::new([300, 0], 200, p, rng(3));
        let rounds = 100_000;
        let total: u64 = (0..rounds).map(|_| o.sample_round().adversary).sum();
        let mean = total as f64 / rounds as f64;
        assert!((mean - 0.4).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn split_groups_sum_to_single_group_rate() {
        let p = 1e-3;
        let mut split = MiningOracle::new([250, 250], 0, p, rng(4));
        let rounds = 100_000;
        let total: u64 = (0..rounds)
            .map(|_| split.sample_round().honest_total())
            .sum();
        let mean = total as f64 / rounds as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn alpha_bar_matches_paper_formula() {
        // ᾱ = (1-p)^{µn} with µn = 400 + 100 honest miners.
        let p = 1e-4f64;
        let o = MiningOracle::new([400, 100], 77, p, rng(5));
        let expected = (500.0 * (-p).ln_1p()).exp();
        assert!((o.alpha_bar() - expected).abs() < 1e-12);
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = MiningOracle::new([100, 50], 30, 0.01, rng(9));
        let mut b = MiningOracle::new([100, 50], 30, 0.01, rng(9));
        for _ in 0..1000 {
            assert_eq!(a.sample_round(), b.sample_round());
        }
    }
}
