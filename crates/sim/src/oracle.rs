//! The mining oracle.
//!
//! The paper's model gives every miner one hash query per round, each
//! succeeding independently with probability `p`; the number of honest
//! blocks per round is therefore `binom(n_honest, p)` and the number of
//! adversary blocks `binom(n_adversary, p)` (Eqs. 7–9 and 27). The
//! oracle samples those counts directly instead of looping over miners,
//! which is what makes 10⁷-round runs feasible.
//!
//! Two sampling interfaces are offered:
//!
//! * [`MiningOracle::sample_round`] — one round at a time, the model's
//!   literal transcription.
//! * [`MiningOracle::sample_gap_to_success`] — samples the geometric
//!   gap to the next round in which *any* miner succeeds, together with
//!   that round's block counts conditioned on at least one success.
//!   Because all miners share the same per-query success probability
//!   `p`, the round total is `binom(n, p)` and, given the total, the
//!   split across the subpopulations (two honest groups + adversary) is
//!   multivariate hypergeometric. This is what the simulator's
//!   quiet-round fast-forward runs on: empty rounds are skipped in O(1)
//!   instead of being sampled one by one.

use probability::binomial::Binomial;
use probability::rng::{RandomSource, Xoshiro256PlusPlus};

/// Per-round mining outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Honest successes per group (`groups[g]` = number of honest blocks
    /// mined by group `g` this round).
    pub honest_per_group: [u64; 2],
    /// Number of adversary successes this round.
    pub adversary: u64,
}

impl RoundOutcome {
    /// Total honest successes over all groups.
    #[must_use]
    pub fn honest_total(&self) -> u64 {
        self.honest_per_group.iter().sum()
    }

    /// The all-zero outcome of a quiet round.
    #[must_use]
    pub fn quiet() -> Self {
        RoundOutcome {
            honest_per_group: [0, 0],
            adversary: 0,
        }
    }
}

/// Precomputed constants for the conditioned-round fast path, derived
/// once from `(n_total, p)` so the hot loop never reevaluates
/// transcendentals.
#[derive(Debug, Clone, Copy)]
struct GapSampler {
    /// Total miner count over all subpopulations.
    n_total: u64,
    /// Per-query success probability.
    p: f64,
    /// `α = P[any success in a round]`.
    alpha: f64,
    /// `1 / ln(1 - α)`; the geometric inverse-CDF multiplier.
    inv_ln_q: f64,
    /// `P[K = 1 | K ≥ 1]` for the truncated BINV start, or `None` when
    /// it underflows (large `np`; rejection is then nearly free).
    r1: Option<f64>,
    /// `s = p/(1-p)` and `a = (n+1)s`: BINV recurrence constants.
    s: f64,
    a: f64,
    /// `ratios[k-1] = P[K = k+1]/P[K = k]` for `k ≤ RATIO_TABLE`:
    /// removes the per-iteration division from the hot BINV loop.
    ratios: [f64; RATIO_TABLE],
}

/// Number of precomputed BINV mass ratios (covers `K ≤ 9`, far beyond
/// the typical conditioned round total in the paper's regimes).
const RATIO_TABLE: usize = 8;

impl GapSampler {
    fn new(n_total: u64, p: f64) -> Option<Self> {
        let total = Binomial::new(n_total, p).ok()?;
        if n_total == 0 || p <= 0.0 {
            return None;
        }
        if p >= 1.0 {
            // Every miner succeeds every round: gap is always 1 and the
            // count is n_total; encode via inv_ln_q = 0 (gap sample 1).
            return Some(GapSampler {
                n_total,
                p,
                alpha: 1.0,
                inv_ln_q: 0.0,
                r1: None,
                s: 0.0,
                a: 0.0,
                ratios: [0.0; RATIO_TABLE],
            });
        }
        let alpha = total.prob_positive();
        let inv_ln_q = 1.0 / (-alpha).ln_1p();
        let r1 = {
            let v = total.pmf(1) / alpha;
            (v > 0.0 && v.is_finite() && total.prob_zero() >= 1e-3).then_some(v)
        };
        let s = p / (1.0 - p);
        let a = (n_total + 1) as f64 * s;
        let mut ratios = [0.0; RATIO_TABLE];
        for (k, slot) in ratios.iter_mut().enumerate() {
            // Transition k+1 → k+2 (1-indexed masses).
            *slot = (a / (k + 2) as f64 - s).max(0.0);
        }
        Some(GapSampler {
            n_total,
            p,
            alpha,
            inv_ln_q,
            r1,
            s,
            a,
            ratios,
        })
    }

    /// Geometric gap (1-based index of the next success round).
    #[inline]
    fn sample_gap(&self, rng: &mut Xoshiro256PlusPlus) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        // Dense regime: expected gap ≤ ~5, so a handful of uniform
        // draws beats evaluating a logarithm. Sparse regime: one
        // logarithm replaces an unbounded number of draws.
        if self.alpha >= 0.2 {
            let mut g = 1u64;
            while rng.next_f64() >= self.alpha {
                g += 1;
            }
            return g;
        }
        let u = loop {
            let u = rng.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        let v = (u.ln() * self.inv_ln_q).ceil();
        (v.max(1.0)) as u64
    }

    /// Round total conditioned on at least one success.
    #[inline]
    fn sample_total(&self, rng: &mut Xoshiro256PlusPlus) -> u64 {
        if self.p >= 1.0 {
            return self.n_total;
        }
        let Some(r1) = self.r1 else {
            let total = Binomial::new(self.n_total, self.p).expect("validated at construction"); // detlint: allow(panic-expect) -- n_total and p were validated by SimConfig at construction
            return total.sample_positive(rng);
        };
        // Truncated BINV over k ≥ 1 with the mass ratios precomputed —
        // no divisions in the expected O(1 + np) iterations.
        let mut u = rng.next_f64();
        let mut r = r1;
        let mut k = 1u64;
        loop {
            if u < r {
                return k;
            }
            u -= r;
            let ratio = match self.ratios.get((k - 1) as usize) {
                Some(&ratio) => ratio,
                None => (self.a / (k + 1) as f64 - self.s).max(0.0),
            };
            k += 1;
            if k > self.n_total {
                return self.n_total;
            }
            r *= ratio;
        }
    }
}

/// Samples per-round block counts for honest groups and the adversary.
#[derive(Debug, Clone)]
pub struct MiningOracle {
    group_dists: [Option<Binomial>; 2],
    adversary_dist: Option<Binomial>,
    /// Subpopulation sizes `[group 0, group 1, adversary]`.
    sizes: [u64; 3],
    /// Optional further subdivision of the adversary class into
    /// sub-adversary miner counts (empty = monolithic adversary). Set by
    /// [`MiningOracle::set_adversary_split`]; sums to `sizes[2]`.
    sub_sizes: Vec<u64>,
    /// Per-sub-adversary success counts of the most recently sampled
    /// outcome (parallel to `sub_sizes`; all zero when monolithic).
    last_split: Vec<u64>,
    /// Scratch for the without-replacement sub-class draw.
    sub_scratch: Vec<u64>,
    gap: Option<GapSampler>,
    rng: Xoshiro256PlusPlus,
}

impl MiningOracle {
    /// Creates an oracle.
    ///
    /// `group_sizes` are the honest miner counts of up to two delivery
    /// groups (use `[n_honest, 0]` for the single-group setting);
    /// `n_adversary` the corrupted miner count; `p` the PoW hardness.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1)` (validated upstream by `SimConfig`).
    #[must_use]
    pub fn new(group_sizes: [u64; 2], n_adversary: u64, p: f64, rng: Xoshiro256PlusPlus) -> Self {
        let mut oracle = MiningOracle {
            group_dists: [None, None],
            adversary_dist: None,
            sizes: [0; 3],
            sub_sizes: Vec::new(),
            last_split: Vec::new(),
            sub_scratch: Vec::new(),
            gap: None,
            rng,
        };
        oracle.reconfigure(group_sizes, n_adversary, p);
        oracle
    }

    /// Re-derives every distribution and the gap-sampler constants for
    /// new subpopulation sizes and hardness, **continuing the existing
    /// random stream**. This is the scenario layer's phase-boundary
    /// hook: when adversary power (or `p`) shifts mid-run, the oracle
    /// after `reconfigure` behaves exactly like a freshly constructed
    /// oracle handed the current generator state (see the
    /// `reconfigure_matches_fresh_oracle` test).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ (0, 1)` while any miner exists (same contract as
    /// [`MiningOracle::new`]; validated upstream by `SimConfig`).
    pub fn reconfigure(&mut self, group_sizes: [u64; 2], n_adversary: u64, p: f64) {
        let make = |n: u64| {
            if n == 0 {
                None
            } else {
                // detlint: allow(panic-expect) -- SimConfig validation bounds the hardness p to (0, 1]
                Some(Binomial::new(n, p).expect("hardness validated by SimConfig"))
            }
        };
        let sizes = [group_sizes[0], group_sizes[1], n_adversary];
        let n_total: u64 = sizes.iter().sum();
        self.group_dists = [make(group_sizes[0]), make(group_sizes[1])];
        self.adversary_dist = make(n_adversary);
        self.sizes = sizes;
        self.gap = GapSampler::new(n_total, p);
        // A reconfigure invalidates any previously configured adversary
        // subdivision (the sub counts were derived from the old
        // population); callers re-establish it via
        // [`MiningOracle::set_adversary_split`].
        self.sub_sizes.clear();
        self.last_split.clear();
    }

    /// Subdivides the adversary class into sub-adversary miner counts
    /// for composed strategies: every sampled outcome additionally
    /// splits its adversary success total across `subs` by a
    /// multivariate hypergeometric draw — the same without-replacement
    /// class split [`MiningOracle::sample_gap_to_success`] uses one
    /// level up, so the joint law over
    /// `[group 0, group 1, sub 1, …, sub m]` is exactly the flat
    /// multivariate hypergeometric split of the round total. The split
    /// of the latest outcome is read back through
    /// [`MiningOracle::adversary_split`].
    ///
    /// Passing `None` (or at most one sub with a nonzero count) keeps
    /// the random stream **bit-identical to the monolithic oracle**: the
    /// conditional split is deterministic in that case, so no extra
    /// draws are consumed. This is what makes a single-sub composition
    /// indistinguishable from the bare strategy and a zero-power
    /// sub-adversary a no-op.
    ///
    /// Must be called again after [`MiningOracle::reconfigure`] (which
    /// clears the subdivision).
    ///
    /// # Panics
    ///
    /// Panics if `subs` does not sum to the configured adversary
    /// population.
    pub fn set_adversary_split(&mut self, subs: Option<&[u64]>) {
        match subs {
            None => {
                self.sub_sizes.clear();
                self.last_split.clear();
            }
            Some(subs) => {
                assert_eq!(
                    subs.iter().sum::<u64>(),
                    self.sizes[2],
                    "sub-adversary counts must sum to the adversary population"
                );
                self.sub_sizes.clear();
                self.sub_sizes.extend_from_slice(subs);
                self.last_split.clear();
                self.last_split.resize(subs.len(), 0);
            }
        }
    }

    /// Per-sub-adversary success counts of the most recently sampled
    /// outcome (empty when no subdivision is configured). Sums to that
    /// outcome's `adversary` count.
    #[must_use]
    pub fn adversary_split(&self) -> &[u64] {
        &self.last_split
    }

    /// Splits `k_adv` adversary successes across the configured
    /// sub-adversaries into `last_split`. Successes occupy `k_adv`
    /// distinct adversary miners chosen uniformly, so classes are drawn
    /// without replacement; when at most one sub-class has miners the
    /// split is deterministic and consumes no randomness.
    fn split_adversary(&mut self, k_adv: u64) {
        if self.sub_sizes.is_empty() {
            return;
        }
        self.last_split.iter_mut().for_each(|c| *c = 0);
        if k_adv == 0 {
            return;
        }
        let nonzero = self.sub_sizes.iter().filter(|&&s| s > 0).count();
        if nonzero <= 1 {
            if let Some(i) = self.sub_sizes.iter().position(|&s| s > 0) {
                self.last_split[i] = k_adv;
            }
            return;
        }
        self.sub_scratch.clear();
        self.sub_scratch.extend_from_slice(&self.sub_sizes);
        let mut pool: u64 = self.sub_scratch.iter().sum();
        debug_assert!(k_adv <= pool, "more successes than adversary miners");
        for _ in 0..k_adv {
            let mut x = self.rng.next_below(pool);
            for (count, rem) in self.last_split.iter_mut().zip(self.sub_scratch.iter_mut()) {
                if x < *rem {
                    *count += 1;
                    *rem -= 1;
                    break;
                }
                x -= *rem;
            }
            pool -= 1;
        }
    }

    /// Snapshot of the oracle's generator state. Used by the scenario
    /// phase-boundary tests to prove that [`MiningOracle::reconfigure`]
    /// is indistinguishable from starting a fresh oracle at the
    /// boundary.
    #[must_use]
    pub fn rng_clone(&self) -> Xoshiro256PlusPlus {
        self.rng.clone()
    }

    /// Replaces the oracle's generator with `rng`, leaving every
    /// distribution untouched. The splitting estimator uses this to
    /// hand a cloned entrance state its own disjoint stream; callers
    /// must also discard any outcome buffered from the old stream (see
    /// `Simulation::reseed_mining`).
    pub fn replace_rng(&mut self, rng: Xoshiro256PlusPlus) {
        self.rng = rng;
    }

    /// Samples one round.
    pub fn sample_round(&mut self) -> RoundOutcome {
        let mut honest_per_group = [0u64; 2];
        for (slot, dist) in honest_per_group.iter_mut().zip(self.group_dists.iter()) {
            if let Some(d) = dist {
                *slot = d.sample(&mut self.rng);
            }
        }
        let adversary = self
            .adversary_dist
            .as_ref()
            .map_or(0, |d| d.sample(&mut self.rng));
        // Conditional on the class total, the sub-class split is the
        // same hypergeometric law the gap interface uses (binomial
        // splitting), so both interfaces agree on the joint law.
        self.split_adversary(adversary);
        RoundOutcome {
            honest_per_group,
            adversary,
        }
    }

    /// Samples the gap to the next round with at least one success and
    /// that round's outcome: returns `(g, outcome)` meaning rounds
    /// `1..g` (relative, 1-based) are all-quiet and round `g` mines
    /// `outcome` (which has ≥ 1 success). Returns `None` when no miner
    /// exists (the gap would be infinite).
    ///
    /// Distribution: exactly the law of repeatedly calling
    /// [`MiningOracle::sample_round`] until a non-quiet round appears —
    /// only the random-number *stream* differs, not the statistics.
    pub fn sample_gap_to_success(&mut self) -> Option<(u64, RoundOutcome)> {
        let gap = self.gap.as_ref()?;
        let g = gap.sample_gap(&mut self.rng);
        let k = gap.sample_total(&mut self.rng);
        // Split k successes across the subpopulations: successes occupy
        // k distinct miners chosen uniformly, so draw classes without
        // replacement (multivariate hypergeometric).
        let mut remaining = self.sizes;
        let mut counts = [0u64; 3];
        let mut pool: u64 = remaining.iter().sum();
        for _ in 0..k {
            let mut x = self.rng.next_below(pool);
            for (count, rem) in counts.iter_mut().zip(remaining.iter_mut()) {
                if x < *rem {
                    *count += 1;
                    *rem -= 1;
                    break;
                }
                x -= *rem;
            }
            pool -= 1;
        }
        // Second hypergeometric stage: subdivide the adversary class.
        self.split_adversary(counts[2]);
        Some((
            g,
            RoundOutcome {
                honest_per_group: [counts[0], counts[1]],
                adversary: counts[2],
            },
        ))
    }

    /// The probability that no honest miner succeeds in one round —
    /// the paper's `ᾱ` restricted to this oracle's honest population.
    #[must_use]
    pub fn alpha_bar(&self) -> f64 {
        self.group_dists
            .iter()
            .flatten()
            .map(|d| d.prob_zero())
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn empty_groups_never_mine() {
        let mut o = MiningOracle::new([0, 0], 0, 0.5, rng(1));
        for _ in 0..100 {
            let out = o.sample_round();
            assert_eq!(out.honest_total(), 0);
            assert_eq!(out.adversary, 0);
        }
        assert!(o.sample_gap_to_success().is_none(), "gap is infinite");
    }

    #[test]
    fn honest_rate_matches_mean() {
        let p = 1e-3;
        let n = 500u64;
        let mut o = MiningOracle::new([n, 0], 0, p, rng(2));
        let rounds = 200_000;
        let total: u64 = (0..rounds).map(|_| o.sample_round().honest_total()).sum();
        let mean = total as f64 / rounds as f64;
        let expected = n as f64 * p;
        assert!(
            (mean - expected).abs() < 0.02 * expected + 0.01,
            "mean {mean}"
        );
    }

    #[test]
    fn adversary_rate_matches_mean() {
        let p = 2e-3;
        let mut o = MiningOracle::new([300, 0], 200, p, rng(3));
        let rounds = 100_000;
        let total: u64 = (0..rounds).map(|_| o.sample_round().adversary).sum();
        let mean = total as f64 / rounds as f64;
        assert!((mean - 0.4).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn split_groups_sum_to_single_group_rate() {
        let p = 1e-3;
        let mut split = MiningOracle::new([250, 250], 0, p, rng(4));
        let rounds = 100_000;
        let total: u64 = (0..rounds)
            .map(|_| split.sample_round().honest_total())
            .sum();
        let mean = total as f64 / rounds as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn alpha_bar_matches_paper_formula() {
        // ᾱ = (1-p)^{µn} with µn = 400 + 100 honest miners.
        let p = 1e-4f64;
        let o = MiningOracle::new([400, 100], 77, p, rng(5));
        let expected = (500.0 * (-p).ln_1p()).exp();
        assert!((o.alpha_bar() - expected).abs() < 1e-12);
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = MiningOracle::new([100, 50], 30, 0.01, rng(9));
        let mut b = MiningOracle::new([100, 50], 30, 0.01, rng(9));
        for _ in 0..1000 {
            assert_eq!(a.sample_round(), b.sample_round());
        }
        let mut a = MiningOracle::new([100, 50], 30, 0.01, rng(10));
        let mut b = MiningOracle::new([100, 50], 30, 0.01, rng(10));
        for _ in 0..1000 {
            assert_eq!(a.sample_gap_to_success(), b.sample_gap_to_success());
        }
    }

    #[test]
    fn gap_outcome_always_has_a_success() {
        let mut o = MiningOracle::new([80, 20], 40, 5e-3, rng(11));
        for _ in 0..10_000 {
            let (g, out) = o.sample_gap_to_success().expect("miners exist");
            assert!(g >= 1);
            assert!(out.honest_total() + out.adversary >= 1);
            assert!(out.honest_per_group[0] <= 80);
            assert!(out.honest_per_group[1] <= 20);
            assert!(out.adversary <= 40);
        }
    }

    /// The gap interface must reproduce the per-round interface's
    /// statistics: block rates per subpopulation and the quiet-round
    /// frequency.
    #[test]
    fn gap_sampling_matches_per_round_rates() {
        let p = 2e-3;
        let (g0, g1, adv) = (300u64, 100, 100);
        let mut o = MiningOracle::new([g0, g1], adv, p, rng(12));
        let mut rounds = 0u64;
        let mut blocks = [0u64; 3];
        let mut success_rounds = 0u64;
        while rounds < 2_000_000 {
            let (g, out) = o.sample_gap_to_success().expect("miners exist");
            rounds += g;
            success_rounds += 1;
            blocks[0] += out.honest_per_group[0];
            blocks[1] += out.honest_per_group[1];
            blocks[2] += out.adversary;
        }
        let total_binom = Binomial::new(g0 + g1 + adv, p).unwrap();
        let alpha = total_binom.prob_positive();
        let measured_alpha = success_rounds as f64 / rounds as f64;
        assert!(
            (measured_alpha - alpha).abs() < 0.02 * alpha,
            "success-round rate {measured_alpha} vs α = {alpha}"
        );
        for (i, &n_i) in [g0, g1, adv].iter().enumerate() {
            let expected = n_i as f64 * p;
            let measured = blocks[i] as f64 / rounds as f64;
            assert!(
                (measured - expected).abs() < 0.05 * expected,
                "population {i}: rate {measured} vs {expected}"
            );
        }
    }

    /// Phase-boundary contract: after `reconfigure`, the oracle must be
    /// bit-identical to a from-scratch oracle built with the new
    /// parameters and the generator state captured at the boundary —
    /// this is what makes scenario power shifts equivalent to starting
    /// a fresh engine at the phase boundary.
    #[test]
    fn reconfigure_matches_fresh_oracle() {
        let mut live = MiningOracle::new([80, 0], 20, 2e-3, rng(42));
        // Burn an arbitrary prefix of the stream under the old law,
        // through both sampling interfaces.
        for _ in 0..500 {
            let _ = live.sample_gap_to_success();
        }
        for _ in 0..100 {
            let _ = live.sample_round();
        }
        let boundary_rng = live.rng_clone();
        live.reconfigure([30, 30], 40, 5e-3);
        let mut fresh = MiningOracle::new([30, 30], 40, 5e-3, boundary_rng);
        assert_eq!(live.alpha_bar(), fresh.alpha_bar());
        for i in 0..2_000 {
            assert_eq!(
                live.sample_gap_to_success(),
                fresh.sample_gap_to_success(),
                "gap sample {i} diverged after reconfigure"
            );
        }
        for i in 0..500 {
            assert_eq!(
                live.sample_round(),
                fresh.sample_round(),
                "round sample {i} diverged after reconfigure"
            );
        }
    }

    #[test]
    fn reconfigure_to_empty_population_stops_mining() {
        let mut o = MiningOracle::new([50, 0], 10, 1e-2, rng(7));
        assert!(o.sample_gap_to_success().is_some());
        o.reconfigure([0, 0], 0, 1e-2);
        assert!(o.sample_gap_to_success().is_none(), "gap is infinite");
        assert_eq!(o.sample_round().honest_total(), 0);
    }

    /// The sub-adversary split must sum to the outcome's adversary
    /// count on both sampling interfaces, and stay within sub sizes.
    #[test]
    fn adversary_split_sums_to_adversary_count() {
        let mut o = MiningOracle::new([40, 20], 40, 5e-3, rng(21));
        o.set_adversary_split(Some(&[25, 10, 5]));
        for _ in 0..5_000 {
            let (_, out) = o.sample_gap_to_success().expect("miners exist");
            let split = o.adversary_split();
            assert_eq!(split.len(), 3);
            assert_eq!(split.iter().sum::<u64>(), out.adversary);
            assert!(split[0] <= 25 && split[1] <= 10 && split[2] <= 5);
        }
        for _ in 0..2_000 {
            let out = o.sample_round();
            assert_eq!(o.adversary_split().iter().sum::<u64>(), out.adversary);
        }
    }

    /// A degenerate subdivision (one sub, or extra zero-size subs) must
    /// not consume any randomness: the sampled stream stays
    /// bit-identical to the monolithic oracle's.
    #[test]
    fn degenerate_split_is_stream_invisible() {
        let mut mono = MiningOracle::new([80, 0], 20, 2e-3, rng(22));
        let mut single = MiningOracle::new([80, 0], 20, 2e-3, rng(22));
        single.set_adversary_split(Some(&[20]));
        let mut padded = MiningOracle::new([80, 0], 20, 2e-3, rng(22));
        padded.set_adversary_split(Some(&[0, 20, 0]));
        for i in 0..3_000 {
            let m = mono.sample_gap_to_success();
            assert_eq!(m, single.sample_gap_to_success(), "gap sample {i}");
            assert_eq!(m, padded.sample_gap_to_success(), "gap sample {i}");
            let adversary = m.expect("miners exist").1.adversary;
            assert_eq!(single.adversary_split(), &[adversary]);
            assert_eq!(padded.adversary_split(), &[0, adversary, 0]);
        }
    }

    /// With a single adversary success, the owning sub-adversary is
    /// proportional to its miner count (the hypergeometric one-draw
    /// marginal).
    #[test]
    fn single_adversary_success_sub_split_proportional() {
        let mut o = MiningOracle::new([100, 0], 40, 1e-4, rng(23));
        o.set_adversary_split(Some(&[30, 10]));
        let mut hits = [0u64; 2];
        let mut singles = 0u64;
        for _ in 0..60_000 {
            let (_, out) = o.sample_gap_to_success().expect("miners exist");
            if out.adversary == 1 {
                singles += 1;
                let split = o.adversary_split();
                if split[0] == 1 {
                    hits[0] += 1;
                } else {
                    assert_eq!(split[1], 1);
                    hits[1] += 1;
                }
            }
        }
        assert!(singles > 10_000, "adversary singles at tiny p: {singles}");
        let share = hits[0] as f64 / singles as f64;
        assert!((share - 0.75).abs() < 0.02, "sub 0 share {share}");
    }

    #[test]
    fn reconfigure_clears_adversary_split() {
        let mut o = MiningOracle::new([50, 0], 10, 1e-2, rng(24));
        o.set_adversary_split(Some(&[6, 4]));
        let _ = o.sample_gap_to_success();
        assert_eq!(o.adversary_split().len(), 2);
        o.reconfigure([50, 0], 20, 1e-2);
        assert!(
            o.adversary_split().is_empty(),
            "stale split must not persist"
        );
        let _ = o.sample_gap_to_success();
        assert!(o.adversary_split().is_empty());
    }

    #[test]
    #[should_panic(expected = "sum to the adversary population")]
    fn mismatched_split_is_rejected() {
        let mut o = MiningOracle::new([50, 0], 10, 1e-2, rng(25));
        o.set_adversary_split(Some(&[6, 5]));
    }

    /// Conditional split: with a single success, the owning population
    /// is proportional to its size.
    #[test]
    fn single_success_split_proportional() {
        let mut o = MiningOracle::new([60, 20], 20, 1e-4, rng(13));
        let mut hits = [0u64; 3];
        let mut singles = 0u64;
        for _ in 0..50_000 {
            let (_, out) = o.sample_gap_to_success().expect("miners exist");
            if out.honest_total() + out.adversary == 1 {
                singles += 1;
                if out.honest_per_group[0] == 1 {
                    hits[0] += 1;
                } else if out.honest_per_group[1] == 1 {
                    hits[1] += 1;
                } else {
                    hits[2] += 1;
                }
            }
        }
        assert!(singles > 40_000, "singles dominate at tiny p");
        let freqs: Vec<f64> = hits.iter().map(|&h| h as f64 / singles as f64).collect();
        assert!((freqs[0] - 0.6).abs() < 0.02, "group 0 share {}", freqs[0]);
        assert!((freqs[1] - 0.2).abs() < 0.02, "group 1 share {}", freqs[1]);
        assert!(
            (freqs[2] - 0.2).abs() < 0.02,
            "adversary share {}",
            freqs[2]
        );
    }
}
