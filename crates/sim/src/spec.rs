//! The declarative experiment-spec layer: TOML documents describing a
//! complete experiment — protocol parameters, scenario phases or a
//! stationary strategy, compositions, trial settings, and optional
//! sweep grids — parsed, validated, and serialized with **no external
//! dependencies** (the build environment is offline, so this module
//! carries its own minimal TOML-subset codec).
//!
//! One spec expresses everything the bench harness previously
//! hard-coded per binary:
//!
//! * `[experiment]` — trials, worker threads, consistency thresholds,
//!   the failure-probability estimator: `estimator = "wilson"`
//!   (default, plain Monte-Carlo with Wilson intervals) or
//!   `"splitting"` (the fixed-effort multilevel-splitting rare-event
//!   estimator of [`crate::splitting`], tuned by `splitting_levels`
//!   and `splitting_effort` and restricted to `[stationary]` specs),
//!   and the backend: `backend = "montecarlo"` (default, sampling) or
//!   `"markov"` (the exact absorbing-race solver of [`crate::exact`],
//!   restricted to stationary private-chain cells);
//! * `[base]` — the [`SimConfig`] every cell starts from (`c` may be
//!   given instead of `hardness`, mirroring the paper's axis);
//! * either `[[phase]]` tables (a time-varying [`Scenario`]) **or** a
//!   `[stationary]` table (one strategy on the stationary Monte-Carlo
//!   engine — a single-phase special case kept explicit so spec-driven
//!   runs stay bit-identical to the pre-spec harness binaries);
//! * `[[composition]]` — the table [`StrategyKind::Composed`] indexes;
//! * `[sweep]` — an optional grid: ordered axes of labelled cells,
//!   each cell a set of *patches* (dotted paths into the spec) applied
//!   in odometer order, with per-cell master seeds drawn from one
//!   SplitMix64 stream so no two cells share randomness;
//! * `[fuzz]` — optional replay coordinates written by the scenario
//!   fuzzer so a repro document is directly runnable.
//!
//! Parsing is *strict*: unknown keys, duplicate keys, and out-of-range
//! values are rejected with a [`SpecError`] carrying the offending
//! line. Serialization ([`ExperimentSpec::to_toml`]) emits a canonical
//! document that parses back to an equal spec (round-trip tested on
//! randomized specs).
//!
//! # Example
//!
//! ```
//! use nakamoto_sim::spec::{Estimate, ExperimentSpec};
//!
//! let spec = ExperimentSpec::parse(
//!     r#"
//!     [experiment]
//!     trials = 4
//!     thresholds = [12]
//!
//!     [base]
//!     n_miners = 100
//!     delta = 4
//!     c = 1.0
//!     adversary_fraction = 0.1
//!     seed = 7
//!
//!     [[phase]]
//!     rounds = 2000
//!     strategy = "honest"
//!     regime = "calm"
//!
//!     [[phase]]
//!     rounds = 2000
//!     strategy = "private-chain"
//!     regime = "eclipse(1)"
//!     adversary_fraction = 0.4
//!     "#,
//! )?;
//! let outcome = spec.plan()?.execute();
//! let Estimate::Wilson(run) = outcome.estimate else {
//!     panic!("the default backend samples Wilson trials")
//! };
//! assert_eq!(run.aggregate.trials, 4);
//! # Ok::<(), nakamoto_sim::spec::SpecError>(())
//! ```
//!
//! Every plan runs through the same entry point —
//! [`ExperimentPlan::execute`] — and the resulting [`CellOutcome`]
//! tags its estimate with the backend that produced it. Selecting the
//! splitting estimator swaps the Wilson estimate for the rare-event
//! one:
//!
//! ```
//! use nakamoto_sim::spec::{Estimate, ExperimentSpec};
//!
//! let spec = ExperimentSpec::parse(
//!     r#"
//!     [experiment]
//!     trials = 2
//!     thresholds = [4]
//!     estimator = "splitting"
//!     splitting_effort = 8
//!
//!     [base]
//!     n_miners = 60
//!     delta = 2
//!     c = 1.0
//!     adversary_fraction = 0.3
//!     seed = 11
//!
//!     [stationary]
//!     strategy = "private-chain"
//!     rounds = 400
//!     "#,
//! )?;
//! let Estimate::Splitting(splitting) = spec.plan()?.execute().estimate else {
//!     panic!("splitting selected")
//! };
//! let estimate = splitting.estimate_at(4).expect("threshold 4 estimated");
//! assert!(estimate.probability >= 0.0 && estimate.probability <= 1.0);
//! # Ok::<(), nakamoto_sim::spec::SpecError>(())
//! ```
//!
//! The `markov` backend answers stationary private-chain cells exactly
//! — no sampling, and a provable truncation-error bound beside every
//! probability:
//!
//! ```
//! use nakamoto_sim::spec::{Estimate, ExperimentSpec};
//!
//! let spec = ExperimentSpec::parse(
//!     r#"
//!     [experiment]
//!     thresholds = [6, 12]
//!     backend = "markov"
//!
//!     [base]
//!     n_miners = 100
//!     delta = 4
//!     c = 3.0
//!     adversary_fraction = 0.15
//!     seed = 7
//!
//!     [stationary]
//!     strategy = "private-chain"
//!     rounds = 30000
//!     "#,
//! )?;
//! let Estimate::Exact(run) = spec.plan()?.execute().estimate else {
//!     panic!("markov backend selected")
//! };
//! let exact = run.estimate_at(12).expect("threshold 12 solved");
//! assert!(exact.probability > 0.0 && exact.probability < 1e-5);
//! assert!(exact.truncation_error < exact.probability);
//! # Ok::<(), nakamoto_sim::spec::SpecError>(())
//! ```

use crate::adversary::{BalanceAdversary, ImmediateReleaseAdversary, PrivateChainAdversary};
use crate::compose::{ComposedAdversary, Composition, SubSpec};
use crate::config::SimConfig;
use crate::exact::{ExactPlan, ExactRun};
use crate::montecarlo::{MonteCarloRun, TrialPlan};
use crate::scenario::{PhaseSpec, Regime, Scenario, ScenarioPlan, StrategyKind};
use crate::selfish::SelfishMiningAdversary;
use crate::splitting::{SplittingPlan, SplittingRun};
use probability::rng::{RandomSource, SplitMix64};
use std::fmt;

/// A parse or validation error, positioned at the offending line of the
/// spec document (`line == 0` marks a whole-document condition with no
/// single source line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line of the offending construct; 0 for whole-document
    /// errors.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        SpecError {
            line,
            message: message.into(),
        }
    }

    fn whole(message: impl Into<String>) -> Self {
        SpecError::new(0, message)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "spec: {}", self.message)
        } else {
            write!(f, "spec line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

// ---------------------------------------------------------------------
// TOML-subset values
// ---------------------------------------------------------------------

/// A value of the TOML subset: integers (decimal or `0x` hex, `_`
/// separators allowed), floats, booleans, double-quoted strings
/// (`\\ \" \n \t \r` escapes), single-line arrays, and inline tables.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecValue {
    /// An integer (wide enough for any `u64` or `i64`).
    Int(i128),
    /// A finite float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// An array of values.
    Array(Vec<SpecValue>),
    /// A (nested or inline) table.
    Table(SpecTable),
}

impl SpecValue {
    fn type_name(&self) -> &'static str {
        match self {
            SpecValue::Int(_) => "integer",
            SpecValue::Float(_) => "float",
            SpecValue::Bool(_) => "boolean",
            SpecValue::Str(_) => "string",
            SpecValue::Array(_) => "array",
            SpecValue::Table(_) => "table",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct SpecEntry {
    key: String,
    line: usize,
    value: SpecValue,
}

/// An ordered table of key → value entries, each remembering its source
/// line for positioned errors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecTable {
    entries: Vec<SpecEntry>,
}

impl SpecTable {
    fn insert(&mut self, key: String, line: usize, value: SpecValue) -> Result<(), SpecError> {
        if self.entries.iter().any(|e| e.key == key) {
            return Err(SpecError::new(line, format!("duplicate key `{key}`")));
        }
        self.entries.push(SpecEntry { key, line, value });
        Ok(())
    }

    fn take(&mut self, key: &str) -> Option<(usize, SpecValue)> {
        let at = self.entries.iter().position(|e| e.key == key)?;
        let entry = self.entries.remove(at);
        Some((entry.line, entry.value))
    }

    /// Fails on the first key nobody consumed — the strict-schema check.
    fn expect_empty(&self, context: &str) -> Result<(), SpecError> {
        match self.entries.first() {
            None => Ok(()),
            Some(entry) => Err(SpecError::new(
                entry.line,
                format!("unknown key `{}` in {context}", entry.key),
            )),
        }
    }

    fn take_u64(&mut self, key: &str) -> Result<Option<(usize, u64)>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some((line, SpecValue::Int(i))) => {
                let v = u64::try_from(i).map_err(|_| {
                    SpecError::new(line, format!("`{key}` must fit an unsigned 64-bit integer"))
                })?;
                Ok(Some((line, v)))
            }
            Some((line, other)) => Err(SpecError::new(
                line,
                format!("`{key}` must be an integer, got a {}", other.type_name()),
            )),
        }
    }

    fn take_f64(&mut self, key: &str) -> Result<Option<(usize, f64)>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some((line, value)) => {
                let v = value_as_f64(&value).ok_or_else(|| {
                    SpecError::new(
                        line,
                        format!("`{key}` must be a number, got a {}", value.type_name()),
                    )
                })?;
                Ok(Some((line, v)))
            }
        }
    }

    fn take_str(&mut self, key: &str) -> Result<Option<(usize, String)>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some((line, SpecValue::Str(s))) => Ok(Some((line, s))),
            Some((line, other)) => Err(SpecError::new(
                line,
                format!("`{key}` must be a string, got a {}", other.type_name()),
            )),
        }
    }

    fn take_array(&mut self, key: &str) -> Result<Option<(usize, Vec<SpecValue>)>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some((line, SpecValue::Array(items))) => Ok(Some((line, items))),
            Some((line, other)) => Err(SpecError::new(
                line,
                format!("`{key}` must be an array, got a {}", other.type_name()),
            )),
        }
    }

    fn take_table(&mut self, key: &str) -> Result<Option<(usize, SpecTable)>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some((line, SpecValue::Table(t))) => Ok(Some((line, t))),
            Some((line, other)) => Err(SpecError::new(
                line,
                format!("`{key}` must be a table, got a {}", other.type_name()),
            )),
        }
    }

    fn take_array_of_tables(&mut self, key: &str) -> Result<Vec<(usize, SpecTable)>, SpecError> {
        match self.take(key) {
            None => Ok(Vec::new()),
            Some((_, SpecValue::Array(items))) => items
                .into_iter()
                .map(|item| match item {
                    SpecValue::Table(t) => {
                        let line = t.entries.first().map_or(0, |e| e.line);
                        Ok((line, t))
                    }
                    other => Err(SpecError::whole(format!(
                        "every `[[{key}]]` entry must be a table, got a {}",
                        other.type_name()
                    ))),
                })
                .collect(),
            Some((line, other)) => Err(SpecError::new(
                line,
                format!(
                    "`{key}` must be an array of tables, got a {}",
                    other.type_name()
                ),
            )),
        }
    }
}

fn value_as_f64(value: &SpecValue) -> Option<f64> {
    match value {
        SpecValue::Float(f) => Some(*f),
        #[allow(clippy::cast_precision_loss)]
        SpecValue::Int(i) => Some(*i as f64),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// TOML-subset parser
// ---------------------------------------------------------------------

/// Strips a trailing `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (at, ch) in line.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_string = false;
            }
        } else if ch == '"' {
            in_string = true;
        } else if ch == '#' {
            return &line[..at]; // detlint: allow(panic-slice-index) -- `at` comes from char_indices over this very str
        }
    }
    line
}

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    source: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str, line: usize) -> Self {
        Cursor {
            chars: text.chars().collect(),
            pos: 0,
            line,
            source: text,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.peek()?;
        self.pos += 1;
        Some(ch)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.pos += 1;
        }
    }

    fn err(&self, message: impl Into<String>) -> SpecError {
        SpecError::new(self.line, message.into())
    }

    fn expect_char(&mut self, ch: char) -> Result<(), SpecError> {
        self.skip_ws();
        if self.bump() == Some(ch) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{ch}` in `{}`", self.source.trim())))
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.chars.len()
    }

    fn parse_string(&mut self) -> Result<String, SpecError> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    other => {
                        return Err(self.err(format!(
                            "unsupported string escape `\\{}`",
                            other.map_or(String::new(), |c| c.to_string())
                        )))
                    }
                },
                Some(ch) => out.push(ch),
            }
        }
    }

    /// A key: bare (`[A-Za-z0-9_-]+`) or double-quoted (needed for the
    /// dotted patch paths inside sweep cells).
    fn parse_key(&mut self) -> Result<String, SpecError> {
        self.skip_ws();
        if self.peek() == Some('"') {
            return self.parse_string();
        }
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-') {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err(format!("expected a key in `{}`", self.source.trim())));
        }
        Ok(self.chars[start..self.pos].iter().collect()) // detlint: allow(panic-slice-index) -- pos only advances while peek() is Some, so pos <= len
    }

    fn parse_value(&mut self) -> Result<SpecValue, SpecError> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("expected a value")),
            Some('"') => Ok(SpecValue::Str(self.parse_string()?)),
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    if self.peek() == Some(']') {
                        self.bump();
                        return Ok(SpecValue::Array(items));
                    }
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => {
                            self.bump();
                        }
                        Some(']') => {}
                        _ => return Err(self.err("expected `,` or `]` in array")),
                    }
                }
            }
            Some('{') => {
                self.bump();
                let mut table = SpecTable::default();
                loop {
                    self.skip_ws();
                    if self.peek() == Some('}') {
                        self.bump();
                        return Ok(SpecValue::Table(table));
                    }
                    let key = self.parse_key()?;
                    self.expect_char('=')?;
                    let value = self.parse_value()?;
                    table.insert(key, self.line, value)?;
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => {
                            self.bump();
                        }
                        Some('}') => {}
                        _ => return Err(self.err("expected `,` or `}` in inline table")),
                    }
                }
            }
            Some(_) => self.parse_scalar(),
        }
    }

    fn parse_scalar(&mut self) -> Result<SpecValue, SpecError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if !matches!(c, ',' | ']' | '}' | ' ' | '\t')) {
            self.pos += 1;
        }
        let token: String = self.chars[start..self.pos].iter().collect(); // detlint: allow(panic-slice-index) -- pos only advances while peek() is Some, so pos <= len
        match token.as_str() {
            "true" => return Ok(SpecValue::Bool(true)),
            "false" => return Ok(SpecValue::Bool(false)),
            _ => {}
        }
        let digits: String = token.chars().filter(|&c| c != '_').collect();
        if let Some(hex) = digits
            .strip_prefix("0x")
            .or_else(|| digits.strip_prefix("0X"))
        {
            let v = u64::from_str_radix(hex, 16)
                .map_err(|_| self.err(format!("invalid hex integer `{token}`")))?;
            return Ok(SpecValue::Int(i128::from(v)));
        }
        if digits.contains(['.', 'e', 'E']) {
            let v: f64 = digits
                .parse()
                .map_err(|_| self.err(format!("invalid number `{token}`")))?;
            if !v.is_finite() {
                return Err(self.err(format!("non-finite float `{token}`")));
            }
            return Ok(SpecValue::Float(v));
        }
        let v: i128 = digits
            .parse()
            .map_err(|_| self.err(format!("invalid value `{token}`")))?;
        Ok(SpecValue::Int(v))
    }

    /// A dotted header path: `sweep.axis.cell` (segments bare or quoted).
    fn parse_path(&mut self) -> Result<Vec<String>, SpecError> {
        let mut path = vec![self.parse_key()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('.') {
                self.bump();
                path.push(self.parse_key()?);
            } else {
                return Ok(path);
            }
        }
    }
}

/// Walks `path` from the root, descending into the *last* element of
/// any array-of-tables on the way (standard TOML super-table
/// semantics), creating missing tables.
fn table_at_mut<'a>(
    root: &'a mut SpecTable,
    path: &[String],
    line: usize,
) -> Result<&'a mut SpecTable, SpecError> {
    let mut current = root;
    for segment in path {
        let idx = match current.entries.iter().position(|e| &e.key == segment) {
            Some(idx) => idx,
            None => {
                current.entries.push(SpecEntry {
                    key: segment.clone(),
                    line,
                    value: SpecValue::Table(SpecTable::default()),
                });
                current.entries.len() - 1
            }
        };
        let entry = &mut current.entries[idx];
        current = match &mut entry.value {
            SpecValue::Table(t) => t,
            SpecValue::Array(items) => match items.last_mut() {
                Some(SpecValue::Table(t)) => t,
                _ => {
                    return Err(SpecError::new(
                        line,
                        format!("`{segment}` is not a table of tables"),
                    ))
                }
            },
            other => {
                return Err(SpecError::new(
                    line,
                    format!("`{segment}` is a {}, not a table", other.type_name()),
                ))
            }
        };
    }
    Ok(current)
}

/// Parses a whole document into the root table.
fn parse_document(input: &str) -> Result<SpecTable, SpecError> {
    let mut root = SpecTable::default();
    let mut current_path: Vec<String> = Vec::new();
    for (at, raw) in input.lines().enumerate() {
        let line_no = at + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[") {
            let inner = inner
                .strip_suffix("]]")
                .ok_or_else(|| SpecError::new(line_no, "`[[` without closing `]]`"))?;
            let mut cursor = Cursor::new(inner, line_no);
            let path = cursor.parse_path()?;
            if !cursor.at_end() {
                return Err(cursor.err("trailing characters after `]]` header"));
            }
            let Some((last, parents)) = path.split_last() else {
                return Err(SpecError::new(line_no, "empty `[[...]]` header path"));
            };
            let parent = table_at_mut(&mut root, parents, line_no)?;
            match parent.entries.iter_mut().find(|e| &e.key == last) {
                None => parent.entries.push(SpecEntry {
                    key: last.clone(),
                    line: line_no,
                    value: SpecValue::Array(vec![SpecValue::Table(SpecTable::default())]),
                }),
                Some(entry) => match &mut entry.value {
                    SpecValue::Array(items) => items.push(SpecValue::Table(SpecTable::default())),
                    other => {
                        return Err(SpecError::new(
                            line_no,
                            format!(
                                "`{last}` is already a {}, cannot append a table",
                                other.type_name()
                            ),
                        ))
                    }
                },
            }
            current_path = path;
        } else if let Some(inner) = line.strip_prefix('[') {
            let inner = inner
                .strip_suffix(']')
                .ok_or_else(|| SpecError::new(line_no, "`[` without closing `]`"))?;
            let mut cursor = Cursor::new(inner, line_no);
            let path = cursor.parse_path()?;
            if !cursor.at_end() {
                return Err(cursor.err("trailing characters after `]` header"));
            }
            let Some((last, parents)) = path.split_last() else {
                return Err(SpecError::new(line_no, "empty `[...]` header path"));
            };
            let parent = table_at_mut(&mut root, parents, line_no)?;
            if parent.entries.iter().any(|e| &e.key == last) {
                return Err(SpecError::new(
                    line_no,
                    format!("duplicate table `[{last}]`"),
                ));
            }
            parent.entries.push(SpecEntry {
                key: last.clone(),
                line: line_no,
                value: SpecValue::Table(SpecTable::default()),
            });
            current_path = path;
        } else {
            let mut cursor = Cursor::new(line, line_no);
            let key = cursor.parse_key()?;
            cursor.expect_char('=')?;
            let value = cursor.parse_value()?;
            if !cursor.at_end() {
                return Err(cursor.err(format!("trailing characters after value for `{key}`")));
            }
            let table = table_at_mut(&mut root, &current_path, line_no)?;
            table.insert(key, line_no, value)?;
        }
    }
    Ok(root)
}

// ---------------------------------------------------------------------
// Strategy / regime tokens (the spec's canonical vocabulary)
// ---------------------------------------------------------------------

/// The spec token for a strategy: `"honest"`, `"private-chain"`,
/// `"balance"`, `"selfish"`, or `"composed(i)"`.
#[must_use]
pub fn strategy_token(kind: StrategyKind) -> String {
    match kind {
        StrategyKind::Honest => "honest".into(),
        StrategyKind::PrivateChain => "private-chain".into(),
        StrategyKind::Balance => "balance".into(),
        StrategyKind::Selfish => "selfish".into(),
        StrategyKind::Composed(i) => format!("composed({i})"),
    }
}

/// Parses a strategy token; `None` if the token names no strategy.
#[must_use]
pub fn parse_strategy(token: &str) -> Option<StrategyKind> {
    match token {
        "honest" => Some(StrategyKind::Honest),
        "private-chain" => Some(StrategyKind::PrivateChain),
        "balance" => Some(StrategyKind::Balance),
        "selfish" => Some(StrategyKind::Selfish),
        _ => {
            let index = token.strip_prefix("composed(")?.strip_suffix(')')?;
            index.parse().ok().map(StrategyKind::Composed)
        }
    }
}

/// The spec token for a regime: `"calm"`, `"adversarial"`, or
/// `"eclipse(g)"`.
#[must_use]
pub fn regime_token(regime: Regime) -> String {
    match regime {
        Regime::Calm => "calm".into(),
        Regime::Adversarial => "adversarial".into(),
        Regime::Eclipse { group } => format!("eclipse({group})"),
    }
}

/// Parses a regime token; `None` if the token names no regime.
#[must_use]
pub fn parse_regime(token: &str) -> Option<Regime> {
    match token {
        "calm" => Some(Regime::Calm),
        "adversarial" => Some(Regime::Adversarial),
        _ => {
            let group = token.strip_prefix("eclipse(")?.strip_suffix(')')?;
            group.parse().ok().map(|group| Regime::Eclipse { group })
        }
    }
}

// ---------------------------------------------------------------------
// The experiment model
// ---------------------------------------------------------------------

/// An unrecognised spec token for one of the closed vocabularies
/// ([`EstimatorKind`], [`BackendKind`]) — the shared `FromStr` error,
/// so codec, patch, and CLI paths emit one message shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownToken {
    /// What kind of token was expected (e.g. `"estimator"`).
    pub what: &'static str,
    /// The offending token.
    pub token: String,
    /// The accepted vocabulary, ready for the error message.
    pub expected: &'static str,
}

impl fmt::Display for UnknownToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown {} `{}` (expected {})",
            self.what, self.token, self.expected
        )
    }
}

impl std::error::Error for UnknownToken {}

/// Which failure-probability estimator a spec selects (the sampling
/// backend's two flavours; the `markov` backend computes exact values
/// and takes no estimator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorKind {
    /// Plain Monte-Carlo trials with Wilson score intervals (the
    /// default; resolves probabilities down to ≈ `1/trials`).
    #[default]
    Wilson,
    /// Fixed-effort multilevel splitting over the consistency depth
    /// ([`crate::splitting`]); resolves theorem-scale rarities.
    Splitting,
}

impl fmt::Display for EstimatorKind {
    /// The spec token: `"wilson"` or `"splitting"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EstimatorKind::Wilson => "wilson",
            EstimatorKind::Splitting => "splitting",
        })
    }
}

impl std::str::FromStr for EstimatorKind {
    type Err = UnknownToken;

    fn from_str(token: &str) -> Result<Self, Self::Err> {
        match token {
            "wilson" => Ok(EstimatorKind::Wilson),
            "splitting" => Ok(EstimatorKind::Splitting),
            _ => Err(UnknownToken {
                what: "estimator",
                token: token.into(),
                expected: "\"wilson\" or \"splitting\"",
            }),
        }
    }
}

/// Which computational backend answers a spec's cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The sampling engines (the default): Monte-Carlo trials with the
    /// Wilson or splitting estimator.
    #[default]
    MonteCarlo,
    /// The exact absorbing-race solver of [`crate::exact`]: no
    /// sampling, a provable truncation-error bound beside every
    /// answer. Stationary private-chain cells only.
    Markov,
}

impl fmt::Display for BackendKind {
    /// The spec token: `"montecarlo"` or `"markov"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendKind::MonteCarlo => "montecarlo",
            BackendKind::Markov => "markov",
        })
    }
}

impl std::str::FromStr for BackendKind {
    type Err = UnknownToken;

    fn from_str(token: &str) -> Result<Self, Self::Err> {
        match token {
            "montecarlo" => Ok(BackendKind::MonteCarlo),
            "markov" => Ok(BackendKind::Markov),
            _ => Err(UnknownToken {
                what: "backend",
                token: token.into(),
                expected: "\"montecarlo\" or \"markov\"",
            }),
        }
    }
}

/// The splitting estimator's level-schedule knobs (see
/// [`SplittingPlan`] for the semantics of each field).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SplittingSettings {
    /// Intermediate depth levels: `None` (key absent) selects the
    /// automatic unit ladder, `Some(vec![])` (`splitting_levels = []`)
    /// the degenerate single-stage schedule.
    pub levels: Option<Vec<u64>>,
    /// Replicas per level; `0` (the default) reuses `trials`.
    pub effort: u64,
}

/// The widest lockstep batch a spec may request; wider batches buy no
/// further locality on one core and inflate per-worker memory.
pub const MAX_BATCH_WIDTH: u64 = 64;

/// `[experiment]`: the Monte-Carlo settings every cell shares.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSettings {
    /// Independent trials per cell (≥ 1; default 1).
    pub trials: u64,
    /// Worker threads (`0` = one per CPU; default 0).
    pub threads: usize,
    /// Consistency thresholds `T` tallied per trial (default none).
    pub thresholds: Vec<u64>,
    /// Computational backend (default Monte-Carlo sampling).
    pub backend: BackendKind,
    /// Failure-probability estimator (default Wilson; sampling backend
    /// only).
    pub estimator: EstimatorKind,
    /// Level-schedule knobs for the splitting estimator.
    pub splitting: SplittingSettings,
    /// Lockstep batch width (`1` = the scalar engine; max
    /// [`MAX_BATCH_WIDTH`]). Bit-identical aggregates at every width.
    pub batch_width: u64,
    /// Sequential stopping target: stop a cell at the first wave
    /// boundary where every threshold's Wilson half-width is at most
    /// this value, with `trials` as the budget cap. Stationary specs
    /// only; requires at least one threshold.
    pub stop_half_width: Option<f64>,
}

impl Default for RunSettings {
    fn default() -> Self {
        RunSettings {
            trials: 1,
            threads: 0,
            thresholds: Vec::new(),
            backend: BackendKind::default(),
            estimator: EstimatorKind::default(),
            splitting: SplittingSettings::default(),
            batch_width: 1,
            stop_half_width: None,
        }
    }
}

/// What one cell runs: a time-varying scenario or a stationary
/// strategy on the trial engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentMode {
    /// `[[phase]]` tables: a [`Scenario`] over the base config.
    Scenario(Vec<PhaseSpec>),
    /// `[stationary]`: one strategy for `rounds` rounds per trial,
    /// using the *bare* adversary on the stationary engine (how the
    /// pre-spec harness binaries ran, so ported sweeps stay
    /// bit-identical).
    Stationary {
        /// The strategy every trial runs.
        strategy: StrategyKind,
        /// Rounds per trial (≥ 1).
        rounds: u64,
    },
}

/// One sweep cell: a label plus the patches (dotted spec paths →
/// values) distinguishing it from the base spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Cell label, shown in tables and JSON.
    pub label: String,
    /// Patches applied to the base spec, in order.
    pub patches: Vec<(String, SpecValue)>,
}

/// One sweep axis: an ordered list of cells.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Axis label (e.g. `"ν_attack"`).
    pub label: String,
    /// The axis's cells, in sweep order.
    pub cells: Vec<SweepCell>,
}

/// `[sweep]`: a grid of cells — the cartesian product of the axes,
/// iterated in odometer order (last axis fastest), each cell's master
/// seed drawn from one SplitMix64 stream seeded with `seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Seed of the per-cell master-seed stream.
    pub seed: u64,
    /// The axes, outermost first.
    pub axes: Vec<SweepAxis>,
}

/// `[fuzz]`: replay coordinates stamped on a fuzz repro so the
/// document regenerates its failing case exactly (see
/// [`crate::fuzz::run_case`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzHeader {
    /// Master seed the fuzzer ran with.
    pub master_seed: u64,
    /// Failing case index under that seed.
    pub case: u64,
    /// The violated invariant.
    pub invariant: String,
    /// Human-readable mismatch description.
    pub detail: String,
}

/// A complete, validated experiment document.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Monte-Carlo settings.
    pub run: RunSettings,
    /// The base configuration (seed = master seed outside sweeps).
    pub base: SimConfig,
    /// The composition table `composed(i)` strategies index.
    pub compositions: Vec<Composition>,
    /// Scenario phases or a stationary strategy.
    pub mode: ExperimentMode,
    /// Optional sweep grid.
    pub sweep: Option<SweepSpec>,
    /// Optional fuzz replay coordinates.
    pub fuzz: Option<FuzzHeader>,
}

/// One expanded sweep cell: the axis labels plus the concrete
/// (sweep-free) spec to run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentCell {
    /// One label per sweep axis (empty for a sweep-free spec).
    pub labels: Vec<String>,
    /// The concrete spec with patches applied and the cell seed set.
    pub spec: ExperimentSpec,
}

/// A backend-tagged failure-probability estimate: the one result type
/// every experiment cell produces, whichever engine answered it.
#[derive(Debug, Clone)]
pub enum Estimate {
    /// Monte-Carlo trials with Wilson score intervals.
    Wilson(MonteCarloRun),
    /// The multilevel-splitting rare-event estimator.
    Splitting(SplittingRun),
    /// The exact absorbing-race solve, with per-threshold truncation
    /// bounds.
    Exact(ExactRun),
}

impl Estimate {
    /// The backend that produced this estimate.
    #[must_use]
    pub fn backend(&self) -> BackendKind {
        match self {
            Estimate::Wilson(_) | Estimate::Splitting(_) => BackendKind::MonteCarlo,
            Estimate::Exact(_) => BackendKind::Markov,
        }
    }

    /// Wall-clock seconds the estimate took to compute.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        match self {
            Estimate::Wilson(run) => run.elapsed_secs,
            Estimate::Splitting(run) => run.elapsed_secs,
            Estimate::Exact(run) => run.elapsed_secs,
        }
    }

    /// Total simulated rounds behind the estimate (0 for the exact
    /// backend, which samples nothing).
    #[must_use]
    pub fn simulated_rounds(&self) -> u64 {
        match self {
            Estimate::Wilson(run) => run.aggregate.total_rounds(),
            Estimate::Splitting(run) => run.total_rounds,
            Estimate::Exact(_) => 0,
        }
    }
}

/// The result of executing one experiment cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The backend-tagged estimate.
    pub estimate: Estimate,
    /// Rounds each trial simulates (the scenario total or the
    /// stationary horizon; bookkeeping only for the exact backend).
    pub rounds_per_trial: u64,
}

/// A runnable plan built from a concrete spec.
#[derive(Debug, Clone)]
pub enum ExperimentPlan {
    /// A scenario Monte-Carlo fan-out.
    Scenario(ScenarioPlan),
    /// A stationary fan-out with the bare adversary for `strategy`.
    Stationary {
        /// The trial plan (config, rounds, trials, thresholds).
        plan: TrialPlan,
        /// Strategy each trial runs.
        strategy: StrategyKind,
        /// Composition table for `composed(i)` strategies.
        compositions: Vec<Composition>,
        /// The splitting plan when the spec selects
        /// `estimator = "splitting"` (replaces the Wilson estimate).
        splitting: Option<SplittingPlan>,
    },
    /// An exact absorbing-race solve (`backend = "markov"`).
    Exact(ExactPlan),
}

impl ExperimentPlan {
    /// Executes the plan on whichever backend the spec selected and
    /// returns the backend-tagged outcome: Wilson Monte-Carlo by
    /// default, the splitting estimator when
    /// `estimator = "splitting"`, the exact race solve when
    /// `backend = "markov"`.
    ///
    /// # Panics
    ///
    /// Panics if a `composed(i)` strategy indexes past the composition
    /// table — [`ExperimentSpec::plan`] validates this at construction.
    #[must_use]
    pub fn execute(&self) -> CellOutcome {
        let estimate = match self {
            ExperimentPlan::Scenario(plan) => Estimate::Wilson(plan.run()),
            ExperimentPlan::Stationary {
                splitting: Some(_), ..
            } => Estimate::Splitting(self.run_splitting()),
            ExperimentPlan::Stationary { .. } => Estimate::Wilson(self.run_montecarlo()),
            ExperimentPlan::Exact(plan) => Estimate::Exact(plan.run()),
        };
        CellOutcome {
            estimate,
            rounds_per_trial: self.rounds_per_trial(),
        }
    }

    /// The Wilson Monte-Carlo half of a sampling plan.
    fn run_montecarlo(&self) -> MonteCarloRun {
        match self {
            ExperimentPlan::Scenario(plan) => plan.run(),
            ExperimentPlan::Stationary {
                plan,
                strategy,
                compositions,
                ..
            } => {
                let delta = plan.config.delta;
                match *strategy {
                    StrategyKind::Honest => plan.run(|_| ImmediateReleaseAdversary::new()),
                    StrategyKind::PrivateChain => {
                        plan.run(move |_| PrivateChainAdversary::new(delta))
                    }
                    StrategyKind::Balance => plan.run(move |_| BalanceAdversary::new(delta)),
                    StrategyKind::Selfish => plan.run(move |_| SelfishMiningAdversary::new(delta)),
                    StrategyKind::Composed(i) => {
                        let composition = compositions[i].clone();
                        plan.run(move |_| ComposedAdversary::new(delta, composition.clone()))
                    }
                }
            }
            ExperimentPlan::Exact(_) => unreachable!("exact plans never sample"), // detlint: allow(panic-macro) -- execute() routes Exact plans to ExactPlan::run, never here
        }
    }

    /// The splitting half of a sampling plan, dispatching the strategy
    /// exactly as [`ExperimentPlan::run_montecarlo`] does.
    fn run_splitting(&self) -> SplittingRun {
        let ExperimentPlan::Stationary {
            strategy,
            compositions,
            splitting: Some(splitting),
            ..
        } = self
        else {
            unreachable!("execute() only routes splitting plans here"); // detlint: allow(panic-macro) -- sole caller matches Stationary with splitting Some first
        };
        let delta = splitting.config.delta;
        match *strategy {
            StrategyKind::Honest => splitting.run(|_| ImmediateReleaseAdversary::new()),
            StrategyKind::PrivateChain => splitting.run(move |_| PrivateChainAdversary::new(delta)),
            StrategyKind::Balance => splitting.run(move |_| BalanceAdversary::new(delta)),
            StrategyKind::Selfish => splitting.run(move |_| SelfishMiningAdversary::new(delta)),
            StrategyKind::Composed(i) => {
                let composition = compositions[i].clone();
                splitting.run(move |_| ComposedAdversary::new(delta, composition.clone()))
            }
        }
    }

    /// Rounds each trial simulates (the scenario total, or the
    /// stationary `rounds`).
    #[must_use]
    pub fn rounds_per_trial(&self) -> u64 {
        match self {
            ExperimentPlan::Scenario(plan) => plan.scenario.total_rounds(),
            ExperimentPlan::Stationary { plan, .. } => plan.rounds,
            ExperimentPlan::Exact(plan) => plan.rounds,
        }
    }
}

impl ScenarioPlan {
    /// Builds the scenario Monte-Carlo plan a spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the spec is stationary-mode or its
    /// scenario fails validation.
    pub fn from_spec(spec: &ExperimentSpec) -> Result<Self, SpecError> {
        let ExperimentMode::Scenario(_) = &spec.mode else {
            return Err(SpecError::whole(
                "ScenarioPlan::from_spec needs [[phase]] tables, found a [stationary] spec",
            ));
        };
        let scenario = spec.scenario()?;
        let plan = ScenarioPlan::new(scenario, spec.run.trials)
            .map_err(|e| SpecError::whole(e.to_string()))?;
        Ok(plan
            .thresholds(spec.run.thresholds.clone())
            .with_threads(spec.run.threads))
    }
}

impl TrialPlan {
    /// Builds the stationary trial plan a spec describes (the strategy
    /// itself is carried by [`ExperimentPlan`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the spec is scenario-mode or the plan
    /// fails validation.
    pub fn from_spec(spec: &ExperimentSpec) -> Result<Self, SpecError> {
        let ExperimentMode::Stationary { rounds, .. } = spec.mode else {
            return Err(SpecError::whole(
                "TrialPlan::from_spec needs a [stationary] table, found [[phase] ] tables",
            ));
        };
        let plan = TrialPlan::new(spec.base, rounds, spec.run.trials)
            .map_err(|e| SpecError::whole(e.to_string()))?;
        let mut plan = plan
            .thresholds(spec.run.thresholds.clone())
            .with_threads(spec.run.threads)
            .with_batch_width(usize::try_from(spec.run.batch_width).unwrap_or(1).max(1));
        if let Some(half_width) = spec.run.stop_half_width {
            plan = plan.with_stopping(half_width, 0);
        }
        Ok(plan)
    }
}

impl SplittingPlan {
    /// Builds the splitting plan a spec describes: the base config and
    /// stationary horizon, the spec's thresholds, the
    /// `splitting_levels` schedule, and `splitting_effort` replicas per
    /// level (defaulting to `trials` when 0 so a bare
    /// `estimator = "splitting"` line is runnable).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for scenario-mode specs (the splitting
    /// level function needs the stationary engine), missing thresholds,
    /// or an invalid level schedule.
    pub fn from_spec(spec: &ExperimentSpec) -> Result<Self, SpecError> {
        let ExperimentMode::Stationary { rounds, .. } = spec.mode else {
            return Err(SpecError::whole(
                "the splitting estimator needs a [stationary] table; scenario specs only support `estimator = \"wilson\"`",
            ));
        };
        let effort = if spec.run.splitting.effort == 0 {
            spec.run.trials
        } else {
            spec.run.splitting.effort
        };
        let plan = SplittingPlan::new(spec.base, rounds, effort, spec.run.thresholds.clone())
            .map_err(|e| SpecError::whole(e.to_string()))?
            .with_levels(spec.run.splitting.levels.clone())
            .map_err(|e| SpecError::whole(e.to_string()))?;
        Ok(plan.with_threads(spec.run.threads))
    }
}

impl ExactPlan {
    /// Builds the exact-backend plan a `backend = "markov"` spec
    /// describes: the effective adversarial share from `[base]`, the
    /// spec's thresholds, and a race cap of
    /// `max(thresholds) + RACE_CAP_MARGIN`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for scenario-mode specs, stationary
    /// strategies other than `"private-chain"` (the race chain models
    /// exactly that attack), a selected splitting estimator, missing or
    /// out-of-range thresholds, and configurations outside the race
    /// analysis (`ν = 0` or a convergence-rate underflow).
    ///
    /// [`RACE_CAP_MARGIN`]: crate::exact::RACE_CAP_MARGIN
    pub fn from_spec(spec: &ExperimentSpec) -> Result<Self, SpecError> {
        let ExperimentMode::Stationary { strategy, rounds } = &spec.mode else {
            return Err(SpecError::whole(
                "`backend = \"markov\"` needs a [stationary] table; scenario cells only support `backend = \"montecarlo\"`",
            ));
        };
        if !matches!(strategy, StrategyKind::PrivateChain) {
            return Err(SpecError::whole(format!(
                "`backend = \"markov\"` models the private-chain race; strategy `{}` needs `backend = \"montecarlo\"`",
                strategy_token(*strategy)
            )));
        }
        if spec.run.estimator != EstimatorKind::Wilson {
            return Err(SpecError::whole(
                "`backend = \"markov\"` computes exact probabilities; `estimator = \"splitting\"` needs `backend = \"montecarlo\"`",
            ));
        }
        ExactPlan::new(spec.base, spec.run.thresholds.clone(), *rounds)
            .map_err(|e| SpecError::whole(e.to_string()))
    }
}

impl ExperimentSpec {
    /// Parses and validates a spec document.
    ///
    /// # Errors
    ///
    /// Returns a positioned [`SpecError`] on malformed syntax, unknown
    /// or duplicate keys, and out-of-range values.
    pub fn parse(input: &str) -> Result<Self, SpecError> {
        let mut root = parse_document(input)?;

        // [experiment]
        let mut run = RunSettings::default();
        let mut backend_line = None;
        if let Some((_, mut table)) = root.take_table("experiment")? {
            if let Some((line, trials)) = table.take_u64("trials")? {
                if trials == 0 {
                    return Err(SpecError::new(line, "`trials` must be at least 1"));
                }
                run.trials = trials;
            }
            if let Some((line, threads)) = table.take_u64("threads")? {
                run.threads = usize::try_from(threads)
                    .map_err(|_| SpecError::new(line, "`threads` does not fit usize"))?;
            }
            if let Some((line, items)) = table.take_array("thresholds")? {
                run.thresholds = items
                    .iter()
                    .map(|item| match item {
                        SpecValue::Int(i) => u64::try_from(*i).map_err(|_| {
                            SpecError::new(line, "`thresholds` entries must be unsigned integers")
                        }),
                        other => Err(SpecError::new(
                            line,
                            format!(
                                "`thresholds` entries must be integers, got a {}",
                                other.type_name()
                            ),
                        )),
                    })
                    .collect::<Result<_, _>>()?;
            }
            if let Some((line, token)) = table.take_str("estimator")? {
                run.estimator = token
                    .parse()
                    .map_err(|e: UnknownToken| SpecError::new(line, e.to_string()))?;
            }
            if let Some((line, token)) = table.take_str("backend")? {
                run.backend = token
                    .parse()
                    .map_err(|e: UnknownToken| SpecError::new(line, e.to_string()))?;
                backend_line = Some(line);
            }
            if let Some((line, items)) = table.take_array("splitting_levels")? {
                let levels = items
                    .iter()
                    .map(|item| match item {
                        SpecValue::Int(i) => u64::try_from(*i).map_err(|_| {
                            SpecError::new(
                                line,
                                "`splitting_levels` entries must be unsigned integers",
                            )
                        }),
                        other => Err(SpecError::new(
                            line,
                            format!(
                                "`splitting_levels` entries must be integers, got a {}",
                                other.type_name()
                            ),
                        )),
                    })
                    .collect::<Result<_, _>>()?;
                run.splitting.levels = Some(levels);
            }
            if let Some((line, effort)) = table.take_u64("splitting_effort")? {
                if effort == 0 {
                    return Err(SpecError::new(
                        line,
                        "`splitting_effort` must be at least 1 (omit the key to reuse `trials`)",
                    ));
                }
                run.splitting.effort = effort;
            }
            if let Some((line, width)) = table.take_u64("batch_width")? {
                if width == 0 || width > MAX_BATCH_WIDTH {
                    return Err(SpecError::new(
                        line,
                        format!("`batch_width` must lie in 1..={MAX_BATCH_WIDTH}, got {width}"),
                    ));
                }
                run.batch_width = width;
            }
            if let Some((line, half_width)) = table.take_f64("stop_half_width")? {
                if !(half_width > 0.0 && half_width < 1.0) {
                    return Err(SpecError::new(
                        line,
                        format!("`stop_half_width` must lie in (0, 1), got {half_width}"),
                    ));
                }
                run.stop_half_width = Some(half_width);
            }
            table.expect_empty("[experiment]")?;
        }

        // [fuzz]
        let fuzz = match root.take_table("fuzz")? {
            None => None,
            Some((line, mut table)) => {
                let header = FuzzHeader {
                    master_seed: table
                        .take_u64("master_seed")?
                        .ok_or_else(|| SpecError::new(line, "[fuzz] needs `master_seed`"))?
                        .1,
                    case: table
                        .take_u64("case")?
                        .ok_or_else(|| SpecError::new(line, "[fuzz] needs `case`"))?
                        .1,
                    invariant: table
                        .take_str("invariant")?
                        .map_or_else(String::new, |(_, s)| s),
                    detail: table
                        .take_str("detail")?
                        .map_or_else(String::new, |(_, s)| s),
                };
                table.expect_empty("[fuzz]")?;
                Some(header)
            }
        };

        // [base]
        let (base_line, mut base_table) = root
            .take_table("base")?
            .ok_or_else(|| SpecError::whole("spec needs a [base] table"))?;
        let n_miners = base_table
            .take_u64("n_miners")?
            .ok_or_else(|| SpecError::new(base_line, "[base] needs `n_miners`"))?
            .1;
        let delta = base_table
            .take_u64("delta")?
            .ok_or_else(|| SpecError::new(base_line, "[base] needs `delta`"))?
            .1;
        let adversary_fraction = base_table
            .take_f64("adversary_fraction")?
            .ok_or_else(|| SpecError::new(base_line, "[base] needs `adversary_fraction`"))?
            .1;
        let seed = base_table.take_u64("seed")?.map_or(0, |(_, s)| s);
        let hardness = base_table.take_f64("hardness")?;
        let c = base_table.take_f64("c")?;
        base_table.expect_empty("[base]")?;
        let hardness = match (hardness, c) {
            (Some((_, p)), None) => p,
            #[allow(clippy::cast_precision_loss)]
            (None, Some((line, c))) => {
                if !(c > 0.0) || c.is_nan() {
                    return Err(SpecError::new(
                        line,
                        format!("`c` must be positive, got {c}"),
                    ));
                }
                1.0 / (c * n_miners as f64 * delta as f64)
            }
            (Some(_), Some((line, _))) => {
                return Err(SpecError::new(
                    line,
                    "[base] takes either `hardness` or `c`, not both",
                ))
            }
            (None, None) => {
                return Err(SpecError::new(base_line, "[base] needs `hardness` or `c`"))
            }
        };
        let base = SimConfig {
            n_miners,
            adversary_fraction,
            hardness,
            delta,
            seed,
        };
        base.validate()
            .map_err(|e| SpecError::new(base_line, e.to_string()))?;

        // [[composition]]
        let mut compositions = Vec::new();
        for (comp_line, mut table) in root.take_array_of_tables("composition")? {
            let (subs_line, items) = table
                .take_array("subs")?
                .ok_or_else(|| SpecError::new(comp_line, "[[composition]] needs `subs`"))?;
            let mut subs = Vec::with_capacity(items.len());
            for item in items {
                let SpecValue::Table(mut sub) = item else {
                    return Err(SpecError::new(
                        subs_line,
                        "`subs` entries must be inline tables { strategy = \"…\", weight = N }",
                    ));
                };
                let (strategy_line, token) = sub
                    .take_str("strategy")?
                    .ok_or_else(|| SpecError::new(subs_line, "every sub needs a `strategy`"))?;
                let strategy = parse_strategy(&token).ok_or_else(|| {
                    SpecError::new(strategy_line, format!("unknown strategy `{token}`"))
                })?;
                if matches!(strategy, StrategyKind::Composed(_)) {
                    return Err(SpecError::new(
                        strategy_line,
                        "compositions cannot nest `composed(i)` subs",
                    ));
                }
                let weight = sub
                    .take_u64("weight")?
                    .ok_or_else(|| SpecError::new(subs_line, "every sub needs a `weight`"))?
                    .1;
                sub.expect_empty("a composition sub")?;
                subs.push(SubSpec::new(strategy, weight));
            }
            compositions.push(
                Composition::new(subs).map_err(|e| SpecError::new(subs_line, e.to_string()))?,
            );
        }

        // [[phase]]
        let mut phases = Vec::new();
        for (phase_line, mut table) in root.take_array_of_tables("phase")? {
            let (rounds_line, rounds) = table
                .take_u64("rounds")?
                .ok_or_else(|| SpecError::new(phase_line, "[[phase]] needs `rounds`"))?;
            if rounds == 0 {
                return Err(SpecError::new(rounds_line, "`rounds` must be at least 1"));
            }
            let (strategy_line, token) = table
                .take_str("strategy")?
                .ok_or_else(|| SpecError::new(phase_line, "[[phase]] needs `strategy`"))?;
            let strategy = parse_strategy(&token).ok_or_else(|| {
                SpecError::new(strategy_line, format!("unknown strategy `{token}`"))
            })?;
            if let StrategyKind::Composed(i) = strategy {
                if i >= compositions.len() {
                    return Err(SpecError::new(
                        strategy_line,
                        format!(
                            "`composed({i})` indexes past the composition table (len {})",
                            compositions.len()
                        ),
                    ));
                }
            }
            let (regime_line, token) = table
                .take_str("regime")?
                .ok_or_else(|| SpecError::new(phase_line, "[[phase]] needs `regime`"))?;
            let regime = parse_regime(&token)
                .ok_or_else(|| SpecError::new(regime_line, format!("unknown regime `{token}`")))?;
            if let Regime::Eclipse { group } = regime {
                if group >= 2 {
                    return Err(SpecError::new(
                        regime_line,
                        format!("`eclipse({group})`: only groups 0 and 1 exist"),
                    ));
                }
            }
            let mut phase = PhaseSpec::new(rounds, strategy, regime);
            if let Some((line, nu)) = table.take_f64("adversary_fraction")? {
                let mut cfg = base;
                cfg.adversary_fraction = nu;
                cfg.validate()
                    .map_err(|e| SpecError::new(line, e.to_string()))?;
                phase = phase.with_power(nu);
            }
            if let Some((line, p)) = table.take_f64("hardness")? {
                let mut cfg = base;
                cfg.hardness = p;
                cfg.validate()
                    .map_err(|e| SpecError::new(line, e.to_string()))?;
                phase = phase.with_hardness(p);
            }
            if let Some((line, d)) = table.take_u64("detector_delta")? {
                if d == 0 || d > base.delta {
                    return Err(SpecError::new(
                        line,
                        format!("`detector_delta` = {d} must lie in [1, Δ = {}]", base.delta),
                    ));
                }
                phase = phase.with_detector_delta(d);
            }
            table.expect_empty("[[phase]]")?;
            phases.push(phase);
        }

        // [stationary]
        let stationary = match root.take_table("stationary")? {
            None => None,
            Some((line, mut table)) => {
                let (strategy_line, token) = table
                    .take_str("strategy")?
                    .ok_or_else(|| SpecError::new(line, "[stationary] needs `strategy`"))?;
                let strategy = parse_strategy(&token).ok_or_else(|| {
                    SpecError::new(strategy_line, format!("unknown strategy `{token}`"))
                })?;
                if let StrategyKind::Composed(i) = strategy {
                    if i >= compositions.len() {
                        return Err(SpecError::new(
                            strategy_line,
                            format!(
                                "`composed({i})` indexes past the composition table (len {})",
                                compositions.len()
                            ),
                        ));
                    }
                }
                let (rounds_line, rounds) = table
                    .take_u64("rounds")?
                    .ok_or_else(|| SpecError::new(line, "[stationary] needs `rounds`"))?;
                if rounds == 0 {
                    return Err(SpecError::new(rounds_line, "`rounds` must be at least 1"));
                }
                table.expect_empty("[stationary]")?;
                Some((line, ExperimentMode::Stationary { strategy, rounds }))
            }
        };

        let mode = match (phases.is_empty(), stationary) {
            (false, None) => ExperimentMode::Scenario(phases),
            (true, Some((_, mode))) => mode,
            (true, None) => {
                return Err(SpecError::whole(
                    "spec needs either [[phase]] tables or a [stationary] table",
                ))
            }
            (false, Some((line, _))) => {
                return Err(SpecError::new(
                    line,
                    "spec has both [[phase]] tables and a [stationary] table; pick one",
                ))
            }
        };

        // Positioned rejection of the markov backend outside its
        // tractable regime (validate() re-checks the same conditions
        // without positions for patched specs).
        if run.backend == BackendKind::Markov {
            let line = backend_line.unwrap_or(0);
            match &mode {
                ExperimentMode::Scenario(_) => {
                    return Err(SpecError::new(
                        line,
                        "`backend = \"markov\"` needs a [stationary] table; scenario cells only support `backend = \"montecarlo\"`",
                    ))
                }
                ExperimentMode::Stationary { strategy, .. }
                    if !matches!(strategy, StrategyKind::PrivateChain) =>
                {
                    return Err(SpecError::new(
                        line,
                        format!(
                            "`backend = \"markov\"` models the private-chain race; strategy `{}` needs `backend = \"montecarlo\"`",
                            strategy_token(*strategy)
                        ),
                    ))
                }
                ExperimentMode::Stationary { .. } => {}
            }
        }

        // [sweep]
        let sweep = match root.take_table("sweep")? {
            None => None,
            Some((line, mut table)) => {
                let seed = table
                    .take_u64("seed")?
                    .ok_or_else(|| SpecError::new(line, "[sweep] needs `seed`"))?
                    .1;
                let mut axes = Vec::new();
                for (axis_line, mut axis_table) in table.take_array_of_tables("axis")? {
                    let label = axis_table
                        .take_str("label")?
                        .ok_or_else(|| SpecError::new(axis_line, "[[sweep.axis]] needs `label`"))?
                        .1;
                    let mut cells = Vec::new();
                    for (cell_line, mut cell_table) in axis_table.take_array_of_tables("cell")? {
                        let cell_label = cell_table
                            .take_str("label")?
                            .ok_or_else(|| {
                                SpecError::new(cell_line, "[[sweep.axis.cell]] needs `label`")
                            })?
                            .1;
                        let patches = match cell_table.take("patch") {
                            None => Vec::new(),
                            Some((_, SpecValue::Table(patch))) => patch
                                .entries
                                .into_iter()
                                .map(|e| (e.key, e.value))
                                .collect(),
                            Some((patch_line, other)) => {
                                return Err(SpecError::new(
                                    patch_line,
                                    format!(
                                        "`patch` must be an inline table, got a {}",
                                        other.type_name()
                                    ),
                                ))
                            }
                        };
                        cell_table.expect_empty("[[sweep.axis.cell]]")?;
                        cells.push(SweepCell {
                            label: cell_label,
                            patches,
                        });
                    }
                    if cells.is_empty() {
                        return Err(SpecError::new(
                            axis_line,
                            "every sweep axis needs at least one [[sweep.axis.cell]]",
                        ));
                    }
                    axis_table.expect_empty("[[sweep.axis]]")?;
                    axes.push(SweepAxis { label, cells });
                }
                if axes.is_empty() {
                    return Err(SpecError::new(
                        line,
                        "[sweep] needs at least one [[sweep.axis]]",
                    ));
                }
                table.expect_empty("[sweep]")?;
                Some(SweepSpec { seed, axes })
            }
        };

        root.expect_empty("the spec document")?;
        let spec = ExperimentSpec {
            run,
            base,
            compositions,
            mode,
            sweep,
            fuzz,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Re-checks the semantic invariants (used after programmatic
    /// mutation or sweep patching; [`ExperimentSpec::parse`] reports
    /// the same conditions with source positions).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.run.trials == 0 {
            return Err(SpecError::whole("experiment.trials must be at least 1"));
        }
        self.base
            .validate()
            .map_err(|e| SpecError::whole(e.to_string()))?;
        match &self.mode {
            ExperimentMode::Scenario(_) => {
                self.scenario()?;
            }
            ExperimentMode::Stationary { strategy, rounds } => {
                if *rounds == 0 {
                    return Err(SpecError::whole("stationary.rounds must be at least 1"));
                }
                if let StrategyKind::Composed(i) = strategy {
                    if *i >= self.compositions.len() {
                        return Err(SpecError::whole(format!(
                            "stationary strategy `composed({i})` indexes past the composition table (len {})",
                            self.compositions.len()
                        )));
                    }
                }
            }
        }
        if self.run.backend == BackendKind::Markov {
            // Surfaces scenario-mode and strategy conflicts, estimator
            // conflicts, and out-of-range thresholds with the exact
            // plan's own checks.
            ExactPlan::from_spec(self)?;
        }
        if self.run.estimator == EstimatorKind::Splitting {
            // Surfaces scenario-mode conflicts, missing thresholds, and
            // bad level schedules with the splitting plan's own checks.
            SplittingPlan::from_spec(self)?;
        } else if self.run.splitting != SplittingSettings::default() {
            return Err(SpecError::whole(
                "splitting_levels / splitting_effort need `estimator = \"splitting\"`",
            ));
        }
        if self.run.batch_width == 0 || self.run.batch_width > MAX_BATCH_WIDTH {
            return Err(SpecError::whole(format!(
                "experiment.batch_width must lie in 1..={MAX_BATCH_WIDTH}, got {}",
                self.run.batch_width
            )));
        }
        if self.run.batch_width > 1 && !matches!(self.mode, ExperimentMode::Stationary { .. }) {
            return Err(SpecError::whole(
                "experiment.batch_width > 1 needs a [stationary] table; scenario cells run the scalar engine",
            ));
        }
        if let Some(half_width) = self.run.stop_half_width {
            if !(half_width > 0.0 && half_width < 1.0) {
                return Err(SpecError::whole(format!(
                    "experiment.stop_half_width must lie in (0, 1), got {half_width}"
                )));
            }
            if self.run.thresholds.is_empty() {
                return Err(SpecError::whole(
                    "experiment.stop_half_width needs at least one consistency threshold",
                ));
            }
            if !matches!(self.mode, ExperimentMode::Stationary { .. }) {
                return Err(SpecError::whole(
                    "experiment.stop_half_width needs a [stationary] table; scenario cells run their fixed budget",
                ));
            }
        }
        Ok(())
    }

    /// Builds the validated [`Scenario`] of a scenario-mode spec.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] for stationary-mode specs or scenario
    /// validation failures.
    pub fn scenario(&self) -> Result<Scenario, SpecError> {
        let ExperimentMode::Scenario(phases) = &self.mode else {
            return Err(SpecError::whole(
                "a stationary spec has no scenario; use TrialPlan::from_spec",
            ));
        };
        Scenario::with_compositions(self.base, phases.clone(), self.compositions.clone())
            .map_err(|e| SpecError::whole(e.to_string()))
    }

    /// Builds the runnable plan for this (concrete) spec.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if validation fails.
    pub fn plan(&self) -> Result<ExperimentPlan, SpecError> {
        match &self.mode {
            ExperimentMode::Scenario(_) => {
                self.validate()?;
                Ok(ExperimentPlan::Scenario(ScenarioPlan::from_spec(self)?))
            }
            ExperimentMode::Stationary { strategy, .. } => {
                self.validate()?;
                if self.run.backend == BackendKind::Markov {
                    return Ok(ExperimentPlan::Exact(ExactPlan::from_spec(self)?));
                }
                let splitting = match self.run.estimator {
                    EstimatorKind::Wilson => None,
                    EstimatorKind::Splitting => Some(SplittingPlan::from_spec(self)?),
                };
                Ok(ExperimentPlan::Stationary {
                    plan: TrialPlan::from_spec(self)?,
                    strategy: *strategy,
                    compositions: self.compositions.clone(),
                    splitting,
                })
            }
        }
    }

    /// The sweep grid's shape (cells per axis, outermost first); empty
    /// for a sweep-free spec.
    #[must_use]
    pub fn sweep_shape(&self) -> Vec<usize> {
        self.sweep
            .as_ref()
            .map(|s| s.axes.iter().map(|a| a.cells.len()).collect())
            .unwrap_or_default()
    }

    /// Expands the sweep grid into concrete cells, in odometer order
    /// (last axis fastest). Each cell's spec has its patches applied,
    /// its master seed drawn from the sweep's SplitMix64 stream, and
    /// `sweep`/`fuzz` cleared. A sweep-free spec yields one unlabelled
    /// cell.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if a patch path is unknown or a patched
    /// cell fails validation.
    pub fn expand(&self) -> Result<Vec<ExperimentCell>, SpecError> {
        let Some(sweep) = &self.sweep else {
            let mut spec = self.clone();
            spec.fuzz = None;
            return Ok(vec![ExperimentCell {
                labels: Vec::new(),
                spec,
            }]);
        };
        let shape: Vec<usize> = sweep.axes.iter().map(|a| a.cells.len()).collect();
        let mut seeds = SplitMix64::new(sweep.seed);
        let mut cells = Vec::new();
        let mut idx = vec![0usize; shape.len()];
        loop {
            let mut spec = self.clone();
            spec.sweep = None;
            spec.fuzz = None;
            let mut labels = Vec::with_capacity(idx.len());
            for (axis, &i) in sweep.axes.iter().zip(&idx) {
                let cell = &axis.cells[i];
                labels.push(cell.label.clone());
                for (path, value) in &cell.patches {
                    spec.apply_patch(path, value).map_err(|e| {
                        SpecError::new(
                            e.line,
                            format!("sweep cell `{}`: {}", cell.label, e.message),
                        )
                    })?;
                }
            }
            spec.base.seed = seeds.next_u64();
            spec.validate().map_err(|e| {
                SpecError::whole(format!("sweep cell `{}`: {}", labels.join("/"), e.message))
            })?;
            cells.push(ExperimentCell { labels, spec });

            // Odometer increment, last axis fastest.
            let mut axis = idx.len();
            loop {
                if axis == 0 {
                    return Ok(cells);
                }
                axis -= 1;
                idx[axis] += 1;
                if idx[axis] < shape[axis] {
                    break;
                }
                idx[axis] = 0;
            }
        }
    }

    /// Applies one dotted-path patch (`base.adversary_fraction`,
    /// `phase.1.strategy`, `composition.0.weights`,
    /// `stationary.strategy`, `experiment.trials`, …) to this spec.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] (line 0) for unknown paths or
    /// type-mismatched values.
    pub fn apply_patch(&mut self, path: &str, value: &SpecValue) -> Result<(), SpecError> {
        let segments: Vec<&str> = path.split('.').collect();
        let bad_path = || SpecError::whole(format!("unknown patch path `{path}`"));
        let bad_value = |want: &str| {
            SpecError::whole(format!(
                "patch `{path}` needs a {want}, got a {}",
                value.type_name()
            ))
        };
        match segments.as_slice() {
            ["base", field] => {
                match *field {
                    "n_miners" => {
                        self.base.n_miners =
                            patch_u64(value).ok_or_else(|| bad_value("non-negative integer"))?
                    }
                    "delta" => {
                        self.base.delta =
                            patch_u64(value).ok_or_else(|| bad_value("non-negative integer"))?
                    }
                    "seed" => {
                        self.base.seed =
                            patch_u64(value).ok_or_else(|| bad_value("non-negative integer"))?
                    }
                    "adversary_fraction" => {
                        self.base.adversary_fraction =
                            value_as_f64(value).ok_or_else(|| bad_value("number"))?;
                    }
                    "hardness" => {
                        self.base.hardness =
                            value_as_f64(value).ok_or_else(|| bad_value("number"))?;
                    }
                    #[allow(clippy::cast_precision_loss)]
                    "c" => {
                        let c = value_as_f64(value).ok_or_else(|| bad_value("number"))?;
                        if !(c > 0.0) || c.is_nan() {
                            return Err(SpecError::whole(format!(
                                "patch `{path}`: c must be positive, got {c}"
                            )));
                        }
                        self.base.hardness =
                            1.0 / (c * self.base.n_miners as f64 * self.base.delta as f64);
                    }
                    _ => return Err(bad_path()),
                }
                Ok(())
            }
            ["experiment", "trials"] => {
                let trials = patch_u64(value).ok_or_else(|| bad_value("non-negative integer"))?;
                self.run.trials = trials;
                Ok(())
            }
            ["experiment", "estimator"] => {
                let SpecValue::Str(token) = value else {
                    return Err(bad_value("estimator string"));
                };
                self.run.estimator = token
                    .parse()
                    .map_err(|e: UnknownToken| SpecError::whole(format!("patch `{path}`: {e}")))?;
                Ok(())
            }
            ["experiment", "backend"] => {
                let SpecValue::Str(token) = value else {
                    return Err(bad_value("backend string"));
                };
                self.run.backend = token
                    .parse()
                    .map_err(|e: UnknownToken| SpecError::whole(format!("patch `{path}`: {e}")))?;
                Ok(())
            }
            ["experiment", "splitting_effort"] => {
                self.run.splitting.effort =
                    patch_u64(value).ok_or_else(|| bad_value("non-negative integer"))?;
                Ok(())
            }
            ["experiment", "batch_width"] => {
                self.run.batch_width =
                    patch_u64(value).ok_or_else(|| bad_value("non-negative integer"))?;
                Ok(())
            }
            ["experiment", "stop_half_width"] => {
                self.run.stop_half_width =
                    Some(value_as_f64(value).ok_or_else(|| bad_value("number"))?);
                Ok(())
            }
            ["experiment", "splitting_levels"] => {
                let SpecValue::Array(items) = value else {
                    return Err(bad_value("array of integers"));
                };
                let levels = items
                    .iter()
                    .map(|item| patch_u64(item).ok_or_else(|| bad_value("array of integers")))
                    .collect::<Result<_, _>>()?;
                self.run.splitting.levels = Some(levels);
                Ok(())
            }
            ["stationary", field] => {
                let ExperimentMode::Stationary { strategy, rounds } = &mut self.mode else {
                    return Err(SpecError::whole(format!(
                        "patch `{path}` needs a [stationary] spec"
                    )));
                };
                match *field {
                    "strategy" => {
                        let SpecValue::Str(token) = value else {
                            return Err(bad_value("strategy string"));
                        };
                        *strategy = parse_strategy(token).ok_or_else(|| {
                            SpecError::whole(format!("patch `{path}`: unknown strategy `{token}`"))
                        })?;
                    }
                    "rounds" => {
                        *rounds =
                            patch_u64(value).ok_or_else(|| bad_value("non-negative integer"))?;
                    }
                    _ => return Err(bad_path()),
                }
                Ok(())
            }
            ["phase", index, field] => {
                let i: usize = index.parse().map_err(|_| bad_path())?;
                let ExperimentMode::Scenario(phases) = &mut self.mode else {
                    return Err(SpecError::whole(format!(
                        "patch `{path}` needs [[phase]] tables"
                    )));
                };
                let phase = phases.get_mut(i).ok_or_else(|| {
                    SpecError::whole(format!("patch `{path}`: phase index {i} out of range"))
                })?;
                match *field {
                    "rounds" => {
                        phase.rounds =
                            patch_u64(value).ok_or_else(|| bad_value("non-negative integer"))?;
                    }
                    "strategy" => {
                        let SpecValue::Str(token) = value else {
                            return Err(bad_value("strategy string"));
                        };
                        phase.strategy = parse_strategy(token).ok_or_else(|| {
                            SpecError::whole(format!("patch `{path}`: unknown strategy `{token}`"))
                        })?;
                    }
                    "regime" => {
                        let SpecValue::Str(token) = value else {
                            return Err(bad_value("regime string"));
                        };
                        phase.regime = parse_regime(token).ok_or_else(|| {
                            SpecError::whole(format!("patch `{path}`: unknown regime `{token}`"))
                        })?;
                    }
                    "adversary_fraction" => {
                        phase.adversary_fraction =
                            Some(value_as_f64(value).ok_or_else(|| bad_value("number"))?);
                    }
                    "hardness" => {
                        phase.hardness =
                            Some(value_as_f64(value).ok_or_else(|| bad_value("number"))?);
                    }
                    "detector_delta" => {
                        phase.detector_delta = Some(
                            patch_u64(value).ok_or_else(|| bad_value("non-negative integer"))?,
                        );
                    }
                    _ => return Err(bad_path()),
                }
                Ok(())
            }
            ["composition", index, field] => {
                let i: usize = index.parse().map_err(|_| bad_path())?;
                let composition = self.compositions.get(i).ok_or_else(|| {
                    SpecError::whole(format!(
                        "patch `{path}`: composition index {i} out of range"
                    ))
                })?;
                let mut subs = composition.subs().to_vec();
                let SpecValue::Array(items) = value else {
                    return Err(bad_value("array"));
                };
                if items.len() != subs.len() {
                    return Err(SpecError::whole(format!(
                        "patch `{path}`: {} entries for {} subs",
                        items.len(),
                        subs.len()
                    )));
                }
                match *field {
                    "weights" => {
                        for (sub, item) in subs.iter_mut().zip(items) {
                            sub.weight =
                                patch_u64(item).ok_or_else(|| bad_value("array of integers"))?;
                        }
                    }
                    "strategies" => {
                        for (sub, item) in subs.iter_mut().zip(items) {
                            let SpecValue::Str(token) = item else {
                                return Err(bad_value("array of strategy strings"));
                            };
                            let strategy = parse_strategy(token).ok_or_else(|| {
                                SpecError::whole(format!(
                                    "patch `{path}`: unknown strategy `{token}`"
                                ))
                            })?;
                            if matches!(strategy, StrategyKind::Composed(_)) {
                                return Err(SpecError::whole(format!(
                                    "patch `{path}`: compositions cannot nest `composed(i)`"
                                )));
                            }
                            sub.strategy = strategy;
                        }
                    }
                    _ => return Err(bad_path()),
                }
                self.compositions[i] = Composition::new(subs)
                    .map_err(|e| SpecError::whole(format!("patch `{path}`: {e}")))?;
                Ok(())
            }
            _ => Err(bad_path()),
        }
    }

    /// Serializes the spec into its canonical TOML document;
    /// [`ExperimentSpec::parse`] of the output yields an equal spec.
    #[must_use]
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("[experiment]\n");
        out.push_str(&format!("trials = {}\n", self.run.trials));
        if self.run.threads != 0 {
            out.push_str(&format!("threads = {}\n", self.run.threads));
        }
        if !self.run.thresholds.is_empty() {
            let list: Vec<String> = self.run.thresholds.iter().map(u64::to_string).collect();
            out.push_str(&format!("thresholds = [{}]\n", list.join(", ")));
        }
        if self.run.backend != BackendKind::MonteCarlo {
            out.push_str(&format!(
                "backend = {}\n",
                emit_str(&self.run.backend.to_string())
            ));
        }
        if self.run.estimator != EstimatorKind::Wilson {
            out.push_str(&format!(
                "estimator = {}\n",
                emit_str(&self.run.estimator.to_string())
            ));
        }
        if let Some(levels) = &self.run.splitting.levels {
            let list: Vec<String> = levels.iter().map(u64::to_string).collect();
            out.push_str(&format!("splitting_levels = [{}]\n", list.join(", ")));
        }
        if self.run.splitting.effort != 0 {
            out.push_str(&format!(
                "splitting_effort = {}\n",
                self.run.splitting.effort
            ));
        }
        if self.run.batch_width != 1 {
            out.push_str(&format!("batch_width = {}\n", self.run.batch_width));
        }
        if let Some(half_width) = self.run.stop_half_width {
            out.push_str(&format!("stop_half_width = {}\n", emit_f64(half_width)));
        }
        if let Some(fuzz) = &self.fuzz {
            out.push_str("\n[fuzz]\n");
            out.push_str(&format!("master_seed = {}\n", fuzz.master_seed));
            out.push_str(&format!("case = {}\n", fuzz.case));
            out.push_str(&format!("invariant = {}\n", emit_str(&fuzz.invariant)));
            out.push_str(&format!("detail = {}\n", emit_str(&fuzz.detail)));
        }
        out.push_str("\n[base]\n");
        out.push_str(&format!("n_miners = {}\n", self.base.n_miners));
        out.push_str(&format!(
            "adversary_fraction = {}\n",
            emit_f64(self.base.adversary_fraction)
        ));
        out.push_str(&format!("hardness = {}\n", emit_f64(self.base.hardness)));
        out.push_str(&format!("delta = {}\n", self.base.delta));
        out.push_str(&format!("seed = {}\n", self.base.seed));
        match &self.mode {
            ExperimentMode::Stationary { strategy, rounds } => {
                out.push_str("\n[stationary]\n");
                out.push_str(&format!(
                    "strategy = {}\n",
                    emit_str(&strategy_token(*strategy))
                ));
                out.push_str(&format!("rounds = {rounds}\n"));
            }
            ExperimentMode::Scenario(_) => {}
        }
        for composition in &self.compositions {
            out.push_str("\n[[composition]]\nsubs = [");
            for (i, sub) in composition.subs().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{ strategy = {}, weight = {} }}",
                    emit_str(&strategy_token(sub.strategy)),
                    sub.weight
                ));
            }
            out.push_str("]\n");
        }
        if let ExperimentMode::Scenario(phases) = &self.mode {
            for phase in phases {
                out.push_str("\n[[phase]]\n");
                out.push_str(&format!("rounds = {}\n", phase.rounds));
                out.push_str(&format!(
                    "strategy = {}\n",
                    emit_str(&strategy_token(phase.strategy))
                ));
                out.push_str(&format!(
                    "regime = {}\n",
                    emit_str(&regime_token(phase.regime))
                ));
                if let Some(nu) = phase.adversary_fraction {
                    out.push_str(&format!("adversary_fraction = {}\n", emit_f64(nu)));
                }
                if let Some(p) = phase.hardness {
                    out.push_str(&format!("hardness = {}\n", emit_f64(p)));
                }
                if let Some(d) = phase.detector_delta {
                    out.push_str(&format!("detector_delta = {d}\n"));
                }
            }
        }
        if let Some(sweep) = &self.sweep {
            out.push_str("\n[sweep]\n");
            out.push_str(&format!("seed = {}\n", sweep.seed));
            for axis in &sweep.axes {
                out.push_str("\n[[sweep.axis]]\n");
                out.push_str(&format!("label = {}\n", emit_str(&axis.label)));
                for cell in &axis.cells {
                    out.push_str("\n[[sweep.axis.cell]]\n");
                    out.push_str(&format!("label = {}\n", emit_str(&cell.label)));
                    if !cell.patches.is_empty() {
                        out.push_str("patch = { ");
                        for (i, (path, value)) in cell.patches.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            out.push_str(&format!("{} = {}", emit_str(path), emit_value(value)));
                        }
                        out.push_str(" }\n");
                    }
                }
            }
        }
        out
    }
}

fn patch_u64(value: &SpecValue) -> Option<u64> {
    match value {
        SpecValue::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn emit_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(ch),
        }
    }
    out.push('"');
    out
}

/// Rust's shortest-round-trip float formatting, kept recognisably a
/// float (`0` would re-parse as an integer, breaking the codec's
/// parse∘serialize identity on raw patch values).
fn emit_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

fn emit_value(value: &SpecValue) -> String {
    match value {
        SpecValue::Int(i) => i.to_string(),
        SpecValue::Float(f) => emit_f64(*f),
        SpecValue::Bool(b) => b.to_string(),
        SpecValue::Str(s) => emit_str(s),
        SpecValue::Array(items) => {
            let inner: Vec<String> = items.iter().map(emit_value).collect();
            format!("[{}]", inner.join(", "))
        }
        SpecValue::Table(table) => {
            let inner: Vec<String> = table
                .entries
                .iter()
                .map(|e| format!("{} = {}", emit_str(&e.key), emit_value(&e.value)))
                .collect();
            format!("{{ {} }}", inner.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCENARIO_SPEC: &str = r#"
        # A three-phase attack-window scenario.
        [experiment]
        trials = 3
        thresholds = [6, 12]

        [base]
        n_miners = 100
        delta = 4
        c = 1.0
        adversary_fraction = 0.1
        seed = 77

        [[composition]]
        subs = [{ strategy = "balance", weight = 1 }, { strategy = "selfish", weight = 1 }]

        [[phase]]
        rounds = 500
        strategy = "honest"
        regime = "calm"

        [[phase]]
        rounds = 500
        strategy = "composed(0)"
        regime = "eclipse(1)"
        adversary_fraction = 0.4
        detector_delta = 2

        [[phase]]
        rounds = 500
        strategy = "honest"
        regime = "calm"
    "#;

    const STATIONARY_SPEC: &str = r#"
        [experiment]
        trials = 2
        thresholds = [12]

        [base]
        n_miners = 100
        delta = 4
        c = 1.0
        adversary_fraction = 0.3
        seed = 9

        [stationary]
        strategy = "private-chain"
        rounds = 1000
    "#;

    const SPLITTING_SPEC: &str = r#"
        [experiment]
        trials = 2
        thresholds = [4, 8]
        estimator = "splitting"
        splitting_levels = [2, 5]
        splitting_effort = 16

        [base]
        n_miners = 100
        delta = 4
        c = 1.0
        adversary_fraction = 0.3
        seed = 9

        [stationary]
        strategy = "private-chain"
        rounds = 1000
    "#;

    #[test]
    fn parses_splitting_estimator_settings() {
        let spec = ExperimentSpec::parse(SPLITTING_SPEC).unwrap();
        assert_eq!(spec.run.estimator, EstimatorKind::Splitting);
        assert_eq!(spec.run.splitting.levels, Some(vec![2, 5]));
        assert_eq!(spec.run.splitting.effort, 16);
        let plan = SplittingPlan::from_spec(&spec).unwrap();
        assert_eq!(plan.effort, 16);
        assert_eq!(plan.thresholds, vec![4, 8]);
        assert_eq!(plan.stage_levels(), vec![2, 5, 9]);
    }

    #[test]
    fn splitting_effort_defaults_to_trials() {
        let source = SPLITTING_SPEC.replace("splitting_effort = 16\n", "");
        let spec = ExperimentSpec::parse(&source).unwrap();
        assert_eq!(spec.run.splitting.effort, 0);
        let plan = SplittingPlan::from_spec(&spec).unwrap();
        assert_eq!(plan.effort, spec.run.trials);
    }

    /// Unwraps the Wilson variant of an executed cell.
    fn wilson(outcome: CellOutcome) -> MonteCarloRun {
        let Estimate::Wilson(run) = outcome.estimate else {
            panic!("expected a Wilson estimate, got {:?}", outcome.estimate)
        };
        run
    }

    #[test]
    fn splitting_spec_executes_the_splitting_estimator() {
        let spec = ExperimentSpec::parse(SPLITTING_SPEC).unwrap();
        let outcome = spec.plan().unwrap().execute();
        assert_eq!(outcome.estimate.backend(), BackendKind::MonteCarlo);
        let Estimate::Splitting(run) = outcome.estimate else {
            panic!("splitting estimator selected")
        };
        let ladder: Vec<u64> = run.levels.iter().map(|s| s.level).collect();
        assert_eq!(ladder, vec![2, 5, 9]);
        assert!(run.estimate_at(4).is_some());
        assert!(run.estimate_at(8).is_some());
    }

    #[test]
    fn wilson_specs_execute_the_wilson_estimator() {
        let spec = ExperimentSpec::parse(STATIONARY_SPEC).unwrap();
        assert_eq!(spec.run.estimator, EstimatorKind::Wilson);
        let run = wilson(spec.plan().unwrap().execute());
        assert_eq!(run.aggregate.trials, 2);
    }

    #[test]
    fn rejects_unknown_estimator() {
        let source = SPLITTING_SPEC.replace("\"splitting\"", "\"bootstrap\"");
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(err.to_string().contains("unknown estimator"), "{err}");
    }

    #[test]
    fn rejects_splitting_for_scenario_specs() {
        let source = SCENARIO_SPEC.replace(
            "thresholds = [6, 12]",
            "thresholds = [6, 12]\n        estimator = \"splitting\"",
        );
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(
            err.to_string().contains("scenario specs only support"),
            "{err}"
        );
    }

    #[test]
    fn rejects_orphan_splitting_keys() {
        let source = SPLITTING_SPEC.replace("estimator = \"splitting\"\n", "");
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(
            err.to_string().contains("need `estimator = \"splitting\"`"),
            "{err}"
        );
    }

    #[test]
    fn rejects_zero_splitting_effort() {
        let source = SPLITTING_SPEC.replace("splitting_effort = 16", "splitting_effort = 0");
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
    }

    #[test]
    fn rejects_splitting_levels_past_largest_threshold() {
        let source = SPLITTING_SPEC.replace("splitting_levels = [2, 5]", "splitting_levels = [9]");
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(err.to_string().contains("past the largest"), "{err}");
    }

    #[test]
    fn patches_reach_splitting_settings() {
        let mut spec = ExperimentSpec::parse(STATIONARY_SPEC).unwrap();
        spec.apply_patch("experiment.estimator", &SpecValue::Str("splitting".into()))
            .unwrap();
        spec.apply_patch("experiment.splitting_effort", &SpecValue::Int(32))
            .unwrap();
        spec.apply_patch(
            "experiment.splitting_levels",
            &SpecValue::Array(vec![SpecValue::Int(3), SpecValue::Int(7)]),
        )
        .unwrap();
        assert_eq!(spec.run.estimator, EstimatorKind::Splitting);
        assert_eq!(spec.run.splitting.effort, 32);
        assert_eq!(spec.run.splitting.levels, Some(vec![3, 7]));
        spec.validate().unwrap();

        let err = spec
            .apply_patch("experiment.estimator", &SpecValue::Str("guess".into()))
            .unwrap_err();
        assert!(err.to_string().contains("unknown estimator"), "{err}");
    }

    #[test]
    fn splitting_spec_round_trips_through_toml() {
        let spec = ExperimentSpec::parse(SPLITTING_SPEC).unwrap();
        let reparsed = ExperimentSpec::parse(&spec.to_toml()).unwrap();
        assert_eq!(spec, reparsed);
        // The degenerate empty schedule must survive the round trip too.
        let mut degenerate = spec.clone();
        degenerate.run.splitting.levels = Some(Vec::new());
        let reparsed = ExperimentSpec::parse(&degenerate.to_toml()).unwrap();
        assert_eq!(degenerate, reparsed);
    }

    #[test]
    fn parses_a_scenario_spec() {
        let spec = ExperimentSpec::parse(SCENARIO_SPEC).unwrap();
        assert_eq!(spec.run.trials, 3);
        assert_eq!(spec.run.thresholds, vec![6, 12]);
        assert_eq!(spec.base.n_miners, 100);
        assert!((spec.base.hardness - 1.0 / (100.0 * 4.0)).abs() < 1e-15);
        assert_eq!(spec.compositions.len(), 1);
        let ExperimentMode::Scenario(phases) = &spec.mode else {
            panic!("scenario mode expected")
        };
        assert_eq!(phases.len(), 3);
        assert_eq!(phases[1].strategy, StrategyKind::Composed(0));
        assert_eq!(phases[1].regime, Regime::Eclipse { group: 1 });
        assert_eq!(phases[1].adversary_fraction, Some(0.4));
        assert_eq!(phases[1].detector_delta, Some(2));
        let scenario = spec.scenario().unwrap();
        assert_eq!(scenario.total_rounds(), 1500);
    }

    #[test]
    fn scenario_spec_plan_matches_hand_built_plan() {
        let spec = ExperimentSpec::parse(SCENARIO_SPEC).unwrap();
        let from_spec = ScenarioPlan::from_spec(&spec)
            .unwrap()
            .with_threads(1)
            .run();
        let scenario = Scenario::with_compositions(
            spec.base,
            vec![
                PhaseSpec::new(500, StrategyKind::Honest, Regime::Calm),
                PhaseSpec::new(500, StrategyKind::Composed(0), Regime::Eclipse { group: 1 })
                    .with_power(0.4)
                    .with_detector_delta(2),
                PhaseSpec::new(500, StrategyKind::Honest, Regime::Calm),
            ],
            spec.compositions.clone(),
        )
        .unwrap();
        let by_hand = ScenarioPlan::new(scenario, 3)
            .unwrap()
            .thresholds(vec![6, 12])
            .with_threads(1)
            .run();
        assert_eq!(from_spec.aggregate, by_hand.aggregate);
    }

    #[test]
    fn stationary_spec_runs_the_bare_adversary() {
        let spec = ExperimentSpec::parse(STATIONARY_SPEC).unwrap();
        let run = wilson(spec.plan().unwrap().execute());
        let delta = spec.base.delta;
        let by_hand = TrialPlan::new(spec.base, 1000, 2)
            .unwrap()
            .thresholds(vec![12])
            .run(move |_| PrivateChainAdversary::new(delta));
        assert_eq!(run.aggregate, by_hand.aggregate);
    }

    #[test]
    fn batch_width_key_drives_the_lockstep_engine() {
        // A batched spec run must be bit-identical to the scalar spec
        // run: `batch_width` is a performance knob, never a semantic
        // one.
        let scalar = ExperimentSpec::parse(STATIONARY_SPEC).unwrap();
        let mut source = String::from(STATIONARY_SPEC);
        source = source.replace("trials = 2", "trials = 6\nbatch_width = 8");
        let batched = ExperimentSpec::parse(&source).unwrap();
        assert_eq!(batched.run.batch_width, 8);
        let mut scalar = scalar;
        scalar.run.trials = 6;
        assert_eq!(
            wilson(scalar.plan().unwrap().execute()).aggregate,
            wilson(batched.plan().unwrap().execute()).aggregate,
        );
    }

    #[test]
    fn batch_width_and_stop_half_width_are_range_checked() {
        for (patch, needle) in [
            ("batch_width = 0", "batch_width"),
            ("batch_width = 65", "batch_width"),
            ("stop_half_width = 0.0", "stop_half_width"),
            ("stop_half_width = 1.5", "stop_half_width"),
        ] {
            let source = STATIONARY_SPEC.replace("trials = 2", &format!("trials = 2\n{patch}"));
            let err = ExperimentSpec::parse(&source).unwrap_err();
            assert!(err.message.contains(needle), "{patch}: {err}");
            assert!(err.line > 0, "{patch}: range errors carry positions");
        }
        // The stopping rule needs a threshold to watch.
        let source = STATIONARY_SPEC.replace("thresholds = [12]", "stop_half_width = 0.05");
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(err.message.contains("threshold"), "{err}");
    }

    #[test]
    fn batching_and_stopping_are_stationary_only() {
        let source = SCENARIO_SPEC.replace("trials = 3", "trials = 3\nbatch_width = 8");
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(err.message.contains("stationary"), "{err}");
        let source = SCENARIO_SPEC.replace("trials = 3", "trials = 3\nstop_half_width = 0.05");
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(err.message.contains("stationary"), "{err}");
    }

    #[test]
    fn stopping_spec_round_trips_and_stops_early() {
        let source = STATIONARY_SPEC.replace(
            "trials = 2",
            "trials = 4096\nbatch_width = 8\nstop_half_width = 0.2",
        );
        let spec = ExperimentSpec::parse(&source).unwrap();
        let reparsed = ExperimentSpec::parse(&spec.to_toml()).unwrap();
        assert_eq!(spec, reparsed);
        let run = wilson(spec.plan().unwrap().execute());
        assert!(
            run.aggregate.trials < 4096,
            "a 0.2 half-width is cheap; the rule must stop early (ran {})",
            run.aggregate.trials
        );
        let hw = run.aggregate.half_width(12, crate::montecarlo::STOP_Z);
        assert!(hw.unwrap() <= 0.2, "stopped above the target: {hw:?}");
    }

    #[test]
    fn round_trip_through_toml_is_identity() {
        for source in [SCENARIO_SPEC, STATIONARY_SPEC] {
            let spec = ExperimentSpec::parse(source).unwrap();
            let emitted = spec.to_toml();
            let reparsed = ExperimentSpec::parse(&emitted)
                .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{emitted}"));
            assert_eq!(spec, reparsed, "round trip changed the spec:\n{emitted}");
        }
    }

    /// Randomized codec round-trip over the scenario × composition ×
    /// sweep space (the fuzz generator's job, but for the codec).
    #[test]
    fn randomized_round_trips() {
        let mut rng = SplitMix64::new(0x05EC_5EED);
        for case in 0..60 {
            let spec = random_spec(&mut rng);
            let emitted = spec.to_toml();
            let reparsed = ExperimentSpec::parse(&emitted)
                .unwrap_or_else(|e| panic!("case {case}: re-parse failed: {e}\n{emitted}"));
            assert_eq!(spec, reparsed, "case {case} round trip:\n{emitted}");
        }
    }

    fn random_spec(rng: &mut SplitMix64) -> ExperimentSpec {
        let n_miners = 40 + rng.next_below(200);
        let delta = 1 + rng.next_below(5);
        let nu = 0.05 * rng.next_below(10) as f64;
        let base = SimConfig::from_c(
            n_miners,
            delta,
            [0.5, 1.0, 2.0][rng.next_below(3) as usize],
            nu,
            rng.next_u64(),
        )
        .unwrap();
        let compositions = (0..rng.next_below(3))
            .map(|_| {
                let kinds = [
                    StrategyKind::Honest,
                    StrategyKind::PrivateChain,
                    StrategyKind::Balance,
                    StrategyKind::Selfish,
                ];
                let mut subs: Vec<SubSpec> = (0..1 + rng.next_below(3))
                    .map(|_| SubSpec::new(kinds[rng.next_below(4) as usize], rng.next_below(4)))
                    .collect();
                if subs.iter().all(|s| s.weight == 0) {
                    subs[0].weight = 1;
                }
                Composition::new(subs).unwrap()
            })
            .collect::<Vec<_>>();
        let mode = if rng.next_below(2) == 0 {
            let strategies = [
                StrategyKind::Honest,
                StrategyKind::PrivateChain,
                StrategyKind::Balance,
                StrategyKind::Selfish,
            ];
            ExperimentMode::Stationary {
                strategy: strategies[rng.next_below(4) as usize],
                rounds: 100 + rng.next_below(1_000),
            }
        } else {
            let phases = (0..1 + rng.next_below(3))
                .map(|_| {
                    let strategy = match rng.next_below(4 + compositions.len() as u64) {
                        0 => StrategyKind::Honest,
                        1 => StrategyKind::PrivateChain,
                        2 => StrategyKind::Balance,
                        3 => StrategyKind::Selfish,
                        i => StrategyKind::Composed((i - 4) as usize),
                    };
                    let regime = match rng.next_below(4) {
                        0 | 1 => Regime::Calm,
                        2 => Regime::Adversarial,
                        _ => Regime::Eclipse {
                            group: rng.next_below(2) as usize,
                        },
                    };
                    let mut phase = PhaseSpec::new(100 + rng.next_below(500), strategy, regime);
                    if rng.next_below(2) == 0 {
                        phase = phase.with_power(0.05 * rng.next_below(10) as f64);
                    }
                    if rng.next_below(3) == 0 {
                        phase = phase.with_detector_delta(1 + rng.next_below(delta));
                    }
                    phase
                })
                .collect();
            ExperimentMode::Scenario(phases)
        };
        let sweep = if rng.next_below(2) == 0 {
            Some(SweepSpec {
                seed: rng.next_u64(),
                axes: (0..1 + rng.next_below(2))
                    .map(|a| SweepAxis {
                        label: format!("axis{a}"),
                        cells: (0..1 + rng.next_below(3))
                            .map(|c| SweepCell {
                                label: format!("cell \"{c}\""),
                                patches: vec![(
                                    "base.adversary_fraction".into(),
                                    SpecValue::Float(0.05 * rng.next_below(10) as f64),
                                )],
                            })
                            .collect(),
                    })
                    .collect(),
            })
        } else {
            None
        };
        let fuzz = if rng.next_below(3) == 0 {
            Some(FuzzHeader {
                master_seed: rng.next_u64(),
                case: rng.next_below(10_000),
                invariant: "thread-count bit-identity".into(),
                detail: "line1\nline \"2\" \\ tab\t".into(),
            })
        } else {
            None
        };
        let thresholds: Vec<u64> = (0..rng.next_below(3)).map(|i| 6 * (i + 1)).collect();
        let stationary = matches!(mode, ExperimentMode::Stationary { .. });
        let (estimator, splitting) =
            if stationary && !thresholds.is_empty() && rng.next_below(3) == 0 {
                let max_t = *thresholds.iter().max().unwrap();
                let levels = match rng.next_below(3) {
                    0 => None,
                    1 => Some(Vec::new()),
                    _ => Some((1..=1 + rng.next_below(max_t)).collect()),
                };
                (
                    EstimatorKind::Splitting,
                    SplittingSettings {
                        levels,
                        effort: rng.next_below(2) * (4 + rng.next_below(60)),
                    },
                )
            } else {
                (EstimatorKind::Wilson, SplittingSettings::default())
            };
        let batch_width = if stationary {
            1 + rng.next_below(16)
        } else {
            1
        };
        let stop_half_width = if stationary && !thresholds.is_empty() && rng.next_below(3) == 0 {
            Some(0.01 * (1 + rng.next_below(20)) as f64)
        } else {
            None
        };
        let backend = if nu > 0.0
            && !thresholds.is_empty()
            && estimator == EstimatorKind::Wilson
            && matches!(
                mode,
                ExperimentMode::Stationary {
                    strategy: StrategyKind::PrivateChain,
                    ..
                }
            )
            && rng.next_below(3) == 0
        {
            BackendKind::Markov
        } else {
            BackendKind::MonteCarlo
        };
        let spec = ExperimentSpec {
            run: RunSettings {
                trials: 1 + rng.next_below(8),
                threads: rng.next_below(3) as usize,
                thresholds,
                backend,
                estimator,
                splitting,
                batch_width,
                stop_half_width,
            },
            base,
            compositions,
            mode,
            sweep,
            fuzz,
        };
        spec.validate().expect("generator produces valid specs");
        spec
    }

    #[test]
    fn rejects_unknown_keys_with_positions() {
        let source = "\n[base]\nn_miners = 100\ndelta = 4\nc = 1.0\nadversary_fraction = 0.1\nseed = 1\ntypo_key = 3\n\n[stationary]\nstrategy = \"honest\"\nrounds = 10\n";
        let err = ExperimentSpec::parse(source).unwrap_err();
        assert_eq!(err.line, 8, "{err}");
        assert!(err.message.contains("typo_key"), "{err}");

        let source = "[experiment]\nbogus = 1\n";
        let err = ExperimentSpec::parse(source).unwrap_err();
        assert_eq!(err.line, 2, "{err}");
        assert!(err.to_string().contains("unknown key `bogus`"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_values_with_positions() {
        // Majority adversary in [base].
        let source = "[base]\nn_miners = 100\ndelta = 4\nc = 1.0\nadversary_fraction = 0.7\nseed = 1\n\n[stationary]\nstrategy = \"honest\"\nrounds = 10\n";
        let err = ExperimentSpec::parse(source).unwrap_err();
        assert_eq!(err.line, 1, "{err}");
        assert!(err.message.contains("ν"), "{err}");

        // Zero-round phase, positioned at the `rounds` line.
        let source = "[base]\nn_miners = 100\ndelta = 4\nc = 1.0\nadversary_fraction = 0.1\nseed = 1\n\n[[phase]]\nrounds = 0\nstrategy = \"honest\"\nregime = \"calm\"\n";
        let err = ExperimentSpec::parse(source).unwrap_err();
        assert_eq!(err.line, 9, "{err}");

        // Detector delta above Δ.
        let source = "[base]\nn_miners = 100\ndelta = 4\nc = 1.0\nadversary_fraction = 0.1\nseed = 1\n\n[[phase]]\nrounds = 10\nstrategy = \"honest\"\nregime = \"calm\"\ndetector_delta = 9\n";
        let err = ExperimentSpec::parse(source).unwrap_err();
        assert_eq!(err.line, 12, "{err}");

        // Unknown strategy token.
        let source = "[base]\nn_miners = 100\ndelta = 4\nc = 1.0\nadversary_fraction = 0.1\nseed = 1\n\n[[phase]]\nrounds = 10\nstrategy = \"sneaky\"\nregime = \"calm\"\n";
        let err = ExperimentSpec::parse(source).unwrap_err();
        assert_eq!(err.line, 10, "{err}");
        assert!(err.message.contains("sneaky"), "{err}");

        // Composed index past the (empty) table.
        let source = "[base]\nn_miners = 100\ndelta = 4\nc = 1.0\nadversary_fraction = 0.1\nseed = 1\n\n[[phase]]\nrounds = 10\nstrategy = \"composed(0)\"\nregime = \"calm\"\n";
        let err = ExperimentSpec::parse(source).unwrap_err();
        assert_eq!(err.line, 10, "{err}");

        // Phase-override ν out of range, positioned at the override.
        let source = "[base]\nn_miners = 100\ndelta = 4\nc = 1.0\nadversary_fraction = 0.1\nseed = 1\n\n[[phase]]\nrounds = 10\nstrategy = \"honest\"\nregime = \"calm\"\nadversary_fraction = 0.9\n";
        let err = ExperimentSpec::parse(source).unwrap_err();
        assert_eq!(err.line, 12, "{err}");
    }

    #[test]
    fn rejects_structural_mistakes() {
        assert!(ExperimentSpec::parse("")
            .unwrap_err()
            .message
            .contains("[base]"));
        let no_mode =
            "[base]\nn_miners = 100\ndelta = 4\nc = 1.0\nadversary_fraction = 0.1\nseed = 1\n";
        assert!(ExperimentSpec::parse(no_mode)
            .unwrap_err()
            .message
            .contains("either"));
        let both = format!("{no_mode}\n[stationary]\nstrategy = \"honest\"\nrounds = 5\n\n[[phase]]\nrounds = 5\nstrategy = \"honest\"\nregime = \"calm\"\n");
        assert!(ExperimentSpec::parse(&both)
            .unwrap_err()
            .message
            .contains("pick one"));
        let dup = "[base]\nn_miners = 100\nn_miners = 50\n";
        let err = ExperimentSpec::parse(dup).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("duplicate"));
        let both_p = "[base]\nn_miners = 100\ndelta = 4\nc = 1.0\nhardness = 0.001\nadversary_fraction = 0.1\n";
        assert!(ExperimentSpec::parse(both_p)
            .unwrap_err()
            .message
            .contains("not both"));
        let bad_syntax = "[base\nn_miners = 100\n";
        assert_eq!(ExperimentSpec::parse(bad_syntax).unwrap_err().line, 1);
        let trailing = "[base]\nn_miners = 100 100\n";
        assert_eq!(ExperimentSpec::parse(trailing).unwrap_err().line, 2);
    }

    #[test]
    fn parser_handles_comments_hex_and_escapes() {
        let source = "[experiment]\ntrials = 2 # two trials\n\n[fuzz]\nmaster_seed = 0xFF # hex\ncase = 1_000\ninvariant = \"a#b\"\ndetail = \"q\\\"uote\\n\"\n\n[base]\nn_miners = 100\ndelta = 4\nc = 1.0\nadversary_fraction = 0.1\nseed = 1\n\n[stationary]\nstrategy = \"honest\"\nrounds = 10\n";
        let spec = ExperimentSpec::parse(source).unwrap();
        let fuzz = spec.fuzz.as_ref().unwrap();
        assert_eq!(fuzz.master_seed, 255);
        assert_eq!(fuzz.case, 1000);
        assert_eq!(fuzz.invariant, "a#b");
        assert_eq!(fuzz.detail, "q\"uote\n");
        assert_eq!(spec.run.trials, 2);
    }

    #[test]
    fn sweep_expands_in_odometer_order_with_disjoint_seeds() {
        let source = "[experiment]\ntrials = 1\n\n[base]\nn_miners = 100\ndelta = 4\nc = 1.0\nadversary_fraction = 0.1\nseed = 0\n\n[stationary]\nstrategy = \"private-chain\"\nrounds = 50\n\n[sweep]\nseed = 99\n\n[[sweep.axis]]\nlabel = \"nu\"\n\n[[sweep.axis.cell]]\nlabel = \"lo\"\npatch = { \"base.adversary_fraction\" = 0.1 }\n\n[[sweep.axis.cell]]\nlabel = \"hi\"\npatch = { \"base.adversary_fraction\" = 0.4 }\n\n[[sweep.axis]]\nlabel = \"strategy\"\n\n[[sweep.axis.cell]]\nlabel = \"private\"\npatch = { \"stationary.strategy\" = \"private-chain\" }\n\n[[sweep.axis.cell]]\nlabel = \"balance\"\npatch = { \"stationary.strategy\" = \"balance\" }\n";
        let spec = ExperimentSpec::parse(source).unwrap();
        assert_eq!(spec.sweep_shape(), vec![2, 2]);
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].labels, vec!["lo", "private"]);
        assert_eq!(cells[1].labels, vec!["lo", "balance"]);
        assert_eq!(cells[2].labels, vec!["hi", "private"]);
        assert_eq!(cells[3].labels, vec!["hi", "balance"]);
        // The seed stream matches a bare SplitMix64 walk, cell by cell.
        let mut stream = SplitMix64::new(99);
        for cell in &cells {
            assert_eq!(cell.spec.base.seed, stream.next_u64());
            assert!(cell.spec.sweep.is_none());
        }
        assert_eq!(cells[2].spec.base.adversary_fraction, 0.4);
        let ExperimentMode::Stationary { strategy, .. } = cells[1].spec.mode else {
            panic!("stationary expected")
        };
        assert_eq!(strategy, StrategyKind::Balance);
        // Expansion is deterministic.
        assert_eq!(spec.expand().unwrap(), cells);
    }

    #[test]
    fn composition_patches_rebuild_validated_compositions() {
        let mut spec = ExperimentSpec::parse(SCENARIO_SPEC).unwrap();
        spec.apply_patch(
            "composition.0.weights",
            &SpecValue::Array(vec![SpecValue::Int(3), SpecValue::Int(1)]),
        )
        .unwrap();
        assert_eq!(spec.compositions[0].subs()[0].weight, 3);
        spec.apply_patch(
            "composition.0.strategies",
            &SpecValue::Array(vec![
                SpecValue::Str("private-chain".into()),
                SpecValue::Str("selfish".into()),
            ]),
        )
        .unwrap();
        assert_eq!(
            spec.compositions[0].subs()[0].strategy,
            StrategyKind::PrivateChain
        );
        // All-zero weights are rejected by Composition::new.
        let err = spec
            .apply_patch(
                "composition.0.weights",
                &SpecValue::Array(vec![SpecValue::Int(0), SpecValue::Int(0)]),
            )
            .unwrap_err();
        assert!(err.message.contains("composition.0.weights"), "{err}");
        // Unknown paths are named.
        let err = spec
            .apply_patch("base.bogus", &SpecValue::Int(1))
            .unwrap_err();
        assert!(err.message.contains("base.bogus"), "{err}");
    }

    const MARKOV_SPEC: &str = r#"
        [experiment]
        thresholds = [6, 12]
        backend = "markov"

        [base]
        n_miners = 100
        delta = 4
        c = 3.0
        adversary_fraction = 0.15
        seed = 7

        [stationary]
        strategy = "private-chain"
        rounds = 30000
    "#;

    #[test]
    fn markov_spec_executes_the_exact_backend() {
        let spec = ExperimentSpec::parse(MARKOV_SPEC).unwrap();
        assert_eq!(spec.run.backend, BackendKind::Markov);
        let plan = spec.plan().unwrap();
        assert_eq!(plan.rounds_per_trial(), 30000);
        let outcome = plan.execute();
        assert_eq!(outcome.estimate.backend(), BackendKind::Markov);
        assert_eq!(outcome.estimate.simulated_rounds(), 0);
        let Estimate::Exact(run) = outcome.estimate else {
            panic!("markov backend selected")
        };
        assert_eq!(run.cap, 12 + crate::exact::RACE_CAP_MARGIN);
        // The solve matches the race module called directly.
        let direct = markov::race::violation_probability(run.q, 6, run.cap).unwrap();
        let e6 = run.estimate_at(6).unwrap();
        assert_eq!(e6.probability, direct.probability);
        assert_eq!(e6.truncation_error, direct.truncation_error);
        let e12 = run.estimate_at(12).unwrap();
        assert!(e6.probability > e12.probability && e12.probability > 0.0);
        assert!(e12.truncation_error < e12.probability);
    }

    #[test]
    fn markov_spec_round_trips_and_patches() {
        let spec = ExperimentSpec::parse(MARKOV_SPEC).unwrap();
        let reparsed = ExperimentSpec::parse(&spec.to_toml()).unwrap();
        assert_eq!(spec, reparsed);

        // The backend is sweep-patchable in both directions.
        let mut patched = spec.clone();
        patched
            .apply_patch("experiment.backend", &SpecValue::Str("montecarlo".into()))
            .unwrap();
        assert_eq!(patched.run.backend, BackendKind::MonteCarlo);
        patched
            .apply_patch("experiment.backend", &SpecValue::Str("markov".into()))
            .unwrap();
        assert_eq!(patched.run.backend, BackendKind::Markov);
        patched.validate().unwrap();
        let err = patched
            .apply_patch("experiment.backend", &SpecValue::Str("quantum".into()))
            .unwrap_err();
        assert!(err.to_string().contains("unknown backend"), "{err}");
    }

    #[test]
    fn markov_backend_sweeps_against_montecarlo() {
        let source = MARKOV_SPEC.to_owned()
            + "\n[sweep]\nseed = 5\n\n[[sweep.axis]]\nlabel = \"backend\"\n\n[[sweep.axis.cell]]\nlabel = \"exact\"\n\n[[sweep.axis.cell]]\nlabel = \"sampled\"\npatch = { \"experiment.backend\" = \"montecarlo\", \"experiment.trials\" = 2, \"stationary.rounds\" = 200 }\n";
        let spec = ExperimentSpec::parse(&source).unwrap();
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 2);
        assert!(matches!(
            cells[0].spec.plan().unwrap().execute().estimate,
            Estimate::Exact(_)
        ));
        assert!(matches!(
            cells[1].spec.plan().unwrap().execute().estimate,
            Estimate::Wilson(_)
        ));
    }

    #[test]
    fn rejects_unknown_backend_with_position() {
        let source = MARKOV_SPEC.replace("\"markov\"", "\"quantum\"");
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(err.line > 0, "{err}");
        assert!(
            err.message
                .contains("unknown backend `quantum` (expected \"montecarlo\" or \"markov\")"),
            "{err}"
        );
    }

    #[test]
    fn rejects_markov_for_scenario_specs_with_position() {
        let source = SCENARIO_SPEC.replace(
            "thresholds = [6, 12]",
            "thresholds = [6, 12]\n        backend = \"markov\"",
        );
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(err.line > 0, "scenario rejection carries a position: {err}");
        assert!(err.message.contains("[stationary]"), "{err}");
    }

    #[test]
    fn rejects_markov_for_non_private_chain_strategies() {
        for strategy in ["honest", "balance", "selfish"] {
            let source = MARKOV_SPEC.replace("\"private-chain\"", &format!("\"{strategy}\""));
            let err = ExperimentSpec::parse(&source).unwrap_err();
            assert!(err.line > 0, "{strategy}: {err}");
            assert!(
                err.message.contains("private-chain race"),
                "{strategy}: {err}"
            );
        }
        // Composed strategies too — the race model knows one attack.
        let source = MARKOV_SPEC.replace("\"private-chain\"", "\"composed(0)\"").replace(
            "[stationary]",
            "[[composition]]\nsubs = [{ strategy = \"balance\", weight = 1 }]\n\n        [stationary]",
        );
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(err.message.contains("composed(0)"), "{err}");
    }

    #[test]
    fn rejects_markov_with_the_splitting_estimator() {
        let source = MARKOV_SPEC.replace(
            "backend = \"markov\"",
            "backend = \"markov\"\n        estimator = \"splitting\"",
        );
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(err.message.contains("exact probabilities"), "{err}");
    }

    #[test]
    fn rejects_markov_without_thresholds_or_adversary() {
        let source = MARKOV_SPEC.replace("thresholds = [6, 12]\n", "");
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(err.message.contains("threshold"), "{err}");

        let source = MARKOV_SPEC.replace("adversary_fraction = 0.15", "adversary_fraction = 0.0");
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(err.message.contains("race analysis"), "{err}");

        let source = MARKOV_SPEC.replace("thresholds = [6, 12]", "thresholds = [0]");
        let err = ExperimentSpec::parse(&source).unwrap_err();
        assert!(err.message.contains("thresholds must lie in"), "{err}");
    }

    #[test]
    fn estimator_and_backend_tokens_round_trip() {
        for kind in [EstimatorKind::Wilson, EstimatorKind::Splitting] {
            assert_eq!(kind.to_string().parse(), Ok(kind));
        }
        for kind in [BackendKind::MonteCarlo, BackendKind::Markov] {
            assert_eq!(kind.to_string().parse(), Ok(kind));
        }
        let err = "bootstrap".parse::<EstimatorKind>().unwrap_err();
        assert_eq!(
            err.to_string(),
            "unknown estimator `bootstrap` (expected \"wilson\" or \"splitting\")"
        );
        let err = "exact".parse::<BackendKind>().unwrap_err();
        assert_eq!(
            err.to_string(),
            "unknown backend `exact` (expected \"montecarlo\" or \"markov\")"
        );
    }

    #[test]
    fn strategy_and_regime_tokens_round_trip() {
        for kind in [
            StrategyKind::Honest,
            StrategyKind::PrivateChain,
            StrategyKind::Balance,
            StrategyKind::Selfish,
            StrategyKind::Composed(3),
        ] {
            assert_eq!(parse_strategy(&strategy_token(kind)), Some(kind));
        }
        for regime in [
            Regime::Calm,
            Regime::Adversarial,
            Regime::Eclipse { group: 1 },
        ] {
            assert_eq!(parse_regime(&regime_token(regime)), Some(regime));
        }
        assert_eq!(parse_strategy("composed(x)"), None);
        assert_eq!(parse_regime("eclipse()"), None);
    }
}
