#![forbid(unsafe_code)]
//! A round-based simulator of Nakamoto's blockchain protocol in the
//! Δ-delay asynchronous network model of Pass–Seeman–Shelat, as
//! formalised in Section III of the paper.
//!
//! The simulator is the *operational* counterpart of the paper's
//! analysis: every analytical quantity (`α`, `ᾱ`, `α₁`, the suffix-chain
//! stationary distribution, the convergence-opportunity rate
//! `ᾱ^{2Δ}α₁`, the adversary block rate `pνn`) can be measured on runs
//! and compared against its closed form.
//!
//! # Model recap
//!
//! * `n` miners with identical computing power; a `ν < ½` fraction is
//!   corrupted (Eqs. 1–3).
//! * Each round, every miner makes one proof-of-work query succeeding
//!   with probability `p`; honest queries are parallel (height grows by
//!   at most one per round), adversary queries are sequential.
//! * The adversary delays any message by up to `Δ` rounds, fully
//!   controls corrupted miners, and sees everything first (rushing).
//! * Honest miners follow the longest chain, first-seen tie-break.
//!
//! Beyond stationary runs, the [`scenario`] module drives the engine
//! through declarative *time-varying* scenarios — phases of shifting
//! adversary power, switching strategies, and changing network regimes
//! (calm / full-Δ adversarial / one-group eclipse) — with the same
//! bit-for-bit determinism guarantees as the stationary Monte-Carlo
//! engine. The [`compose`] module runs several strategies
//! *simultaneously* over a shared mining-power budget (oracle-level
//! hypergeometric success allocation plus a release arbiter), and the
//! [`fuzz`] module searches the combined scenario × composition space
//! with a seeded generator that asserts the engine's invariants over
//! thousands of random cases. For failure probabilities far below any
//! feasible trial budget, the [`splitting`] module estimates the same
//! `T`-consistency violation events with fixed-effort multilevel
//! splitting over the consistency depth, preserving the trial engine's
//! thread-count bit-identity.
//!
//! # Quickstart
//!
//! ```
//! use nakamoto_sim::config::SimConfig;
//! use nakamoto_sim::adversary::PrivateChainAdversary;
//! use nakamoto_sim::execution::run_simulation;
//!
//! let cfg = SimConfig::new(100, 0.25, 1e-3, 4, 7)?;
//! let report = run_simulation(cfg, Box::new(PrivateChainAdversary::new(4)), 100_000);
//! println!(
//!     "C = {}, A = {}, consistent at T=6: {}",
//!     report.convergence_opportunities,
//!     report.adversary_blocks,
//!     report.is_consistent(6),
//! );
//! # Ok::<(), nakamoto_sim::config::ConfigError>(())
//! ```

pub mod adversary;
pub mod batch;
pub mod block;
pub mod compose;
pub mod config;
pub mod consistency;
pub mod events;
pub mod exact;
pub mod execution;
pub mod executor;
pub mod fuzz;
pub mod metrics;
pub mod montecarlo;
pub mod network;
pub mod oracle;
pub mod scenario;
pub mod selfish;
pub mod spec;
pub mod splitting;
pub mod tree;
