//! The exact `markov` backend of the spec-driven experiment layer.
//!
//! Instead of sampling trials, this backend models the stationary
//! private-chain cell as the absorbing race of [`markov::race`]: each
//! new block extends the adversary's private chain with the *effective*
//! adversarial share `q_eff = pνn / (pνn + ᾱ^{2Δ}α₁)` (adversary block
//! rate vs convergence-opportunity rate, the ratio the paper's Lemma 1
//! implies for the Δ-delay model) and the honest chain otherwise. A
//! `T`-consistency failure is absorption at deficit 0, solved exactly
//! on a chain capped at `max(T) + RACE_CAP_MARGIN`, and every answer
//! carries the race module's provable truncation-error bound — the
//! capped solve under-counts the infinite race by at most that much.
//!
//! The derivation of `q_eff` duplicates `consistency_core`'s
//! `effective_adversary_share` (the core crate sits *above* this one in
//! the dependency graph, so the simulator cannot call it); a
//! cross-check test in `consistency_core` pins the two implementations
//! to each other.

use crate::config::{ConfigError, SimConfig};
use markov::race;
use std::time::Instant; // detlint: allow(det-wallclock) -- elapsed feeds the per-cell timing diagnostic only, never an estimate

/// How far past the largest threshold the race chain's safe-side
/// absorbing barrier sits. In any consistent regime (`q_eff` well below
/// ½) the omitted tail `(q/(1−q))^cap` at 64 extra states is far below
/// `f64` resolution, so the default cap never dominates an answer.
pub const RACE_CAP_MARGIN: u64 = 64;

/// Largest threshold the exact backend accepts: the cap must stay
/// within [`markov::race::MAX_CAP`] after adding [`RACE_CAP_MARGIN`].
pub const MAX_THRESHOLD: u64 = race::MAX_CAP - RACE_CAP_MARGIN;

/// The effective adversarial block share `q_eff = pνn / (pνn +
/// ᾱ^{2Δ}α₁)` for a simulator configuration, mirroring
/// `consistency_core::catchup::effective_adversary_share` on
/// [`ProtocolParams`]-equivalent inputs.
///
/// Returns `None` when the configuration is outside the race analysis:
/// an adversary-free baseline (`ν = 0`) or a convergence rate that
/// underflows to zero relative to the adversary rate.
///
/// [`ProtocolParams`]: SimConfig
#[must_use]
pub fn effective_adversary_share(cfg: &SimConfig) -> Option<f64> {
    let nu = cfg.adversary_fraction;
    if nu <= 0.0 {
        return None;
    }
    let n = cfg.n_miners as f64;
    let p = cfg.hardness;
    let mu_n = (1.0 - nu) * n;
    let nu_n = nu * n;
    // Theorem 1's rates, in log space (Eqs. 27 and 44): ln ᾱ = µn·ln(1−p),
    // ln α₁ = ln(pµn) + (µn−1)·ln(1−p), conv = ᾱ^{2Δ}·α₁, adv = pνn.
    let ln_alpha_bar = mu_n * (-p).ln_1p();
    let ln_alpha1 = (p * mu_n).ln() + (mu_n - 1.0) * (-p).ln_1p();
    let ln_conv = 2.0 * cfg.delta as f64 * ln_alpha_bar + ln_alpha1;
    let adv = p * nu_n;
    let conv = ln_conv.exp();
    if conv == 0.0 {
        return None;
    }
    Some(adv / (adv + conv))
}

/// One threshold's exact answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactEstimate {
    /// The consistency threshold `T`.
    pub threshold: u64,
    /// Exact `T`-violation probability on the capped race chain.
    pub probability: f64,
    /// Provable upper bound on the violation mass the cap truncates
    /// away (the un-truncated probability lies in
    /// `[probability, probability + truncation_error]`).
    pub truncation_error: f64,
    /// Expected race length (blocks until either absorption).
    pub expected_race_steps: f64,
}

/// Result of one exact-backend cell: per-threshold answers plus the
/// race parameters they were computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactRun {
    /// The effective adversarial share the race ran at.
    pub q: f64,
    /// The capped chain's safe-side absorbing deficit.
    pub cap: u64,
    /// Per-threshold answers, in the spec's threshold order.
    pub estimates: Vec<ExactEstimate>,
    /// Wall-clock seconds the solve took (diagnostic only).
    pub elapsed_secs: f64,
}

impl ExactRun {
    /// The estimate for one threshold, if the run computed it.
    #[must_use]
    pub fn estimate_at(&self, threshold: u64) -> Option<&ExactEstimate> {
        self.estimates.iter().find(|e| e.threshold == threshold)
    }
}

/// A validated, runnable exact-backend cell (the `markov` analogue of
/// [`TrialPlan`]).
///
/// [`TrialPlan`]: crate::montecarlo::TrialPlan
#[derive(Debug, Clone, PartialEq)]
pub struct ExactPlan {
    /// The configuration the plan was built from.
    pub config: SimConfig,
    /// The effective adversarial share `q_eff`.
    pub q: f64,
    /// The race chain's cap (`max(thresholds) + RACE_CAP_MARGIN`).
    pub cap: u64,
    /// Thresholds to answer, in spec order.
    pub thresholds: Vec<u64>,
    /// The spec's stationary horizon, carried for uniform reporting
    /// (the exact answer itself is horizon-free).
    pub rounds: u64,
}

impl ExactPlan {
    /// Builds a validated exact plan.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid configuration, a
    /// configuration outside the race analysis (`ν = 0` or a
    /// convergence-rate underflow — see [`effective_adversary_share`]),
    /// no thresholds, or a threshold outside `[1, MAX_THRESHOLD]`.
    pub fn new(config: SimConfig, thresholds: Vec<u64>, rounds: u64) -> Result<Self, ConfigError> {
        config.validate()?;
        let q = effective_adversary_share(&config).ok_or_else(|| {
            ConfigError::new(
                "the markov backend needs an adversary inside the race analysis \
                 (ν > 0 and a non-underflowing convergence rate)",
            )
        })?;
        if thresholds.is_empty() {
            return Err(ConfigError::new(
                "the markov backend needs at least one consistency threshold",
            ));
        }
        let max_t = *thresholds.iter().max().expect("non-empty"); // detlint: allow(panic-expect) -- emptiness rejected two lines above
        if thresholds.contains(&0) || max_t > MAX_THRESHOLD {
            return Err(ConfigError::new(format!(
                "markov-backend thresholds must lie in [1, {MAX_THRESHOLD}]"
            )));
        }
        Ok(ExactPlan {
            config,
            q,
            cap: max_t + RACE_CAP_MARGIN,
            thresholds,
            rounds,
        })
    }

    /// Solves every threshold exactly on the capped race chain.
    ///
    /// # Panics
    ///
    /// Panics only if the race solve fails for inputs
    /// [`ExactPlan::new`] validated — a programming error, not a data
    /// error.
    #[must_use]
    pub fn run(&self) -> ExactRun {
        // detlint: allow(det-wallclock) -- wall time is reported, not mixed into results
        let started = Instant::now();
        let estimates = self
            .thresholds
            .iter()
            .map(|&threshold| {
                let race = race::violation_probability(self.q, threshold, self.cap)
                    .expect("ExactPlan::new validated the race inputs"); // detlint: allow(panic-expect) -- new() checked q ∈ (0, 1) and thresholds within the cap range
                ExactEstimate {
                    threshold,
                    probability: race.probability,
                    truncation_error: race.truncation_error,
                    expected_race_steps: race.expected_steps,
                }
            })
            .collect();
        ExactRun {
            q: self.q,
            cap: self.cap,
            estimates,
            elapsed_secs: started.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consistent_config() -> SimConfig {
        SimConfig::from_c(100, 4, 3.0, 0.15, 7).unwrap()
    }

    #[test]
    fn effective_share_is_subcritical_in_the_consistent_region() {
        let q = effective_adversary_share(&consistent_config()).unwrap();
        assert!(q > 0.0 && q < 0.5, "q_eff = {q}");
    }

    #[test]
    fn effective_share_is_none_without_an_adversary() {
        let cfg = SimConfig::from_c(100, 4, 3.0, 0.0, 7).unwrap();
        assert!(effective_adversary_share(&cfg).is_none());
    }

    #[test]
    fn exact_run_matches_the_race_module_directly() {
        let plan = ExactPlan::new(consistent_config(), vec![6, 12], 1000).unwrap();
        let run = plan.run();
        assert_eq!(run.cap, 12 + RACE_CAP_MARGIN);
        for estimate in &run.estimates {
            let race = race::violation_probability(plan.q, estimate.threshold, plan.cap).unwrap();
            assert_eq!(estimate.probability, race.probability);
            assert_eq!(estimate.truncation_error, race.truncation_error);
        }
        let e6 = run.estimate_at(6).unwrap();
        let e12 = run.estimate_at(12).unwrap();
        assert!(e6.probability > e12.probability && e12.probability > 0.0);
        assert!(run.estimate_at(7).is_none());
    }

    #[test]
    fn exact_answers_track_the_closed_form_race_scale() {
        // In the consistent region the capped answer must sit within
        // its truncation bound of the closed form (q/(1−q))^T.
        let plan = ExactPlan::new(consistent_config(), vec![8], 1000).unwrap();
        let run = plan.run();
        let e = run.estimate_at(8).unwrap();
        let closed = (plan.q / (1.0 - plan.q)).powi(8);
        assert!(e.probability <= closed + 1e-18);
        assert!(closed - e.probability <= e.truncation_error + 1e-18);
    }

    #[test]
    fn rejects_out_of_range_plans() {
        let cfg = consistent_config();
        assert!(ExactPlan::new(cfg, Vec::new(), 10).is_err());
        assert!(ExactPlan::new(cfg, vec![0], 10).is_err());
        assert!(ExactPlan::new(cfg, vec![MAX_THRESHOLD + 1], 10).is_err());
        let baseline = SimConfig::from_c(100, 4, 3.0, 0.0, 7).unwrap();
        assert!(ExactPlan::new(baseline, vec![6], 10).is_err());
    }

    #[test]
    fn deterministic_across_runs() {
        let plan = ExactPlan::new(consistent_config(), vec![6, 12], 1000).unwrap();
        let a = plan.run();
        let b = plan.run();
        assert_eq!(a.estimates, b.estimates);
    }
}
