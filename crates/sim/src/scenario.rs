//! Declarative time-varying scenarios: phases of adversary power,
//! strategy, and network regime driving one continuous run.
//!
//! The paper's Δ-bounded-delay bounds are worst-case over *all*
//! adversarial schedules, but a stationary simulation (one strategy,
//! one power level, one delay regime for the whole run) only probes a
//! single point of that schedule space. This module drives the round
//! engine through a [`Scenario`]: an ordered list of [`PhaseSpec`]s,
//! each fixing for some number of rounds
//!
//! * the **adversary power** (hash-power shifts re-derive the mining
//!   oracle at the boundary while continuing the same random stream —
//!   see [`crate::oracle::MiningOracle::reconfigure`]),
//! * the **strategy** (a [`StrategyKind`]; withheld private forks are
//!   frozen across a switch and resumed on re-activation), and
//! * the **network regime** (a [`Regime`]: calm delay-1 scheduling,
//!   full-Δ adversarial scheduling, or a one-group eclipse window) —
//!   regimes re-schedule delays *within* the model bound `[1, Δ]`, so
//!   the streaming detectors (derived from Δ) stay valid throughout.
//!
//! Determinism carries over from the stationary engine: a scenario run
//! is a pure function of the base config's seed, and the Monte-Carlo
//! fan-out ([`ScenarioPlan`]) reuses the `montecarlo` trial engine, so
//! aggregates are **bit-identical for a fixed master seed at any
//! thread count**.
//!
//! # Example
//!
//! A calm warm-up, an eclipse window with a power surge and a private
//! chain, then recovery:
//!
//! ```
//! use nakamoto_sim::config::SimConfig;
//! use nakamoto_sim::scenario::{PhaseSpec, Regime, Scenario, ScenarioPlan, StrategyKind};
//!
//! let base = SimConfig::from_c(100, 4, 1.0, 0.1, 7)?;
//! let scenario = Scenario::new(
//!     base,
//!     vec![
//!         PhaseSpec::new(2_000, StrategyKind::Honest, Regime::Calm),
//!         PhaseSpec::new(2_000, StrategyKind::PrivateChain, Regime::Eclipse { group: 1 })
//!             .with_power(0.4),
//!         PhaseSpec::new(2_000, StrategyKind::Honest, Regime::Calm),
//!     ],
//! )?;
//! let run = ScenarioPlan::new(scenario, 4)?.thresholds(vec![12]).run();
//! assert_eq!(run.aggregate.trials, 4);
//! # Ok::<(), nakamoto_sim::config::ConfigError>(())
//! ```

use crate::adversary::{
    Adversary, BalanceAdversary, ImmediateReleaseAdversary, PrivateChainAdversary, ReleaseDirective,
};
use crate::block::{BlockId, Round};
use crate::compose::{ComposedAdversary, Composition};
use crate::config::{ConfigError, SimConfig};
use crate::execution::Simulation;
use crate::metrics::SimReport;
use crate::montecarlo::{aggregate_reports, fan_out_reports, MonteCarloRun};
use crate::selfish::SelfishMiningAdversary;
use crate::tree::BlockTree;
use probability::rng::Xoshiro256PlusPlus;

/// How the adversary schedules message delays during a phase. Every
/// regime stays within the model bound `[1, Δ]`, so the Δ-derived
/// detectors remain valid across regime changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Benign network: every delivery takes the minimum one round.
    Calm,
    /// Fully adversarial scheduling: every cross-group delivery is
    /// delayed the maximum Δ rounds (the paper's worst case).
    Adversarial,
    /// One honest group is eclipsed: everything delivered *to* it —
    /// honest announcements and adversary releases alike — takes the
    /// full Δ, while the rest of the network stays calm.
    Eclipse {
        /// The eclipsed honest group (0 or 1; forces two groups).
        group: usize,
    },
}

impl Regime {
    /// Delay applied to an honest block delivered to `to_group`.
    fn honest_delay(self, delta: u64, to_group: usize) -> u64 {
        match self {
            Regime::Calm => 1,
            Regime::Adversarial => delta,
            Regime::Eclipse { group } => {
                if to_group == group {
                    delta
                } else {
                    1
                }
            }
        }
    }

    /// Minimum delay for an adversary release to `to_group`: an eclipse
    /// also throttles releases into the eclipsed group (otherwise the
    /// adversary could trivially pierce its own eclipse); the other
    /// regimes let the strategy time its own releases.
    fn release_floor(self, delta: u64, to_group: usize) -> u64 {
        match self {
            Regime::Eclipse { group } if to_group == group => delta,
            _ => 1,
        }
    }

    /// Whether this regime only makes sense with two honest groups.
    fn needs_two_groups(self) -> bool {
        matches!(self, Regime::Eclipse { .. })
    }
}

/// The adversary's mining/release strategy during a phase. Fork state
/// (withheld private blocks) is per-kind and persists across phases:
/// a switch freezes the fork, a switch back resumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Behave honestly: publish every block immediately to all groups.
    Honest,
    /// Withhold a private fork, release on catch-up threat
    /// ([`PrivateChainAdversary`]).
    PrivateChain,
    /// Keep two honest branches level ([`BalanceAdversary`]; forces two
    /// groups).
    Balance,
    /// Eyal–Sirer selfish mining ([`SelfishMiningAdversary`]).
    Selfish,
    /// Several sub-strategies acting *simultaneously* over a shared
    /// mining-power budget ([`ComposedAdversary`]): the payload indexes
    /// the scenario's composition table
    /// ([`Scenario::with_compositions`]). Each table entry keeps its
    /// own persistent sub-strategy state, frozen and resumed across
    /// phases like the monolithic strategies.
    Composed(usize),
}

/// One phase of a scenario: a duration plus the strategy, regime, and
/// optional parameter overrides in force for those rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpec {
    /// Rounds this phase lasts (≥ 1).
    pub rounds: u64,
    /// Active adversary strategy.
    pub strategy: StrategyKind,
    /// Active network regime.
    pub regime: Regime,
    /// Adversary fraction ν during this phase; `None` inherits the base
    /// config's value.
    pub adversary_fraction: Option<f64>,
    /// PoW hardness p during this phase; `None` inherits the base
    /// config's value.
    pub hardness: Option<f64>,
    /// Effective delay bound `Δ_effective` the streaming detectors are
    /// re-derived with at this phase's boundary; `None` inherits the
    /// previous phase's value (ultimately the base config's `Δ`). Must
    /// lie in `[1, Δ]`. The *network* bound stays the base `Δ` — this
    /// only changes what the suffix and convergence detectors treat as
    /// a long-enough quiet gap, e.g. measuring a calm phase at
    /// `Δ_eff = 1`.
    pub detector_delta: Option<u64>,
}

impl PhaseSpec {
    /// A phase of `rounds` rounds with no parameter overrides.
    #[must_use]
    pub fn new(rounds: u64, strategy: StrategyKind, regime: Regime) -> Self {
        PhaseSpec {
            rounds,
            strategy,
            regime,
            adversary_fraction: None,
            hardness: None,
            detector_delta: None,
        }
    }

    /// Overrides the adversary fraction ν for this phase (builder
    /// style) — a hash-power shift at the phase boundary.
    #[must_use]
    pub fn with_power(mut self, adversary_fraction: f64) -> Self {
        self.adversary_fraction = Some(adversary_fraction);
        self
    }

    /// Overrides the PoW hardness p for this phase (builder style) —
    /// e.g. a difficulty-adjustment lag window.
    #[must_use]
    pub fn with_hardness(mut self, hardness: f64) -> Self {
        self.hardness = Some(hardness);
        self
    }

    /// Sets the detectors' effective delay bound for this phase
    /// (builder style): at the boundary both streaming detectors are
    /// re-derived for `delta` — equivalent to fresh detectors, with the
    /// cumulative convergence count carried (see
    /// [`crate::execution::Simulation::reconfigure_detectors`]).
    #[must_use]
    pub fn with_detector_delta(mut self, delta: u64) -> Self {
        self.detector_delta = Some(delta);
        self
    }
}

/// A validated multi-phase scenario over a base configuration.
///
/// The base config provides `n`, `Δ` and the master seed; each phase
/// may override ν and p. `Δ` is fixed for the whole scenario (the
/// streaming detectors are derived from it); regimes vary realised
/// delays within `[1, Δ]` instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    base: SimConfig,
    phases: Vec<PhaseSpec>,
    compositions: Vec<Composition>,
}

impl Scenario {
    /// Validates and builds a scenario with no composition table
    /// (equivalent to [`Scenario::with_compositions`] with an empty
    /// table).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `phases` is empty, any phase lasts 0
    /// rounds, any phase's effective parameters violate
    /// [`SimConfig::validate`], an eclipse names a group ≥ 2, a
    /// detector-Δ override leaves `[1, Δ]`, or a phase references a
    /// composition the table does not hold.
    pub fn new(base: SimConfig, phases: Vec<PhaseSpec>) -> Result<Self, ConfigError> {
        Scenario::with_compositions(base, phases, Vec::new())
    }

    /// Validates and builds a scenario whose phases may run composed
    /// adversaries: [`StrategyKind::Composed`]`(i)` runs the `i`-th
    /// entry of `compositions` (each entry keeps persistent sub-strategy
    /// state across its phases, like the monolithic strategies).
    ///
    /// # Errors
    ///
    /// Same contract as [`Scenario::new`].
    pub fn with_compositions(
        base: SimConfig,
        phases: Vec<PhaseSpec>,
        compositions: Vec<Composition>,
    ) -> Result<Self, ConfigError> {
        base.validate()?;
        if phases.is_empty() {
            return Err(ConfigError::new("a scenario needs at least one phase"));
        }
        let scenario = Scenario {
            base,
            phases,
            compositions,
        };
        for (i, phase) in scenario.phases.iter().enumerate() {
            if phase.rounds == 0 {
                return Err(ConfigError::new(format!(
                    "phase {i} lasts 0 rounds; every phase needs at least one"
                )));
            }
            scenario
                .phase_config(i)
                .validate()
                .map_err(|e| ConfigError::new(format!("phase {i}: {e}")))?;
            if let Regime::Eclipse { group } = phase.regime {
                if group >= 2 {
                    return Err(ConfigError::new(format!(
                        "phase {i} eclipses group {group}; only groups 0 and 1 exist"
                    )));
                }
            }
            if let Some(d) = phase.detector_delta {
                if d == 0 || d > scenario.base.delta {
                    return Err(ConfigError::new(format!(
                        "phase {i} sets detector Δ_effective = {d}; it must lie in [1, Δ = {}]",
                        scenario.base.delta
                    )));
                }
            }
            if let StrategyKind::Composed(c) = phase.strategy {
                if c >= scenario.compositions.len() {
                    return Err(ConfigError::new(format!(
                        "phase {i} runs composition {c}, but the table holds {}",
                        scenario.compositions.len()
                    )));
                }
            }
        }
        Ok(scenario)
    }

    /// The base configuration (also the source of the master seed).
    #[must_use]
    pub fn base(&self) -> &SimConfig {
        &self.base
    }

    /// The phases, in execution order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// The composition table [`StrategyKind::Composed`] indexes into.
    #[must_use]
    pub fn compositions(&self) -> &[Composition] {
        &self.compositions
    }

    /// The effective detector delay bound of phase `i`: the phase's
    /// override, or — matching the boundary semantics of "no override
    /// keeps the running detectors" — the nearest earlier override,
    /// falling back to the base `Δ`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn detector_delta(&self, i: usize) -> u64 {
        self.phases[..=i] // detlint: allow(panic-slice-index) -- documented # Panics contract: i must be a phase index
            .iter()
            .rev()
            .find_map(|p| p.detector_delta)
            .unwrap_or(self.base.delta)
    }

    /// Total rounds over all phases.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.phases.iter().map(|p| p.rounds).sum()
    }

    /// Honest delivery groups the scenario needs: 2 if any phase runs a
    /// balance attack (monolithic or as an active composition sub),
    /// or an eclipse window, else 1.
    #[must_use]
    pub fn group_count(&self) -> usize {
        let strategy_splits = |kind: StrategyKind| match kind {
            StrategyKind::Balance => true,
            StrategyKind::Composed(i) => self.compositions[i].needs_two_groups(),
            _ => false,
        };
        let split = self
            .phases
            .iter()
            .any(|p| strategy_splits(p.strategy) || p.regime.needs_two_groups());
        if split {
            2
        } else {
            1
        }
    }

    /// The effective configuration of phase `i`: the base config with
    /// this phase's overrides applied.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn phase_config(&self, i: usize) -> SimConfig {
        let phase = &self.phases[i];
        let mut cfg = self.base;
        if let Some(nu) = phase.adversary_fraction {
            cfg.adversary_fraction = nu;
        }
        if let Some(p) = phase.hardness {
            cfg.hardness = p;
        }
        cfg
    }
}

/// The engine-facing composition of a scenario's strategies: one
/// [`Adversary`] whose delay policy follows the active [`Regime`] and
/// whose mining/release behaviour delegates to the active
/// [`StrategyKind`]'s persistent state machine.
///
/// Dormant fork strategies with nothing withheld are re-based onto the
/// public tip every round, so they never hold a reference the tree
/// pruner could invalidate; a dormant fork *with* withheld blocks is
/// frozen and kept alive through [`Adversary::live_blocks`] until its
/// strategy runs again — or until the public chain strictly overtakes
/// it, at which point it is abandoned (the move its own strategy would
/// make on resume), so a dead fork cannot pin the pruner and unbound
/// memory across a long dormant phase.
#[derive(Debug, Clone)]
pub struct ScenarioAdversary {
    delta: u64,
    n_groups: usize,
    strategy: StrategyKind,
    regime: Regime,
    honest: ImmediateReleaseAdversary,
    private: PrivateChainAdversary,
    balance: BalanceAdversary,
    selfish: SelfishMiningAdversary,
    /// One persistent composed adversary per composition-table entry.
    composed: Vec<ComposedAdversary>,
}

impl ScenarioAdversary {
    /// Builds the adversary for `scenario`, starting in phase 0.
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        let delta = scenario.base().delta;
        let first = &scenario.phases()[0];
        ScenarioAdversary {
            delta,
            n_groups: scenario.group_count(),
            strategy: first.strategy,
            regime: first.regime,
            honest: ImmediateReleaseAdversary::new(),
            private: PrivateChainAdversary::new(delta),
            balance: BalanceAdversary::new(delta),
            selfish: SelfishMiningAdversary::new(delta),
            composed: scenario
                .compositions()
                .iter()
                .map(|c| ComposedAdversary::new(delta, c.clone()))
                .collect(),
        }
    }

    /// Switches strategy and regime at a phase boundary. Must only be
    /// called between [`Simulation::run`] segments (the fast-forward
    /// contract assumes the strategy is round-invariant within one).
    pub fn set_phase(&mut self, strategy: StrategyKind, regime: Regime) {
        self.strategy = strategy;
        self.regime = regime;
    }

    /// The currently active strategy.
    #[must_use]
    pub fn strategy(&self) -> StrategyKind {
        self.strategy
    }

    /// The currently active regime.
    #[must_use]
    pub fn regime(&self) -> Regime {
        self.regime
    }

    /// Dormant fork bookkeeping (idempotent under unchanged tips, so
    /// the fast-forward no-op contract holds): a frozen fork the
    /// public chain has strictly overtaken is abandoned — exactly the
    /// move its own strategy would make on resume — so it stops
    /// pinning the tree pruner; an empty dormant fork base simply
    /// tracks the public tip so it never dangles across pruning.
    /// Composed instances apply the same policy to their sub-forks.
    fn track_dormant_forks(&mut self, group_tips: &[BlockId; 2], tree: &BlockTree) {
        let best = crate::adversary::best_tip(tree, group_tips);
        if self.strategy != StrategyKind::PrivateChain {
            self.private.abandon_if_behind(best, tree);
            if self.private.withheld_len() == 0 {
                self.private.rebase(best);
            }
        }
        if self.strategy != StrategyKind::Selfish {
            self.selfish.abandon_if_behind(best, tree);
            if self.selfish.withheld_len() == 0 {
                self.selfish.rebase(best, tree);
            }
        }
        for (i, composed) in self.composed.iter_mut().enumerate() {
            if self.strategy != StrategyKind::Composed(i) {
                composed.track_dormant(best, tree);
            }
        }
    }

    /// The eclipse applies to adversary releases too: nothing enters
    /// the eclipsed group faster than Δ.
    fn apply_release_floor(&self, releases: &mut [ReleaseDirective], start: usize) {
        if let Regime::Eclipse { .. } = self.regime {
            // detlint: allow(panic-slice-index) -- start is a prior releases.len() snapshot, so start <= len
            for release in &mut releases[start..] {
                let floor = self.regime.release_floor(self.delta, release.group);
                release.delay = release.delay.max(floor);
            }
        }
    }
}

impl Adversary for ScenarioAdversary {
    fn name(&self) -> &'static str {
        "scenario"
    }

    fn group_count(&self) -> usize {
        self.n_groups
    }

    fn honest_delay(&mut self, _round: Round, _from: usize, to_group: usize) -> u64 {
        self.regime.honest_delay(self.delta, to_group)
    }

    fn act(
        &mut self,
        round: Round,
        group_tips: &[BlockId; 2],
        tree: &mut BlockTree,
        successes: u64,
        releases: &mut Vec<ReleaseDirective>,
    ) {
        self.track_dormant_forks(group_tips, tree);
        let start = releases.len();
        match self.strategy {
            StrategyKind::Honest => self
                .honest
                .act(round, group_tips, tree, successes, releases),
            StrategyKind::PrivateChain => {
                self.private
                    .act(round, group_tips, tree, successes, releases);
            }
            StrategyKind::Balance => {
                self.balance
                    .act(round, group_tips, tree, successes, releases);
            }
            StrategyKind::Selfish => {
                self.selfish
                    .act(round, group_tips, tree, successes, releases);
            }
            // detlint: allow(panic-macro) -- the engine routes Composed strategies through act_split only
            StrategyKind::Composed(_) => unreachable!(
                "composed phases are driven through act_split: the engine re-derives \
                 the sub split at every phase boundary"
            ),
        }
        self.apply_release_floor(releases, start);
    }

    fn sub_miner_counts(&self, n_adversary: u64) -> Option<Vec<u64>> {
        match self.strategy {
            StrategyKind::Composed(i) => self.composed[i].sub_miner_counts(n_adversary),
            _ => None,
        }
    }

    fn act_split(
        &mut self,
        round: Round,
        group_tips: &[BlockId; 2],
        tree: &mut BlockTree,
        successes: &[u64],
        releases: &mut Vec<ReleaseDirective>,
    ) {
        match self.strategy {
            StrategyKind::Composed(i) => {
                self.track_dormant_forks(group_tips, tree);
                let start = releases.len();
                self.composed[i].act_split(round, group_tips, tree, successes, releases);
                self.apply_release_floor(releases, start);
            }
            // Defensive: a monolithic phase driven through the split
            // interface behaves exactly like the default trait impl.
            _ => self.act(round, group_tips, tree, successes.iter().sum(), releases),
        }
    }

    fn supports_fast_forward(&self) -> bool {
        // Every delegate is round-invariant, and phase switches happen
        // only between run segments.
        true
    }

    fn live_blocks(&self) -> Vec<BlockId> {
        // Dormant tips track the public tip (always alive); frozen
        // forks — monolithic or inside a composition — must survive
        // pruning until their strategy resumes.
        let mut blocks = self.private.live_blocks();
        blocks.extend(self.selfish.live_blocks());
        for composed in &self.composed {
            blocks.extend(composed.live_blocks());
        }
        blocks
    }
}

/// Per-phase slice of a scenario run: additive counters are diffs
/// between the phase's boundary snapshots; depth maxima are cumulative
/// (a reorg's depth cannot be un-observed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseReport {
    /// Rounds simulated in this phase.
    pub rounds: u64,
    /// Honest blocks mined during this phase.
    pub honest_blocks: u64,
    /// Adversary blocks mined during this phase.
    pub adversary_blocks: u64,
    /// Convergence opportunities completed during this phase.
    pub convergence_opportunities: u64,
    /// Reorgs observed during this phase.
    pub reorg_count: u64,
    /// The effective delay bound `Δ_effective` the streaming detectors
    /// ran with during this phase (the base `Δ` unless overridden; see
    /// [`PhaseSpec::with_detector_delta`]).
    pub detector_delta: u64,
    /// Deepest reorg observed up to the end of this phase.
    pub cumulative_max_reorg_depth: u64,
    /// Deepest cross-group divergence observed up to the end of this
    /// phase.
    pub cumulative_max_divergence_depth: u64,
}

/// Result of one scenario run: the final cumulative report plus a
/// per-phase breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Cumulative report over the whole run (what a [`ScenarioPlan`]
    /// aggregates across trials).
    pub final_report: SimReport,
    /// One entry per phase, in order.
    pub phase_reports: Vec<PhaseReport>,
}

/// Drives one simulation through a scenario's phases, snapshotting the
/// cumulative report at every boundary.
#[derive(Debug)]
pub struct ScenarioRunner {
    scenario: Scenario,
    sim: Simulation<ScenarioAdversary>,
    next_phase: usize,
    snapshots: Vec<SimReport>,
}

impl ScenarioRunner {
    /// Builds a runner seeding the mining generator from the base
    /// config's seed.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        let rng = Xoshiro256PlusPlus::seed_from_u64(scenario.base().seed);
        ScenarioRunner::with_rng(scenario, rng)
    }

    /// Builds a runner driving mining from an explicit generator (how
    /// the Monte-Carlo engine hands each trial its disjoint stream).
    #[must_use]
    pub fn with_rng(scenario: Scenario, rng: Xoshiro256PlusPlus) -> Self {
        let adversary = ScenarioAdversary::new(&scenario);
        let mut sim = Simulation::with_rng(scenario.phase_config(0), adversary, rng);
        // A phase-0 detector override re-derives fresh detectors — and
        // at round 0 the detectors *are* fresh, so this is exactly the
        // engine a base config with that Δ_eff would have built.
        let d0 = scenario.detector_delta(0);
        if d0 != scenario.base().delta {
            sim.reconfigure_detectors(d0);
        }
        ScenarioRunner {
            scenario,
            sim,
            next_phase: 0,
            snapshots: Vec::new(),
        }
    }

    /// Sets the engine's automatic prune cadence (`None` disables
    /// pruning); the scenario fuzzer uses this to prove pruning is
    /// behaviour-invisible on randomly generated scenarios. See
    /// [`Simulation::set_prune_interval`].
    pub fn set_prune_interval(&mut self, interval: Option<u64>) {
        self.sim.set_prune_interval(interval);
    }

    /// Read access to the underlying simulation (round, tree, report —
    /// and the mining-generator snapshot the phase-boundary tests use).
    #[must_use]
    pub fn sim(&self) -> &Simulation<ScenarioAdversary> {
        &self.sim
    }

    /// Number of phases already completed.
    #[must_use]
    pub fn phases_completed(&self) -> usize {
        self.next_phase
    }

    /// Runs the next phase to its end: applies the phase's strategy and
    /// regime, re-derives the mining oracle if ν, p or the composed
    /// sub split changed (a no-op boundary otherwise — an unsplit run
    /// and a split-into-identical-phases run are bit-identical),
    /// re-derives the detectors if the phase carries a different
    /// `Δ_effective`, then advances the engine. Returns the cumulative
    /// report at the phase's end, or `None` when every phase has run.
    pub fn run_next_phase(&mut self) -> Option<&SimReport> {
        if self.next_phase >= self.scenario.phases().len() {
            return None;
        }
        let i = self.next_phase;
        let phase = self.scenario.phases()[i];
        if i > 0 {
            let cfg = self.scenario.phase_config(i);
            self.sim
                .adversary_mut()
                .set_phase(phase.strategy, phase.regime);
            self.sim
                .reconfigure_mining(cfg.adversary_fraction, cfg.hardness);
            let d = self.scenario.detector_delta(i);
            if d != self.scenario.detector_delta(i - 1) {
                self.sim.reconfigure_detectors(d);
            }
        }
        self.sim.run(phase.rounds);
        self.snapshots.push(self.sim.report());
        self.next_phase = i + 1;
        self.snapshots.last()
    }

    /// Runs every remaining phase and assembles the scenario report.
    pub fn run_to_completion(&mut self) -> ScenarioReport {
        while self.run_next_phase().is_some() {}
        let final_report = self
            .snapshots
            .last()
            .cloned()
            .expect("a scenario has at least one phase"); // detlint: allow(panic-expect) -- Scenario::new rejects empty phase lists, so one snapshot exists
        let mut phase_reports = Vec::with_capacity(self.snapshots.len());
        let mut prev: Option<&SimReport> = None;
        for (i, snap) in self.snapshots.iter().enumerate() {
            let (rounds, honest, adversary, convergence, reorgs) = match prev {
                None => (
                    snap.rounds,
                    snap.honest_blocks,
                    snap.adversary_blocks,
                    snap.convergence_opportunities,
                    snap.reorg_count,
                ),
                Some(p) => (
                    snap.rounds - p.rounds,
                    snap.honest_blocks - p.honest_blocks,
                    snap.adversary_blocks - p.adversary_blocks,
                    snap.convergence_opportunities - p.convergence_opportunities,
                    snap.reorg_count - p.reorg_count,
                ),
            };
            phase_reports.push(PhaseReport {
                rounds,
                honest_blocks: honest,
                adversary_blocks: adversary,
                convergence_opportunities: convergence,
                reorg_count: reorgs,
                detector_delta: self.scenario.detector_delta(i),
                cumulative_max_reorg_depth: snap.max_reorg_depth,
                cumulative_max_divergence_depth: snap.max_divergence_depth,
            });
            prev = Some(snap);
        }
        ScenarioReport {
            final_report,
            phase_reports,
        }
    }
}

/// Runs a scenario to completion, seeding from the base config's seed.
#[must_use]
pub fn run_scenario(scenario: &Scenario) -> ScenarioReport {
    ScenarioRunner::new(scenario.clone()).run_to_completion()
}

/// Runs a scenario to completion on an explicit generator.
#[must_use]
pub fn run_scenario_with_rng(scenario: &Scenario, rng: Xoshiro256PlusPlus) -> ScenarioReport {
    ScenarioRunner::with_rng(scenario.clone(), rng).run_to_completion()
}

/// A Monte-Carlo experiment over a scenario: independent trials of the
/// full phase sequence, fanned out on the shared deterministic trial
/// engine — the aggregate is bit-identical for a fixed master seed
/// (the base config's seed) at any thread count.
#[derive(Debug, Clone)]
pub struct ScenarioPlan {
    /// The scenario every trial runs.
    pub scenario: Scenario,
    /// Number of independent trials.
    pub trials: u64,
    /// Worker threads; `0` = one per available CPU (≥ 1 always).
    pub threads: usize,
    /// Consistency thresholds `T` tallied per trial.
    pub consistency_thresholds: Vec<u64>,
}

impl ScenarioPlan {
    /// Creates a plan with no thresholds and automatic thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `trials == 0`.
    pub fn new(scenario: Scenario, trials: u64) -> Result<Self, ConfigError> {
        if trials == 0 {
            return Err(ConfigError::new(
                "a scenario plan needs at least one trial (trials = 0)",
            ));
        }
        Ok(ScenarioPlan {
            scenario,
            trials,
            threads: 0,
            consistency_thresholds: Vec::new(),
        })
    }

    /// Sets the consistency thresholds to tally (builder style).
    #[must_use]
    pub fn thresholds(mut self, thresholds: Vec<u64>) -> Self {
        self.consistency_thresholds = thresholds;
        self
    }

    /// Sets the worker thread count (builder style); `0` = one per CPU,
    /// falling back to 1 if detection fails.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the trials and reduces the final reports in trial order.
    ///
    /// # Panics
    ///
    /// Panics if `trials` was mutated to 0 after construction
    /// ([`ScenarioPlan::new`] rejects that as a [`ConfigError`]).
    #[must_use]
    pub fn run(&self) -> MonteCarloRun {
        assert!(
            self.trials > 0,
            "empty experiment: construct plans through ScenarioPlan::new"
        );
        let scenario = std::sync::Arc::new(self.scenario.clone());
        let run_one = move |_trial: u64, rng: Xoshiro256PlusPlus| {
            run_scenario_with_rng(&scenario, rng).final_report
        };
        let (reports, elapsed_secs, threads) = fan_out_reports(
            self.scenario.base().seed,
            self.trials,
            self.threads,
            run_one,
        );
        let aggregate = aggregate_reports(
            &reports,
            self.scenario.total_rounds(),
            &self.consistency_thresholds,
        );
        let total_rounds = aggregate.total_rounds();
        MonteCarloRun {
            aggregate,
            threads,
            elapsed_secs,
            rounds_per_sec: total_rounds as f64 / elapsed_secs.max(f64::MIN_POSITIVE),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::run_simulation_with;

    fn base(nu: f64, seed: u64) -> SimConfig {
        SimConfig::from_c(100, 4, 1.0, nu, seed).unwrap()
    }

    fn phase(rounds: u64, strategy: StrategyKind, regime: Regime) -> PhaseSpec {
        PhaseSpec::new(rounds, strategy, regime)
    }

    /// The acceptance scenario: a power shift, a strategy switch, and
    /// an eclipse window.
    fn acceptance_scenario(seed: u64) -> Scenario {
        Scenario::new(
            base(0.1, seed),
            vec![
                phase(4_000, StrategyKind::Honest, Regime::Calm),
                phase(
                    4_000,
                    StrategyKind::PrivateChain,
                    Regime::Eclipse { group: 1 },
                )
                .with_power(0.4),
                phase(4_000, StrategyKind::Balance, Regime::Adversarial).with_power(0.3),
                phase(4_000, StrategyKind::Honest, Regime::Calm),
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_scenarios() {
        let b = base(0.2, 1);
        assert!(Scenario::new(b, vec![]).is_err(), "no phases");
        assert!(
            Scenario::new(b, vec![phase(0, StrategyKind::Honest, Regime::Calm)]).is_err(),
            "zero-round phase"
        );
        assert!(
            Scenario::new(
                b,
                vec![phase(10, StrategyKind::Honest, Regime::Calm).with_power(0.6)],
            )
            .is_err(),
            "majority adversary in a phase"
        );
        assert!(
            Scenario::new(
                b,
                vec![phase(10, StrategyKind::Honest, Regime::Calm).with_hardness(1.5)],
            )
            .is_err(),
            "invalid hardness override"
        );
        assert!(
            Scenario::new(
                b,
                vec![phase(
                    10,
                    StrategyKind::Honest,
                    Regime::Eclipse { group: 2 }
                )],
            )
            .is_err(),
            "eclipse of a nonexistent group"
        );
    }

    #[test]
    fn group_count_follows_phases() {
        let b = base(0.2, 2);
        let one =
            Scenario::new(b, vec![phase(10, StrategyKind::PrivateChain, Regime::Calm)]).unwrap();
        assert_eq!(one.group_count(), 1);
        let balance =
            Scenario::new(b, vec![phase(10, StrategyKind::Balance, Regime::Calm)]).unwrap();
        assert_eq!(balance.group_count(), 2);
        let eclipse = Scenario::new(
            b,
            vec![phase(
                10,
                StrategyKind::Honest,
                Regime::Eclipse { group: 0 },
            )],
        )
        .unwrap();
        assert_eq!(eclipse.group_count(), 2);
    }

    #[test]
    fn phase_config_applies_overrides() {
        let s = Scenario::new(
            base(0.1, 3),
            vec![
                phase(10, StrategyKind::Honest, Regime::Calm),
                phase(10, StrategyKind::Honest, Regime::Calm)
                    .with_power(0.3)
                    .with_hardness(1e-4),
            ],
        )
        .unwrap();
        assert_eq!(s.phase_config(0).adversary_fraction, 0.1);
        assert_eq!(s.phase_config(1).adversary_fraction, 0.3);
        assert_eq!(s.phase_config(1).hardness, 1e-4);
        assert_eq!(s.phase_config(1).delta, s.base().delta, "Δ is fixed");
        assert_eq!(s.total_rounds(), 20);
    }

    /// A single-phase scenario must reproduce the corresponding
    /// stationary engine bit-for-bit: the composition layer adds no
    /// behaviour of its own.
    #[test]
    fn single_phase_equals_stationary_engine() {
        let rounds = 20_000;
        // Private chain under full-Δ scheduling == PrivateChainAdversary.
        let cfg = base(0.35, 11);
        let scenario = Scenario::new(
            cfg,
            vec![phase(
                rounds,
                StrategyKind::PrivateChain,
                Regime::Adversarial,
            )],
        )
        .unwrap();
        let scen = run_scenario(&scenario).final_report;
        let raw = run_simulation_with(cfg, PrivateChainAdversary::new(cfg.delta), rounds);
        assert_eq!(scen, raw, "private-chain composition");

        // Honest under calm scheduling == ImmediateReleaseAdversary.
        let cfg = base(0.25, 12);
        let scenario =
            Scenario::new(cfg, vec![phase(rounds, StrategyKind::Honest, Regime::Calm)]).unwrap();
        let scen = run_scenario(&scenario).final_report;
        let raw = run_simulation_with(cfg, ImmediateReleaseAdversary::new(), rounds);
        assert_eq!(scen, raw, "honest composition");

        // Balance under full-Δ scheduling == BalanceAdversary.
        let cfg = base(0.4, 13);
        let scenario = Scenario::new(
            cfg,
            vec![phase(rounds, StrategyKind::Balance, Regime::Adversarial)],
        )
        .unwrap();
        let scen = run_scenario(&scenario).final_report;
        let raw = run_simulation_with(cfg, BalanceAdversary::new(cfg.delta), rounds);
        assert_eq!(scen, raw, "balance composition");

        // Selfish mining under calm scheduling == SelfishMiningAdversary.
        let cfg = base(0.3, 14);
        let scenario = Scenario::new(
            cfg,
            vec![phase(rounds, StrategyKind::Selfish, Regime::Calm)],
        )
        .unwrap();
        let scen = run_scenario(&scenario).final_report;
        let raw = run_simulation_with(cfg, SelfishMiningAdversary::new(cfg.delta), rounds);
        assert_eq!(scen, raw, "selfish composition");
    }

    /// Splitting one phase into identical back-to-back phases is a
    /// no-op boundary: the oracle is not re-derived, the buffered gap
    /// survives, and the run is bit-identical to the unsplit one.
    #[test]
    fn identical_phase_split_is_seamless() {
        let cfg = base(0.3, 21);
        let whole = Scenario::new(
            cfg,
            vec![phase(
                24_000,
                StrategyKind::PrivateChain,
                Regime::Adversarial,
            )],
        )
        .unwrap();
        let split = Scenario::new(
            cfg,
            vec![
                phase(7_000, StrategyKind::PrivateChain, Regime::Adversarial),
                phase(9_500, StrategyKind::PrivateChain, Regime::Adversarial),
                phase(7_500, StrategyKind::PrivateChain, Regime::Adversarial),
            ],
        )
        .unwrap();
        assert_eq!(
            run_scenario(&whole).final_report,
            run_scenario(&split).final_report
        );
    }

    /// Engine-level phase-boundary contract: after a power shift, the
    /// rest of the run must be driven by an oracle indistinguishable
    /// from a from-scratch oracle built at the boundary with the new
    /// parameters and the generator state captured there.
    #[test]
    fn power_shift_matches_from_scratch_oracle_at_boundary() {
        use crate::oracle::MiningOracle;
        let scenario = Scenario::new(
            base(0.1, 31),
            vec![
                phase(5_000, StrategyKind::Honest, Regime::Calm),
                phase(5_000, StrategyKind::Honest, Regime::Calm).with_power(0.4),
            ],
        )
        .unwrap();
        let mut runner = ScenarioRunner::new(scenario.clone());
        runner.run_next_phase().unwrap();
        let boundary_rng = runner.sim().mining_rng();
        runner.run_next_phase().unwrap();
        assert!(runner.run_next_phase().is_none());

        // Replay phase 2's mining stream from scratch. The engine's
        // reconfigure discarded the (old-law) buffered gap, so the
        // first thing drawn after the boundary was a fresh gap from the
        // reconfigured oracle — exactly what this oracle produces.
        let cfg2 = scenario.phase_config(1);
        let n_honest = cfg2.n_honest();
        let mut fresh = MiningOracle::new(
            [n_honest, 0],
            cfg2.n_adversary(),
            cfg2.hardness,
            boundary_rng,
        );
        let mut mined = 0u64;
        let mut rounds = 0u64;
        while rounds < 5_000 {
            let (gap, out) = fresh.sample_gap_to_success().unwrap();
            rounds += gap;
            if rounds <= 5_000 {
                mined += out.honest_total() + out.adversary;
            }
        }
        let report = runner.run_to_completion();
        let phase2 = &report.phase_reports[1];
        assert_eq!(
            phase2.honest_blocks + phase2.adversary_blocks,
            mined,
            "post-boundary mining must replay the from-scratch oracle stream"
        );
    }

    /// Power shifts show up in the per-phase rates: an adversary-free
    /// phase mines no adversary blocks, a 0.4-power phase mines plenty.
    #[test]
    fn per_phase_reports_track_power_shifts() {
        let scenario = Scenario::new(
            base(0.0, 41),
            vec![
                phase(10_000, StrategyKind::Honest, Regime::Calm),
                phase(10_000, StrategyKind::PrivateChain, Regime::Adversarial).with_power(0.4),
                phase(10_000, StrategyKind::Honest, Regime::Calm).with_power(0.0),
            ],
        )
        .unwrap();
        let report = run_scenario(&scenario);
        assert_eq!(report.phase_reports.len(), 3);
        assert_eq!(report.phase_reports[0].adversary_blocks, 0, "ν = 0 phase");
        assert!(
            report.phase_reports[1].adversary_blocks > 0,
            "ν = 0.4 phase mines adversary blocks"
        );
        assert_eq!(report.phase_reports[2].adversary_blocks, 0, "ν back to 0");
        let total: u64 = report.phase_reports.iter().map(|p| p.rounds).sum();
        assert_eq!(total, scenario.total_rounds());
        assert_eq!(report.final_report.rounds, scenario.total_rounds());
        // Per-phase additive counters recompose into the final report.
        assert_eq!(
            report
                .phase_reports
                .iter()
                .map(|p| p.honest_blocks)
                .sum::<u64>(),
            report.final_report.honest_blocks
        );
    }

    /// An eclipse window isolates one group: while it lasts, the two
    /// groups' views diverge far deeper than under calm scheduling.
    #[test]
    fn eclipse_window_creates_divergence() {
        let calm = Scenario::new(
            base(0.2, 51),
            vec![
                // A Balance phase forces two groups without an eclipse.
                phase(200, StrategyKind::Balance, Regime::Calm),
                phase(30_000, StrategyKind::Honest, Regime::Calm),
            ],
        )
        .unwrap();
        let eclipsed = Scenario::new(
            base(0.2, 51),
            vec![
                phase(200, StrategyKind::Balance, Regime::Calm),
                phase(30_000, StrategyKind::Honest, Regime::Eclipse { group: 1 }),
            ],
        )
        .unwrap();
        let calm_div = run_scenario(&calm).final_report.max_divergence_depth;
        let ecl_div = run_scenario(&eclipsed).final_report.max_divergence_depth;
        assert!(
            ecl_div > calm_div,
            "eclipse divergence {ecl_div} should exceed calm {calm_div}"
        );
    }

    /// Acceptance: the multi-phase scenario (power shift + strategy
    /// switch + eclipse window) aggregates bit-identically at 1, 2, 3
    /// and 8 worker threads for a fixed master seed.
    #[test]
    fn multi_phase_aggregate_independent_of_thread_count() {
        let make_plan = || {
            ScenarioPlan::new(acceptance_scenario(99), 8)
                .unwrap()
                .thresholds(vec![0, 6, 12])
        };
        let reference = make_plan().with_threads(1).run();
        assert_eq!(reference.aggregate.trials, 8);
        for threads in [2usize, 3, 8] {
            let other = make_plan().with_threads(threads).run();
            assert_eq!(
                reference.aggregate, other.aggregate,
                "aggregate differs at {threads} threads"
            );
        }
        // And the fan-out really is the montecarlo trial derivation:
        // trial t == the scenario run on the master stream jumped t times.
        let mut stream = Xoshiro256PlusPlus::seed_from_u64(99);
        for t in 0..3usize {
            let report = run_scenario_with_rng(&acceptance_scenario(99), stream.clone());
            assert_eq!(
                reference.aggregate.convergence_counts[t],
                report.final_report.convergence_opportunities,
                "trial {t}"
            );
            stream = stream.jump();
        }
    }

    /// A fork frozen at a strategy switch must stop pinning the tree
    /// pruner once the public chain strictly overtakes it: a long
    /// dormant phase after an attack keeps bounded memory.
    #[test]
    fn overtaken_frozen_fork_does_not_block_pruning() {
        let scenario = Scenario::new(
            base(0.45, 81),
            vec![
                phase(2_000, StrategyKind::PrivateChain, Regime::Adversarial),
                phase(200_000, StrategyKind::Honest, Regime::Calm).with_power(0.0),
            ],
        )
        .unwrap();
        let mut runner = ScenarioRunner::new(scenario);
        runner.run_next_phase().unwrap();
        assert!(
            runner.sim().adversary().private.withheld_len() > 0,
            "phase 1 must end with a frozen withheld fork for this test to bite"
        );
        runner.run_next_phase().unwrap();
        let resident = runner.sim().tree().len();
        assert!(
            resident < 16_384,
            "dormant phase pinned the pruner: {resident} resident blocks"
        );
    }

    #[test]
    fn scenario_plan_rejects_zero_trials() {
        assert!(ScenarioPlan::new(acceptance_scenario(1), 0).is_err());
    }

    #[test]
    fn validation_rejects_bad_compositions_and_detector_deltas() {
        use crate::compose::{Composition, SubSpec};
        let b = base(0.2, 1);
        assert!(
            Scenario::new(b, vec![phase(10, StrategyKind::Composed(0), Regime::Calm)],).is_err(),
            "composition index without a table"
        );
        let table = vec![Composition::new(vec![SubSpec::new(StrategyKind::Balance, 1)]).unwrap()];
        assert!(
            Scenario::with_compositions(
                b,
                vec![phase(10, StrategyKind::Composed(1), Regime::Calm)],
                table.clone(),
            )
            .is_err(),
            "composition index out of range"
        );
        assert!(
            Scenario::with_compositions(
                b,
                vec![phase(10, StrategyKind::Composed(0), Regime::Calm)],
                table,
            )
            .is_ok(),
            "in-range composition index"
        );
        assert!(
            Scenario::new(
                b,
                vec![phase(10, StrategyKind::Honest, Regime::Calm).with_detector_delta(0)],
            )
            .is_err(),
            "Δ_effective = 0"
        );
        assert!(
            Scenario::new(
                b,
                vec![phase(10, StrategyKind::Honest, Regime::Calm)
                    .with_detector_delta(b.delta + 1)],
            )
            .is_err(),
            "Δ_effective above the model bound"
        );
    }

    /// A single composed phase under full-Δ scheduling must reproduce
    /// the stationary composed engine bit-for-bit, exactly like the
    /// monolithic strategies (the Balance sub's max-delay vote makes
    /// the standalone delay policy coincide with the Adversarial
    /// regime).
    #[test]
    fn single_composed_phase_equals_stationary_composed_run() {
        use crate::compose::{ComposedAdversary, Composition, SubSpec};
        let rounds = 20_000;
        let cfg = base(0.4, 15);
        let composition = Composition::new(vec![
            SubSpec::new(StrategyKind::Balance, 2),
            SubSpec::new(StrategyKind::Selfish, 1),
        ])
        .unwrap();
        let scenario = Scenario::with_compositions(
            cfg,
            vec![phase(
                rounds,
                StrategyKind::Composed(0),
                Regime::Adversarial,
            )],
            vec![composition.clone()],
        )
        .unwrap();
        let scen = run_scenario(&scenario).final_report;
        let raw = run_simulation_with(cfg, ComposedAdversary::new(cfg.delta, composition), rounds);
        assert_eq!(scen, raw, "composed composition");
    }

    /// A composed phase's frozen sub-forks must not pin the tree pruner
    /// across a long dormant phase (the composed analogue of the
    /// monolithic overtaken-frozen-fork test).
    #[test]
    fn dormant_composed_forks_do_not_block_pruning() {
        use crate::compose::{Composition, SubSpec};
        let composition = Composition::new(vec![
            SubSpec::new(StrategyKind::PrivateChain, 1),
            SubSpec::new(StrategyKind::Selfish, 1),
        ])
        .unwrap();
        let scenario = Scenario::with_compositions(
            base(0.45, 82),
            vec![
                phase(2_000, StrategyKind::Composed(0), Regime::Adversarial),
                phase(200_000, StrategyKind::Honest, Regime::Calm).with_power(0.0),
            ],
            vec![composition],
        )
        .unwrap();
        let mut runner = ScenarioRunner::new(scenario);
        runner.run_next_phase().unwrap();
        runner.run_next_phase().unwrap();
        let resident = runner.sim().tree().len();
        assert!(
            resident < 16_384,
            "dormant composed phase pinned the pruner: {resident} resident blocks"
        );
    }

    /// Per-phase Δ_effective: re-deriving the detectors never touches
    /// the mining dynamics, only the measurement — a calm phase
    /// measured at Δ_eff = 1 counts strictly more convergence
    /// opportunities than the same phase measured at the network bound.
    #[test]
    fn per_phase_detector_delta_recounts_convergence() {
        let rounds = 20_000;
        let phases = |detector: Option<u64>| {
            let mut second = phase(rounds, StrategyKind::Honest, Regime::Calm);
            if let Some(d) = detector {
                second = second.with_detector_delta(d);
            }
            vec![
                phase(rounds, StrategyKind::Honest, Regime::Calm),
                second,
                phase(rounds, StrategyKind::Honest, Regime::Calm),
            ]
        };
        let plain = Scenario::new(base(0.1, 91), phases(None)).unwrap();
        let refined = Scenario::new(base(0.1, 91), phases(Some(1))).unwrap();
        // Sticky semantics: a later phase without an override inherits
        // the nearest earlier Δ_eff.
        assert_eq!(refined.detector_delta(0), 4);
        assert_eq!(refined.detector_delta(1), 1);
        assert_eq!(refined.detector_delta(2), 1);
        let plain = run_scenario(&plain);
        let refined = run_scenario(&refined);
        for (a, b) in plain.phase_reports.iter().zip(&refined.phase_reports) {
            assert_eq!(a.honest_blocks, b.honest_blocks, "dynamics untouched");
            assert_eq!(a.adversary_blocks, b.adversary_blocks);
        }
        assert_eq!(
            plain.phase_reports[0].convergence_opportunities,
            refined.phase_reports[0].convergence_opportunities,
            "identical before the boundary"
        );
        assert!(
            refined.phase_reports[1].convergence_opportunities
                > plain.phase_reports[1].convergence_opportunities,
            "Δ_eff = 1 must count strictly more opportunities: {} vs {}",
            refined.phase_reports[1].convergence_opportunities,
            plain.phase_reports[1].convergence_opportunities,
        );
        assert_eq!(plain.phase_reports[1].detector_delta, 4);
        assert_eq!(refined.phase_reports[1].detector_delta, 1);
        assert_eq!(refined.phase_reports[2].detector_delta, 1, "sticky");
    }

    /// Per-phase Δ_effective re-derivation is equivalent to running a
    /// fresh engine over the boundary: the refined phase's opportunity
    /// count must equal a from-scratch Δ_eff detector fed the same
    /// post-boundary rounds (proven here through the whole engine, not
    /// just the detector unit tests). The phase also shifts power so
    /// the boundary discards the buffered quiet gap — that is what
    /// makes a from-scratch oracle replay exact (see
    /// `power_shift_matches_from_scratch_oracle_at_boundary`).
    #[test]
    fn detector_rederivation_matches_fresh_detector_at_boundary() {
        use crate::events::ConvergenceDetector;
        use crate::oracle::MiningOracle;
        let rounds = 10_000;
        let scenario = Scenario::new(
            base(0.1, 93),
            vec![
                phase(rounds, StrategyKind::Honest, Regime::Calm),
                phase(rounds, StrategyKind::Honest, Regime::Calm)
                    .with_power(0.3)
                    .with_detector_delta(2),
            ],
        )
        .unwrap();
        let mut runner = ScenarioRunner::new(scenario.clone());
        runner.run_next_phase().unwrap();
        let boundary_rng = runner.sim().mining_rng();
        let report = runner.run_to_completion();

        // Replay phase 2's mining stream on a fresh oracle and feed the
        // honest totals to a fresh Δ_eff = 2 detector.
        let cfg = scenario.phase_config(1);
        let mut oracle = MiningOracle::new(
            [cfg.n_honest(), 0],
            cfg.n_adversary(),
            cfg.hardness,
            boundary_rng,
        );
        let mut fresh = ConvergenceDetector::new(2);
        let mut r = 0u64;
        while r < rounds {
            let (gap, out) = oracle.sample_gap_to_success().unwrap();
            if r + gap > rounds {
                fresh.advance_n_run(rounds - r);
                break;
            }
            fresh.advance_n_run(gap - 1);
            fresh.update(out.honest_total());
            r += gap;
        }
        assert_eq!(
            report.phase_reports[1].convergence_opportunities,
            fresh.count(),
            "phase 2 must count exactly what a fresh Δ_eff detector counts"
        );
    }

    /// A frozen private fork survives a strategy switch and resumes.
    #[test]
    fn withheld_fork_frozen_across_phases() {
        use crate::block::Provenance;
        let mut tree = BlockTree::new();
        let mut honest_tip = BlockId::GENESIS;
        for r in 1..=2 {
            honest_tip = tree.add_block(honest_tip, r, Provenance::Honest(0));
        }
        let scenario = Scenario::new(
            base(0.3, 61),
            vec![
                phase(10, StrategyKind::PrivateChain, Regime::Adversarial),
                phase(10, StrategyKind::Honest, Regime::Calm),
                phase(10, StrategyKind::PrivateChain, Regime::Adversarial),
            ],
        )
        .unwrap();
        let mut adv = ScenarioAdversary::new(&scenario);
        // Phase 1: mine a big private lead (5 blocks over height 2).
        let mut buf = Vec::new();
        adv.act(3, &[honest_tip, honest_tip], &mut tree, 5, &mut buf);
        assert!(buf.is_empty(), "a 5-lead fork stays withheld");
        let frozen = adv.live_blocks();
        // Phase 2: honest behaviour; the fork must stay frozen and alive.
        adv.set_phase(StrategyKind::Honest, Regime::Calm);
        buf.clear();
        adv.act(4, &[honest_tip, honest_tip], &mut tree, 1, &mut buf);
        assert_eq!(buf.len(), 2, "honest phase publishes to both groups");
        assert!(
            adv.live_blocks().contains(&frozen[0]),
            "frozen fork tip stays pinned for the pruner"
        );
        // Phase 3: switch back; the fork resumes from its frozen tip.
        adv.set_phase(StrategyKind::PrivateChain, Regime::Adversarial);
        buf.clear();
        adv.act(5, &[honest_tip, honest_tip], &mut tree, 1, &mut buf);
        assert!(
            tree.is_ancestor(frozen[0], adv.live_blocks()[0]),
            "resumed fork extends the frozen tip"
        );
    }

    /// Eclipse regime: releases into the eclipsed group are floored to
    /// Δ, releases elsewhere keep the strategy's timing.
    #[test]
    fn eclipse_floors_release_delays() {
        let scenario = Scenario::new(
            base(0.3, 71),
            vec![phase(
                10,
                StrategyKind::Honest,
                Regime::Eclipse { group: 1 },
            )],
        )
        .unwrap();
        let mut adv = ScenarioAdversary::new(&scenario);
        assert_eq!(adv.honest_delay(1, 0, 1), 4, "into the eclipse: Δ");
        assert_eq!(adv.honest_delay(1, 1, 0), 1, "out of the eclipse: calm");
        let mut tree = BlockTree::new();
        let mut buf = Vec::new();
        adv.act(
            1,
            &[BlockId::GENESIS, BlockId::GENESIS],
            &mut tree,
            1,
            &mut buf,
        );
        let to_eclipsed: Vec<_> = buf.iter().filter(|r| r.group == 1).collect();
        let to_open: Vec<_> = buf.iter().filter(|r| r.group == 0).collect();
        assert!(to_eclipsed.iter().all(|r| r.delay == 4));
        assert!(to_open.iter().all(|r| r.delay == 1));
    }
}
