//! The block tree: an arena of blocks rooted at genesis, prunable below
//! a finalized root.
//!
//! Block ids are *monotone*: every block keeps the id it was created
//! with forever, and ids are never reused — pruning drops a prefix of
//! the id space. This is what makes pruning behaviour-invisible: the
//! delivery queue orders same-round deliveries by id, so recycled ids
//! would change tie-breaks and make pruned runs diverge from unpruned
//! ones.

use crate::block::{Block, BlockId, Provenance, Round};

/// A tree of blocks rooted at genesis. Every block except genesis has
/// exactly one parent; heights are maintained on insertion.
///
/// Long runs finalize a common prefix that no future chain can fork
/// below; [`BlockTree::prune_to`] discards everything below such a
/// block so memory stays proportional to the *live* fork window rather
/// than the whole history. Heights stay absolute and the chain
/// composition of the pruned prefix is carried forward, so all
/// aggregate queries return the same answers as on the unpruned tree.
///
/// # Invariant
///
/// The tree always contains at least its root (genesis until the first
/// prune), so [`BlockTree::len`] is ≥ 1 and [`BlockTree::is_empty`] is
/// always `false`; the pair is kept coherent by deriving both from the
/// same storage.
///
/// # Examples
///
/// ```
/// use nakamoto_sim::tree::BlockTree;
/// use nakamoto_sim::block::{BlockId, Provenance};
///
/// let mut tree = BlockTree::new();
/// let a = tree.add_block(BlockId::GENESIS, 1, Provenance::Honest(0));
/// let b = tree.add_block(a, 2, Provenance::Adversary);
/// assert_eq!(tree.height(b), 2);
/// assert!(tree.is_ancestor(a, b));
/// ```
#[derive(Debug, Clone)]
pub struct BlockTree {
    /// Blocks with ids `offset..offset + blocks.len()`, in id order.
    /// A plain `Vec` (not a deque): indexing is the hottest operation
    /// in the simulator, and the front-drain on prune is rare and
    /// touches only the small resident window.
    blocks: Vec<Block>,
    /// Id of `blocks[0]` — everything below has been pruned.
    offset: u32,
    /// The current root: all *live* blocks descend from it. Genesis
    /// until the first prune.
    root: BlockId,
    /// Honest blocks on the pruned chain genesis → root (root included,
    /// genesis excluded).
    pruned_honest: u64,
    /// Adversary blocks on the pruned chain genesis → root.
    pruned_adversary: u64,
}

impl Default for BlockTree {
    fn default() -> Self {
        BlockTree::new()
    }
}

impl BlockTree {
    /// Creates a tree holding only the genesis block.
    #[must_use]
    pub fn new() -> Self {
        let blocks = vec![Block {
            id: BlockId::GENESIS,
            parent: BlockId::GENESIS,
            height: 0,
            round: 0,
            provenance: Provenance::Genesis,
        }];
        BlockTree {
            blocks,
            offset: 0,
            root: BlockId::GENESIS,
            pruned_honest: 0,
            pruned_adversary: 0,
        }
    }

    /// Number of blocks currently resident (including the root; pruned
    /// blocks are not counted).
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` iff no blocks are resident. Kept coherent with
    /// [`BlockTree::len`] by construction, though the tree invariant
    /// (the root is always resident) means it always returns `false`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The current root: genesis, or the finalized block the tree was
    /// last pruned to.
    #[must_use]
    pub fn root(&self) -> BlockId {
        self.root
    }

    /// Total number of blocks ever added (including pruned ones and
    /// genesis); also the id the next added block will receive.
    #[must_use]
    pub fn total_created(&self) -> u64 {
        self.offset as u64 + self.blocks.len() as u64
    }

    /// Appends a block extending `parent`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not resident in the tree or if more than
    /// `u32::MAX` blocks are ever created. Ids are monotone and never
    /// reused (see the module docs), so the id space — not memory — is
    /// the hard length limit of a run: ~4.3 × 10⁹ blocks, e.g. ≈ 5 ×
    /// 10¹⁰ rounds at c = 3. Widen `BlockId` to `u64` if runs beyond
    /// that are ever needed (costs arena size and cache pressure).
    pub fn add_block(&mut self, parent: BlockId, round: Round, provenance: Provenance) -> BlockId {
        let parent_block = self.block(parent);
        let height = parent_block.height + 1;
        let id = BlockId(u32::try_from(self.total_created()).expect("block id space overflow")); // detlint: allow(panic-expect) -- documented BlockId capacity limit: u32 suffices below ~1e10 rounds
        self.blocks.push(Block {
            id,
            parent,
            height,
            round,
            provenance,
        });
        id
    }

    /// Block metadata.
    ///
    /// # Panics
    ///
    /// Panics if `id` has been pruned or was never added.
    #[inline]
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        assert!(
            id.0 >= self.offset,
            "block {id} was pruned (tree root is {})",
            self.root
        );
        &self.blocks[(id.0 - self.offset) as usize]
    }

    /// Height of a block (genesis is 0; heights stay absolute across
    /// pruning).
    #[inline]
    #[must_use]
    pub fn height(&self, id: BlockId) -> u64 {
        self.block(id).height
    }

    /// Parent of a block (the root returns itself pre-prune; after a
    /// prune the root's stored parent is no longer resident).
    #[inline]
    #[must_use]
    pub fn parent(&self, id: BlockId) -> BlockId {
        self.block(id).parent
    }

    /// Iterator over the chain from `tip` back to the tree root
    /// (inclusive). On an unpruned tree the root is genesis, matching
    /// the historical name; on a pruned tree the walk stops at the
    /// pruned root.
    #[must_use]
    pub fn chain_to_genesis(&self, tip: BlockId) -> ChainIter<'_> {
        ChainIter {
            tree: self,
            next: Some(tip),
        }
    }

    /// The ancestor of `id` at exactly `target_height`.
    ///
    /// # Panics
    ///
    /// Panics if `target_height > height(id)` or if the ancestor has
    /// been pruned.
    #[must_use]
    pub fn ancestor_at_height(&self, id: BlockId, target_height: u64) -> BlockId {
        let mut cur = id;
        let h = self.height(id);
        assert!(
            target_height <= h,
            "target height {target_height} above block height {h}"
        );
        for _ in 0..(h - target_height) {
            cur = self.parent(cur);
        }
        cur
    }

    /// `true` iff `ancestor` lies on the chain from `descendant` to
    /// the root (a block is its own ancestor).
    #[must_use]
    pub fn is_ancestor(&self, ancestor: BlockId, descendant: BlockId) -> bool {
        let ha = self.height(ancestor);
        let hd = self.height(descendant);
        if ha > hd {
            return false;
        }
        self.ancestor_at_height(descendant, ha) == ancestor
    }

    /// The deepest common ancestor of two blocks.
    #[must_use]
    pub fn common_ancestor(&self, a: BlockId, b: BlockId) -> BlockId {
        let (mut x, mut y) = (a, b);
        let h = self.height(a).min(self.height(b));
        x = self.ancestor_at_height(x, h);
        y = self.ancestor_at_height(y, h);
        while x != y {
            x = self.parent(x);
            y = self.parent(y);
        }
        x
    }

    /// Number of honest / adversary blocks on the chain from `tip` to
    /// genesis (genesis excluded), *including* any pruned prefix that
    /// `tip`'s chain runs through. Chain quality is
    /// `honest / (honest + adversary)`.
    #[must_use]
    pub fn chain_composition(&self, tip: BlockId) -> (u64, u64) {
        let mut honest = self.pruned_honest;
        let mut adversary = self.pruned_adversary;
        let mut cur = tip;
        while cur != self.root {
            match self.block(cur).provenance {
                Provenance::Honest(_) => honest += 1,
                Provenance::Adversary => adversary += 1,
                Provenance::Genesis => {}
            }
            cur = self.parent(cur);
        }
        (honest, adversary)
    }

    /// Prunes everything below `new_root`: blocks with smaller ids —
    /// the whole finalized prefix plus any abandoned side branches that
    /// are older than `new_root` — are discarded, and `new_root`
    /// becomes the tree root.
    ///
    /// The caller must guarantee that every id it will ever use again
    /// (tips, in-flight deliveries, withheld forks) descends from
    /// `new_root`; the engine derives `new_root` as the common ancestor
    /// of exactly that live set, which is why no future chain can fork
    /// below it. Side branches *newer* than `new_root` stay resident
    /// until a later prune overtakes their ids.
    ///
    /// # Panics
    ///
    /// Panics if `new_root` is not resident or does not descend from
    /// the current root.
    pub fn prune_to(&mut self, new_root: BlockId) {
        assert!(
            self.is_ancestor(self.root, new_root),
            "new root {new_root} must descend from the current root {}",
            self.root
        );
        if new_root == self.root {
            return;
        }
        // Fold the chain (old_root, new_root] into the prefix summary.
        let mut cur = new_root;
        while cur != self.root {
            match self.block(cur).provenance {
                Provenance::Honest(_) => self.pruned_honest += 1,
                Provenance::Adversary => self.pruned_adversary += 1,
                Provenance::Genesis => {}
            }
            cur = self.parent(cur);
        }
        let drop = new_root.0 - self.offset;
        self.blocks.drain(..drop as usize);
        self.offset = new_root.0;
        self.root = new_root;
    }
}

/// Iterator returned by [`BlockTree::chain_to_genesis`].
#[derive(Debug, Clone)]
pub struct ChainIter<'a> {
    tree: &'a BlockTree,
    next: Option<BlockId>,
}

impl<'a> Iterator for ChainIter<'a> {
    type Item = &'a Block;

    fn next(&mut self) -> Option<Self::Item> {
        let id = self.next?;
        let block = self.tree.block(id);
        self.next = if id == self.tree.root {
            None
        } else {
            Some(block.parent)
        };
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds genesis → a → b → c and a side chain genesis → a → d.
    fn fixture() -> (BlockTree, BlockId, BlockId, BlockId, BlockId) {
        let mut t = BlockTree::new();
        let a = t.add_block(BlockId::GENESIS, 1, Provenance::Honest(0));
        let b = t.add_block(a, 2, Provenance::Honest(0));
        let c = t.add_block(b, 3, Provenance::Adversary);
        let d = t.add_block(a, 2, Provenance::Honest(1));
        (t, a, b, c, d)
    }

    #[test]
    fn new_tree_has_genesis_only() {
        let t = BlockTree::new();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.root(), BlockId::GENESIS);
        assert_eq!(t.height(BlockId::GENESIS), 0);
        assert!(t.block(BlockId::GENESIS).is_genesis());
    }

    #[test]
    fn len_and_is_empty_are_coherent() {
        // The invariant: at least the root is always resident.
        let (t, ..) = fixture();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert!(!t.is_empty());
    }

    #[test]
    fn heights_follow_parents() {
        let (t, a, b, c, d) = fixture();
        assert_eq!(t.height(a), 1);
        assert_eq!(t.height(b), 2);
        assert_eq!(t.height(c), 3);
        assert_eq!(t.height(d), 2);
    }

    #[test]
    fn chain_iteration_order() {
        let (t, a, b, c, _) = fixture();
        let ids: Vec<BlockId> = t.chain_to_genesis(c).map(|blk| blk.id).collect();
        assert_eq!(ids, vec![c, b, a, BlockId::GENESIS]);
    }

    #[test]
    fn ancestor_queries() {
        let (t, a, b, c, d) = fixture();
        assert!(t.is_ancestor(a, c));
        assert!(t.is_ancestor(BlockId::GENESIS, d));
        assert!(t.is_ancestor(c, c), "a block is its own ancestor");
        assert!(!t.is_ancestor(b, d), "siblings' subtrees are unrelated");
        assert!(!t.is_ancestor(c, a), "descendant is not an ancestor");
        assert_eq!(t.ancestor_at_height(c, 1), a);
        assert_eq!(t.ancestor_at_height(c, 3), c);
    }

    #[test]
    fn common_ancestor_at_fork() {
        let (t, a, b, c, d) = fixture();
        assert_eq!(t.common_ancestor(c, d), a);
        assert_eq!(t.common_ancestor(c, b), b);
        assert_eq!(t.common_ancestor(d, d), d);
        assert_eq!(t.common_ancestor(BlockId::GENESIS, c), BlockId::GENESIS);
    }

    #[test]
    fn chain_composition_counts() {
        let (t, _, _, c, d) = fixture();
        assert_eq!(t.chain_composition(c), (2, 1));
        assert_eq!(t.chain_composition(d), (2, 0));
        assert_eq!(t.chain_composition(BlockId::GENESIS), (0, 0));
    }

    #[test]
    #[should_panic(expected = "above block height")]
    fn ancestor_above_height_panics() {
        let (t, a, ..) = fixture();
        let _ = t.ancestor_at_height(a, 5);
    }

    #[test]
    fn prune_drops_prefix_and_keeps_queries_consistent() {
        let (mut t, _a, b, c, d) = fixture();
        let e = t.add_block(c, 4, Provenance::Honest(0));
        t.prune_to(b);
        assert_eq!(t.root(), b);
        // Genesis and `a` (ids below b's) are gone; the stale sibling
        // `d` has a newer id than `b`, so it stays resident until a
        // later prune passes its id.
        assert_eq!(t.len(), 4); // b, c, d, e
        assert_eq!(t.height(d), 2);
        assert_eq!(t.height(e), 4);
    }

    #[test]
    fn prune_preserves_heights_composition_and_walks() {
        // Chain: G → h1 → h2 → A3 → h4 → h5, plus a stale sibling.
        let mut t = BlockTree::new();
        let h1 = t.add_block(BlockId::GENESIS, 1, Provenance::Honest(0));
        let h2 = t.add_block(h1, 2, Provenance::Honest(0));
        let stale = t.add_block(h1, 2, Provenance::Honest(1));
        let a3 = t.add_block(h2, 3, Provenance::Adversary);
        let h4 = t.add_block(a3, 4, Provenance::Honest(0));
        let h5 = t.add_block(h4, 5, Provenance::Honest(0));
        let before = t.chain_composition(h5);
        let before_len = t.len();

        t.prune_to(a3);
        assert_eq!(t.root(), a3);
        assert!(t.len() < before_len, "prefix was dropped");
        // Absolute heights survive.
        assert_eq!(t.height(h5), 5);
        assert_eq!(t.height(a3), 3);
        // Composition includes the pruned prefix (2 honest) and the
        // pruned root itself (1 adversary).
        assert_eq!(t.chain_composition(h5), before);
        assert_eq!(t.chain_composition(h5), (4, 1));
        // Walks stop at the pruned root.
        let ids: Vec<BlockId> = t.chain_to_genesis(h5).map(|blk| blk.id).collect();
        assert_eq!(ids, vec![h5, h4, a3]);
        assert!(t.is_ancestor(a3, h5));
        assert_eq!(t.ancestor_at_height(h5, 3), a3);
        assert_eq!(t.common_ancestor(h5, h4), h4);
        // New blocks keep monotone ids.
        let h6 = t.add_block(h5, 6, Provenance::Honest(0));
        assert!(h6 > h5);
        assert_eq!(t.total_created(), 8);
        let _ = stale;
    }

    #[test]
    fn repeated_prunes_accumulate_prefix_counts() {
        let mut t = BlockTree::new();
        let mut tip = BlockId::GENESIS;
        let mut checkpoints = Vec::new();
        for r in 1..=20u64 {
            let prov = if r % 3 == 0 {
                Provenance::Adversary
            } else {
                Provenance::Honest(0)
            };
            tip = t.add_block(tip, r, prov);
            if r % 5 == 0 {
                checkpoints.push(tip);
            }
        }
        let expected = t.chain_composition(tip);
        for cp in checkpoints {
            t.prune_to(cp);
            assert_eq!(t.chain_composition(tip), expected);
        }
        // Final prune point is the tip itself: only it remains.
        assert_eq!(t.len(), 1);
        assert_eq!(t.root(), tip);
    }

    #[test]
    #[should_panic(expected = "was pruned")]
    fn pruned_block_access_panics() {
        let (mut t, a, b, ..) = fixture();
        t.prune_to(b);
        let _ = t.block(a);
    }

    #[test]
    #[should_panic(expected = "must descend")]
    fn prune_to_side_branch_rejected() {
        let (mut t, _, b, _, d) = fixture();
        t.prune_to(b);
        // d does not descend from b.
        t.prune_to(d);
    }

    #[test]
    fn prune_to_root_is_a_no_op() {
        let (mut t, _, b, ..) = fixture();
        t.prune_to(b);
        let len = t.len();
        t.prune_to(b);
        assert_eq!(t.len(), len);
    }

    #[test]
    fn deep_chain_is_fast_enough() {
        // 200k blocks deep: linear walks must be fine.
        let mut t = BlockTree::new();
        let mut tip = BlockId::GENESIS;
        for r in 1..=200_000u64 {
            tip = t.add_block(tip, r, Provenance::Honest(0));
        }
        assert_eq!(t.height(tip), 200_000);
        assert_eq!(t.ancestor_at_height(tip, 0), BlockId::GENESIS);
    }

    #[test]
    fn pruned_deep_chain_stays_small() {
        let mut t = BlockTree::new();
        let mut tip = BlockId::GENESIS;
        for r in 1..=200_000u64 {
            tip = t.add_block(tip, r, Provenance::Honest(0));
            if r % 1_000 == 0 {
                t.prune_to(tip);
            }
        }
        assert!(t.len() <= 1_001, "len {} not bounded", t.len());
        assert_eq!(t.height(tip), 200_000);
        assert_eq!(t.chain_composition(tip), (200_000, 0));
    }
}
