//! The block tree: an append-only arena of blocks rooted at genesis.

use crate::block::{Block, BlockId, Provenance, Round};

/// An append-only tree of blocks. Every block except genesis has exactly
/// one parent; heights are maintained on insertion.
///
/// # Examples
///
/// ```
/// use nakamoto_sim::tree::BlockTree;
/// use nakamoto_sim::block::{BlockId, Provenance};
///
/// let mut tree = BlockTree::new();
/// let a = tree.add_block(BlockId::GENESIS, 1, Provenance::Honest(0));
/// let b = tree.add_block(a, 2, Provenance::Adversary);
/// assert_eq!(tree.height(b), 2);
/// assert!(tree.is_ancestor(a, b));
/// ```
#[derive(Debug, Clone)]
pub struct BlockTree {
    blocks: Vec<Block>,
}

impl Default for BlockTree {
    fn default() -> Self {
        BlockTree::new()
    }
}

impl BlockTree {
    /// Creates a tree holding only the genesis block.
    pub fn new() -> Self {
        BlockTree {
            blocks: vec![Block {
                id: BlockId::GENESIS,
                parent: BlockId::GENESIS,
                height: 0,
                round: 0,
                provenance: Provenance::Genesis,
            }],
        }
    }

    /// Number of blocks including genesis.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Always `false`: the tree at least contains genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Appends a block extending `parent`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not in the tree or if the arena would exceed
    /// `u32::MAX` blocks.
    pub fn add_block(&mut self, parent: BlockId, round: Round, provenance: Provenance) -> BlockId {
        let parent_block = self.block(parent);
        let height = parent_block.height + 1;
        let id = BlockId(u32::try_from(self.blocks.len()).expect("block arena overflow"));
        self.blocks.push(Block {
            id,
            parent,
            height,
            round,
            provenance,
        });
        id
    }

    /// Block metadata.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the tree.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Height of a block (genesis is 0).
    pub fn height(&self, id: BlockId) -> u64 {
        self.block(id).height
    }

    /// Parent of a block (genesis returns itself).
    pub fn parent(&self, id: BlockId) -> BlockId {
        self.block(id).parent
    }

    /// Iterator over the chain from `tip` back to genesis (inclusive).
    pub fn chain_to_genesis(&self, tip: BlockId) -> ChainIter<'_> {
        ChainIter {
            tree: self,
            next: Some(tip),
        }
    }

    /// The ancestor of `id` at exactly `target_height`.
    ///
    /// # Panics
    ///
    /// Panics if `target_height > height(id)`.
    pub fn ancestor_at_height(&self, id: BlockId, target_height: u64) -> BlockId {
        let mut cur = id;
        let h = self.height(id);
        assert!(
            target_height <= h,
            "target height {target_height} above block height {h}"
        );
        for _ in 0..(h - target_height) {
            cur = self.parent(cur);
        }
        cur
    }

    /// `true` iff `ancestor` lies on the chain from `descendant` to
    /// genesis (a block is its own ancestor).
    pub fn is_ancestor(&self, ancestor: BlockId, descendant: BlockId) -> bool {
        let ha = self.height(ancestor);
        let hd = self.height(descendant);
        if ha > hd {
            return false;
        }
        self.ancestor_at_height(descendant, ha) == ancestor
    }

    /// The deepest common ancestor of two blocks.
    pub fn common_ancestor(&self, a: BlockId, b: BlockId) -> BlockId {
        let (mut x, mut y) = (a, b);
        let h = self.height(a).min(self.height(b));
        x = self.ancestor_at_height(x, h);
        y = self.ancestor_at_height(y, h);
        while x != y {
            x = self.parent(x);
            y = self.parent(y);
        }
        x
    }

    /// Number of honest / adversary blocks on the chain from `tip` to
    /// genesis (genesis excluded). Chain quality is
    /// `honest / (honest + adversary)`.
    pub fn chain_composition(&self, tip: BlockId) -> (u64, u64) {
        let mut honest = 0;
        let mut adversary = 0;
        for b in self.chain_to_genesis(tip) {
            match b.provenance {
                Provenance::Honest(_) => honest += 1,
                Provenance::Adversary => adversary += 1,
                Provenance::Genesis => {}
            }
        }
        (honest, adversary)
    }
}

/// Iterator returned by [`BlockTree::chain_to_genesis`].
#[derive(Debug, Clone)]
pub struct ChainIter<'a> {
    tree: &'a BlockTree,
    next: Option<BlockId>,
}

impl<'a> Iterator for ChainIter<'a> {
    type Item = &'a Block;

    fn next(&mut self) -> Option<Self::Item> {
        let id = self.next?;
        let block = self.tree.block(id);
        self.next = if block.is_genesis() {
            None
        } else {
            Some(block.parent)
        };
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds genesis → a → b → c and a side chain genesis → a → d.
    fn fixture() -> (BlockTree, BlockId, BlockId, BlockId, BlockId) {
        let mut t = BlockTree::new();
        let a = t.add_block(BlockId::GENESIS, 1, Provenance::Honest(0));
        let b = t.add_block(a, 2, Provenance::Honest(0));
        let c = t.add_block(b, 3, Provenance::Adversary);
        let d = t.add_block(a, 2, Provenance::Honest(1));
        (t, a, b, c, d)
    }

    #[test]
    fn new_tree_has_genesis_only() {
        let t = BlockTree::new();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.height(BlockId::GENESIS), 0);
        assert!(t.block(BlockId::GENESIS).is_genesis());
    }

    #[test]
    fn heights_follow_parents() {
        let (t, a, b, c, d) = fixture();
        assert_eq!(t.height(a), 1);
        assert_eq!(t.height(b), 2);
        assert_eq!(t.height(c), 3);
        assert_eq!(t.height(d), 2);
    }

    #[test]
    fn chain_iteration_order() {
        let (t, a, b, c, _) = fixture();
        let ids: Vec<BlockId> = t.chain_to_genesis(c).map(|blk| blk.id).collect();
        assert_eq!(ids, vec![c, b, a, BlockId::GENESIS]);
    }

    #[test]
    fn ancestor_queries() {
        let (t, a, b, c, d) = fixture();
        assert!(t.is_ancestor(a, c));
        assert!(t.is_ancestor(BlockId::GENESIS, d));
        assert!(t.is_ancestor(c, c), "a block is its own ancestor");
        assert!(!t.is_ancestor(b, d), "siblings' subtrees are unrelated");
        assert!(!t.is_ancestor(c, a), "descendant is not an ancestor");
        assert_eq!(t.ancestor_at_height(c, 1), a);
        assert_eq!(t.ancestor_at_height(c, 3), c);
    }

    #[test]
    fn common_ancestor_at_fork() {
        let (t, a, b, c, d) = fixture();
        assert_eq!(t.common_ancestor(c, d), a);
        assert_eq!(t.common_ancestor(c, b), b);
        assert_eq!(t.common_ancestor(d, d), d);
        assert_eq!(t.common_ancestor(BlockId::GENESIS, c), BlockId::GENESIS);
    }

    #[test]
    fn chain_composition_counts() {
        let (t, _, _, c, d) = fixture();
        assert_eq!(t.chain_composition(c), (2, 1));
        assert_eq!(t.chain_composition(d), (2, 0));
        assert_eq!(t.chain_composition(BlockId::GENESIS), (0, 0));
    }

    #[test]
    #[should_panic(expected = "above block height")]
    fn ancestor_above_height_panics() {
        let (t, a, ..) = fixture();
        t.ancestor_at_height(a, 5);
    }

    #[test]
    fn deep_chain_is_fast_enough() {
        // 200k blocks deep: linear walks must be fine.
        let mut t = BlockTree::new();
        let mut tip = BlockId::GENESIS;
        for r in 1..=200_000u64 {
            tip = t.add_block(tip, r, Provenance::Honest(0));
        }
        assert_eq!(t.height(tip), 200_000);
        assert_eq!(t.ancestor_at_height(tip, 0), BlockId::GENESIS);
    }
}
