//! Randomized scenario fuzzing: a seeded generator over the combined
//! *scenario × composition* space, asserting engine invariants on every
//! generated case.
//!
//! The scenario subsystem's contracts — thread-count bit-identity,
//! behaviour-invisible pruning, monotone cumulative counters — are each
//! proven by targeted unit tests on hand-written scenarios, but the
//! space of phase grids, power splits, network regimes, detector
//! re-derivations and strategy compositions is far too large for
//! hand-written coverage. The [`ScenarioFuzzer`] samples that space
//! (phase counts, durations, ν/p overrides, regimes, `Δ_effective`
//! overrides, and composition tables with random sub-strategy weights —
//! zero-weight passengers included) and checks, per case:
//!
//! 1. **Thread-count bit-identity** — a two-trial [`ScenarioPlan`]
//!    aggregate is bit-identical at 1, 2, 4, and 8 worker slots of the
//!    shared executor pool.
//! 2. **Pruning-liveness** — a pruned run and an unpruned run of the
//!    same scenario produce identical final and per-phase reports, and
//!    the pruned tree never holds more blocks than the unpruned one.
//! 3. **Prefix monotonicity** — along the phase snapshots of one run,
//!    every cumulative counter (rounds, blocks, convergence
//!    opportunities, reorgs, depth maxima, group heights) is
//!    nondecreasing, and the per-phase rounds recompose into the
//!    scenario total.
//! 4. **Lockstep-batch bit-identity** — the case's base config and
//!    leading strategy, fanned out over `jump()`-derived lanes through
//!    the [`crate::batch::BatchSimulation`] engine, reproduce the
//!    scalar engine's reports lane for lane.
//!
//! A violation aborts the run with a [`FuzzFailure`] carrying the full
//! sampled case as a TOML repro ([`FuzzFailure::repro_toml`]) plus the
//! `(master_seed, case)` pair that regenerates it exactly via
//! [`run_case`]. CI runs a few thousand cases per PR with a
//! run-unique seed and uploads the repro as an artifact on failure.
//!
//! # Example
//!
//! ```
//! use nakamoto_sim::fuzz::ScenarioFuzzer;
//!
//! let stats = ScenarioFuzzer::new(7).run(4).expect("invariants hold");
//! assert_eq!(stats.cases, 4);
//! ```

use crate::adversary::{
    Adversary, BalanceAdversary, ImmediateReleaseAdversary, PrivateChainAdversary,
};
use crate::batch::BatchSimulation;
use crate::compose::{ComposedAdversary, Composition, SubSpec};
use crate::config::SimConfig;
use crate::execution::Simulation;
use crate::metrics::SimReport;
use crate::scenario::{PhaseSpec, Regime, Scenario, ScenarioPlan, ScenarioRunner, StrategyKind};
use crate::selfish::SelfishMiningAdversary;
use crate::spec::{ExperimentMode, ExperimentSpec, FuzzHeader, RunSettings};
use probability::rng::{RandomSource, SplitMix64, Xoshiro256PlusPlus};
use std::fmt;

/// Aggregate statistics of a completed fuzz run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzStats {
    /// Generated cases, all of which passed every invariant.
    pub cases: u64,
    /// Cases whose scenario ran at least one composed phase.
    pub composed_cases: u64,
    /// Total phases across all generated scenarios.
    pub phases: u64,
    /// Scenario rounds per single execution, summed over cases (each
    /// case executes the scenario several times for the invariants).
    pub rounds: u64,
}

/// A failed invariant, carrying everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Master seed the fuzzer ran with.
    pub master_seed: u64,
    /// Index of the failing case under that seed (replay with
    /// [`run_case`]).
    pub case: u64,
    /// Which invariant was violated.
    pub invariant: &'static str,
    /// Human-readable mismatch description.
    pub detail: String,
    /// The sampled scenario that triggered the failure.
    pub scenario: Scenario,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fuzz case {} (master seed {:#x}) violated `{}`: {}",
            self.case, self.master_seed, self.invariant, self.detail
        )
    }
}

impl std::error::Error for FuzzFailure {}

impl FuzzFailure {
    /// Renders the failing case as a **directly runnable experiment
    /// spec** (see [`crate::spec`]) — the artifact the CI fuzz job
    /// uploads. The `[fuzz]` table records the exact `(master_seed,
    /// case)` replay coordinates; the body is the sampled scenario in
    /// the standard spec schema, so the document loads through
    /// [`ExperimentSpec::parse`] for `scenario_fuzz --replay` and the
    /// `experiment` harness alike.
    #[must_use]
    pub fn repro_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("# scenario_fuzz failing case\n");
        out.push_str("# replay: scenario_fuzz --replay <this file>, or\n");
        out.push_str("#         nakamoto_sim::fuzz::run_case(master_seed, case)\n");
        out.push_str(&self.to_spec().to_toml());
        out
    }

    /// The failing case as an [`ExperimentSpec`]: the sampled scenario
    /// plus the trial settings the invariant checker runs (two trials,
    /// threshold 6 — see [`check_scenario`]), stamped with the replay
    /// coordinates in the `[fuzz]` table.
    #[must_use]
    pub fn to_spec(&self) -> ExperimentSpec {
        ExperimentSpec {
            run: RunSettings {
                trials: 2,
                threads: 0,
                thresholds: vec![6],
                ..RunSettings::default()
            },
            base: *self.scenario.base(),
            compositions: self.scenario.compositions().to_vec(),
            mode: ExperimentMode::Scenario(self.scenario.phases().to_vec()),
            sweep: None,
            fuzz: Some(FuzzHeader {
                master_seed: self.master_seed,
                case: self.case,
                invariant: self.invariant.to_string(),
                detail: self.detail.clone(),
            }),
        }
    }
}

/// The seeded scenario fuzzer (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct ScenarioFuzzer {
    master_seed: u64,
    next_case: u64,
}

impl ScenarioFuzzer {
    /// Creates a fuzzer; every run is a pure function of `master_seed`.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        ScenarioFuzzer {
            master_seed,
            next_case: 0,
        }
    }

    /// Generates and checks the next `budget` cases. Returns the run's
    /// statistics, or the first failing case. Calling `run` again
    /// continues with fresh cases (the case counter persists).
    ///
    /// # Errors
    ///
    /// Returns a [`FuzzFailure`] describing the first violated
    /// invariant, replayable via [`run_case`].
    pub fn run(&mut self, budget: u64) -> Result<FuzzStats, Box<FuzzFailure>> {
        let mut stats = FuzzStats {
            cases: 0,
            composed_cases: 0,
            phases: 0,
            rounds: 0,
        };
        for _ in 0..budget {
            let case = self.next_case;
            self.next_case += 1;
            let scenario = sample_scenario(self.master_seed, case);
            stats.cases += 1;
            stats.phases += scenario.phases().len() as u64;
            stats.rounds += scenario.total_rounds();
            if scenario
                .phases()
                .iter()
                .any(|p| matches!(p.strategy, StrategyKind::Composed(_)))
            {
                stats.composed_cases += 1;
            }
            check_scenario(&scenario).map_err(|(invariant, detail)| {
                Box::new(FuzzFailure {
                    master_seed: self.master_seed,
                    case,
                    invariant,
                    detail,
                    scenario: scenario.clone(),
                })
            })?;
        }
        Ok(stats)
    }
}

/// Replays a single case of a fuzz run: regenerates the scenario for
/// `(master_seed, case)` and re-checks every invariant.
///
/// # Errors
///
/// Returns the same [`FuzzFailure`] the original run reported.
pub fn run_case(master_seed: u64, case: u64) -> Result<(), Box<FuzzFailure>> {
    let scenario = sample_scenario(master_seed, case);
    check_scenario(&scenario).map_err(|(invariant, detail)| {
        Box::new(FuzzFailure {
            master_seed,
            case,
            invariant,
            detail,
            scenario,
        })
    })
}

/// The scenario the generator samples for `(master_seed, case)` — the
/// coordinates a repro spec's `[fuzz]` table records. Replay tooling
/// (`scenario_fuzz --replay`) uses this to verify a saved repro
/// against the case it claims to reproduce.
#[must_use]
pub fn sample_scenario_for(master_seed: u64, case: u64) -> Scenario {
    sample_scenario(master_seed, case)
}

/// Derives the per-case generator: cases are independent SplitMix64
/// streams, so any case replays in O(1) without re-walking its
/// predecessors.
fn case_rng(master_seed: u64, case: u64) -> SplitMix64 {
    SplitMix64::new(master_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Samples one random scenario. Every sampled point satisfies
/// [`Scenario::with_compositions`]'s validation by construction, so a
/// validation error here is a generator bug and panics.
fn sample_scenario(master_seed: u64, case: u64) -> Scenario {
    let rng = &mut case_rng(master_seed, case);
    let n = 40 + rng.next_below(121);
    let delta = 1 + rng.next_below(4);
    let c = [0.5, 1.0, 2.0, 4.0][rng.next_below(4) as usize];
    let nu = 0.05 * rng.next_below(10) as f64;
    let base = SimConfig::from_c(n, delta, c, nu, rng.next_u64()).expect("generator: base config"); // detlint: allow(panic-expect) -- the generator samples n, delta, c, nu inside SimConfig accepted ranges

    let compositions: Vec<Composition> = (0..rng.next_below(3))
        .map(|_| sample_composition(rng))
        .collect();
    let strategy_space = 4 + compositions.len() as u64;

    let n_phases = 1 + rng.next_below(3);
    let phases = (0..n_phases)
        .map(|_| {
            let strategy = match rng.next_below(strategy_space) {
                0 => StrategyKind::Honest,
                1 => StrategyKind::PrivateChain,
                2 => StrategyKind::Balance,
                3 => StrategyKind::Selfish,
                i => StrategyKind::Composed((i - 4) as usize),
            };
            let regime = match rng.next_below(4) {
                0 | 1 => Regime::Calm,
                2 => Regime::Adversarial,
                _ => Regime::Eclipse {
                    group: rng.next_below(2) as usize,
                },
            };
            let mut phase = PhaseSpec::new(200 + rng.next_below(1_301), strategy, regime);
            if rng.next_below(2) == 0 {
                phase = phase.with_power(0.05 * rng.next_below(10) as f64);
            }
            if rng.next_below(3) == 0 {
                phase = phase.with_detector_delta(1 + rng.next_below(delta));
            }
            phase
        })
        .collect();
    // detlint: allow(panic-expect) -- the generator builds phases and compositions within Scenario constraints
    Scenario::with_compositions(base, phases, compositions).expect("generator: scenario")
}

/// Samples one composition: 1–3 subs of random kind and weight 0–3
/// (zero-weight passengers deliberately included — they must be
/// no-ops), with at least one positive weight.
fn sample_composition(rng: &mut SplitMix64) -> Composition {
    let kinds = [
        StrategyKind::Honest,
        StrategyKind::PrivateChain,
        StrategyKind::Balance,
        StrategyKind::Selfish,
    ];
    let n_subs = 1 + rng.next_below(3);
    let mut subs: Vec<SubSpec> = (0..n_subs)
        .map(|_| SubSpec::new(kinds[rng.next_below(4) as usize], rng.next_below(4)))
        .collect();
    if subs.iter().all(|s| s.weight == 0) {
        subs[0].weight = 1;
    }
    Composition::new(subs).expect("generator: composition") // detlint: allow(panic-expect) -- a nonzero weight is forced two lines above
}

/// Checks every engine invariant (thread-count bit-identity,
/// pruning-liveness, prefix monotonicity) on one scenario, exactly as
/// the fuzzer does per sampled case. Returns `(invariant, detail)` on
/// the first violation.
///
/// This is the `scenario_fuzz --replay` entry point: a saved repro
/// spec's scenario goes back through the same checks that failed.
///
/// # Errors
///
/// Returns the violated invariant's name and a human-readable mismatch
/// description.
pub fn check_scenario(scenario: &Scenario) -> Result<(), (&'static str, String)> {
    // 1. Thread-count bit-identity over a small Monte-Carlo fan-out:
    // the slot counts cover inline (1), and pooled widths narrower
    // than, equal to, and wider than the trial count (2, 4, 8).
    let plan = ScenarioPlan::new(scenario.clone(), 2)
        .expect("two trials") // detlint: allow(panic-expect) -- trials = 2 is statically nonzero
        .thresholds(vec![6]);
    let single = plan.clone().with_threads(1).run();
    for threads in [2, 4, 8] {
        let pooled = plan.clone().with_threads(threads).run();
        if single.aggregate != pooled.aggregate {
            return Err((
                "thread-count bit-identity",
                format!(
                    "aggregates diverge between 1 and {threads} threads: {:?} vs {:?}",
                    single.aggregate, pooled.aggregate
                ),
            ));
        }
    }

    // 2 + 3. One pruned run stepped phase by phase (snapshots feed the
    // monotonicity checks) against one unpruned run. Sampled scenarios
    // are usually shorter than the engine's default prune cadence
    // (4096 rounds), which would leave this invariant vacuous — force a
    // tight cadence so every case actually prunes many times while
    // forks are live, frozen, and composed.
    let mut pruned = ScenarioRunner::new(scenario.clone());
    pruned.set_prune_interval(Some(64));
    let mut snapshots: Vec<SimReport> = Vec::with_capacity(scenario.phases().len());
    while let Some(report) = pruned.run_next_phase() {
        snapshots.push(report.clone());
    }
    let pruned_len = pruned.sim().tree().len();
    let pruned_report = pruned.run_to_completion();

    let mut unpruned = ScenarioRunner::new(scenario.clone());
    unpruned.set_prune_interval(None);
    let unpruned_report = unpruned.run_to_completion();
    let unpruned_len = unpruned.sim().tree().len();

    if pruned_report != unpruned_report {
        return Err((
            "pruning-liveness",
            format!(
                "pruned and unpruned runs disagree: {:?} vs {:?}",
                pruned_report.final_report, unpruned_report.final_report
            ),
        ));
    }
    if pruned_len > unpruned_len {
        return Err((
            "pruning-liveness",
            format!("pruned tree holds {pruned_len} blocks, unpruned only {unpruned_len}"),
        ));
    }

    let mut prev: Option<&SimReport> = None;
    for (i, snap) in snapshots.iter().enumerate() {
        if let Some(p) = prev {
            let monotone = snap.rounds >= p.rounds
                && snap.honest_blocks >= p.honest_blocks
                && snap.adversary_blocks >= p.adversary_blocks
                && snap.convergence_opportunities >= p.convergence_opportunities
                && snap.reorg_count >= p.reorg_count
                && snap.max_reorg_depth >= p.max_reorg_depth
                && snap.max_divergence_depth >= p.max_divergence_depth
                && snap
                    .group_heights
                    .iter()
                    .zip(&p.group_heights)
                    .all(|(now, before)| now >= before);
            if !monotone {
                return Err((
                    "prefix monotonicity",
                    format!(
                        "phase {i} snapshot regressed a cumulative counter: {snap:?} after {p:?}"
                    ),
                ));
            }
        }
        prev = Some(snap);
    }
    let phase_round_sum: u64 = pruned_report.phase_reports.iter().map(|p| p.rounds).sum();
    if phase_round_sum != scenario.total_rounds() {
        return Err((
            "prefix monotonicity",
            format!(
                "per-phase rounds sum to {phase_round_sum}, scenario declares {}",
                scenario.total_rounds()
            ),
        ));
    }

    // 4. Lockstep-batch bit-identity: the case's base config and its
    // leading strategy, run stationary over jump()-derived lanes, must
    // give lane-for-lane identical reports through the batch engine
    // and the scalar engine.
    const BATCH_LANES: usize = 4;
    let base = *scenario.base();
    let kind = scenario.phases()[0].strategy;
    let make = || -> Box<dyn Adversary> {
        match kind {
            StrategyKind::Honest => Box::new(ImmediateReleaseAdversary::new()),
            StrategyKind::PrivateChain => Box::new(PrivateChainAdversary::new(base.delta)),
            StrategyKind::Balance => Box::new(BalanceAdversary::new(base.delta)),
            StrategyKind::Selfish => Box::new(SelfishMiningAdversary::new(base.delta)),
            StrategyKind::Composed(i) => Box::new(ComposedAdversary::new(
                base.delta,
                scenario.compositions()[i].clone(),
            )),
        }
    };
    let rounds = scenario.total_rounds().min(1_500);
    let mut stream = Xoshiro256PlusPlus::seed_from_u64(base.seed);
    let mut lanes = Vec::with_capacity(BATCH_LANES);
    let mut scalars = Vec::with_capacity(BATCH_LANES);
    for _ in 0..BATCH_LANES {
        lanes.push(Simulation::with_rng(base, make(), stream.clone()));
        scalars.push(Simulation::with_rng(base, make(), stream.clone()));
        stream = stream.jump();
    }
    let mut batch = BatchSimulation::new(lanes);
    batch.run(rounds);
    let batched = batch.reports();
    for (lane, mut sim) in scalars.into_iter().enumerate() {
        sim.run(rounds);
        let scalar = sim.report();
        if batched[lane] != scalar {
            return Err((
                "lockstep-batch bit-identity",
                format!(
                    "lane {lane} of a width-{BATCH_LANES} batch diverged from the scalar engine \
                     under `{kind:?}`: {:?} vs {scalar:?}",
                    batched[lane]
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fuzzer's own acceptance: a deterministic budget of random
    /// scenario × composition cases passes every invariant. (CI runs a
    /// few thousand cases in release; this keeps a debug-sized slice in
    /// the tier-1 suite.)
    #[test]
    fn fuzz_budget_passes_invariants() {
        let stats = ScenarioFuzzer::new(0xF022_5EED)
            .run(24)
            .unwrap_or_else(|failure| panic!("{failure}\n{}", failure.repro_toml()));
        assert_eq!(stats.cases, 24);
        assert!(stats.phases >= 24);
        assert!(stats.rounds > 0);
    }

    /// Replay must regenerate the identical scenario.
    #[test]
    fn replay_is_deterministic() {
        let a = sample_scenario(42, 7);
        let b = sample_scenario(42, 7);
        assert_eq!(a, b);
        let c = sample_scenario(42, 8);
        assert_ne!(a, c, "distinct cases sample distinct scenarios");
        assert!(run_case(42, 7).is_ok());
    }

    /// The generator must actually exercise the interesting corners:
    /// compositions, detector overrides, eclipse windows, power shifts.
    #[test]
    fn generator_covers_the_space() {
        let mut composed = 0u64;
        let mut detector = 0u64;
        let mut eclipse = 0u64;
        let mut power = 0u64;
        let mut zero_weight = 0u64;
        for case in 0..200 {
            let s = sample_scenario(1234, case);
            for phase in s.phases() {
                if matches!(phase.strategy, StrategyKind::Composed(_)) {
                    composed += 1;
                }
                if phase.detector_delta.is_some() {
                    detector += 1;
                }
                if matches!(phase.regime, Regime::Eclipse { .. }) {
                    eclipse += 1;
                }
                if phase.adversary_fraction.is_some() {
                    power += 1;
                }
            }
            for composition in s.compositions() {
                zero_weight += composition.subs().iter().filter(|s| s.weight == 0).count() as u64;
            }
        }
        assert!(composed > 20, "composed phases: {composed}");
        assert!(detector > 50, "detector overrides: {detector}");
        assert!(eclipse > 50, "eclipse phases: {eclipse}");
        assert!(power > 100, "power overrides: {power}");
        assert!(zero_weight > 20, "zero-weight passengers: {zero_weight}");
    }

    /// The repro document names the replay coordinates and the sampled
    /// grid.
    #[test]
    fn repro_toml_is_complete() {
        let scenario = sample_scenario(99, 3);
        let failure = FuzzFailure {
            master_seed: 99,
            case: 3,
            invariant: "thread-count bit-identity",
            detail: "example \"quoted\" detail".into(),
            scenario: scenario.clone(),
        };
        let toml = failure.repro_toml();
        assert!(toml.contains("[fuzz]"));
        assert!(toml.contains("master_seed = 99"));
        assert!(toml.contains("case = 3"));
        assert!(toml.contains("invariant = \"thread-count bit-identity\""));
        assert!(toml.contains("\\\"quoted\\\""));
        assert!(toml.contains("[base]"));
        assert_eq!(
            toml.matches("[[phase]]").count(),
            scenario.phases().len(),
            "one phase table per phase"
        );
        assert_eq!(
            toml.matches("[[composition]]").count(),
            scenario.compositions().len()
        );
    }

    /// A repro is a *directly runnable* experiment spec: it loads
    /// through the spec parser and reconstructs the failing scenario
    /// exactly, with the replay coordinates intact.
    #[test]
    fn repro_toml_round_trips_through_the_spec_parser() {
        for case in 0..12 {
            let scenario = sample_scenario(0xCAFE, case);
            let failure = FuzzFailure {
                master_seed: 0xCAFE,
                case,
                invariant: "pruning-liveness",
                detail: format!("case {case} example detail"),
                scenario: scenario.clone(),
            };
            let spec = ExperimentSpec::parse(&failure.repro_toml())
                .unwrap_or_else(|e| panic!("case {case}: {e}\n{}", failure.repro_toml()));
            assert_eq!(
                spec.scenario().expect("repro scenario rebuilds"),
                scenario,
                "case {case}: the repro must reconstruct the sampled scenario"
            );
            let fuzz = spec.fuzz.clone().expect("replay coordinates present");
            assert_eq!(fuzz.master_seed, 0xCAFE);
            assert_eq!(fuzz.case, case);
            assert_eq!(fuzz.invariant, "pruning-liveness");
            // And the spec's own checker accepts the healthy scenario.
            check_scenario(&spec.scenario().unwrap()).expect("invariants hold on healthy cases");
        }
    }
}
