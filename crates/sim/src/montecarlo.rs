//! Parallel Monte-Carlo experiment engine.
//!
//! Every empirical claim in the paper (Figure 1's attack thresholds,
//! the T-consistency failure rates, the convergence-opportunity counts)
//! rests on many independent simulation trials. This module fans those
//! trials out over OS threads with three guarantees:
//!
//! * **Disjoint randomness** — trial `t` runs on the master generator
//!   advanced by `t` [`Xoshiro256PlusPlus::jump`]s (2¹²⁸ steps each),
//!   so trial streams can never overlap no matter how long a trial
//!   runs.
//! * **Thread-count independence** — per-trial generators are derived
//!   from the master seed alone and trial results are reduced in trial
//!   order, so [`run_trials`] returns a bit-identical
//!   [`TrialAggregate`] for 1, 2 or 64 worker threads.
//! * **No new dependencies** — trial slots submitted to the shared
//!   [`crate::executor`] pool (plain `std`, per-worker deques over an
//!   atomic work counter); no rayon, no channels.
//!
//! # Example
//!
//! ```
//! use nakamoto_sim::adversary::PrivateChainAdversary;
//! use nakamoto_sim::config::SimConfig;
//! use nakamoto_sim::montecarlo::TrialPlan;
//!
//! let cfg = SimConfig::from_c(100, 4, 2.0, 0.3, 7)?; // seed 7 = master seed
//! let plan = TrialPlan::new(cfg, 5_000, 8)?.thresholds(vec![6, 12]);
//! let run = plan.run(|_trial| PrivateChainAdversary::new(4));
//! let wilson = run.aggregate.failure_interval(12, 1.96).unwrap();
//! println!(
//!     "T=12 failure rate {:.2} [{:.2}, {:.2}] at {:.0} rounds/sec",
//!     wilson.estimate, wilson.lo, wilson.hi, run.rounds_per_sec,
//! );
//! # Ok::<(), nakamoto_sim::config::ConfigError>(())
//! ```

use crate::adversary::Adversary;
use crate::batch::BatchSimulation;
use crate::config::{ConfigError, SimConfig};
use crate::execution::Simulation;
use crate::executor::{self, TaskKind};
use crate::metrics::SimReport;
use probability::rng::Xoshiro256PlusPlus;
use std::sync::Arc;
use std::time::Instant; // detlint: allow(det-wallclock) -- elapsed feeds the rounds_per_sec diagnostic only, never a stream or aggregate

/// Critical value used by the sequential stopping rule: the per-wave
/// Wilson half-width check runs at 95% confidence (z = 1.96), matching
/// the confidence level every reporting surface defaults to.
pub const STOP_Z: f64 = 1.96;

/// Default number of trials per stopping-rule wave when
/// [`TrialPlan::stop_half_width`] is set but no explicit cadence was
/// chosen. Checkpoints land on fixed trial counts (multiples of the
/// wave size), so the stopping decision is a pure function of the
/// master seed — never of thread count or batch width.
pub const DEFAULT_STOP_CHECK_EVERY: u64 = 64;

/// A Monte-Carlo experiment: `trials` independent simulations of
/// `rounds` rounds each, all sharing one validated configuration.
///
/// `config.seed` is the *master seed*: it determines every trial's
/// random stream. The number of worker threads affects wall-clock time
/// only, never results.
#[derive(Debug, Clone)]
pub struct TrialPlan {
    /// Shared simulation parameters; `config.seed` is the master seed.
    pub config: SimConfig,
    /// Rounds per trial.
    pub rounds: u64,
    /// Number of independent trials.
    pub trials: u64,
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Consistency thresholds `T` for which per-trial violation is
    /// tallied (see [`TrialAggregate::failure_counts`]).
    pub consistency_thresholds: Vec<u64>,
    /// Lockstep batch width: how many consecutive trials each worker
    /// advances together through a [`BatchSimulation`]. `1` (the
    /// default) runs the scalar engine per trial; any width produces
    /// bit-identical aggregates (the batch engine shares the scalar
    /// per-lane code path).
    pub batch_width: usize,
    /// Sequential stopping target: when set, trials run in
    /// deterministic waves of [`TrialPlan::check_every`] and stop at
    /// the first wave boundary where every threshold's Wilson
    /// half-width (at [`STOP_Z`]) is at most this value — `trials`
    /// then acts as the *maximum* budget. Requires at least one
    /// consistency threshold.
    pub stop_half_width: Option<f64>,
    /// Trials per stopping-rule wave; `0` selects
    /// [`DEFAULT_STOP_CHECK_EVERY`]. Ignored without
    /// [`TrialPlan::stop_half_width`].
    pub check_every: u64,
}

impl TrialPlan {
    /// Creates a plan with no consistency thresholds and automatic
    /// thread count.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `trials == 0` or `rounds == 0` (an
    /// empty experiment has no well-defined aggregate — a zero-trial
    /// run used to surface only much later, as an `n > 0` assertion
    /// deep inside [`WilsonInterval::new`]) or if `config` itself fails
    /// [`SimConfig::validate`].
    pub fn new(config: SimConfig, rounds: u64, trials: u64) -> Result<Self, ConfigError> {
        config.validate()?;
        if trials == 0 {
            return Err(ConfigError::new(
                "a trial plan needs at least one trial (trials = 0)",
            ));
        }
        if rounds == 0 {
            return Err(ConfigError::new(
                "a trial plan needs at least one round per trial (rounds = 0)",
            ));
        }
        Ok(TrialPlan {
            config,
            rounds,
            trials,
            threads: 0,
            consistency_thresholds: Vec::new(),
            batch_width: 1,
            stop_half_width: None,
            check_every: 0,
        })
    }

    /// Sets the consistency thresholds to tally (builder style).
    #[must_use]
    pub fn thresholds(mut self, thresholds: Vec<u64>) -> Self {
        self.consistency_thresholds = thresholds;
        self
    }

    /// Sets the worker thread count (builder style). `0` selects one
    /// worker per available CPU, falling back to a single worker when
    /// parallelism detection fails — the fan-out never runs with an
    /// empty worker pool.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the lockstep batch width (builder style); `0` is treated as
    /// `1` (the scalar path). Aggregates are bit-identical at every
    /// width — the batch engine advances each lane through the exact
    /// scalar op sequence.
    #[must_use]
    pub fn with_batch_width(mut self, batch_width: usize) -> Self {
        self.batch_width = batch_width.max(1);
        self
    }

    /// Enables the sequential stopping rule (builder style): run in
    /// deterministic waves of `check_every` trials (`0` selects
    /// [`DEFAULT_STOP_CHECK_EVERY`]) until every threshold's Wilson
    /// half-width at [`STOP_Z`] is at most `half_width`, capped by the
    /// plan's `trials` budget.
    #[must_use]
    pub fn with_stopping(mut self, half_width: f64, check_every: u64) -> Self {
        self.stop_half_width = Some(half_width);
        self.check_every = check_every;
        self
    }

    /// Runs the plan; see [`run_trials`].
    pub fn run<A, F>(&self, make_adversary: F) -> MonteCarloRun
    where
        A: Adversary,
        F: Fn(u64) -> A + Send + Sync + 'static,
    {
        run_trials(self, make_adversary)
    }
}

/// A Wilson score interval for a binomial proportion — the right
/// confidence interval for failure *rates* near 0 or 1, where the
/// normal approximation collapses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilsonInterval {
    /// Point estimate `x/n`.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl WilsonInterval {
    /// Computes the interval for `successes` out of `n` at critical
    /// value `z` (1.96 ≈ 95%).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(successes: u64, n: u64, z: f64) -> Self {
        assert!(n > 0, "interval over zero observations");
        let nf = n as f64;
        let p_hat = successes as f64 / nf;
        let z2 = z * z;
        let denom = 1.0 + z2 / nf;
        let centre = p_hat + z2 / (2.0 * nf);
        let half = z * (p_hat * (1.0 - p_hat) / nf + z2 / (4.0 * nf * nf)).sqrt();
        WilsonInterval {
            estimate: p_hat,
            lo: ((centre - half) / denom).max(0.0),
            hi: ((centre + half) / denom).min(1.0),
        }
    }
}

/// Order-deterministic aggregate over all trials of a [`TrialPlan`].
///
/// Everything in here is a pure function of the master seed and the
/// plan — never of thread count or scheduling (verified by the
/// determinism tests). Wall-clock metrics live on [`MonteCarloRun`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrialAggregate {
    /// Number of trials aggregated.
    pub trials: u64,
    /// Rounds simulated per trial.
    pub rounds_per_trial: u64,
    /// Honest blocks summed over trials.
    pub total_honest_blocks: u64,
    /// Adversary blocks summed over trials.
    pub total_adversary_blocks: u64,
    /// Convergence opportunities summed over trials.
    pub total_convergence_opportunities: u64,
    /// Per-trial convergence-opportunity counts, in trial order.
    pub convergence_counts: Vec<u64>,
    /// Per-trial adversary block counts, in trial order.
    pub adversary_counts: Vec<u64>,
    /// Per-trial deepest reorg, in trial order.
    pub reorg_depths: Vec<u64>,
    /// Per-trial deepest cross-group divergence, in trial order.
    pub divergence_depths: Vec<u64>,
    /// Deepest reorg over all trials.
    pub max_reorg_depth: u64,
    /// Deepest divergence over all trials.
    pub max_divergence_depth: u64,
    /// For each plan threshold `T`, `(T, number of trials violating
    /// T-consistency)` — a violation being a reorg or divergence
    /// deeper than `T`.
    pub failure_counts: Vec<(u64, u64)>,
}

impl TrialAggregate {
    /// Mean per-trial deepest reorg.
    #[must_use]
    pub fn mean_reorg_depth(&self) -> f64 {
        self.reorg_depths.iter().sum::<u64>() as f64 / self.trials as f64
    }

    /// Mean per-trial deepest divergence.
    #[must_use]
    pub fn mean_divergence_depth(&self) -> f64 {
        self.divergence_depths.iter().sum::<u64>() as f64 / self.trials as f64
    }

    /// Mean per-trial convergence-opportunity count.
    #[must_use]
    pub fn mean_convergence(&self) -> f64 {
        self.total_convergence_opportunities as f64 / self.trials as f64
    }

    /// Mean per-trial adversary block count.
    #[must_use]
    pub fn mean_adversary(&self) -> f64 {
        self.total_adversary_blocks as f64 / self.trials as f64
    }

    /// Number of trials violating `T`-consistency, if `T` was a plan
    /// threshold.
    #[must_use]
    pub fn failures_at(&self, t: u64) -> Option<u64> {
        self.failure_counts
            .iter()
            .find(|&&(thr, _)| thr == t)
            .map(|&(_, count)| count)
    }

    /// Wilson interval for the `T`-consistency failure rate, if `T`
    /// was a plan threshold. Returns `None` for an empty (zero-trial)
    /// aggregate — an interval over zero observations is undefined, and
    /// used to panic deep inside [`WilsonInterval::new`] instead of
    /// being reported as absent.
    #[must_use]
    pub fn failure_interval(&self, t: u64, z: f64) -> Option<WilsonInterval> {
        if self.trials == 0 {
            return None;
        }
        self.failures_at(t)
            .map(|failures| WilsonInterval::new(failures, self.trials, z))
    }

    /// Half the width of the Wilson interval for the `T`-consistency
    /// failure rate at critical value `z`, if `T` was a plan threshold
    /// and the aggregate is non-empty. This is the quantity the
    /// sequential stopping rule drives to the spec's target: even at
    /// zero observed failures the Wilson upper bound stays positive,
    /// so the half-width shrinks like `z²/n` rather than collapsing to
    /// zero — a zero-failure cell still has to *earn* its precision.
    #[must_use]
    pub fn half_width(&self, t: u64, z: f64) -> Option<f64> {
        self.failure_interval(t, z).map(|w| (w.hi - w.lo) / 2.0)
    }

    /// Total rounds simulated across all trials.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.trials * self.rounds_per_trial
    }
}

/// Result of [`run_trials`]: the deterministic aggregate plus
/// wall-clock metrics (which naturally *do* depend on thread count).
#[derive(Debug, Clone)]
pub struct MonteCarloRun {
    /// Thread-count-independent statistics.
    pub aggregate: TrialAggregate,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock seconds for the whole fan-out.
    pub elapsed_secs: f64,
    /// Aggregate simulated-round throughput (total rounds / elapsed).
    pub rounds_per_sec: f64,
}

/// Derives the per-trial generators: the master stream seeded from
/// `config.seed`, advanced `t` jumps for trial `t`. Shared with the
/// splitting estimator, whose first stage must be stream-for-stream
/// identical to a plain trial fan-out.
pub(crate) fn trial_streams(master_seed: u64, trials: u64) -> Vec<Xoshiro256PlusPlus> {
    let mut stream = Xoshiro256PlusPlus::seed_from_u64(master_seed);
    let mut streams = Vec::with_capacity(trials as usize);
    for _ in 0..trials {
        streams.push(stream.clone());
        stream = stream.jump();
    }
    streams
}

/// The deterministic fan-out shared by [`run_trials`] and the scenario
/// layer's `ScenarioPlan`: runs `run_one(trial, stream)` for every
/// trial as one ordered job on the shared [`crate::executor`] pool,
/// and returns the reports **in trial order** together with the
/// wall-clock seconds and the job width actually used.
///
/// Trial `t`'s stream is the master generator advanced by `t` jumps,
/// and the reduction order is the trial index, so the result is a pure
/// function of `(master_seed, run_one)` — never of pool width, job
/// width, or scheduling.
pub(crate) fn fan_out_reports<F>(
    master_seed: u64,
    trials: u64,
    requested_threads: usize,
    run_one: F,
) -> (Vec<SimReport>, f64, usize)
where
    F: Fn(u64, Xoshiro256PlusPlus) -> SimReport + Send + Sync + 'static,
{
    let threads = effective_threads(requested_threads, trials);
    let streams = Arc::new(trial_streams(master_seed, trials));

    // detlint: allow(det-wallclock) -- wall time is reported, not mixed into results
    let started = Instant::now();
    let reports = executor::run_ordered(trials, threads, TaskKind::Leaf, move |trial| {
        run_one(trial, streams[trial as usize].clone())
    });
    let elapsed_secs = started.elapsed().as_secs_f64();
    debug_assert_eq!(reports.len() as u64, trials);
    (reports, elapsed_secs, threads)
}

/// Block-pulling variant of [`fan_out_reports`] for the lockstep batch
/// engine: each job unit is a *block* of `batch_width` consecutive
/// trials whose streams are handed to `run_block`, which returns one
/// report per stream in stream order. Trial `base_trial + i` runs on
/// `streams[i]`, and blocks cover consecutive trial ranges in block
/// order, so flattening block results in unit order *is* the
/// trial-order reduction — a pure function of the streams, never of
/// pool width or batch width. With `batch_width == 1` the unit
/// sequence is exactly [`fan_out_reports`]'s.
pub(crate) fn fan_out_report_blocks<F>(
    streams: Vec<Xoshiro256PlusPlus>,
    base_trial: u64,
    requested_threads: usize,
    batch_width: u64,
    run_block: Arc<F>,
) -> (Vec<SimReport>, f64, usize)
where
    F: Fn(u64, &[Xoshiro256PlusPlus]) -> Vec<SimReport> + Send + Sync + 'static,
{
    let trials = streams.len() as u64;
    let batch_width = batch_width.max(1);
    let blocks = trials.div_ceil(batch_width);
    let threads = effective_threads(requested_threads, blocks);
    let streams = Arc::new(streams);

    // detlint: allow(det-wallclock) -- wall time is reported, not mixed into results
    let started = Instant::now();
    let block_reports = executor::run_ordered(blocks, threads, TaskKind::Leaf, move |block| {
        let start = block * batch_width;
        let end = (start + batch_width).min(trials);
        let chunk = &streams[start as usize..end as usize]; // detlint: allow(panic-slice-index) -- end = min(start + width, trials) <= streams.len() by construction
        let reports = run_block(base_trial + start, chunk);
        debug_assert_eq!(reports.len() as u64, end - start);
        reports
    });
    let elapsed_secs = started.elapsed().as_secs_f64();

    // Ordered reduction: block order is trial order.
    let reports: Vec<SimReport> = block_reports.into_iter().flatten().collect();
    debug_assert_eq!(reports.len() as u64, trials);
    (reports, elapsed_secs, threads)
}

/// Order-preserving reduction of per-trial reports into a
/// [`TrialAggregate`]; shared by [`run_trials`] and the scenario layer.
pub(crate) fn aggregate_reports(
    reports: &[SimReport],
    rounds_per_trial: u64,
    thresholds: &[u64],
) -> TrialAggregate {
    let mut aggregate = TrialAggregate {
        trials: reports.len() as u64,
        rounds_per_trial,
        total_honest_blocks: 0,
        total_adversary_blocks: 0,
        total_convergence_opportunities: 0,
        convergence_counts: Vec::with_capacity(reports.len()),
        adversary_counts: Vec::with_capacity(reports.len()),
        reorg_depths: Vec::with_capacity(reports.len()),
        divergence_depths: Vec::with_capacity(reports.len()),
        max_reorg_depth: 0,
        max_divergence_depth: 0,
        failure_counts: thresholds.iter().map(|&t| (t, 0)).collect(),
    };
    for report in reports {
        aggregate.total_honest_blocks += report.honest_blocks;
        aggregate.total_adversary_blocks += report.adversary_blocks;
        aggregate.total_convergence_opportunities += report.convergence_opportunities;
        aggregate
            .convergence_counts
            .push(report.convergence_opportunities);
        aggregate.adversary_counts.push(report.adversary_blocks);
        aggregate.reorg_depths.push(report.max_reorg_depth);
        aggregate
            .divergence_depths
            .push(report.max_divergence_depth);
        aggregate.max_reorg_depth = aggregate.max_reorg_depth.max(report.max_reorg_depth);
        aggregate.max_divergence_depth = aggregate
            .max_divergence_depth
            .max(report.max_divergence_depth);
        for (t, failures) in &mut aggregate.failure_counts {
            if !report.is_consistent(*t) {
                *failures += 1;
            }
        }
    }
    aggregate
}

/// Runs `plan.trials` independent simulations as one ordered job on
/// the shared [`crate::executor`] pool and reduces their reports in
/// trial order.
///
/// `make_adversary` builds a fresh strategy for trial `t`; it runs on
/// pool workers, so it must be `Send + Sync + 'static` (it is called
/// once per trial). `plan.threads` bounds how many pool slots the job
/// occupies — it no longer spawns OS threads of its own.
///
/// With `plan.batch_width > 1`, workers pull blocks of consecutive
/// trials and advance them through the lockstep [`BatchSimulation`];
/// with [`TrialPlan::stop_half_width`] set, trials run in deterministic
/// waves and stop at the first wave boundary meeting the target (see
/// `run_trials_adaptive`).
///
/// The returned [`TrialAggregate`] is bit-identical for a fixed
/// `plan.config.seed` regardless of `plan.threads` *and* of
/// `plan.batch_width`.
///
/// # Panics
///
/// Panics if the plan's public fields were mutated into an empty
/// experiment (`trials == 0` or `rounds == 0`) after construction —
/// [`TrialPlan::new`] rejects those as [`ConfigError`]s; bypassing it
/// is a programming error, not a silently-empty result. Also panics if
/// `stop_half_width` is set without any consistency threshold or
/// outside `(0, 1)`.
pub fn run_trials<A, F>(plan: &TrialPlan, make_adversary: F) -> MonteCarloRun
where
    A: Adversary,
    F: Fn(u64) -> A + Send + Sync + 'static,
{
    assert!(
        plan.trials > 0 && plan.rounds > 0,
        "empty experiment: construct plans through TrialPlan::new"
    );
    if let Some(target) = plan.stop_half_width {
        return run_trials_adaptive(plan, target, make_adversary);
    }
    let width = plan.batch_width.max(1) as u64;
    if width == 1 {
        // Scalar path: one trial per pull, the historical engine.
        let config = plan.config;
        let rounds = plan.rounds;
        let run_one = move |trial: u64, rng: Xoshiro256PlusPlus| {
            let mut sim = Simulation::with_rng(config, make_adversary(trial), rng);
            sim.run(rounds);
            sim.report()
        };
        let (reports, elapsed_secs, threads) =
            fan_out_reports(plan.config.seed, plan.trials, plan.threads, run_one);
        let aggregate = aggregate_reports(&reports, plan.rounds, &plan.consistency_thresholds);
        let total_rounds = aggregate.total_rounds();
        return MonteCarloRun {
            aggregate,
            threads,
            elapsed_secs,
            rounds_per_sec: total_rounds as f64 / elapsed_secs.max(f64::MIN_POSITIVE),
        };
    }
    let streams = trial_streams(plan.config.seed, plan.trials);
    let run_block = batch_block_runner(plan, Arc::new(make_adversary));
    let (reports, elapsed_secs, threads) =
        fan_out_report_blocks(streams, 0, plan.threads, width, run_block);
    let aggregate = aggregate_reports(&reports, plan.rounds, &plan.consistency_thresholds);
    let total_rounds = aggregate.total_rounds();
    MonteCarloRun {
        aggregate,
        threads,
        elapsed_secs,
        rounds_per_sec: total_rounds as f64 / elapsed_secs.max(f64::MIN_POSITIVE),
    }
}

/// Builds the block runner shared by the fixed-budget and adaptive
/// paths: trial `first + i` becomes lane `i` of a lockstep batch.
fn batch_block_runner<A, F>(
    plan: &TrialPlan,
    make_adversary: Arc<F>,
) -> Arc<impl Fn(u64, &[Xoshiro256PlusPlus]) -> Vec<SimReport> + Send + Sync + 'static>
where
    A: Adversary,
    F: Fn(u64) -> A + Send + Sync + 'static,
{
    let config = plan.config;
    let rounds = plan.rounds;
    Arc::new(move |first: u64, streams: &[Xoshiro256PlusPlus]| {
        let lanes = streams
            .iter()
            .enumerate()
            .map(|(i, rng)| {
                Simulation::with_rng(config, make_adversary(first + i as u64), rng.clone())
            })
            .collect();
        let mut batch = BatchSimulation::new(lanes);
        batch.run(rounds);
        batch.reports()
    })
}

/// Sequential-stopping fan-out: runs trials in deterministic waves of
/// [`TrialPlan::check_every`] (default [`DEFAULT_STOP_CHECK_EVERY`])
/// and stops at the first wave boundary where every plan threshold's
/// Wilson half-width at [`STOP_Z`] is at most the target — or when the
/// `plan.trials` budget is exhausted.
///
/// Checkpoints land on trial counts that are pure functions of the plan
/// (multiples of the wave size, capped by the budget), and each
/// checkpoint's statistic is computed over the trial-ordered prefix, so
/// the stopping decision — and hence the aggregate — is bit-identical
/// at every thread count and batch width. Trial `t` still runs on the
/// master stream advanced `t` jumps: the master generator rolls forward
/// wave by wave instead of being expanded up front.
fn run_trials_adaptive<A, F>(plan: &TrialPlan, target: f64, make_adversary: F) -> MonteCarloRun
where
    A: Adversary,
    F: Fn(u64) -> A + Send + Sync + 'static,
{
    assert!(
        target > 0.0 && target < 1.0,
        "stop_half_width must lie in (0, 1), got {target}"
    );
    assert!(
        !plan.consistency_thresholds.is_empty(),
        "the stopping rule tracks consistency failure rates: set at least one threshold"
    );
    let width = plan.batch_width.max(1) as u64;
    let check = if plan.check_every == 0 {
        DEFAULT_STOP_CHECK_EVERY
    } else {
        plan.check_every
    };
    let run_block = batch_block_runner(plan, Arc::new(make_adversary));

    let mut master = Xoshiro256PlusPlus::seed_from_u64(plan.config.seed);
    let mut reports: Vec<SimReport> = Vec::new();
    let mut failures: Vec<(u64, u64)> = plan
        .consistency_thresholds
        .iter()
        .map(|&t| (t, 0))
        .collect();
    let mut elapsed_secs = 0.0;
    let mut threads_used = 1usize;
    while (reports.len() as u64) < plan.trials {
        let wave = check.min(plan.trials - reports.len() as u64);
        let wave_streams: Vec<Xoshiro256PlusPlus> = (0..wave)
            .map(|_| {
                let stream = master.clone();
                master = master.jump();
                stream
            })
            .collect();
        let base = reports.len() as u64;
        let (wave_reports, secs, threads) = fan_out_report_blocks(
            wave_streams,
            base,
            plan.threads,
            width,
            Arc::clone(&run_block),
        );
        elapsed_secs += secs;
        threads_used = threads_used.max(threads);
        for report in &wave_reports {
            for (t, count) in &mut failures {
                if !report.is_consistent(*t) {
                    *count += 1;
                }
            }
        }
        reports.extend(wave_reports);
        let n = reports.len() as u64;
        let stop = failures.iter().all(|&(_, count)| {
            let w = WilsonInterval::new(count, n, STOP_Z);
            (w.hi - w.lo) / 2.0 <= target
        });
        if stop {
            break;
        }
    }
    let aggregate = aggregate_reports(&reports, plan.rounds, &plan.consistency_thresholds);
    let total_rounds = aggregate.total_rounds();
    MonteCarloRun {
        aggregate,
        threads: threads_used,
        elapsed_secs,
        rounds_per_sec: total_rounds as f64 / elapsed_secs.max(f64::MIN_POSITIVE),
    }
}

/// Job width for a fan-out: `requested`, or the shared executor pool's
/// width when `requested == 0` (the pool sizes itself to the available
/// CPUs unless `--jobs` fixed it), capped by the trial count — and
/// never zero. This is a *slot* count on the global pool, not an OS
/// thread count: concurrent plans cannot oversubscribe the host, they
/// only queue more work on the same workers.
pub(crate) fn effective_threads(requested: usize, trials: u64) -> usize {
    let available = if requested == 0 {
        executor::global_width()
    } else {
        requested
    };
    available.min(trials.min(usize::MAX as u64) as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BalanceAdversary, ImmediateReleaseAdversary, PrivateChainAdversary};
    use crate::execution::run_simulation_with;

    fn plan(seed: u64, trials: u64) -> TrialPlan {
        let cfg = SimConfig::from_c(60, 3, 1.0, 0.35, seed).unwrap();
        TrialPlan::new(cfg, 4_000, trials)
            .unwrap()
            .thresholds(vec![0, 4, 12])
    }

    #[test]
    fn empty_plans_are_rejected_at_construction() {
        // Satellite regression: zero trials / zero rounds used to panic
        // (or, for hand-built aggregates, to blow up much later inside
        // WilsonInterval); now they are proper ConfigErrors.
        let cfg = SimConfig::from_c(60, 3, 1.0, 0.35, 1).unwrap();
        let err = TrialPlan::new(cfg, 4_000, 0).unwrap_err();
        assert!(err.to_string().contains("trial"), "{err}");
        let err = TrialPlan::new(cfg, 0, 4).unwrap_err();
        assert!(err.to_string().contains("round"), "{err}");
        // An invalid config is caught at the same place.
        let mut bad = cfg;
        bad.adversary_fraction = 0.7;
        assert!(TrialPlan::new(bad, 4_000, 4).is_err());
    }

    #[test]
    fn empty_aggregate_reports_no_interval() {
        let aggregate = aggregate_reports(&[], 1_000, &[12]);
        assert_eq!(aggregate.trials, 0);
        assert_eq!(aggregate.failures_at(12), Some(0));
        assert_eq!(
            aggregate.failure_interval(12, 1.96),
            None,
            "an interval over zero observations is undefined, not a panic"
        );
    }

    #[test]
    fn worker_pool_is_never_empty() {
        for requested in [0usize, 1, 7, 64] {
            for trials in [1u64, 3, 100] {
                let threads = effective_threads(requested, trials);
                assert!(threads >= 1, "requested {requested}, trials {trials}");
                assert!(threads as u64 <= trials.max(1));
            }
        }
        // Degenerate trial count still yields a worker (the scope must
        // terminate rather than hang on an empty fan-out).
        assert_eq!(effective_threads(0, 0), 1);
        assert_eq!(effective_threads(8, 0), 1);
    }

    #[test]
    fn aggregate_independent_of_thread_count() {
        let reference = plan(11, 12)
            .with_threads(1)
            .run(|_| PrivateChainAdversary::new(3));
        for threads in [2usize, 3, 8] {
            let other = plan(11, 12)
                .with_threads(threads)
                .run(|_| PrivateChainAdversary::new(3));
            assert_eq!(
                reference.aggregate, other.aggregate,
                "aggregate differs at {threads} threads"
            );
        }
    }

    #[test]
    fn trials_match_sequential_jump_streams() {
        // Trial t must equal a plain simulation run on the master
        // stream jumped t times.
        let p = plan(23, 4).with_threads(2);
        let run = p.run(|_| PrivateChainAdversary::new(3));
        let mut stream = Xoshiro256PlusPlus::seed_from_u64(23);
        for t in 0..4usize {
            let mut sim =
                Simulation::with_rng(p.config, PrivateChainAdversary::new(3), stream.clone());
            sim.run(p.rounds);
            let report = sim.report();
            assert_eq!(
                run.aggregate.reorg_depths[t], report.max_reorg_depth,
                "trial {t} reorg depth"
            );
            assert_eq!(
                run.aggregate.convergence_counts[t], report.convergence_opportunities,
                "trial {t} convergence count"
            );
            stream = stream.jump();
        }
    }

    #[test]
    fn different_master_seeds_give_different_results() {
        let a = plan(1, 6).run(|_| PrivateChainAdversary::new(3));
        let b = plan(2, 6).run(|_| PrivateChainAdversary::new(3));
        assert_ne!(a.aggregate, b.aggregate);
    }

    #[test]
    fn trials_are_not_identical_copies() {
        let run = plan(5, 8).run(|_| PrivateChainAdversary::new(3));
        // With disjoint streams the per-trial convergence counts can't
        // all coincide.
        let first = run.aggregate.convergence_counts[0];
        assert!(
            run.aggregate.convergence_counts.iter().any(|&c| c != first),
            "all trials produced identical counts: streams not disjoint?"
        );
    }

    #[test]
    fn failure_counts_and_intervals() {
        // ν = 0 with the baseline adversary: nothing can be deeper than
        // a height-tie reorg, so T = 12 never fails and T = 0 counts
        // trials with any reorg at all.
        let cfg = SimConfig::new(50, 0.0, 2e-3, 2, 3).unwrap();
        let run = TrialPlan::new(cfg, 5_000, 10)
            .unwrap()
            .thresholds(vec![0, 12])
            .run(|_| ImmediateReleaseAdversary::new());
        assert_eq!(run.aggregate.failures_at(12), Some(0));
        let w = run.aggregate.failure_interval(12, 1.96).unwrap();
        assert_eq!(w.estimate, 0.0);
        assert!(w.hi > 0.0, "upper bound stays positive at 0 successes");
        assert_eq!(run.aggregate.failures_at(7), None, "unlisted threshold");
        assert_eq!(run.aggregate.total_adversary_blocks, 0);
    }

    #[test]
    fn aggregate_totals_match_single_runs() {
        let p = plan(77, 3);
        let run = p.run(|_| BalanceAdversary::new(3));
        let mut stream = Xoshiro256PlusPlus::seed_from_u64(77);
        let mut honest = 0u64;
        for _ in 0..3 {
            let mut sim = Simulation::with_rng(p.config, BalanceAdversary::new(3), stream.clone());
            sim.run(p.rounds);
            honest += sim.report().honest_blocks;
            stream = stream.jump();
        }
        assert_eq!(run.aggregate.total_honest_blocks, honest);
    }

    #[test]
    fn wilson_interval_known_values() {
        // 50/100 at z=1.96: classic ≈ [0.404, 0.596].
        let w = WilsonInterval::new(50, 100, 1.96);
        assert!((w.estimate - 0.5).abs() < 1e-12);
        assert!((w.lo - 0.404).abs() < 0.002, "lo = {}", w.lo);
        assert!((w.hi - 0.596).abs() < 0.002, "hi = {}", w.hi);
        // Degenerate edges stay in [0, 1].
        let w = WilsonInterval::new(0, 10, 1.96);
        assert_eq!(w.estimate, 0.0);
        assert!(w.lo >= 0.0 && w.hi <= 1.0 && w.hi > 0.0);
        let w = WilsonInterval::new(10, 10, 1.96);
        assert!(w.lo < 1.0 && w.hi <= 1.0);
    }

    #[test]
    fn seed_variation_through_config_seed_only() {
        // The per-trial adversary factory receives the trial index, so
        // strategies can vary per trial without touching the RNG.
        let run = plan(9, 4).run(PrivateChainAdversary::new);
        assert_eq!(run.aggregate.trials, 4);
    }

    #[test]
    fn throughput_fields_populated() {
        let run = plan(3, 2).run(|_| ImmediateReleaseAdversary::new());
        assert!(run.elapsed_secs > 0.0);
        assert!(run.rounds_per_sec > 0.0);
        assert!(run.threads >= 1);
    }

    #[test]
    fn batch_widths_and_thread_counts_are_bit_identical() {
        // Tentpole acceptance: the lockstep batch engine must return
        // the scalar engine's aggregate bit-for-bit at every batch
        // width and thread count.
        let reference = plan(31, 24)
            .with_threads(1)
            .run(|_| PrivateChainAdversary::new(3));
        for width in [1usize, 2, 8, 16] {
            for threads in [1usize, 2, 8] {
                let other = plan(31, 24)
                    .with_threads(threads)
                    .with_batch_width(width)
                    .run(|_| PrivateChainAdversary::new(3));
                assert_eq!(
                    reference.aggregate, other.aggregate,
                    "width {width}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn batch_width_zero_is_scalar() {
        let a = plan(32, 6).run(|_| BalanceAdversary::new(3));
        let b = plan(32, 6)
            .with_batch_width(0)
            .run(|_| BalanceAdversary::new(3));
        assert_eq!(a.aggregate, b.aggregate);
    }

    #[test]
    fn batch_width_larger_than_trials_is_fine() {
        let a = plan(33, 5).run(|_| PrivateChainAdversary::new(3));
        let b = plan(33, 5)
            .with_batch_width(16)
            .run(|_| PrivateChainAdversary::new(3));
        assert_eq!(a.aggregate, b.aggregate);
    }

    #[test]
    fn adaptive_stopping_is_thread_and_width_independent() {
        // The stopping rule must fire at the same trial count — and
        // return the same aggregate — at every thread count and batch
        // width: checkpoints are pure functions of the master seed.
        let mk = || {
            let cfg = SimConfig::from_c(60, 3, 1.0, 0.35, 41).unwrap();
            TrialPlan::new(cfg, 4_000, 4_096)
                .unwrap()
                .thresholds(vec![4, 12])
                .with_stopping(0.05, 16)
        };
        let reference = mk().with_threads(1).run(|_| PrivateChainAdversary::new(3));
        assert!(
            reference.aggregate.trials < 4_096,
            "stopping rule never fired; tighten the test target"
        );
        assert_eq!(
            reference.aggregate.trials % 16,
            0,
            "stopping must land on a wave boundary"
        );
        for (threads, width) in [(2usize, 1usize), (8, 1), (1, 8), (2, 8), (8, 16)] {
            let other = mk()
                .with_threads(threads)
                .with_batch_width(width)
                .run(|_| PrivateChainAdversary::new(3));
            assert_eq!(
                reference.aggregate, other.aggregate,
                "threads {threads}, width {width}"
            );
        }
    }

    #[test]
    fn adaptive_stopping_matches_fixed_budget_prefix() {
        // The adaptive run's aggregate over n trials must equal a
        // fixed-budget run of exactly n trials: stopping only truncates
        // the trial sequence, it never alters any trial.
        let cfg = SimConfig::from_c(60, 3, 1.0, 0.35, 43).unwrap();
        let adaptive = TrialPlan::new(cfg, 4_000, 4_096)
            .unwrap()
            .thresholds(vec![4, 12])
            .with_stopping(0.05, 16)
            .run(|_| PrivateChainAdversary::new(3));
        let n = adaptive.aggregate.trials;
        let fixed = TrialPlan::new(cfg, 4_000, n)
            .unwrap()
            .thresholds(vec![4, 12])
            .run(|_| PrivateChainAdversary::new(3));
        assert_eq!(adaptive.aggregate, fixed.aggregate);
    }

    #[test]
    fn adaptive_stopping_respects_trial_budget() {
        // An unreachable target exhausts the budget and returns the
        // full fixed-budget aggregate.
        let cfg = SimConfig::from_c(60, 3, 1.0, 0.35, 44).unwrap();
        let run = TrialPlan::new(cfg, 2_000, 40)
            .unwrap()
            .thresholds(vec![0])
            .with_stopping(1e-6, 16)
            .run(|_| PrivateChainAdversary::new(3));
        assert_eq!(run.aggregate.trials, 40);
    }

    #[test]
    #[should_panic(expected = "at least one threshold")]
    fn adaptive_stopping_requires_thresholds() {
        let cfg = SimConfig::from_c(60, 3, 1.0, 0.35, 45).unwrap();
        let _ = TrialPlan::new(cfg, 2_000, 40)
            .unwrap()
            .with_stopping(0.05, 16)
            .run(|_| PrivateChainAdversary::new(3));
    }

    #[test]
    fn half_width_accessor() {
        // 50/100 at z=1.96: hi − lo ≈ 0.192, half ≈ 0.096.
        let mut aggregate = aggregate_reports(&[], 1_000, &[12]);
        aggregate.trials = 100;
        aggregate.failure_counts = vec![(12, 50)];
        let hw = aggregate.half_width(12, 1.96).unwrap();
        assert!((hw - 0.096).abs() < 0.002, "half-width {hw}");
        // Zero-failure edge case: the Wilson upper bound stays
        // positive, so the half-width is positive too and shrinks as
        // n grows — a zero-failure cell cannot claim instant
        // convergence.
        aggregate.failure_counts = vec![(12, 0)];
        let at_100 = aggregate.half_width(12, 1.96).unwrap();
        assert!(at_100 > 0.0, "zero failures must not give zero width");
        aggregate.trials = 10_000;
        let at_10k = aggregate.half_width(12, 1.96).unwrap();
        assert!(at_10k > 0.0 && at_10k < at_100);
        // Unlisted threshold and empty aggregate report absence.
        assert_eq!(aggregate.half_width(7, 1.96), None);
        aggregate.trials = 0;
        assert_eq!(aggregate.half_width(12, 1.96), None);
    }

    /// The engine must agree with `run_simulation_with` when a single
    /// trial uses the master stream directly (trial 0 = zero jumps).
    #[test]
    fn trial_zero_equals_plain_simulation() {
        let cfg = SimConfig::from_c(80, 2, 2.0, 0.2, 4242).unwrap();
        let run = TrialPlan::new(cfg, 6_000, 1)
            .unwrap()
            .run(|_| PrivateChainAdversary::new(2));
        let report = run_simulation_with(cfg, PrivateChainAdversary::new(2), 6_000);
        assert_eq!(run.aggregate.total_honest_blocks, report.honest_blocks);
        assert_eq!(run.aggregate.max_reorg_depth, report.max_reorg_depth);
    }
}
