//! Simulation configuration mirroring the paper's model parameters
//! (Table I and Eqs. 1–3).

use std::fmt;

/// Error raised by [`SimConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Crate-internal constructor, shared by the scenario and
    /// Monte-Carlo layers so every invalid-experiment condition
    /// surfaces as the same error type.
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid simulation config: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Parameters of one simulation run.
///
/// The paper's constraints are `µ + ν = 1`, `0 < ν < ½ < µ` (Eq. 2) and
/// `n ≥ 4` (Eq. 3). The simulator additionally allows `ν = 0` so the
/// adversary-free baseline can be measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Total number of miners `n` (honest + corrupted).
    pub n_miners: u64,
    /// Fraction `ν` of miners controlled by the adversary.
    pub adversary_fraction: f64,
    /// Proof-of-work hardness `p` (per-miner per-round success
    /// probability).
    pub hardness: f64,
    /// Maximum adversarial message delay `Δ` in rounds.
    pub delta: u64,
    /// RNG seed; identical configs with identical seeds reproduce runs
    /// bit-for-bit.
    pub seed: u64,
}

impl SimConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the paper's model constraints are
    /// violated (`n ≥ 4`, `0 ≤ ν < ½`, `p ∈ (0, 1)`, `Δ ≥ 1`).
    pub fn new(
        n_miners: u64,
        adversary_fraction: f64,
        hardness: f64,
        delta: u64,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        let cfg = SimConfig {
            n_miners,
            adversary_fraction,
            hardness,
            delta,
            seed,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks all model constraints.
    ///
    /// # Errors
    ///
    /// See [`SimConfig::new`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_miners < 4 {
            return Err(ConfigError {
                message: format!("paper's Eq. (3) requires n ≥ 4, got {}", self.n_miners),
            });
        }
        if !(0.0..0.5).contains(&self.adversary_fraction) || self.adversary_fraction.is_nan() {
            return Err(ConfigError {
                message: format!(
                    "paper's Eq. (2) requires 0 ≤ ν < 1/2, got {}",
                    self.adversary_fraction
                ),
            });
        }
        if !(self.hardness > 0.0 && self.hardness < 1.0) {
            return Err(ConfigError {
                message: format!("hardness p must lie in (0, 1), got {}", self.hardness),
            });
        }
        if self.delta == 0 {
            return Err(ConfigError {
                message: "Δ must be at least 1 round".into(),
            });
        }
        Ok(())
    }

    /// Number of corrupted miners `⌊νn⌉` (rounded to nearest).
    #[must_use]
    pub fn n_adversary(&self) -> u64 {
        (self.adversary_fraction * self.n_miners as f64).round() as u64
    }

    /// Number of honest miners `n − νn`.
    #[must_use]
    pub fn n_honest(&self) -> u64 {
        self.n_miners - self.n_adversary()
    }

    /// The honest fraction `µ = 1 − ν`.
    #[must_use]
    pub fn honest_fraction(&self) -> f64 {
        1.0 - self.adversary_fraction
    }

    /// The paper's `c = 1/(pnΔ)`: expected number of Δ-delays before any
    /// block is mined.
    #[must_use]
    pub fn c(&self) -> f64 {
        1.0 / (self.hardness * self.n_miners as f64 * self.delta as f64)
    }

    /// Builds the config from `(n, Δ, c, ν)` by solving `p = 1/(cnΔ)` —
    /// the parameterisation used throughout the paper's evaluation.
    ///
    /// # Errors
    ///
    /// Same contract as [`SimConfig::new`].
    pub fn from_c(
        n_miners: u64,
        delta: u64,
        c: f64,
        adversary_fraction: f64,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if !(c > 0.0) || c.is_nan() {
            return Err(ConfigError {
                message: format!("c must be positive, got {c}"),
            });
        }
        let hardness = 1.0 / (c * n_miners as f64 * delta as f64);
        SimConfig::new(n_miners, adversary_fraction, hardness, delta, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        SimConfig::new(1000, 0.25, 1e-5, 4, 7).unwrap()
    }

    #[test]
    fn valid_config_roundtrip() {
        let cfg = base();
        assert_eq!(cfg.n_adversary(), 250);
        assert_eq!(cfg.n_honest(), 750);
        assert_eq!(cfg.honest_fraction(), 0.75);
    }

    #[test]
    fn rejects_small_n() {
        assert!(SimConfig::new(3, 0.25, 1e-5, 4, 0).is_err());
    }

    #[test]
    fn rejects_majority_adversary() {
        assert!(SimConfig::new(100, 0.5, 1e-5, 4, 0).is_err());
        assert!(SimConfig::new(100, 0.7, 1e-5, 4, 0).is_err());
        assert!(SimConfig::new(100, -0.1, 1e-5, 4, 0).is_err());
    }

    #[test]
    fn allows_zero_adversary_for_baseline() {
        assert!(SimConfig::new(100, 0.0, 1e-5, 4, 0).is_ok());
    }

    #[test]
    fn rejects_bad_hardness_and_delta() {
        assert!(SimConfig::new(100, 0.2, 0.0, 4, 0).is_err());
        assert!(SimConfig::new(100, 0.2, 1.0, 4, 0).is_err());
        assert!(SimConfig::new(100, 0.2, 1e-5, 0, 0).is_err());
    }

    #[test]
    fn c_parameterisation_inverts() {
        let cfg = SimConfig::from_c(1000, 8, 3.0, 0.2, 1).unwrap();
        assert!((cfg.c() - 3.0).abs() < 1e-12);
        assert!((cfg.hardness - 1.0 / (3.0 * 1000.0 * 8.0)).abs() < 1e-18);
    }

    #[test]
    fn adversary_count_rounds_to_nearest() {
        let cfg = SimConfig::new(10, 0.24, 1e-5, 1, 0).unwrap();
        assert_eq!(cfg.n_adversary(), 2);
        assert_eq!(cfg.n_honest(), 8);
        let cfg = SimConfig::new(10, 0.26, 1e-5, 1, 0).unwrap();
        assert_eq!(cfg.n_adversary(), 3);
    }
}
