//! Selfish mining (Eyal–Sirer 2014) adapted to the Δ-delay round model:
//! an extension strategy exercising the chain-quality metric the
//! paper's Section II surveys.
//!
//! The strategy withholds a private fork and reveals blocks one at a
//! time in response to honest progress:
//!
//! * lead ≥ 2 and honest chain catches to lead 1 → release enough to
//!   stay strictly ahead (the classic "match and beat");
//! * lead 1 and honest block arrives → release the competing block and
//!   race (here: the adversary's block is delivered next round, honest
//!   first-seen keeps groups on their own view);
//! * behind → adopt the honest chain.

use crate::adversary::{Adversary, ReleaseDirective};
use crate::block::{BlockId, Provenance, Round};
use crate::tree::BlockTree;

/// The selfish-mining strategy.
#[derive(Debug, Clone)]
pub struct SelfishMiningAdversary {
    /// Kept for API symmetry with the other strategies; the classic
    /// Eyal–Sirer attack does not exploit network delays (γ = 0 here),
    /// so only release timing uses it implicitly through the engine's
    /// `[1, Δ]` clamp.
    #[allow(dead_code)]
    delta: u64,
    private_tip: BlockId,
    /// Withheld blocks, oldest first.
    withheld: Vec<BlockId>,
    /// Public height up to which the private chain has been revealed.
    revealed_height: u64,
    /// Statistics: blocks revealed in "match" races.
    races_started: u64,
}

impl SelfishMiningAdversary {
    /// Creates the strategy for delay bound `delta`.
    #[must_use]
    pub fn new(delta: u64) -> Self {
        SelfishMiningAdversary {
            delta,
            private_tip: BlockId::GENESIS,
            withheld: Vec::new(),
            revealed_height: 0,
            races_started: 0,
        }
    }

    /// Number of match-races the strategy has initiated.
    #[must_use]
    pub fn races_started(&self) -> u64 {
        self.races_started
    }

    /// Current withheld-block count.
    #[must_use]
    pub fn withheld_len(&self) -> usize {
        self.withheld.len()
    }

    /// Restarts the private fork from `tip` (scenario phase-transition
    /// hook, mirroring `PrivateChainAdversary::rebase`): while dormant
    /// the fork base tracks the public tip so it never references a
    /// pruned block. Only meaningful when nothing is withheld.
    pub(crate) fn rebase(&mut self, tip: BlockId, tree: &BlockTree) {
        debug_assert!(self.withheld.is_empty(), "rebase would drop a live fork");
        self.private_tip = tip;
        self.withheld.clear();
        self.revealed_height = self.revealed_height.max(tree.height(tip));
    }

    /// Adopts `public_tip` and drops the withheld fork iff the fork has
    /// strictly fallen behind — the strategy's own adopt rule, applied
    /// by the scenario layer to dormant forks so an overtaken frozen
    /// fork stops pinning the tree pruner (see
    /// `PrivateChainAdversary::abandon_if_behind`).
    pub(crate) fn abandon_if_behind(&mut self, public_tip: BlockId, tree: &BlockTree) {
        if tree.height(self.private_tip) < tree.height(public_tip) {
            self.private_tip = public_tip;
            self.withheld.clear();
        }
    }

    fn release_up_to(&mut self, height: u64, tree: &BlockTree, out: &mut Vec<ReleaseDirective>) {
        let mut remaining = Vec::new();
        for &block in &self.withheld {
            if tree.height(block) <= height {
                for group in 0..2 {
                    out.push(ReleaseDirective {
                        block,
                        group,
                        delay: 1,
                    });
                }
                self.revealed_height = self.revealed_height.max(tree.height(block));
            } else {
                remaining.push(block);
            }
        }
        self.withheld = remaining;
    }
}

impl Adversary for SelfishMiningAdversary {
    fn name(&self) -> &'static str {
        "selfish-mining"
    }

    fn supports_fast_forward(&self) -> bool {
        // Decisions depend only on heights and the revealed watermark,
        // never on the round number; a zero-success call after an
        // empty-handed one is a no-op.
        true
    }

    fn live_blocks(&self) -> Vec<BlockId> {
        vec![self.private_tip]
    }

    fn honest_delay(&mut self, _round: Round, _from: usize, _to: usize) -> u64 {
        // Selfish mining in its original form does not rely on network
        // control; keep honest propagation fast so the measured revenue
        // shift is attributable to withholding alone.
        1
    }

    fn act(
        &mut self,
        round: Round,
        group_tips: &[BlockId; 2],
        tree: &mut BlockTree,
        successes: u64,
        releases: &mut Vec<ReleaseDirective>,
    ) {
        let public_tip = crate::adversary::best_tip(tree, group_tips);
        let public_height = tree.height(public_tip);

        // Behind the public chain → adopt it.
        self.abandon_if_behind(public_tip, tree);

        for _ in 0..successes {
            self.private_tip = tree.add_block(self.private_tip, round, Provenance::Adversary);
            self.withheld.push(self.private_tip);
        }

        let private_height = tree.height(self.private_tip);
        if self.withheld.is_empty() || private_height <= public_height {
            return;
        }
        let lead = private_height - public_height;
        match lead {
            // Race state: reveal the block at the public height to
            // compete for the next extension.
            1 if public_height > self.revealed_height => {
                self.races_started += 1;
                self.release_up_to(private_height, tree, releases);
            }
            // Comfortable lead: reveal just enough to stay one ahead of
            // the public chain whenever honest miners make progress.
            _ if lead <= 1 => self.release_up_to(public_height + 1, tree, releases),
            _ => {
                if public_height > self.revealed_height {
                    self.release_up_to(public_height + 1, tree, releases);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::execution::run_simulation;

    /// Test convenience: run `act` into a fresh buffer.
    fn act_collect(
        adv: &mut SelfishMiningAdversary,
        round: Round,
        tips: [BlockId; 2],
        tree: &mut BlockTree,
        successes: u64,
    ) -> Vec<ReleaseDirective> {
        let mut out = Vec::new();
        adv.act(round, &tips, tree, successes, &mut out);
        out
    }

    #[test]
    fn adopts_public_chain_when_behind() {
        let mut tree = BlockTree::new();
        let mut tip = BlockId::GENESIS;
        for r in 1..=3 {
            tip = tree.add_block(tip, r, Provenance::Honest(0));
        }
        let mut adv = SelfishMiningAdversary::new(4);
        let _ = act_collect(&mut adv, 4, [tip, tip], &mut tree, 0);
        assert_eq!(adv.withheld_len(), 0);
        let _ = act_collect(&mut adv, 5, [tip, tip], &mut tree, 1);
        assert_eq!(tree.height(adv.private_tip), 4);
    }

    #[test]
    fn withholds_with_large_lead() {
        let mut tree = BlockTree::new();
        let mut adv = SelfishMiningAdversary::new(4);
        let releases = act_collect(
            &mut adv,
            1,
            [BlockId::GENESIS, BlockId::GENESIS],
            &mut tree,
            3,
        );
        // Lead 3 over an empty public chain: nothing is still secret
        // only if public progressed; here public height 0 and
        // revealed_height 0 → stays secret.
        assert!(releases.is_empty());
        assert_eq!(adv.withheld_len(), 3);
    }

    #[test]
    fn reveals_in_response_to_honest_progress() {
        let mut tree = BlockTree::new();
        let mut adv = SelfishMiningAdversary::new(4);
        let _ = act_collect(
            &mut adv,
            1,
            [BlockId::GENESIS, BlockId::GENESIS],
            &mut tree,
            3,
        );
        // Honest chain reaches height 2.
        let mut tip = BlockId::GENESIS;
        for r in 2..=3 {
            tip = tree.add_block(tip, r, Provenance::Honest(0));
        }
        let releases = act_collect(&mut adv, 4, [tip, tip], &mut tree, 0);
        assert!(!releases.is_empty(), "lead shrank to 1: must reveal");
        // Released blocks are at most one above the public height.
        for r in &releases {
            assert!(tree.height(r.block) <= 3);
        }
    }

    #[test]
    fn selfish_mining_degrades_chain_quality() {
        // Revenue comparison: with ν = 0.35 and instant propagation,
        // selfish mining should push the adversary's share of the main
        // chain above its honest-mining share ν (the Eyal–Sirer
        // threshold with γ = 0 is ν > 1/3).
        let nu = 0.35;
        let honest_cfg = SimConfig::new(200, nu, 2e-3, 2, 91).unwrap();
        let honest = run_simulation(
            honest_cfg,
            Box::new(crate::adversary::ImmediateReleaseAdversary::new()),
            300_000,
        );
        let selfish_cfg = SimConfig::new(200, nu, 2e-3, 2, 91).unwrap();
        let selfish = run_simulation(
            selfish_cfg,
            Box::new(SelfishMiningAdversary::new(2)),
            300_000,
        );
        assert!(
            selfish.chain_quality() < honest.chain_quality(),
            "selfish quality {} should be below honest-mining quality {}",
            selfish.chain_quality(),
            honest.chain_quality()
        );
    }

    #[test]
    fn selfish_mining_unprofitable_for_small_adversary() {
        // Far below the threshold the strategy wastes adversary blocks:
        // quality is at least the honest-mining level.
        let nu = 0.1;
        let cfg = SimConfig::new(200, nu, 2e-3, 2, 92).unwrap();
        let selfish = run_simulation(cfg, Box::new(SelfishMiningAdversary::new(2)), 300_000);
        assert!(
            selfish.chain_quality() > 0.85,
            "quality {} should stay near honest share",
            selfish.chain_quality()
        );
    }
}
