//! The adversarially scheduled message layer.
//!
//! In the Δ-delay model the adversary delays each block announcement by
//! up to `Δ` rounds per recipient. The simulator tracks deliveries at
//! the granularity of honest *groups* (at most two), which is exactly
//! the resolution the classic attacks need (a split adversary keeps two
//! halves of the honest miners on different branches).

use crate::block::{BlockId, Round};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled delivery of `block` to honest group `group` at the start
/// of round `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Round at whose start the block becomes visible to the group.
    pub round: Round,
    /// Receiving honest group.
    pub group: usize,
    /// The delivered block.
    pub block: BlockId,
}

impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.round, self.block, self.group).cmp(&(other.round, other.block, other.group))
    }
}

impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of pending deliveries ordered by round.
#[derive(Debug, Clone, Default)]
pub struct Network {
    queue: BinaryHeap<Reverse<Delivery>>,
    delivered: u64,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Schedules a delivery.
    ///
    /// # Panics
    ///
    /// Panics if `group ≥ 2` (the simulator supports at most two honest
    /// groups).
    pub fn schedule(&mut self, block: BlockId, group: usize, round: Round) {
        assert!(group < 2, "at most two honest groups are supported");
        self.queue.push(Reverse(Delivery {
            round,
            group,
            block,
        }));
    }

    /// Pops every delivery due at or before `round`, in round order.
    pub fn due(&mut self, round: Round) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(Reverse(d)) = self.queue.peek() {
            if d.round > round {
                break;
            }
            out.push(self.queue.pop().expect("peeked element exists").0);
        }
        self.delivered += out.len() as u64;
        out
    }

    /// Number of deliveries still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total deliveries handed out so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_round_order() {
        let mut net = Network::new();
        net.schedule(BlockId(3), 0, 10);
        net.schedule(BlockId(1), 0, 5);
        net.schedule(BlockId(2), 1, 7);
        let due = net.due(10);
        let rounds: Vec<Round> = due.iter().map(|d| d.round).collect();
        assert_eq!(rounds, vec![5, 7, 10]);
        assert_eq!(net.pending(), 0);
        assert_eq!(net.delivered(), 3);
    }

    #[test]
    fn respects_due_cutoff() {
        let mut net = Network::new();
        net.schedule(BlockId(1), 0, 5);
        net.schedule(BlockId(2), 0, 6);
        assert_eq!(net.due(4).len(), 0);
        assert_eq!(net.due(5).len(), 1);
        assert_eq!(net.pending(), 1);
        assert_eq!(net.due(100).len(), 1);
    }

    #[test]
    fn same_round_deliveries_deterministic_order() {
        let mut net = Network::new();
        net.schedule(BlockId(9), 1, 5);
        net.schedule(BlockId(2), 0, 5);
        net.schedule(BlockId(2), 1, 5);
        let due = net.due(5);
        let keys: Vec<(BlockId, usize)> = due.iter().map(|d| (d.block, d.group)).collect();
        assert_eq!(
            keys,
            vec![(BlockId(2), 0), (BlockId(2), 1), (BlockId(9), 1)]
        );
    }

    #[test]
    #[should_panic(expected = "two honest groups")]
    fn rejects_third_group() {
        Network::new().schedule(BlockId(1), 2, 1);
    }
}
