//! The adversarially scheduled message layer.
//!
//! In the Δ-delay model the adversary delays each block announcement by
//! up to `Δ` rounds per recipient. The simulator tracks deliveries at
//! the granularity of honest *groups* (at most two), which is exactly
//! the resolution the classic attacks need (a split adversary keeps two
//! halves of the honest miners on different branches).
//!
//! Because every delay is clamped to `[1, Δ]`, the pending window spans
//! at most Δ rounds, so the queue is a small ring of per-round buckets
//! rather than a priority heap: scheduling and draining are O(1) with
//! no comparisons on the hot path. Same-round deliveries are handed out
//! in `(block, group)` order (see [`Delivery`]'s `Ord`), keeping the
//! engine's first-seen tie-break deterministic and independent of
//! scheduling order.

use crate::block::{BlockId, Round};

/// A scheduled delivery of `block` to honest group `group` at the start
/// of round `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Round at whose start the block becomes visible to the group.
    pub round: Round,
    /// Receiving honest group.
    pub group: usize,
    /// The delivered block.
    pub block: BlockId,
}

impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.round, self.block, self.group).cmp(&(other.round, other.block, other.group))
    }
}

impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Queue of pending deliveries bucketed by round.
#[derive(Debug, Clone, Default)]
pub struct Network {
    /// `slots[r % slots.len()]` holds the deliveries due at round `r`,
    /// for `r` in the active window `(drained, drained + slots.len()]`.
    slots: Vec<Vec<Delivery>>,
    /// Total deliveries across all slots.
    pending: usize,
    /// Earliest round with a pending delivery (exact iff `pending > 0`).
    earliest: Round,
    /// Every round ≤ `drained` has been drained.
    drained: Round,
    delivered: u64,
    /// Deliveries whose requested round was already drained and were
    /// re-timed to `drained + 1` (see [`Network::schedule`]).
    late: u64,
}

impl Network {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Network::default()
    }

    /// Schedules a delivery.
    ///
    /// # Contract for past rounds
    ///
    /// A `round` at or before the drain line (everything consumed by
    /// [`Network::due`] / [`Network::drain_due_into`], which after a
    /// quiet-gap bulk skip can be far ahead of the last *executed*
    /// round) cannot be delivered on time any more. Such a delivery is
    /// **re-timed to `drained + 1`**, the earliest round that can still
    /// deliver — the same behaviour a priority queue would exhibit —
    /// and counted in [`Network::late_schedules`] so callers can detect
    /// the silent re-timing. The simulation engine clamps every delay
    /// to `≥ 1` *before* scheduling and `debug_assert`s that this
    /// counter stays zero, so inside the engine the fallback is
    /// unreachable; it exists for direct users of `Network`.
    ///
    /// # Panics
    ///
    /// Panics if `group ≥ 2` (the simulator supports at most two honest
    /// groups).
    pub fn schedule(&mut self, block: BlockId, group: usize, round: Round) {
        assert!(group < 2, "at most two honest groups are supported");
        if round <= self.drained {
            self.late += 1;
        }
        let round = round.max(self.drained + 1);
        let window = (round - self.drained) as usize;
        if window > self.slots.len() {
            self.grow(window);
        }
        let len = self.slots.len() as u64;
        self.slots[(round % len) as usize].push(Delivery {
            round,
            group,
            block,
        });
        if self.pending == 0 || round < self.earliest {
            self.earliest = round;
        }
        self.pending += 1;
    }

    /// Re-buckets all pending deliveries into a ring of at least
    /// `min_len` slots (rare: the window only grows until it covers Δ).
    fn grow(&mut self, min_len: usize) {
        let new_len = min_len.next_power_of_two().max(4);
        let mut slots = vec![Vec::new(); new_len];
        for d in self.slots.iter_mut().flat_map(|s| s.drain(..)) {
            slots[(d.round % new_len as u64) as usize].push(d);
        }
        self.slots = slots;
    }

    /// Pops every delivery due at or before `round`, in round order.
    pub fn due(&mut self, round: Round) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.drain_due_into(round, &mut out);
        out
    }

    /// Allocation-free variant of [`Network::due`]: clears `out` and
    /// fills it with every delivery due at or before `round`, in round
    /// order (same-round ties in `(block, group)` order). The round
    /// loop reuses one buffer across all rounds.
    pub fn drain_due_into(&mut self, round: Round, out: &mut Vec<Delivery>) {
        out.clear();
        while self.pending > 0 && self.earliest <= round {
            let len = self.slots.len() as u64;
            let slot = &mut self.slots[(self.earliest % len) as usize];
            if slot.len() > 1 {
                slot.sort_unstable();
            }
            self.pending -= slot.len();
            self.delivered += slot.len() as u64;
            out.append(slot);
            // Advance to the next non-empty bucket (≤ ring length away
            // by the window invariant).
            if self.pending > 0 {
                let mut r = self.earliest + 1;
                while self.slots[(r % len) as usize].is_empty() {
                    r += 1;
                }
                self.earliest = r;
            }
        }
        self.drained = self.drained.max(round);
    }

    /// Round of the earliest pending delivery, if any — the horizon up
    /// to which the simulator may fast-forward quiet rounds.
    #[must_use]
    #[inline]
    pub fn next_due(&self) -> Option<Round> {
        (self.pending > 0).then_some(self.earliest)
    }

    /// Advances the drain line to `round` without draining anything —
    /// the caller's cheap alternative to [`Network::drain_due_into`] on
    /// rounds it has verified (via [`Network::next_due`]) have nothing
    /// pending. Keeping the drain line tight keeps the ring's window
    /// arithmetic bounded by Δ on the next [`Network::schedule`].
    #[inline]
    pub fn advance_drained(&mut self, round: Round) {
        debug_assert!(self.next_due().map_or(true, |due| due > round));
        self.drained = self.drained.max(round);
    }

    /// Blocks referenced by pending deliveries (arbitrary order); used
    /// to keep in-flight blocks alive across tree pruning.
    pub fn pending_blocks(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.slots.iter().flatten().map(|d| d.block)
    }

    /// Number of deliveries still pending.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Total deliveries handed out so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of deliveries scheduled for an already-drained round and
    /// re-timed to `drained + 1` (see [`Network::schedule`]). The
    /// engine asserts this stays zero; external schedulers can use it
    /// as a tracing hook for silently re-timed deliveries.
    #[must_use]
    pub fn late_schedules(&self) -> u64 {
        self.late
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_round_order() {
        let mut net = Network::new();
        net.schedule(BlockId(3), 0, 10);
        net.schedule(BlockId(1), 0, 5);
        net.schedule(BlockId(2), 1, 7);
        let due = net.due(10);
        let rounds: Vec<Round> = due.iter().map(|d| d.round).collect();
        assert_eq!(rounds, vec![5, 7, 10]);
        assert_eq!(net.pending(), 0);
        assert_eq!(net.delivered(), 3);
    }

    #[test]
    fn respects_due_cutoff() {
        let mut net = Network::new();
        net.schedule(BlockId(1), 0, 5);
        net.schedule(BlockId(2), 0, 6);
        assert_eq!(net.due(4).len(), 0);
        assert_eq!(net.due(5).len(), 1);
        assert_eq!(net.pending(), 1);
        assert_eq!(net.due(100).len(), 1);
    }

    #[test]
    fn same_round_deliveries_deterministic_order() {
        let mut net = Network::new();
        net.schedule(BlockId(9), 1, 5);
        net.schedule(BlockId(2), 0, 5);
        net.schedule(BlockId(2), 1, 5);
        let due = net.due(5);
        let keys: Vec<(BlockId, usize)> = due.iter().map(|d| (d.block, d.group)).collect();
        assert_eq!(
            keys,
            vec![(BlockId(2), 0), (BlockId(2), 1), (BlockId(9), 1)]
        );
    }

    #[test]
    #[should_panic(expected = "two honest groups")]
    fn rejects_third_group() {
        Network::new().schedule(BlockId(1), 2, 1);
    }

    #[test]
    fn next_due_tracks_earliest_delivery() {
        let mut net = Network::new();
        assert_eq!(net.next_due(), None);
        net.schedule(BlockId(3), 0, 10);
        net.schedule(BlockId(1), 0, 5);
        assert_eq!(net.next_due(), Some(5));
        let _ = net.due(5);
        assert_eq!(net.next_due(), Some(10));
        let mut pending: Vec<BlockId> = net.pending_blocks().collect();
        pending.sort();
        assert_eq!(pending, vec![BlockId(3)]);
    }

    #[test]
    fn past_round_schedules_deliver_at_next_drain() {
        let mut net = Network::new();
        assert_eq!(net.due(10).len(), 0);
        net.schedule(BlockId(1), 0, 3);
        assert_eq!(net.next_due(), Some(11), "clamped past the drain line");
        assert_eq!(net.late_schedules(), 1, "re-timing is observable");
        assert_eq!(net.due(11).len(), 1);
    }

    /// Satellite regression: a schedule into the past (re-timed to
    /// `drained + 1`) must survive a `grow()` re-bucketing triggered
    /// mid-window by a far-future schedule, and the re-timing must be
    /// visible through the `late_schedules` tracing hook.
    #[test]
    fn late_schedule_survives_regrowth_mid_window() {
        let mut net = Network::new();
        net.schedule(BlockId(1), 0, 4);
        assert_eq!(net.due(10).len(), 1); // drained = 10, ring len 4
        assert_eq!(net.late_schedules(), 0);
        // Into the past: re-timed to 11, the earliest deliverable round.
        net.schedule(BlockId(2), 0, 3);
        assert_eq!(net.late_schedules(), 1);
        assert_eq!(net.next_due(), Some(11));
        // Far-future schedules force grow() while the re-timed delivery
        // is pending; re-bucketing must preserve its effective round.
        net.schedule(BlockId(3), 1, 70);
        net.schedule(BlockId(4), 0, 33);
        assert_eq!(net.pending(), 3);
        let due = net.due(11);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].block, BlockId(2));
        assert_eq!(due[0].round, 11, "re-timed round survives re-bucketing");
        // Another past schedule after the window grew: clamps to the
        // new drain line, not the old one.
        net.schedule(BlockId(5), 1, 2);
        assert_eq!(net.late_schedules(), 2);
        let due = net.due(12);
        assert_eq!(due.len(), 1);
        assert_eq!((due[0].block, due[0].round), (BlockId(5), 12));
        let rest = net.due(100);
        assert_eq!(rest.len(), 2);
        assert_eq!(
            rest.iter().map(|d| d.round).collect::<Vec<_>>(),
            vec![33, 70],
            "in-window deliveries keep their original rounds"
        );
        assert_eq!(net.late_schedules(), 2, "future schedules are never late");
    }

    #[test]
    fn window_growth_preserves_pending() {
        let mut net = Network::new();
        for r in 1..=64u64 {
            net.schedule(BlockId(r as u32), 0, r);
        }
        assert_eq!(net.pending(), 64);
        let due = net.due(64);
        assert_eq!(due.len(), 64);
        let rounds: Vec<Round> = due.iter().map(|d| d.round).collect();
        let mut sorted = rounds.clone();
        sorted.sort_unstable();
        assert_eq!(rounds, sorted, "round order survives re-bucketing");
    }

    /// The ring must agree with a straightforward priority-queue model
    /// on random schedules and drains.
    #[test]
    fn matches_priority_queue_model() {
        use probability::rng::{RandomSource, SplitMix64};
        let mut rng = SplitMix64::new(0x2E7);
        for _ in 0..64 {
            let mut net = Network::new();
            let mut model: Vec<Delivery> = Vec::new();
            let mut now = 0u64;
            for _ in 0..200 {
                if rng.next_below(3) == 0 {
                    now += rng.next_range(1, 4);
                    let mut expected: Vec<Delivery> =
                        model.iter().copied().filter(|d| d.round <= now).collect();
                    expected.sort_unstable();
                    model.retain(|d| d.round > now);
                    assert_eq!(net.due(now), expected, "drain at {now}");
                } else {
                    let round = now + rng.next_range(1, 8);
                    let block = BlockId(rng.next_below(50) as u32);
                    let group = rng.next_below(2) as usize;
                    net.schedule(block, group, round);
                    model.push(Delivery {
                        round,
                        group,
                        block,
                    });
                }
                assert_eq!(net.pending(), model.len());
                assert_eq!(
                    net.next_due(),
                    model.iter().map(|d| d.round).min(),
                    "earliest pending"
                );
            }
        }
    }
}
