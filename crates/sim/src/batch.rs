//! Lockstep batch execution: several independent trials of one cell
//! advanced together in structure-of-arrays waves.
//!
//! The Monte-Carlo engine spends its life running many statistically
//! independent simulations of the *same* configuration. The scalar loop
//! in [`Simulation::run`] advances one trial at a time; this module
//! advances a *batch* of 8–16 trials ("lanes") in lockstep, one
//! **wave** per event block, with each phase of the wave sweeping an
//! array of lanes:
//!
//! 1. **Step phase** — every live lane executes its next real round
//!    ([`Simulation::step`]): the round holding a delivery or a mining
//!    success.
//! 2. **Refill phase** — every live lane eagerly refills its geometric
//!    gap buffer and plans its quiet skip
//!    (`Simulation::plan_quiet_skip`): the batched gap sampling pass,
//!    one shared code path over the lane array.
//! 3. **Advance phase** — every lane with a planned skip consumes it in
//!    closed form (`Simulation::skip_quiet`): the batched
//!    `advance_n_run` detector update, a branch-light arithmetic loop
//!    over the lane array that the compiler can vectorise.
//!
//! # Layout: waves of lanes, not arrays of fields
//!
//! The wave *control* state is structure-of-arrays — parallel `targets`
//! / `skips` / `live` vectors indexed by lane — while each lane's
//! simulation state (oracle, detectors, chain tracker, block tree)
//! stays inside its own [`Simulation`]. Exploding the per-trial state
//! into field-level arrays was measured and rejected on this workload:
//! an 8-lane interleaved oracle probe showed no instruction-level
//! parallelism win (the hot path is bound by unpredictable branches on
//! the random event structure, not by dependency chains), and a
//! field-level split would force the batch engine onto a *different*
//! code path from the proven scalar engine, destroying the guarantee
//! below.
//!
//! # Bit-exactness
//!
//! Each lane advances through **exactly** the scalar run loop's op
//! sequence — `step`, `plan_quiet_skip`, `skip_quiet`, repeat, guarded
//! by the same `round < target` check — only interleaved across lanes
//! at wave granularity. Lanes share no state (each owns its
//! `jump()`-derived generator), so interleaving cannot change any
//! lane's observable behaviour: every lane's report is bit-identical
//! to running it alone through [`Simulation::run`], at every batch
//! width, and `batch_width = 1` *is* the scalar path (a one-lane wave
//! degenerates into the scalar loop body). The `*_matches_scalar`
//! tests below and the fuzz harness invariant pin this for widths
//! 1–16.

use crate::adversary::Adversary;
use crate::execution::Simulation;
use crate::metrics::SimReport;

/// A batch of independent simulations of one configuration, advanced in
/// lockstep waves. See the module docs for the wave structure and the
/// bit-exactness argument.
///
/// Lanes are typically built from consecutive `jump()`-derived trial
/// streams by the Monte-Carlo fan-out; any set of simulations works as
/// long as they are truly independent (the engine never lets lanes
/// interact).
#[derive(Debug, Clone)]
pub struct BatchSimulation<A: Adversary> {
    /// Per-lane engines (the per-trial oracle state, detector counters
    /// and chain summaries live in here).
    lanes: Vec<Simulation<A>>,
    /// Per-lane absolute target round for the current `run` segment.
    targets: Vec<u64>,
    /// Per-lane planned quiet-skip for the current wave.
    skips: Vec<u64>,
    /// Per-lane liveness: `false` once the lane reached its target.
    live: Vec<bool>,
}

impl<A: Adversary> BatchSimulation<A> {
    /// Wraps `lanes` into a batch. The batch width is `lanes.len()`;
    /// an empty batch is valid and every operation on it is a no-op.
    #[must_use]
    pub fn new(lanes: Vec<Simulation<A>>) -> Self {
        let width = lanes.len();
        BatchSimulation {
            lanes,
            targets: vec![0; width],
            skips: vec![0; width],
            live: vec![false; width],
        }
    }

    /// Number of lanes in the batch.
    #[must_use]
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// Read access to the lanes, in construction order.
    #[must_use]
    pub fn lanes(&self) -> &[Simulation<A>] {
        &self.lanes
    }

    /// Consumes the batch, returning the lanes in construction order.
    #[must_use]
    pub fn into_lanes(self) -> Vec<Simulation<A>> {
        self.lanes
    }

    /// Per-lane reports, in construction order — each bit-identical to
    /// the report the lane would produce run alone.
    #[must_use]
    pub fn reports(&self) -> Vec<SimReport> {
        self.lanes.iter().map(Simulation::report).collect()
    }

    /// Advances every lane by `rounds` further rounds in lockstep
    /// waves. Lanes reach their targets after different wave counts
    /// (their random gaps differ); finished lanes drop out of the
    /// waves until all are done.
    pub fn run(&mut self, rounds: u64) {
        let mut remaining = 0usize;
        for (i, lane) in self.lanes.iter().enumerate() {
            self.targets[i] = lane.round() + rounds;
            self.live[i] = rounds > 0;
            remaining += usize::from(rounds > 0);
        }
        // `fast_forward_enabled` is constant per run segment; in
        // practice uniform across lanes (same strategy type), but
        // evaluated per lane so mixed batches stay correct.
        while remaining > 0 {
            // Wave phase 1: every live lane executes its next real
            // round.
            for (lane, &live) in self.lanes.iter_mut().zip(&self.live) {
                if live {
                    lane.step();
                }
            }
            // Wave phase 2: batched gap refill — every live lane
            // samples (if needed) and plans its quiet skip.
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                self.skips[i] = if self.live[i] && lane.fast_forward_enabled() {
                    lane.plan_quiet_skip(self.targets[i])
                } else {
                    0
                };
            }
            // Wave phase 3: batched detector advance — every planned
            // skip is consumed in closed form, then liveness is
            // re-evaluated against the per-lane target.
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                let skip = self.skips[i];
                if skip > 0 {
                    lane.skip_quiet(skip);
                }
                if self.live[i] && lane.round() >= self.targets[i] {
                    self.live[i] = false;
                    remaining -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BalanceAdversary, ImmediateReleaseAdversary, PrivateChainAdversary};
    use crate::config::SimConfig;
    use probability::rng::Xoshiro256PlusPlus;

    fn streams(master_seed: u64, n: usize) -> Vec<Xoshiro256PlusPlus> {
        let mut stream = Xoshiro256PlusPlus::seed_from_u64(master_seed);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(stream.clone());
            stream = stream.jump();
        }
        out
    }

    /// Reference: each lane run alone through the scalar engine.
    fn scalar_reports<A: Adversary + Clone>(
        cfg: SimConfig,
        adversary: &A,
        master_seed: u64,
        width: usize,
        rounds: u64,
    ) -> Vec<SimReport> {
        streams(master_seed, width)
            .into_iter()
            .map(|rng| {
                let mut sim = Simulation::with_rng(cfg, adversary.clone(), rng);
                sim.run(rounds);
                sim.report()
            })
            .collect()
    }

    fn batch_reports<A: Adversary + Clone>(
        cfg: SimConfig,
        adversary: &A,
        master_seed: u64,
        width: usize,
        rounds: u64,
    ) -> Vec<SimReport> {
        let lanes = streams(master_seed, width)
            .into_iter()
            .map(|rng| Simulation::with_rng(cfg, adversary.clone(), rng))
            .collect();
        let mut batch = BatchSimulation::new(lanes);
        batch.run(rounds);
        batch.reports()
    }

    #[test]
    fn private_chain_matches_scalar_at_all_widths() {
        let cfg = SimConfig::from_c(60, 3, 1.0, 0.35, 71).unwrap();
        for width in [1usize, 2, 8, 16] {
            assert_eq!(
                batch_reports(cfg, &PrivateChainAdversary::new(3), 71, width, 20_000),
                scalar_reports(cfg, &PrivateChainAdversary::new(3), 71, width, 20_000),
                "width {width}"
            );
        }
    }

    #[test]
    fn balance_matches_scalar_at_all_widths() {
        let cfg = SimConfig::from_c(60, 4, 1.0, 0.4, 72).unwrap();
        for width in [1usize, 2, 8, 16] {
            assert_eq!(
                batch_reports(cfg, &BalanceAdversary::new(4), 72, width, 20_000),
                scalar_reports(cfg, &BalanceAdversary::new(4), 72, width, 20_000),
                "width {width}"
            );
        }
    }

    #[test]
    fn immediate_release_matches_scalar_at_all_widths() {
        let cfg = SimConfig::new(200, 0.25, 1e-3, 2, 73).unwrap();
        for width in [1usize, 2, 8, 16] {
            assert_eq!(
                batch_reports(cfg, &ImmediateReleaseAdversary::new(), 73, width, 20_000),
                scalar_reports(cfg, &ImmediateReleaseAdversary::new(), 73, width, 20_000),
                "width {width}"
            );
        }
    }

    #[test]
    fn segmented_run_matches_one_shot() {
        // Two run() segments must land exactly where one combined
        // segment does — the scenario layer drives batches this way.
        let cfg = SimConfig::from_c(60, 3, 1.0, 0.3, 74).unwrap();
        let mk = || {
            let lanes = streams(74, 8)
                .into_iter()
                .map(|rng| Simulation::with_rng(cfg, PrivateChainAdversary::new(3), rng))
                .collect();
            BatchSimulation::new(lanes)
        };
        let mut split = mk();
        split.run(7_000);
        split.run(13_000);
        let mut whole = mk();
        whole.run(20_000);
        assert_eq!(split.reports(), whole.reports());
        assert!(split.lanes().iter().all(|lane| lane.round() == 20_000));
    }

    #[test]
    fn empty_batch_and_zero_rounds_are_noops() {
        let cfg = SimConfig::from_c(60, 3, 1.0, 0.3, 75).unwrap();
        let mut empty: BatchSimulation<PrivateChainAdversary> = BatchSimulation::new(Vec::new());
        empty.run(10_000);
        assert_eq!(empty.width(), 0);
        assert!(empty.reports().is_empty());

        let lanes = streams(75, 4)
            .into_iter()
            .map(|rng| Simulation::with_rng(cfg, PrivateChainAdversary::new(3), rng))
            .collect();
        let mut batch = BatchSimulation::new(lanes);
        batch.run(0);
        assert!(batch.lanes().iter().all(|lane| lane.round() == 0));
        let before = batch.reports();
        batch.run(5_000);
        assert!(batch.lanes().iter().all(|lane| lane.round() == 5_000));
        assert_ne!(batch.reports(), before);
    }

    #[test]
    fn into_lanes_preserves_order() {
        let cfg = SimConfig::from_c(60, 3, 1.0, 0.3, 76).unwrap();
        let lanes: Vec<_> = streams(76, 5)
            .into_iter()
            .map(|rng| Simulation::with_rng(cfg, PrivateChainAdversary::new(3), rng))
            .collect();
        let mut batch = BatchSimulation::new(lanes);
        batch.run(3_000);
        let reports = batch.reports();
        let lanes = batch.into_lanes();
        assert_eq!(lanes.len(), 5);
        for (lane, report) in lanes.iter().zip(&reports) {
            assert_eq!(&lane.report(), report);
        }
    }
}
