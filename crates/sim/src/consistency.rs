//! Consistency checking.
//!
//! The paper's Definition 1 combines the common-prefix property with
//! future self-consistency: for any rounds `r < s` and honest players
//! `i, j`, all but the last `T` blocks of `i`'s chain at `r` must be a
//! prefix of `j`'s chain at `s`. The tracker below maintains each honest
//! group's adopted chain and records, over a whole run:
//!
//! * `max_reorg_depth` — the deepest suffix any single group ever
//!   discarded (a violation of future self-consistency for every
//!   `T <` that depth), and
//! * `max_divergence_depth` — the deepest suffix by which two groups'
//!   simultaneous chains ever disagreed (a common-prefix violation for
//!   every `T <` that depth).

use crate::block::BlockId;
use crate::tree::BlockTree;

/// Tracks the adopted chain of each honest group and consistency
/// statistics across the run.
///
/// Chains are stored from a movable `base_height` upward so that, with
/// periodic [`ChainTracker::prune_below`] calls at the engine's
/// finalized prefix, memory stays proportional to the live fork window
/// instead of the full chain length. All heights in the API remain
/// absolute.
#[derive(Debug, Clone)]
pub struct ChainTracker {
    /// Per group: `chains[g][h - base_height]` is the adopted block at
    /// absolute height `h`.
    chains: Vec<Vec<BlockId>>,
    /// Reusable path buffer for [`ChainTracker::consider`] (hot path:
    /// one adoption per honest block round).
    scratch: Vec<BlockId>,
    /// Absolute height of `chains[g][0]` for every group. Entries below
    /// are finalized and have been discarded.
    base_height: u64,
    /// Height of the last common block between group 0 and group 1
    /// (only meaningful with two groups).
    common_prefix_height: u64,
    max_reorg_depth: u64,
    max_divergence_depth: u64,
    reorg_count: u64,
}

impl ChainTracker {
    /// Creates a tracker for `n_groups` honest groups (1 or 2), all
    /// starting on genesis.
    ///
    /// # Panics
    ///
    /// Panics unless `n_groups ∈ {1, 2}`.
    #[must_use]
    pub fn new(n_groups: usize) -> Self {
        assert!(n_groups == 1 || n_groups == 2, "1 or 2 honest groups");
        ChainTracker {
            chains: vec![vec![BlockId::GENESIS]; n_groups],
            scratch: Vec::new(),
            base_height: 0,
            common_prefix_height: 0,
            max_reorg_depth: 0,
            max_divergence_depth: 0,
            reorg_count: 0,
        }
    }

    /// Number of groups tracked.
    #[must_use]
    pub fn n_groups(&self) -> usize {
        self.chains.len()
    }

    /// Current tip of a group's chain.
    #[must_use]
    #[inline]
    pub fn tip(&self, group: usize) -> BlockId {
        *self.chains[group].last().expect("chain contains its base") // detlint: allow(panic-expect) -- every chain is created holding its base block and truncation keeps it
    }

    /// Current height of a group's chain.
    #[must_use]
    #[inline]
    pub fn height(&self, group: usize) -> u64 {
        self.base_height + self.chains[group].len() as u64 - 1
    }

    /// Absolute height below which chain entries have been pruned.
    #[must_use]
    pub fn base_height(&self) -> u64 {
        self.base_height
    }

    /// The adopted block of `group` at absolute `height`. Returns
    /// `None` if the chain is not that tall *or* the entry has been
    /// pruned away (below [`ChainTracker::base_height`]).
    #[must_use]
    pub fn block_at(&self, group: usize, height: u64) -> Option<BlockId> {
        let idx = height.checked_sub(self.base_height)?;
        self.chains[group].get(idx as usize).copied()
    }

    /// Discards chain entries below absolute height `floor` for every
    /// group. The caller must pass a finalized height: one at which all
    /// groups agree and below which no future reorg can reach (the
    /// engine uses the tree's pruned-root height).
    ///
    /// # Panics
    ///
    /// Panics if `floor` exceeds a group's current height or the groups
    /// disagree at `floor`.
    pub fn prune_below(&mut self, floor: u64) {
        if floor <= self.base_height {
            return;
        }
        let drop = (floor - self.base_height) as usize;
        let shared = self.chains[0].get(drop).copied();
        for chain in &mut self.chains {
            assert!(chain.len() > drop, "prune floor {floor} above a chain tip");
            assert_eq!(
                chain.get(drop).copied(),
                shared,
                "prune floor {floor} is not finalized across groups"
            );
            chain.drain(..drop);
        }
        self.base_height = floor;
        debug_assert!(self.common_prefix_height >= self.base_height || self.chains.len() == 1);
    }

    /// Offers a block to a group; it is adopted iff strictly higher than
    /// the current tip (longest-chain rule with first-seen tie-break).
    /// Returns `true` if adopted.
    #[inline]
    pub fn consider(&mut self, group: usize, block: BlockId, tree: &BlockTree) -> bool {
        let new_height = tree.height(block);
        if new_height <= self.height(group) {
            return false;
        }
        self.adopt(group, block, tree);
        true
    }

    fn adopt(&mut self, group: usize, tip: BlockId, tree: &BlockTree) {
        let base = self.base_height;
        // Fast path for the overwhelmingly common case: the new tip
        // directly extends the stored tip (ordinary chain growth, no
        // reorg). Skips the walk, the truncate and — with one group —
        // the whole cross-group bookkeeping.
        // detlint: allow(panic-expect) -- every chain is created holding its base block and truncation keeps it
        let stored_tip = *self.chains[group].last().expect("chain non-empty");
        if tree.height(tip) == base + self.chains[group].len() as u64
            && tree.parent(tip) == stored_tip
        {
            self.chains[group].push(tip);
            if self.chains.len() == 2 {
                self.advance_common_prefix();
                let deepest = self
                    .chains
                    .iter()
                    .map(|c| base + c.len() as u64 - 1)
                    .max()
                    .expect("non-empty"); // detlint: allow(panic-expect) -- chains has one entry per group and n_groups >= 1
                let divergence = deepest - self.common_prefix_height;
                self.max_divergence_depth = self.max_divergence_depth.max(divergence);
            }
            return;
        }
        // Collect the path from the new tip down to the first block that
        // already agrees with the stored chain (reusable buffer: this
        // runs once per honest block round).
        let mut path = std::mem::take(&mut self.scratch);
        path.clear();
        let chain = &mut self.chains[group];
        let old_height = base + chain.len() as u64 - 1;
        let mut cur = tip;
        loop {
            let h = tree.height(cur);
            if h >= base && ((h - base) as usize) < chain.len() && chain[(h - base) as usize] == cur
            {
                break;
            }
            path.push(cur);
            debug_assert!(h > base, "the chain base is finalized and always agrees");
            cur = tree.parent(cur);
        }
        let fork_height = tree.height(cur);
        let discarded = old_height.saturating_sub(fork_height);
        if discarded > 0 {
            self.reorg_count += 1;
            self.max_reorg_depth = self.max_reorg_depth.max(discarded);
        }
        chain.truncate((fork_height - base) as usize + 1);
        chain.extend(path.drain(..).rev());
        self.scratch = path;
        // Maintain the cross-group common prefix.
        if self.chains.len() == 2 {
            self.common_prefix_height = self.common_prefix_height.min(fork_height);
            self.advance_common_prefix();
            let deepest = self
                .chains
                .iter()
                .map(|c| base + c.len() as u64 - 1)
                .max()
                .expect("non-empty"); // detlint: allow(panic-expect) -- chains has one entry per group and n_groups >= 1
            let divergence = deepest - self.common_prefix_height;
            self.max_divergence_depth = self.max_divergence_depth.max(divergence);
        }
    }

    fn advance_common_prefix(&mut self) {
        let base = self.base_height;
        let limit = base + self.chains.iter().map(Vec::len).min().expect("non-empty") as u64 - 1; // detlint: allow(panic-expect) -- chains has one entry per group and n_groups >= 1
        let (a, b) = (&self.chains[0], &self.chains[1]);
        let mut cp = self.common_prefix_height;
        while cp < limit && a[(cp + 1 - base) as usize] == b[(cp + 1 - base) as usize] {
            cp += 1;
        }
        self.common_prefix_height = cp;
    }

    /// Deepest suffix any group ever discarded in a reorg.
    #[must_use]
    pub fn max_reorg_depth(&self) -> u64 {
        self.max_reorg_depth
    }

    /// Deepest simultaneous cross-group disagreement observed.
    #[must_use]
    pub fn max_divergence_depth(&self) -> u64 {
        self.max_divergence_depth
    }

    /// Number of reorgs (tip switches discarding ≥ 1 block).
    #[must_use]
    pub fn reorg_count(&self) -> u64 {
        self.reorg_count
    }

    /// Height of the last block shared by both groups' current chains
    /// (equals the tip height with a single group).
    #[must_use]
    pub fn common_prefix_height(&self) -> u64 {
        if self.chains.len() == 1 {
            self.height(0)
        } else {
            self.common_prefix_height
        }
    }

    /// `true` iff the whole run satisfied `T`-consistency: no reorg and
    /// no simultaneous divergence deeper than `T`.
    #[must_use]
    pub fn is_consistent(&self, t: u64) -> bool {
        self.max_reorg_depth <= t && self.max_divergence_depth <= t
    }
}

// Deterministic randomized sweeps (in-tree RNG; proptest is unavailable
// in the offline build environment).
#[cfg(test)]
mod randomized_tests {
    use super::*;
    use crate::block::Provenance;
    use crate::tree::BlockTree;
    use probability::rng::{RandomSource, SplitMix64};

    /// Random tree growth + adoption script: (action, argument) pairs where
    /// action 0 extends a random existing block, action 1 offers a random
    /// block to group 0, and action 2 offers one to group 1.
    fn random_script(rng: &mut SplitMix64) -> Vec<(u8, u8)> {
        let len = rng.next_range(1, 119) as usize;
        (0..len)
            .map(|_| (rng.next_below(3) as u8, rng.next_below(255) as u8))
            .collect()
    }

    /// Random tree growth + adoption: whatever the interleaving, the
    /// tracker's invariants must hold.
    #[test]
    fn tracker_invariants_under_random_interleavings() {
        let mut rng = SplitMix64::new(0xC0_01);
        for _ in 0..128 {
            let script = random_script(&mut rng);
            let mut tree = BlockTree::new();
            let mut tracker = ChainTracker::new(2);
            let mut blocks = vec![BlockId::GENESIS];
            let mut round = 0;
            for (action, arg) in script {
                match action {
                    0 => {
                        round += 1;
                        let parent = blocks[arg as usize % blocks.len()];
                        let id = tree.add_block(parent, round, Provenance::Honest(0));
                        blocks.push(id);
                    }
                    g @ (1 | 2) => {
                        let block = blocks[arg as usize % blocks.len()];
                        let group = (g - 1) as usize;
                        let before = tracker.height(group);
                        let adopted = tracker.consider(group, block, &tree);
                        // Longest-chain rule: adopt iff strictly higher.
                        assert_eq!(adopted, tree.height(block) > before);
                        if adopted {
                            assert_eq!(tracker.tip(group), block);
                        }
                    }
                    _ => unreachable!(),
                }
                // Invariants after every step.
                for group in 0..2 {
                    let tip = tracker.tip(group);
                    let h = tracker.height(group);
                    assert_eq!(tree.height(tip), h);
                    // The stored chain is the tree path of the tip.
                    for probe in [0, h / 2, h] {
                        let stored = tracker.block_at(group, probe).expect("within chain");
                        assert_eq!(stored, tree.ancestor_at_height(tip, probe));
                    }
                }
                let cp = tracker.common_prefix_height();
                let min_h = tracker.height(0).min(tracker.height(1));
                assert!(cp <= min_h);
                // The common prefix block really is shared.
                assert_eq!(
                    tracker.block_at(0, cp).expect("within chain"),
                    tracker.block_at(1, cp).expect("within chain")
                );
                // And the next block differs (or one chain ends there).
                if cp < min_h {
                    assert!(tracker.block_at(0, cp + 1) != tracker.block_at(1, cp + 1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Provenance;

    #[test]
    fn single_group_extension_no_reorg() {
        let mut tree = BlockTree::new();
        let mut tracker = ChainTracker::new(1);
        let mut tip = BlockId::GENESIS;
        for r in 1..=10 {
            tip = tree.add_block(tip, r, Provenance::Honest(0));
            assert!(tracker.consider(0, tip, &tree));
        }
        assert_eq!(tracker.height(0), 10);
        assert_eq!(tracker.max_reorg_depth(), 0);
        assert_eq!(tracker.reorg_count(), 0);
        assert!(tracker.is_consistent(0));
    }

    #[test]
    fn lower_block_rejected() {
        let mut tree = BlockTree::new();
        let mut tracker = ChainTracker::new(1);
        let a = tree.add_block(BlockId::GENESIS, 1, Provenance::Honest(0));
        let b = tree.add_block(a, 2, Provenance::Honest(0));
        tracker.consider(0, b, &tree);
        // A sibling at the same height must not displace the tip.
        let sibling = tree.add_block(a, 2, Provenance::Adversary);
        assert!(!tracker.consider(0, sibling, &tree));
        assert_eq!(tracker.tip(0), b);
    }

    #[test]
    fn reorg_depth_measured() {
        let mut tree = BlockTree::new();
        let mut tracker = ChainTracker::new(1);
        // Honest chain: G → a → b → c.
        let a = tree.add_block(BlockId::GENESIS, 1, Provenance::Honest(0));
        let b = tree.add_block(a, 2, Provenance::Honest(0));
        let c = tree.add_block(b, 3, Provenance::Honest(0));
        for blk in [a, b, c] {
            tracker.consider(0, blk, &tree);
        }
        // Adversary releases a longer fork from `a`: a → x → y → z.
        let x = tree.add_block(a, 2, Provenance::Adversary);
        let y = tree.add_block(x, 3, Provenance::Adversary);
        let z = tree.add_block(y, 4, Provenance::Adversary);
        assert!(tracker.consider(0, z, &tree));
        // Blocks b and c (two blocks) were discarded.
        assert_eq!(tracker.max_reorg_depth(), 2);
        assert_eq!(tracker.reorg_count(), 1);
        assert_eq!(tracker.block_at(0, 2), Some(x));
        assert!(!tracker.is_consistent(1));
        assert!(tracker.is_consistent(2));
    }

    #[test]
    fn divergence_between_groups() {
        let mut tree = BlockTree::new();
        let mut tracker = ChainTracker::new(2);
        // Both groups at genesis; group 0 grows branch A (2 blocks),
        // group 1 grows branch B (3 blocks).
        let a1 = tree.add_block(BlockId::GENESIS, 1, Provenance::Honest(0));
        let a2 = tree.add_block(a1, 2, Provenance::Honest(0));
        let b1 = tree.add_block(BlockId::GENESIS, 1, Provenance::Honest(1));
        let b2 = tree.add_block(b1, 2, Provenance::Honest(1));
        let b3 = tree.add_block(b2, 3, Provenance::Honest(1));
        tracker.consider(0, a1, &tree);
        tracker.consider(0, a2, &tree);
        tracker.consider(1, b1, &tree);
        tracker.consider(1, b2, &tree);
        tracker.consider(1, b3, &tree);
        assert_eq!(tracker.common_prefix_height(), 0);
        // Deepest chain is 3 blocks beyond the common prefix (genesis).
        assert_eq!(tracker.max_divergence_depth(), 3);
        // Group 1's chain wins once delivered to group 0.
        assert!(tracker.consider(0, b3, &tree));
        assert_eq!(tracker.common_prefix_height(), 3);
        assert_eq!(tracker.max_reorg_depth(), 2);
    }

    #[test]
    fn common_prefix_advances_with_agreement() {
        let mut tree = BlockTree::new();
        let mut tracker = ChainTracker::new(2);
        let mut tip = BlockId::GENESIS;
        for r in 1..=5 {
            tip = tree.add_block(tip, r, Provenance::Honest(0));
            tracker.consider(0, tip, &tree);
            tracker.consider(1, tip, &tree);
        }
        assert_eq!(tracker.common_prefix_height(), 5);
        assert_eq!(tracker.max_divergence_depth(), 1, "momentary 1-block lead");
    }

    #[test]
    #[should_panic(expected = "1 or 2")]
    fn rejects_three_groups() {
        let _ = ChainTracker::new(3);
    }

    #[test]
    fn prune_below_preserves_absolute_queries_and_stats() {
        let mut tree = BlockTree::new();
        let mut tracker = ChainTracker::new(2);
        let mut tip = BlockId::GENESIS;
        let mut blocks = vec![BlockId::GENESIS];
        for r in 1..=10 {
            tip = tree.add_block(tip, r, Provenance::Honest(0));
            blocks.push(tip);
            tracker.consider(0, tip, &tree);
            tracker.consider(1, tip, &tree);
        }
        tracker.prune_below(6);
        assert_eq!(tracker.base_height(), 6);
        assert_eq!(tracker.height(0), 10, "heights stay absolute");
        assert_eq!(tracker.tip(1), tip);
        assert_eq!(tracker.block_at(0, 5), None, "pruned entries are gone");
        assert_eq!(tracker.block_at(0, 6), Some(blocks[6]));
        assert_eq!(tracker.common_prefix_height(), 10);
        // A reorg above the pruned base is still measured correctly.
        let fork = tree.add_block(blocks[8], 11, Provenance::Adversary);
        let fork2 = tree.add_block(fork, 12, Provenance::Adversary);
        let fork3 = tree.add_block(fork2, 13, Provenance::Adversary);
        assert!(tracker.consider(0, fork3, &tree));
        assert_eq!(tracker.max_reorg_depth(), 2, "blocks 9 and 10 discarded");
        assert_eq!(tracker.block_at(0, 9), Some(fork));
        // Idempotent / no-op below current base.
        tracker.prune_below(3);
        assert_eq!(tracker.base_height(), 6);
    }

    #[test]
    #[should_panic(expected = "above a chain tip")]
    fn prune_above_tip_rejected() {
        let mut tree = BlockTree::new();
        let mut tracker = ChainTracker::new(1);
        let a = tree.add_block(BlockId::GENESIS, 1, Provenance::Honest(0));
        tracker.consider(0, a, &tree);
        tracker.prune_below(5);
    }
}
