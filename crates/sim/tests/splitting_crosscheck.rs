//! Cross-validation gate for the multilevel-splitting estimator: on
//! small-parameter cells where the failure probability is large enough
//! for brute-force Monte-Carlo to resolve it, the splitting estimate
//! must agree with the plain-trial reference within three combined
//! standard errors. CI runs this file in release as its own job (the
//! `splitting-crosscheck` gate); `cargo test` runs it at the same
//! budget in debug.

use nakamoto_sim::adversary::{Adversary, BalanceAdversary, PrivateChainAdversary};
use nakamoto_sim::config::SimConfig;
use nakamoto_sim::montecarlo::TrialPlan;
use nakamoto_sim::splitting::SplittingPlan;

/// Runs one cell both ways and asserts the three-sigma agreement.
fn crosscheck<A, F>(
    name: &str,
    cfg: SimConfig,
    rounds: u64,
    threshold: u64,
    ref_trials: u64,
    effort: u64,
    make_adversary: F,
) where
    A: Adversary + Clone + Send + Sync + 'static,
    F: Fn(u64) -> A + Clone + Send + Sync + 'static,
{
    let reference = TrialPlan::new(cfg, rounds, ref_trials)
        .expect("valid reference plan")
        .thresholds(vec![threshold])
        .run(make_adversary.clone());
    let failures = reference
        .aggregate
        .failures_at(threshold)
        .expect("threshold tallied");
    let p_ref = failures as f64 / ref_trials as f64;
    assert!(
        failures >= 10,
        "{name}: the reference must actually resolve the event \
         (got {failures}/{ref_trials} failures — pick an easier cell)"
    );
    let se_ref = (p_ref * (1.0 - p_ref) / ref_trials as f64).sqrt();

    let splitting = SplittingPlan::new(cfg, rounds, effort, vec![threshold])
        .expect("valid splitting plan")
        .run(make_adversary);
    let estimate = splitting
        .estimate_at(threshold)
        .expect("threshold estimated");
    let se_split = estimate
        .standard_error()
        .unwrap_or_else(|| panic!("{name}: splitting starved on a non-rare cell"));

    let gap = (estimate.probability - p_ref).abs();
    let tolerance = 3.0 * (se_ref * se_ref + se_split * se_split).sqrt();
    assert!(
        gap <= tolerance,
        "{name}: splitting {:.4e} vs brute force {p_ref:.4e} \
         (gap {gap:.2e} > 3σ tolerance {tolerance:.2e})",
        estimate.probability
    );
}

#[test]
fn balance_attack_moderate_depth() {
    let cfg = SimConfig::from_c(60, 2, 1.0, 0.3, 0xA11CE).unwrap();
    crosscheck("balance/T=4", cfg, 1500, 4, 1500, 400, |_| {
        BalanceAdversary::new(2)
    });
}

#[test]
fn balance_attack_shallow_depth() {
    let cfg = SimConfig::from_c(80, 3, 1.5, 0.25, 0xB0B).unwrap();
    crosscheck("balance/T=3", cfg, 1200, 3, 1500, 400, |_| {
        BalanceAdversary::new(3)
    });
}

#[test]
fn private_chain_attack_short_horizon() {
    let cfg = SimConfig::from_c(50, 2, 0.6, 0.35, 0xCAFE).unwrap();
    crosscheck("private-chain/T=3", cfg, 1000, 3, 1500, 400, |_| {
        PrivateChainAdversary::new(2)
    });
}

#[test]
fn degenerate_schedule_matches_reference_exactly() {
    // With the single-stage schedule and effort = trials, splitting IS
    // the plain estimator: the agreement is bit-exact, not just
    // statistical.
    let cfg = SimConfig::from_c(60, 2, 1.0, 0.3, 0xD0E).unwrap();
    let trials = 64;
    let reference = TrialPlan::new(cfg, 800, trials)
        .unwrap()
        .thresholds(vec![3])
        .run(|_| BalanceAdversary::new(2));
    let failures = reference.aggregate.failures_at(3).unwrap();
    let splitting = SplittingPlan::new(cfg, 800, trials, vec![3])
        .unwrap()
        .with_levels(Some(Vec::new()))
        .unwrap()
        .run(|_| BalanceAdversary::new(2));
    let estimate = splitting.estimate_at(3).unwrap();
    assert_eq!(
        estimate.probability,
        failures as f64 / trials as f64,
        "single-stage splitting must reduce to the plain proportion"
    );
}
