//! The gate on the gate: the committed workspace must scan clean, so
//! `cargo test` alone (no separate detlint invocation) catches a
//! violation merged without its waiver.

use std::path::Path;

use consistency_lint::{scan_workspace, Policy};

#[test]
fn committed_workspace_has_no_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = scan_workspace(&root, &Policy::workspace_default()).expect("workspace root scans");
    assert!(
        report.files_scanned > 50,
        "scan saw only {} files",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        report.is_clean(),
        "the committed tree must lint clean:\n{}",
        rendered.join("\n")
    );
}
