//! Drives every committed fixture under `crates/lint/fixtures/`
//! through [`consistency_lint::check_source`]: each rule has at least
//! one positive fixture (the rule must fire) and one negative fixture
//! (text that looks like a violation but is not must stay clean).

use std::path::{Path, PathBuf};

use consistency_lint::rules::RuleSet;
use consistency_lint::{check_source, xref};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn read(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} must exist: {e}", path.display()))
}

/// Rule set for ordinary (non-crate-root) fixtures.
fn lib_rules() -> RuleSet {
    RuleSet::all()
}

fn rules_fired(name: &str, rules: RuleSet) -> Vec<&'static str> {
    let findings = check_source(name, &read(name), rules);
    let mut fired: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    fired.sort_unstable();
    fired.dedup();
    fired
}

#[track_caller]
fn assert_fires(name: &str, rules: RuleSet, expected: &[&str]) {
    let fired = rules_fired(name, rules);
    assert_eq!(fired, expected, "{name}: wrong rule set fired");
}

#[track_caller]
fn assert_clean(name: &str, rules: RuleSet) {
    let findings = check_source(name, &read(name), rules);
    assert!(
        findings.is_empty(),
        "{name}: expected clean, got {findings:#?}"
    );
}

#[test]
fn det_collections() {
    assert_fires("det_collections_pos.rs", lib_rules(), &["det-collections"]);
    assert_clean("det_collections_neg.rs", lib_rules());
}

#[test]
fn det_wallclock() {
    assert_fires("det_wallclock_pos.rs", lib_rules(), &["det-wallclock"]);
    assert_clean("det_wallclock_neg.rs", lib_rules());
}

#[test]
fn det_entropy() {
    assert_fires("det_entropy_pos.rs", lib_rules(), &["det-entropy"]);
    assert_clean("det_entropy_neg.rs", lib_rules());
}

#[test]
fn det_float_sum() {
    assert_fires("det_float_sum_pos.rs", lib_rules(), &["det-float-sum"]);
    assert_clean("det_float_sum_neg.rs", lib_rules());
}

#[test]
fn det_rawthread() {
    assert_fires("det_rawthread_pos.rs", lib_rules(), &["det-rawthread"]);
    assert_clean("det_rawthread_neg.rs", lib_rules());
}

#[test]
fn panic_unwrap() {
    assert_fires("panic_unwrap_pos.rs", lib_rules(), &["panic-unwrap"]);
    assert_clean("panic_unwrap_neg.rs", lib_rules());
}

#[test]
fn panic_expect() {
    assert_fires("panic_expect_pos.rs", lib_rules(), &["panic-expect"]);
    assert_clean("panic_expect_neg.rs", lib_rules());
}

#[test]
fn panic_macro() {
    assert_fires("panic_macro_pos.rs", lib_rules(), &["panic-macro"]);
    assert_clean("panic_macro_neg.rs", lib_rules());
}

#[test]
fn panic_slice_index() {
    let findings = check_source(
        "panic_slice_pos.rs",
        &read("panic_slice_pos.rs"),
        lib_rules(),
    );
    // All three bounded forms: `[..n]`, `[1..]`, `[1..=n]`.
    assert_eq!(findings.len(), 3, "{findings:#?}");
    assert!(findings.iter().all(|f| f.rule == "panic-slice-index"));
    assert_clean("panic_slice_neg.rs", lib_rules());
}

#[test]
fn unsafe_forbid() {
    let root_rules = RuleSet {
        forbid_unsafe: true,
        ..RuleSet::all()
    };
    assert_fires("unsafe_forbid_pos.rs", root_rules, &["unsafe-forbid"]);
    assert_clean("unsafe_forbid_neg.rs", root_rules);
}

#[test]
fn waiver_suppresses_trailing_and_own_line() {
    assert_clean("waiver_ok.rs", lib_rules());
}

#[test]
fn waiver_unused_is_an_error() {
    assert_fires("waiver_unused.rs", lib_rules(), &["waiver-unused"]);
}

#[test]
fn waiver_malformed_directives() {
    let findings = check_source("waiver_bad.rs", &read("waiver_bad.rs"), lib_rules());
    let fired: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    // The missing-justification waiver and the unknown-rule waiver are
    // both errors, and neither suppresses its `.unwrap()`.
    assert!(fired.contains(&"waiver-syntax"), "{findings:#?}");
    assert!(fired.contains(&"waiver-unknown-rule"), "{findings:#?}");
    assert_eq!(
        fired.iter().filter(|r| **r == "panic-unwrap").count(),
        2,
        "{findings:#?}"
    );
}

#[test]
fn lexer_stress_text_never_fires() {
    assert_clean("lexer_stress.rs", lib_rules());
}

/// Positive fixtures report the violation's line, not just the rule.
#[test]
fn findings_carry_line_numbers() {
    let findings = check_source(
        "panic_unwrap_pos.rs",
        &read("panic_unwrap_pos.rs"),
        lib_rules(),
    );
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].line, 3, "{findings:#?}");
}

fn mini_xref_config() -> xref::XrefConfig {
    xref::XrefConfig {
        bin_dir: "bins".into(),
        bin_smoke: "smoke.rs".into(),
        specs_dir: "specs".into(),
        spec_ref_dirs: vec!["smoketests".into()],
        experiments_md: "DOC.md".into(),
        schema_heading: "## Schema".into(),
        spec_rs: "spec.rs".into(),
    }
}

#[test]
fn xref_ok_tree_is_clean() {
    let findings = xref::check(&fixture_dir().join("xref_ok"), &mini_xref_config());
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn xref_bad_tree_fires_all_three_rules() {
    let findings = xref::check(&fixture_dir().join("xref_bad"), &mini_xref_config());
    let mut fired: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    fired.sort_unstable();
    assert_eq!(
        fired,
        ["xref-bin-smoke", "xref-doc-schema", "xref-spec-used"],
        "{findings:#?}"
    );
}
