//! The token-level rule checks: determinism (D), panic hygiene (P),
//! and the unsafe assertion (U). Cross-artifact (X) rules live in
//! [`crate::xref`] because they read several files at once.
//!
//! Every check walks the token stream produced by [`crate::lexer`],
//! skips tokens inside `#[cfg(test)]` regions, and routes candidate
//! findings through the waiver layer before reporting.

use crate::diag::Finding;
use crate::lexer::{SourceFile, Tok, TokKind};
use crate::waiver::WaiverSet;

/// Every per-line rule id `detlint` knows, in catalogue order. The
/// waiver parser validates against this list; keep `docs/LINTING.md`
/// in sync (rule X checks that the docs name each id).
pub const RULE_IDS: &[&str] = &[
    // D — determinism.
    "det-collections",
    "det-wallclock",
    "det-entropy",
    "det-float-sum",
    "det-rawthread",
    // P — panic hygiene.
    "panic-unwrap",
    "panic-expect",
    "panic-macro",
    "panic-slice-index",
    // U — unsafe.
    "unsafe-forbid",
    // X — cross-artifact (workspace level; not waivable per line).
    "xref-bin-smoke",
    "xref-spec-used",
    "xref-doc-schema",
    // Meta.
    "waiver-syntax",
    "waiver-unknown-rule",
    "waiver-unused",
];

/// The per-file rule subset to run, chosen by the policy layer from
/// the file's crate and role.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleSet {
    /// `det-collections`: no `HashMap`/`HashSet`.
    pub collections: bool,
    /// `det-wallclock`: no `Instant`/`SystemTime`.
    pub wallclock: bool,
    /// `det-entropy`: no `thread_rng`/`from_entropy`/`OsRng`/`env::var*`.
    pub entropy: bool,
    /// `det-float-sum`: no float `.sum()`/`.product()`.
    pub float_sum: bool,
    /// `det-rawthread`: no `thread::scope`/`thread::spawn`/
    /// `thread::Builder` — all worker threads belong to the shared
    /// `nakamoto_sim::executor` pool.
    pub rawthread: bool,
    /// `panic-unwrap` + `panic-expect` + `panic-macro` +
    /// `panic-slice-index`.
    pub panic_hygiene: bool,
    /// `unsafe-forbid`: crate root must carry `#![forbid(unsafe_code)]`.
    pub forbid_unsafe: bool,
}

impl RuleSet {
    /// True when no per-token rule applies (the file can be skipped).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == RuleSet::default()
    }

    /// All rules on — what the fixture tests use.
    #[must_use]
    pub fn all() -> Self {
        RuleSet {
            collections: true,
            wallclock: true,
            entropy: true,
            float_sum: true,
            rawthread: true,
            panic_hygiene: true,
            forbid_unsafe: false,
        }
    }
}

/// Marks tokens inside `#[cfg(test)]` / `#[test]` regions. Returns one
/// bool per token: `true` = the token counts (non-test code).
///
/// Recognised shape: an attribute whose parenthesised arguments
/// contain the ident `test` (and not `not`, so `#[cfg(not(test))]`
/// still counts as library code), followed — possibly after more
/// attributes — by an item whose body is the next `{…}` group (or a
/// `;` for out-of-line `mod tests;`). Everything from the attribute to
/// the region end is masked.
#[must_use]
pub fn non_test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![true; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Find the attribute's closing bracket.
        let Some(attr_end) = matching(tokens, i + 1, '[', ']') else {
            break;
        };
        let body = &tokens[i + 2..attr_end];
        let gates_test =
            body.iter().any(|t| t.is_ident("test")) && !body.iter().any(|t| t.is_ident("not"));
        if !gates_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = attr_end + 1;
        while j < tokens.len()
            && tokens[j].is_punct('#')
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching(tokens, j + 1, '[', ']') {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        // The region ends at the matching `}` of the item's body, or at
        // a `;` hit before any `{` (e.g. `#[cfg(test)] mod tests;`).
        let mut end = tokens.len().saturating_sub(1);
        let mut k = j;
        while k < tokens.len() {
            if tokens[k].is_punct(';') {
                end = k;
                break;
            }
            if tokens[k].is_punct('{') {
                end = matching(tokens, k, '{', '}').unwrap_or(tokens.len() - 1);
                break;
            }
            k += 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = false;
        }
        i = end + 1;
    }
    mask
}

/// Index of the delimiter matching `open` at `start` (which must hold
/// `open`), or `None` if unbalanced.
fn matching(tokens: &[Tok], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (idx, t) in tokens.iter().enumerate().skip(start) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(idx);
            }
        }
    }
    None
}

/// Runs the per-token rules of `rules` over an already-lexed file,
/// suppressing findings through `waivers`.
pub fn check_tokens(
    path: &str,
    file: &SourceFile,
    rules: RuleSet,
    waivers: &mut WaiverSet,
    out: &mut Vec<Finding>,
) {
    let toks = &file.tokens;
    let mask = non_test_mask(toks);
    let mut emit = |rule: &'static str, line: u32, col: u32, message: String, w: &mut WaiverSet| {
        if !w.try_suppress(rule, line) {
            out.push(Finding::new(rule, path, line, col, message));
        }
    };

    for (i, t) in toks.iter().enumerate() {
        if !mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        let next = toks.get(i + 1);

        if rules.collections && (t.text == "HashMap" || t.text == "HashSet") {
            emit(
                "det-collections",
                t.line,
                t.col,
                format!(
                    "`{}` has seed-dependent iteration order; use `BTree{}` \
                     (or waive with a proof no iteration order escapes)",
                    t.text,
                    &t.text[4..]
                ),
                waivers,
            );
        }
        if rules.wallclock && (t.text == "Instant" || t.text == "SystemTime") {
            emit(
                "det-wallclock",
                t.line,
                t.col,
                format!(
                    "`{}` reads the wall clock inside simulation/estimator code; \
                     results must be a pure function of the seed",
                    t.text
                ),
                waivers,
            );
        }
        if rules.entropy {
            let env_read = t.text == "env"
                && next.is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 3).is_some_and(|n| {
                    n.is_ident("var") || n.is_ident("var_os") || n.is_ident("vars")
                });
            if env_read
                || t.text == "thread_rng"
                || t.text == "from_entropy"
                || t.text == "OsRng"
                || t.text == "getrandom"
            {
                emit(
                    "det-entropy",
                    t.line,
                    t.col,
                    format!(
                        "`{}` injects ambient state (OS entropy / environment) into \
                         simulation/estimator code; thread the seed or config through instead",
                        t.text
                    ),
                    waivers,
                );
            }
        }
        if rules.rawthread {
            let raw_spawn = t.text == "thread"
                && next.is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 3).is_some_and(|n| {
                    n.is_ident("scope") || n.is_ident("spawn") || n.is_ident("Builder")
                });
            if raw_spawn {
                let what = &toks[i + 3].text;
                emit(
                    "det-rawthread",
                    t.line,
                    t.col,
                    format!(
                        "`thread::{what}` creates raw OS threads outside the shared pool; \
                         submit the work to `nakamoto_sim::executor` instead \
                         (one pool per process owns every worker thread)"
                    ),
                    waivers,
                );
            }
        }
        if rules.float_sum
            && (t.text == "sum" || t.text == "product")
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|n| n.is_punct('(') || n.is_punct(':'))
            && fold_is_float(toks, i)
        {
            emit(
                "det-float-sum",
                t.line,
                t.col,
                format!(
                    "float `.{}()` folds in iterator order with no compensation; \
                     use `probability::summation` (or waive with a proof the order is fixed \
                     and the tally is not a cross-trial aggregate)",
                    t.text
                ),
                waivers,
            );
        }
        if rules.panic_hygiene {
            let dotted_call = |name: &str| {
                t.text == name
                    && prev.is_some_and(|p| p.is_punct('.'))
                    && next.is_some_and(|n| n.is_punct('('))
            };
            if dotted_call("unwrap") {
                emit(
                    "panic-unwrap",
                    t.line,
                    t.col,
                    "`.unwrap()` in non-test library code; propagate the `Result`/`Option` \
                     or waive with a one-line infallibility proof"
                        .into(),
                    waivers,
                );
            }
            if dotted_call("expect") {
                emit(
                    "panic-expect",
                    t.line,
                    t.col,
                    "`.expect()` in non-test library code; propagate the `Result`/`Option` \
                     or waive with a one-line infallibility proof"
                        .into(),
                    waivers,
                );
            }
            if matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && next.is_some_and(|n| n.is_punct('!'))
            {
                emit(
                    "panic-macro",
                    t.line,
                    t.col,
                    format!(
                        "`{}!` in non-test library code; return an error (or waive with \
                         a proof the branch is unreachable by construction)",
                        t.text
                    ),
                    waivers,
                );
            }
        }
    }

    if rules.panic_hygiene {
        check_slice_ranges(path, toks, &mask, waivers, out);
    }
    if rules.forbid_unsafe && !has_forbid_unsafe(toks) && !waivers.try_suppress("unsafe-forbid", 1)
    {
        out.push(Finding::new(
            "unsafe-forbid",
            path,
            1,
            1,
            "library crate root must assert `#![forbid(unsafe_code)]`".into(),
        ));
    }
}

/// `det-float-sum` type heuristic. An explicit turbofish decides
/// outright: `.sum::<f64>()` is a float fold, `.sum::<u64>()` is not —
/// even when the statement later casts (`.sum::<u64>() as f64`).
/// Without a turbofish, the enclosing statement (previous `;`/`{`/`}`
/// to next `;`) mentioning `f64`/`f32` marks the fold float, which
/// catches `let x: f64 = it.sum();`. Un-annotated statements pass (the
/// type is decided elsewhere; documented as a known limit of
/// token-level analysis in LINTING.md).
fn fold_is_float(toks: &[Tok], at: usize) -> bool {
    // `.sum :: < ty >` — tokens at+1.. are `:` `:` `<` ident `>`.
    if toks.get(at + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(at + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(at + 3).is_some_and(|t| t.is_punct('<'))
    {
        return toks
            .get(at + 4)
            .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"));
    }
    statement_mentions_float(toks, at)
}

/// Statement-window fallback for [`fold_is_float`].
fn statement_mentions_float(toks: &[Tok], at: usize) -> bool {
    let start = toks[..at]
        .iter()
        .rposition(|t| t.is_punct(';') || t.is_punct('{') || t.is_punct('}'))
        .map_or(0, |p| p + 1);
    let end = toks[at..]
        .iter()
        .position(|t| t.is_punct(';') || t.is_punct('{') || t.is_punct('}'))
        .map_or(toks.len(), |p| at + p);
    toks[start..end]
        .iter()
        .any(|t| t.is_ident("f64") || t.is_ident("f32"))
}

/// `panic-slice-index`: a *bounded* range index (`x[a..]`, `x[..b]`,
/// `x[a..=b]`) panics when the bound is out of range. Detected as a
/// bracket group that (a) follows an expression (ident / `)` / `]`),
/// so array literals, attributes, and match patterns don't match, and
/// (b) contains a `..` at group depth 1 with at least one bound
/// (`x[..]` is infallible and passes). Plain `x[i]` indexing is out of
/// scope for a token-level pass — documented in LINTING.md.
fn check_slice_ranges(
    path: &str,
    toks: &[Tok],
    mask: &[bool],
    waivers: &mut WaiverSet,
    out: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        if !mask[i] || !t.is_punct('[') {
            continue;
        }
        let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
            continue;
        };
        let indexing = prev.kind == TokKind::Ident || prev.is_punct(')') || prev.is_punct(']');
        if !indexing {
            continue;
        }
        let Some(close) = matching(toks, i, '[', ']') else {
            continue;
        };
        // Walk the group at depth 1 looking for `..` with a bound.
        let mut depth = 0usize;
        let mut dots_at: Option<usize> = None;
        for (j, g) in toks.iter().enumerate().take(close).skip(i) {
            if g.is_punct('[') || g.is_punct('(') || g.is_punct('{') {
                depth += 1;
            } else if g.is_punct(']') || g.is_punct(')') || g.is_punct('}') {
                depth -= 1;
            } else if depth == 1
                && g.is_punct('.')
                && toks.get(j + 1).is_some_and(|n| n.is_punct('.'))
                && !toks.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct('.'))
            {
                dots_at = Some(j);
                break;
            }
        }
        let Some(d) = dots_at else { continue };
        let lower_bound = d > i + 1;
        let mut upper_start = d + 2;
        if toks.get(upper_start).is_some_and(|t| t.is_punct('=')) {
            upper_start += 1;
        }
        let upper_bound = upper_start < close;
        if lower_bound || upper_bound {
            let line = toks[i].line;
            if !waivers.try_suppress("panic-slice-index", line) {
                out.push(Finding::new(
                    "panic-slice-index",
                    path,
                    line,
                    toks[i].col,
                    "bounded range index can panic out of range in non-test library code; \
                     use `.get(..)` or waive with a bound proof"
                        .into(),
                ));
            }
        }
    }
}

/// True when the token stream carries `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.iter().enumerate().any(|(i, t)| {
        t.is_ident("forbid")
            && toks[..i].iter().rev().take(3).any(|p| p.is_punct('!'))
            && toks
                .get(i + 1..i + 4)
                .is_some_and(|w| w.iter().any(|t| t.is_ident("unsafe_code")))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::waiver;

    fn run_all(src: &str) -> Vec<Finding> {
        let file = lex(src);
        let mut waivers = waiver::collect("t.rs", &file);
        let mut out = Vec::new();
        check_tokens("t.rs", &file, RuleSet::all(), &mut waivers, &mut out);
        waivers.flush_unused("t.rs");
        out.extend(waivers.findings);
        out
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); let m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        assert!(run_all(src).is_empty(), "{:?}", run_all(src));
    }

    #[test]
    fn cfg_not_test_still_counts() {
        let src = "#[cfg(not(test))]\nfn lib() { x.unwrap(); }\n";
        assert_eq!(rules_of(&run_all(src)), vec!["panic-unwrap"]);
    }

    #[test]
    fn unwrap_in_raw_string_and_comment_is_clean() {
        let src = "fn f() -> String { /* x.unwrap() */ r#\"y.unwrap()\"#.to_string() }\n";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn hashmap_in_nested_block_comment_is_clean() {
        let src = "/* outer /* HashMap::new() */ HashSet too */ fn f() {}\n";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn float_sum_flags_annotated_and_turbofish() {
        let src = "fn f(v: &[f64]) -> f64 { let s: f64 = v.iter().sum(); s + v.iter().map(|x| x * 2.0).sum::<f64>() }\n";
        assert_eq!(
            rules_of(&run_all(src)),
            vec!["det-float-sum", "det-float-sum"]
        );
    }

    #[test]
    fn integer_sum_is_clean() {
        let src =
            "fn f(v: &[u64]) -> u64 { let s: u64 = v.iter().sum(); s + v.iter().sum::<u64>() }\n";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn integer_turbofish_cast_to_float_is_clean() {
        let src = "fn f(v: &[u64]) -> f64 { v.iter().sum::<u64>() as f64 / 2.0 }\n";
        assert!(run_all(src).is_empty(), "{:?}", run_all(src));
    }

    #[test]
    fn tail_expression_sum_does_not_leak_into_next_item() {
        let src = "fn a(v: &[u64]) -> u64 {\n    v.iter().sum()\n}\nfn b() -> f64 { 1.0 }\n";
        assert!(run_all(src).is_empty(), "{:?}", run_all(src));
    }

    #[test]
    fn bounded_range_index_flags_but_full_range_passes() {
        let src =
            "fn f(v: &[u8], i: usize) -> &[u8] { let _ = &v[..i]; let _ = &v[i..]; &v[..] }\n";
        assert_eq!(
            rules_of(&run_all(src)),
            vec!["panic-slice-index", "panic-slice-index"]
        );
    }

    #[test]
    fn array_literal_and_attribute_brackets_pass() {
        let src = "#[derive(Clone)]\nstruct S;\nfn f() -> [u8; 3] { [1, 2, 3] }\n";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn waiver_suppresses_and_is_consumed() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // detlint: allow(panic-unwrap) -- caller checked is_some\n";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn waiver_on_wrong_rule_leaves_finding_and_unused_error() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // detlint: allow(panic-expect) -- wrong rule\n";
        let rules = rules_of(&run_all(src));
        assert!(rules.contains(&"panic-unwrap"));
        assert!(rules.contains(&"waiver-unused"));
    }

    #[test]
    fn forbid_unsafe_detection() {
        let with = "#![forbid(unsafe_code)]\nfn f() {}\n";
        let file = lex(with);
        assert!(has_forbid_unsafe(&file.tokens));
        let without = "#![deny(unsafe_code)]\nfn f() {}\n";
        assert!(!has_forbid_unsafe(&lex(without).tokens));
    }

    #[test]
    fn env_read_flags_but_bare_env_ident_passes() {
        let src = "fn f() { let _ = std::env::var(\"SEED\"); }\n";
        assert_eq!(rules_of(&run_all(src)), vec!["det-entropy"]);
        let bare = "fn g(env: u8) -> u8 { env }\n";
        assert!(run_all(bare).is_empty());
    }

    #[test]
    fn expect_method_definition_is_not_a_call() {
        let src = "impl C { fn expect(&mut self, c: char) -> bool { true } }\n";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn panic_macros_flag() {
        let src = "fn f(x: u8) { if x > 3 { panic!(\"no\") } else { unreachable!() } }\n";
        assert_eq!(rules_of(&run_all(src)), vec!["panic-macro", "panic-macro"]);
    }

    #[test]
    fn test_fn_attribute_masks_following_fn_only() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib() { y.unwrap(); }\n";
        let f = run_all(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }
}
