//! The waiver layer: per-line, per-rule suppression with mandatory
//! justification, and errors for waivers that suppress nothing.
//!
//! Syntax (line comments only — block comments cannot carry waivers):
//!
//! ```text
//! some_call().unwrap(); // detlint: allow(panic-unwrap) -- len checked above
//! // detlint: allow(det-wallclock, panic-expect) -- elapsed feeds a diagnostic only
//! let started = Instant::now();
//! ```
//!
//! A trailing waiver applies to its own line; a waiver alone on a line
//! applies to the *next* line holding code. Every waiver must name at
//! least one known rule and carry a non-empty `--` justification; a
//! waiver whose rule never fires on its target line is itself an error
//! (`waiver-unused`), so stale suppressions cannot accumulate.

use crate::diag::Finding;
use crate::lexer::SourceFile;
use crate::rules::RULE_IDS;

/// A parsed waiver directive.
#[derive(Debug)]
pub struct Waiver {
    /// The rules this waiver suppresses.
    pub rules: Vec<String>,
    /// The justification text after `--`.
    pub justification: String,
    /// Line the comment sits on.
    pub comment_line: u32,
    /// Line whose findings it suppresses.
    pub target_line: u32,
    /// Which of `rules` actually suppressed a finding (parallel vec).
    pub used: Vec<bool>,
}

/// Result of extracting waivers from a file's comments: the parsed
/// waivers plus findings for malformed or unknown-rule directives.
#[derive(Debug, Default)]
pub struct WaiverSet {
    /// Well-formed waivers, ready to suppress findings.
    pub waivers: Vec<Waiver>,
    /// `waiver-syntax` / `waiver-unknown-rule` findings.
    pub findings: Vec<Finding>,
}

impl WaiverSet {
    /// Attempts to suppress a finding of `rule` on `line`; returns true
    /// (and marks the waiver used) when a matching waiver exists.
    pub fn try_suppress(&mut self, rule: &str, line: u32) -> bool {
        for w in &mut self.waivers {
            if w.target_line != line {
                continue;
            }
            if let Some(i) = w.rules.iter().position(|r| r == rule) {
                w.used[i] = true;
                return true;
            }
        }
        false
    }

    /// Emits `waiver-unused` findings for every waiver rule that never
    /// suppressed anything. Call after all rule checks ran.
    pub fn flush_unused(&mut self, path: &str) {
        for w in &self.waivers {
            for (rule, used) in w.rules.iter().zip(&w.used) {
                if !used {
                    self.findings.push(Finding::new(
                        "waiver-unused",
                        path,
                        w.comment_line,
                        1,
                        format!(
                            "waiver for `{rule}` suppresses nothing on line {}; \
                             remove it (stale waivers are errors)",
                            w.target_line
                        ),
                    ));
                }
            }
        }
    }
}

/// Scans a file's comments for `detlint:` directives.
#[must_use]
pub fn collect(path: &str, file: &SourceFile) -> WaiverSet {
    let mut set = WaiverSet::default();
    for c in &file.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("detlint:") else {
            continue;
        };
        if c.block {
            set.findings.push(Finding::new(
                "waiver-syntax",
                path,
                c.line,
                1,
                "waivers must be `//` line comments, not block comments".into(),
            ));
            continue;
        }
        match parse_directive(rest) {
            Ok((rules, justification)) => {
                let mut known = true;
                for r in &rules {
                    if !RULE_IDS.contains(&r.as_str()) {
                        known = false;
                        set.findings.push(Finding::new(
                            "waiver-unknown-rule",
                            path,
                            c.line,
                            1,
                            format!(
                                "unknown rule `{r}` in waiver; known rules: {}",
                                RULE_IDS.join(", ")
                            ),
                        ));
                    }
                }
                if !known {
                    continue;
                }
                // A trailing waiver guards its own line; an own-line
                // waiver guards the next line that holds code.
                let target_line = if c.own_line {
                    match file.next_code_line(c.line) {
                        Some(l) => l,
                        None => {
                            set.findings.push(Finding::new(
                                "waiver-unused",
                                path,
                                c.line,
                                1,
                                "waiver at end of file guards no code".into(),
                            ));
                            continue;
                        }
                    }
                } else {
                    c.line
                };
                let used = vec![false; rules.len()];
                set.waivers.push(Waiver {
                    rules,
                    justification,
                    comment_line: c.line,
                    target_line,
                    used,
                });
            }
            Err(msg) => {
                set.findings
                    .push(Finding::new("waiver-syntax", path, c.line, 1, msg));
            }
        }
    }
    set
}

/// Parses `allow(rule-a, rule-b) -- justification` (the part after
/// `detlint:`).
fn parse_directive(rest: &str) -> Result<(Vec<String>, String), String> {
    const USAGE: &str = "expected `detlint: allow(<rule>[, <rule>…]) -- <justification>`";
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Err(format!("{USAGE} (missing `allow`)"));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err(format!("{USAGE} (missing `(`)"));
    };
    let Some(close) = rest.find(')') else {
        return Err(format!("{USAGE} (unclosed rule list)"));
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err(format!("{USAGE} (empty rule list)"));
    }
    let tail = rest[close + 1..].trim_start();
    let Some(justification) = tail.strip_prefix("--") else {
        return Err(format!("{USAGE} (missing `--` justification)"));
    };
    let justification = justification.trim();
    if justification.is_empty() {
        return Err(format!("{USAGE} (empty justification)"));
    }
    Ok((rules, justification.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_waiver_targets_its_own_line() {
        let src = "let x = v.unwrap(); // detlint: allow(panic-unwrap) -- guarded above\n";
        let set = collect("f.rs", &lex(src));
        assert!(set.findings.is_empty());
        assert_eq!(set.waivers.len(), 1);
        assert_eq!(set.waivers[0].target_line, 1);
        assert_eq!(set.waivers[0].rules, vec!["panic-unwrap"]);
        assert_eq!(set.waivers[0].justification, "guarded above");
    }

    #[test]
    fn own_line_waiver_targets_next_code_line() {
        let src = "// detlint: allow(det-wallclock) -- diagnostic only\n\n// other comment\nlet t = Instant::now();\n";
        let set = collect("f.rs", &lex(src));
        assert_eq!(set.waivers[0].target_line, 4);
    }

    #[test]
    fn multi_rule_waiver_parses() {
        let src = "x(); // detlint: allow(panic-unwrap, panic-expect) -- both proven\n";
        let set = collect("f.rs", &lex(src));
        assert_eq!(set.waivers[0].rules.len(), 2);
    }

    #[test]
    fn missing_justification_is_an_error() {
        let src = "x(); // detlint: allow(panic-unwrap)\n";
        let set = collect("f.rs", &lex(src));
        assert!(set.waivers.is_empty());
        assert_eq!(set.findings.len(), 1);
        assert_eq!(set.findings[0].rule, "waiver-syntax");
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let src = "x(); // detlint: allow(no-such-rule) -- why\n";
        let set = collect("f.rs", &lex(src));
        assert!(set.waivers.is_empty());
        assert_eq!(set.findings[0].rule, "waiver-unknown-rule");
    }

    #[test]
    fn unused_waiver_is_an_error() {
        let src = "let x = 1; // detlint: allow(panic-unwrap) -- nothing here\n";
        let mut set = collect("f.rs", &lex(src));
        set.flush_unused("f.rs");
        assert_eq!(set.findings.len(), 1);
        assert_eq!(set.findings[0].rule, "waiver-unused");
    }

    #[test]
    fn used_waiver_is_not_flagged() {
        let src = "let x = v.unwrap(); // detlint: allow(panic-unwrap) -- ok\n";
        let mut set = collect("f.rs", &lex(src));
        assert!(set.try_suppress("panic-unwrap", 1));
        set.flush_unused("f.rs");
        assert!(set.findings.is_empty());
    }

    #[test]
    fn end_of_file_own_line_waiver_is_unused() {
        let src = "let x = 1;\n// detlint: allow(panic-unwrap) -- dangling\n";
        let set = collect("f.rs", &lex(src));
        assert_eq!(set.findings[0].rule, "waiver-unused");
    }
}
