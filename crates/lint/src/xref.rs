//! Cross-artifact (X) rules: drift between source, tests, CI, and
//! docs becomes a lint failure instead of a silently rotting promise.
//!
//! * `xref-bin-smoke` — every `crates/bench/src/bin/<name>.rs` must
//!   have a `<name>_entry` smoke test in
//!   `crates/bench/tests/bin_smoke.rs`.
//! * `xref-spec-used` — every committed `examples/specs/*.toml` must be
//!   named (by stem) in a test file or a CI workflow, so no golden
//!   spec exists that nothing exercises.
//! * `xref-doc-schema` — every key in the EXPERIMENTS.md spec-schema
//!   TOML block must exist in `crates/sim/src/spec.rs`; doc drift is a
//!   build failure.

use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::Finding;

/// Where the cross-artifact rule inputs live, workspace-relative.
#[derive(Debug, Clone)]
pub struct XrefConfig {
    /// Directory of bench harness binaries.
    pub bin_dir: String,
    /// The smoke-test file that must cover each binary.
    pub bin_smoke: String,
    /// Directory of committed experiment specs.
    pub specs_dir: String,
    /// Directories whose files count as "exercising" a spec (test
    /// trees and CI workflows).
    pub spec_ref_dirs: Vec<String>,
    /// The schema-documenting markdown file.
    pub experiments_md: String,
    /// The heading that precedes the schema TOML block.
    pub schema_heading: String,
    /// The spec codec source the schema keys must exist in.
    pub spec_rs: String,
}

impl XrefConfig {
    /// The workspace's actual layout.
    #[must_use]
    pub fn workspace_default() -> Self {
        XrefConfig {
            bin_dir: "crates/bench/src/bin".into(),
            bin_smoke: "crates/bench/tests/bin_smoke.rs".into(),
            specs_dir: "examples/specs".into(),
            spec_ref_dirs: vec![
                "crates/bench/tests".into(),
                "crates/sim/tests".into(),
                "crates/core/tests".into(),
                "tests".into(),
                ".github/workflows".into(),
            ],
            experiments_md: "EXPERIMENTS.md".into(),
            schema_heading: "## Spec-driven experiments".into(),
            spec_rs: "crates/sim/src/spec.rs".into(),
        }
    }
}

/// Runs all three X rules rooted at `root`.
#[must_use]
pub fn check(root: &Path, cfg: &XrefConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    check_bin_smoke(root, cfg, &mut out);
    check_specs_used(root, cfg, &mut out);
    check_doc_schema(root, cfg, &mut out);
    out
}

fn read(root: &Path, rel: &str) -> Option<String> {
    fs::read_to_string(root.join(rel)).ok()
}

/// Files with one of `exts` directly under `dir` (sorted for
/// deterministic finding order).
fn files_with_ext(dir: &Path, exts: &[&str]) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| exts.contains(&e))
        })
        .collect();
    v.sort();
    v
}

fn stem(p: &Path) -> String {
    p.file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default()
        .to_string()
}

fn check_bin_smoke(root: &Path, cfg: &XrefConfig, out: &mut Vec<Finding>) {
    let Some(smoke) = read(root, &cfg.bin_smoke) else {
        out.push(Finding::new(
            "xref-bin-smoke",
            &cfg.bin_smoke,
            0,
            0,
            "bin_smoke.rs is missing; every bench binary needs a smoke entry".into(),
        ));
        return;
    };
    for bin in files_with_ext(&root.join(&cfg.bin_dir), &["rs"]) {
        let name = stem(&bin);
        let marker = format!("{name}_entry");
        if !smoke.contains(&marker) {
            out.push(Finding::new(
                "xref-bin-smoke",
                &format!("{}/{}.rs", cfg.bin_dir, name),
                0,
                0,
                format!(
                    "bench binary `{name}` has no `{marker}` smoke test in {}",
                    cfg.bin_smoke
                ),
            ));
        }
    }
}

fn check_specs_used(root: &Path, cfg: &XrefConfig, out: &mut Vec<Finding>) {
    // Build the reference corpus: test sources and CI workflows.
    let mut corpus = String::new();
    for dir in &cfg.spec_ref_dirs {
        for f in files_with_ext(&root.join(dir), &["rs", "yml", "yaml"]) {
            if let Ok(s) = fs::read_to_string(&f) {
                corpus.push_str(&s);
                corpus.push('\n');
            }
        }
    }
    for spec in files_with_ext(&root.join(&cfg.specs_dir), &["toml"]) {
        let name = stem(&spec);
        if !corpus.contains(&name) {
            out.push(Finding::new(
                "xref-spec-used",
                &format!("{}/{}.toml", cfg.specs_dir, name),
                0,
                0,
                format!(
                    "committed spec `{name}.toml` is not referenced by any test or CI \
                     workflow; add it to the golden-file smoke or delete it"
                ),
            ));
        }
    }
}

fn check_doc_schema(root: &Path, cfg: &XrefConfig, out: &mut Vec<Finding>) {
    let Some(md) = read(root, &cfg.experiments_md) else {
        return;
    };
    let Some(spec_rs) = read(root, &cfg.spec_rs) else {
        out.push(Finding::new(
            "xref-doc-schema",
            &cfg.spec_rs,
            0,
            0,
            "spec codec source missing; cannot cross-check the documented schema".into(),
        ));
        return;
    };
    let keys = schema_keys(&md, &cfg.schema_heading);
    if keys.is_empty() {
        out.push(Finding::new(
            "xref-doc-schema",
            &cfg.experiments_md,
            0,
            0,
            format!(
                "no TOML schema block found under `{}`; the documented schema \
                 must stay cross-checkable",
                cfg.schema_heading
            ),
        ));
        return;
    }
    for (key, line) in keys {
        if !mentions_word(&spec_rs, &key) {
            out.push(Finding::new(
                "xref-doc-schema",
                &cfg.experiments_md,
                line,
                1,
                format!(
                    "documented spec key `{key}` does not exist in {}; \
                     the schema section has drifted from the codec",
                    cfg.spec_rs
                ),
            ));
        }
    }
}

/// Extracts `(key, markdown line)` pairs from the first ```toml fence
/// after `heading`: table-header segments (`[[sweep.axis.cell]]` →
/// `sweep`, `axis`, `cell`) and every `key =` assignment, including
/// ones inside inline tables. TOML comments are stripped first so
/// prose in `# …` trails cannot invent keys.
#[must_use]
pub fn schema_keys(md: &str, heading: &str) -> Vec<(String, u32)> {
    let mut keys: Vec<(String, u32)> = Vec::new();
    let mut seen_heading = false;
    let mut in_fence = false;
    let mut done = false;
    for (idx, raw) in md.lines().enumerate() {
        let line_no = u32::try_from(idx).unwrap_or(u32::MAX).saturating_add(1);
        if done {
            break;
        }
        if !seen_heading {
            seen_heading = raw.trim_start().starts_with(heading);
            continue;
        }
        if !in_fence {
            if raw.trim() == "```toml" {
                in_fence = true;
            }
            continue;
        }
        if raw.trim() == "```" {
            done = true;
            continue;
        }
        let line = raw.split('#').next().unwrap_or("");
        let trimmed = line.trim();
        // Table headers: `[base]` / `[[sweep.axis.cell]]`.
        if let Some(inner) = trimmed
            .strip_prefix("[[")
            .and_then(|s| s.strip_suffix("]]"))
            .or_else(|| trimmed.strip_prefix('[').and_then(|s| s.strip_suffix(']')))
        {
            for seg in inner.split('.') {
                push_key(&mut keys, seg, line_no);
            }
            continue;
        }
        // `key =` assignments anywhere on the line (top-level and
        // inline-table members both match).
        let bytes: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while i < bytes.len() {
            if bytes[i].is_alphabetic() || bytes[i] == '_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                let mut j = i;
                while j < bytes.len() && bytes[j] == ' ' {
                    j += 1;
                }
                if bytes.get(j) == Some(&'=') && bytes.get(j + 1) != Some(&'=') {
                    push_key(&mut keys, &word, line_no);
                }
            } else if bytes[i] == '"' {
                // Skip string contents so values can't invent keys.
                i += 1;
                while i < bytes.len() && bytes[i] != '"' {
                    i += 1;
                }
                i += 1;
            } else {
                i += 1;
            }
        }
    }
    keys
}

fn push_key(keys: &mut Vec<(String, u32)>, key: &str, line: u32) {
    let key = key.trim();
    if !key.is_empty() && !keys.iter().any(|(k, _)| k == key) {
        keys.push((key.to_string(), line));
    }
}

/// Word-boundary containment: `key` appears in `text` not embedded in
/// a longer identifier (`c` must not match inside `count`).
#[must_use]
pub fn mentions_word(text: &str, key: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let k: Vec<char> = key.chars().collect();
    if k.is_empty() {
        return false;
    }
    let boundary = |c: Option<&char>| !c.is_some_and(|&c| c.is_alphanumeric() || c == '_');
    let mut i = 0usize;
    while i + k.len() <= t.len() {
        if t[i..i + k.len()] == k[..]
            && boundary(i.checked_sub(1).and_then(|p| t.get(p)))
            && boundary(t.get(i + k.len()))
        {
            return true;
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const MD: &str = "\
# Doc

## Spec-driven experiments (`experiment`)

intro text

```toml
[experiment]
trials = 8            # budget cap; ignore prose = here
estimator = \"wilson\"

[base]
c = 3.0               # OR hardness = 1e-9

[[sweep.axis.cell]]
label = \"x\"
patch = { \"base.adversary_fraction\" = 0.15 }
```
";

    #[test]
    fn schema_keys_extracts_tables_and_assignments() {
        let keys: Vec<String> = schema_keys(MD, "## Spec-driven experiments")
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for expected in [
            "experiment",
            "trials",
            "estimator",
            "base",
            "c",
            "sweep",
            "axis",
            "cell",
            "label",
            "patch",
        ] {
            assert!(
                keys.contains(&expected.to_string()),
                "missing {expected}: {keys:?}"
            );
        }
        // Comment prose and string values must not invent keys.
        assert!(!keys.contains(&"prose".to_string()), "{keys:?}");
        assert!(
            !keys.contains(&"hardness".to_string()),
            "comment-only mention: {keys:?}"
        );
    }

    #[test]
    fn word_boundary_matching() {
        assert!(mentions_word("let c = 1;", "c"));
        assert!(!mentions_word("let count = 1;", "c"));
        assert!(mentions_word("\"n_miners\"", "n_miners"));
        assert!(mentions_word("c", "c"));
    }
}
