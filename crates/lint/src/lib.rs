#![forbid(unsafe_code)]
//! `consistency_lint` — the in-tree determinism and hygiene lint pass
//! (`detlint`).
//!
//! Every claim this repository makes about the reproduced paper rests
//! on one contract: Monte-Carlo aggregates are **bit-identical** at
//! any thread count, batch width, and resume point. That contract is
//! enforced *dynamically* by the `determinism` CI job and the scenario
//! fuzzer — which catch violations only after they are seeded. This
//! crate enforces it *statically*: a token-level scan of the workspace
//! rejects determinism- and robustness-hostile source patterns at CI
//! time, before they can grow call sites.
//!
//! In the same in-tree-parser discipline as the `nakamoto_sim::spec`
//! TOML codec and the vendored criterion shim, the scanner is a
//! hand-rolled lexer ([`lexer`]) — no external crates, offline-safe —
//! that understands strings, raw strings, char literals vs lifetimes,
//! and nested block comments, so rule matching never confuses text
//! with code.
//!
//! Rule families (full catalogue and rationale in `docs/LINTING.md`):
//!
//! * **D — determinism** ([`rules`]): no `HashMap`/`HashSet`, no wall
//!   clock, no ambient entropy or environment reads, no uncompensated
//!   float `.sum()`/`.product()` in the simulation/estimator crates.
//! * **P — panic hygiene** ([`rules`]): no `unwrap`/`expect`/`panic!`/
//!   `unreachable!`/bounded range indexing in non-test library code of
//!   `crates/sim` and `crates/core`.
//! * **U — unsafe** ([`rules`]): every library crate root asserts
//!   `#![forbid(unsafe_code)]`.
//! * **X — cross-artifact** ([`xref`]): bench binaries need smoke
//!   tests, committed specs need users, the documented spec schema
//!   must match the codec.
//!
//! Violations are suppressed per line with a justified waiver
//! ([`waiver`]): `// detlint: allow(<rule>) -- <why>`. Unused waivers
//! are themselves errors, so suppressions cannot outlive their reason.

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod waiver;
pub mod xref;

use std::fs;
use std::path::{Path, PathBuf};

use diag::{Finding, ScanReport};
use rules::RuleSet;
use xref::XrefConfig;

/// Which rule families apply to which crates, plus the cross-artifact
/// layout. The default ([`Policy::workspace_default`]) encodes this
/// workspace's contract; tests build narrower policies around fixture
/// files.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Crates (by `crates/<dir>` name; `"root"` = the umbrella crate)
    /// where `det-collections` applies.
    pub collections_crates: Vec<String>,
    /// Crates where `det-wallclock` applies.
    pub wallclock_crates: Vec<String>,
    /// Crates where `det-entropy` applies.
    pub entropy_crates: Vec<String>,
    /// Crates where `det-float-sum` applies.
    pub float_sum_crates: Vec<String>,
    /// Crates where `det-rawthread` applies (raw `thread::scope`/
    /// `thread::spawn`/`thread::Builder` forbidden in favour of the
    /// shared executor pool).
    pub rawthread_crates: Vec<String>,
    /// Workspace-relative files exempt from `det-rawthread` — the
    /// executor module itself, which owns every raw spawn.
    pub rawthread_exempt: Vec<String>,
    /// Crates where the P (panic-hygiene) rules apply.
    pub panic_crates: Vec<String>,
    /// Workspace-relative crate-root files that must carry
    /// `#![forbid(unsafe_code)]`.
    pub forbid_unsafe_roots: Vec<String>,
    /// Workspace-relative path prefixes excluded from scanning
    /// entirely (fixtures with seeded violations, build output).
    pub exclude_prefixes: Vec<String>,
    /// Cross-artifact rule layout; `None` disables the X family.
    pub xref: Option<XrefConfig>,
}

impl Policy {
    /// The policy this workspace is held to.
    #[must_use]
    pub fn workspace_default() -> Self {
        let sim_core = || vec!["sim".to_string(), "core".to_string()];
        let mut deterministic = sim_core();
        deterministic.push("markov".into());
        let mut sealed = deterministic.clone();
        sealed.push("probability".into());
        Policy {
            collections_crates: deterministic,
            wallclock_crates: sealed.clone(),
            entropy_crates: sealed,
            float_sum_crates: sim_core(),
            rawthread_crates: vec!["sim".into(), "bench".into()],
            rawthread_exempt: vec!["crates/sim/src/executor.rs".into()],
            panic_crates: sim_core(),
            forbid_unsafe_roots: vec![
                "src/lib.rs".into(),
                "crates/probability/src/lib.rs".into(),
                "crates/markov/src/lib.rs".into(),
                "crates/sim/src/lib.rs".into(),
                "crates/core/src/lib.rs".into(),
                "crates/bench/src/lib.rs".into(),
                "crates/criterion/src/lib.rs".into(),
                "crates/lint/src/lib.rs".into(),
            ],
            exclude_prefixes: vec![
                "target".into(),
                ".git".into(),
                "crates/lint/fixtures".into(),
            ],
            xref: Some(XrefConfig::workspace_default()),
        }
    }

    /// The rule subset for one workspace-relative file path, or `None`
    /// when the file is exempt (tests, benches, examples, binaries,
    /// build scripts — panic hygiene and determinism rules are
    /// library-code contracts).
    #[must_use]
    pub fn rules_for(&self, rel: &str) -> Option<RuleSet> {
        if self
            .exclude_prefixes
            .iter()
            .any(|p| rel.starts_with(p.as_str()))
        {
            return None;
        }
        let exempt = ["/tests/", "/benches/", "/examples/", "/src/bin/"]
            .iter()
            .any(|m| rel.contains(m))
            || rel.starts_with("tests/")
            || rel.starts_with("examples/")
            || rel.ends_with("build.rs");
        if exempt {
            return None;
        }
        let krate = crate_of(rel)?;
        let has = |v: &[String]| v.iter().any(|c| c == krate);
        Some(RuleSet {
            collections: has(&self.collections_crates),
            wallclock: has(&self.wallclock_crates),
            entropy: has(&self.entropy_crates),
            float_sum: has(&self.float_sum_crates),
            rawthread: has(&self.rawthread_crates)
                && !self.rawthread_exempt.iter().any(|p| p == rel),
            panic_hygiene: has(&self.panic_crates),
            forbid_unsafe: self.forbid_unsafe_roots.iter().any(|r| r == rel),
        })
    }
}

/// The crate directory a workspace-relative path belongs to:
/// `crates/sim/src/oracle.rs` → `sim`; `src/lib.rs` → `root`.
#[must_use]
pub fn crate_of(rel: &str) -> Option<&str> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let name = rest.split('/').next()?;
        return Some(name);
    }
    if rel.starts_with("src/") {
        return Some("root");
    }
    None
}

/// Lints a single in-memory source file under the given rule set —
/// the entry point the fixture self-tests drive directly.
#[must_use]
pub fn check_source(rel_path: &str, source: &str, rules: RuleSet) -> Vec<Finding> {
    let file = lexer::lex(source);
    let mut waivers = waiver::collect(rel_path, &file);
    let mut out = Vec::new();
    rules::check_tokens(rel_path, &file, rules, &mut waivers, &mut out);
    waivers.flush_unused(rel_path);
    out.extend(waivers.findings);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// Scans the whole workspace under `root` against `policy`.
///
/// # Errors
///
/// Returns an error only when the root itself cannot be read;
/// individual unreadable files become findings, not aborts.
pub fn scan_workspace(root: &Path, policy: &Policy) -> Result<ScanReport, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut files = Vec::new();
    collect_rs_files(root, root, &policy.exclude_prefixes, &mut files)?;
    files.sort();

    let mut report = ScanReport::default();
    for rel in &files {
        let Some(rules) = policy.rules_for(rel) else {
            continue;
        };
        report.files_scanned += 1;
        if rules.is_empty() {
            continue;
        }
        let source = match fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                report.findings.push(Finding::new(
                    "waiver-syntax",
                    rel,
                    0,
                    0,
                    format!("unreadable: {e}"),
                ));
                continue;
            }
        };
        let file = lexer::lex(&source);
        let mut waivers = waiver::collect(rel, &file);
        rules::check_tokens(rel, &file, rules, &mut waivers, &mut report.findings);
        waivers.flush_unused(rel);
        report.waivers_honored += waivers
            .waivers
            .iter()
            .map(|w| w.used.iter().filter(|&&u| u).count())
            .sum::<usize>();
        report.findings.extend(waivers.findings);
    }
    // Crate roots listed in the policy but missing on disk are
    // themselves findings — a renamed crate cannot silently drop out
    // of the unsafe contract.
    for r in &policy.forbid_unsafe_roots {
        if !root.join(r).is_file() {
            report.findings.push(Finding::new(
                "unsafe-forbid",
                r,
                0,
                0,
                "crate root named by the policy does not exist".into(),
            ));
        }
    }
    if let Some(xref_cfg) = &policy.xref {
        report.findings.extend(xref::check(root, xref_cfg));
    }
    Ok(report)
}

/// Recursively collects workspace-relative paths of `.rs` files,
/// skipping excluded prefixes and hidden directories.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<String>,
) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = rel_str(root, &path);
        if exclude.iter().any(|p| rel.starts_with(p.as_str())) || rel.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, exclude, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes.
fn rel_str(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_scopes_match_the_contract() {
        let p = Policy::workspace_default();
        let sim = p.rules_for("crates/sim/src/oracle.rs").unwrap();
        assert!(sim.collections && sim.panic_hygiene && sim.float_sum && sim.rawthread);
        let markov = p.rules_for("crates/markov/src/chain.rs").unwrap();
        assert!(markov.collections && !markov.panic_hygiene && !markov.float_sum);
        assert!(!markov.rawthread, "rawthread scopes to sim and bench only");
        let prob = p.rules_for("crates/probability/src/rng.rs").unwrap();
        assert!(!prob.collections && prob.wallclock && prob.entropy);
        let bench = p.rules_for("crates/bench/src/cli.rs").unwrap();
        assert!(
            bench.rawthread,
            "bench lib must route fan-outs through the executor"
        );
        assert!(
            !bench.collections && !bench.panic_hygiene && !bench.float_sum,
            "bench lib is otherwise harness code: {bench:?}"
        );
        let executor = p.rules_for("crates/sim/src/executor.rs").unwrap();
        assert!(
            !executor.rawthread,
            "the executor module owns the raw spawns"
        );
    }

    #[test]
    fn exempt_paths() {
        let p = Policy::workspace_default();
        assert!(p
            .rules_for("crates/sim/tests/splitting_crosscheck.rs")
            .is_none());
        assert!(p.rules_for("crates/bench/src/bin/experiment.rs").is_none());
        assert!(p.rules_for("crates/bench/benches/bench_sim.rs").is_none());
        assert!(p.rules_for("examples/quickstart.rs").is_none());
        assert!(p.rules_for("tests/consistency_threshold.rs").is_none());
        assert!(p
            .rules_for("crates/lint/fixtures/panic_unwrap_pos.rs")
            .is_none());
    }

    #[test]
    fn crate_root_files_get_the_unsafe_rule() {
        let p = Policy::workspace_default();
        assert!(p.rules_for("crates/sim/src/lib.rs").unwrap().forbid_unsafe);
        assert!(p.rules_for("src/lib.rs").unwrap().forbid_unsafe);
        assert!(
            !p.rules_for("crates/sim/src/oracle.rs")
                .unwrap()
                .forbid_unsafe
        );
    }

    #[test]
    fn crate_of_classification() {
        assert_eq!(crate_of("crates/sim/src/spec.rs"), Some("sim"));
        assert_eq!(crate_of("src/lib.rs"), Some("root"));
        assert_eq!(crate_of("README.md"), None);
    }
}
