//! `detlint` — the workspace's static determinism / hygiene gate.
//!
//! ```text
//! detlint --workspace [-D] [--json PATH] [--root DIR]
//! ```
//!
//! * `--workspace`   scan the whole workspace (the only mode; required
//!   so an argless invocation fails loudly instead of scanning nothing)
//! * `-D`, `--deny`  exit 1 when any finding survives (CI mode);
//!   without it findings are printed but the exit code stays 0
//! * `--json PATH`   also write the machine-readable findings summary
//! * `--root DIR`    workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` containing `[workspace]`)
//! * `--list-rules`  print the rule catalogue and exit
//!
//! Exit codes: 0 clean (or findings without `-D`), 1 findings under
//! `-D`, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use consistency_lint::{rules::RULE_IDS, scan_workspace, Policy};

struct Args {
    workspace: bool,
    deny: bool,
    json: Option<PathBuf>,
    root: Option<PathBuf>,
    list_rules: bool,
}

const USAGE: &str =
    "usage: detlint --workspace [-D|--deny] [--json PATH] [--root DIR] [--list-rules]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        deny: false,
        json: None,
        root: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "-D" | "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--json" => {
                let p = it
                    .next()
                    .ok_or_else(|| format!("--json needs a path\n{USAGE}"))?;
                args.json = Some(PathBuf::from(p));
            }
            "--root" => {
                let p = it
                    .next()
                    .ok_or_else(|| format!("--root needs a path\n{USAGE}"))?;
                args.root = Some(PathBuf::from(p));
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("current_dir: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".into());
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for r in RULE_IDS {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }
    if !args.workspace {
        eprintln!("detlint: nothing to do\n{USAGE}");
        return ExitCode::from(2);
    }
    let root = match args.root.map_or_else(find_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match scan_workspace(&root, &Policy::workspace_default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        println!("{}\n", f.render());
    }
    println!(
        "detlint: {} finding(s) across {} file(s), {} waiver(s) honored",
        report.findings.len(),
        report.files_scanned,
        report.waivers_honored
    );
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("detlint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if args.deny && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
