//! Findings and their two renderings: rustc-style human diagnostics
//! and a machine-readable JSON summary (hand-emitted, same in-tree
//! discipline as `consistency_bench::experiment::to_json`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One lint finding, anchored to a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (e.g. `panic-unwrap`).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line (0 for whole-file findings).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Constructs a finding. `rule` must be a static rule id so the
    /// JSON layer can group without allocation games.
    #[must_use]
    pub fn new(rule: &'static str, path: &str, line: u32, col: u32, message: String) -> Self {
        Finding {
            rule,
            path: path.to_string(),
            line,
            col,
            message,
        }
    }

    /// Renders one finding in rustc style:
    ///
    /// ```text
    /// error[panic-unwrap]: `.unwrap()` in non-test library code
    ///   --> crates/sim/src/spec.rs:569:14
    /// ```
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "error[{}]: {}", self.rule, self.message);
        if self.line > 0 {
            let _ = write!(s, "  --> {}:{}:{}", self.path, self.line, self.col);
        } else {
            let _ = write!(s, "  --> {}", self.path);
        }
        s
    }
}

/// The outcome of a workspace scan.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// All surviving (un-waived) findings, in scan order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files tokenised.
    pub files_scanned: usize,
    /// Number of waiver rules that suppressed a finding.
    pub waivers_honored: usize,
}

impl ScanReport {
    /// True when the scan produced no findings.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Per-rule finding counts, sorted by rule id.
    #[must_use]
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for f in &self.findings {
            *m.entry(f.rule).or_insert(0) += 1;
        }
        m
    }

    /// The machine-readable JSON summary written by `detlint --json`
    /// and uploaded as a CI artifact.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"tool\": \"detlint\",");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"waivers_honored\": {},", self.waivers_honored);
        let _ = writeln!(s, "  \"finding_count\": {},", self.findings.len());
        let _ = writeln!(s, "  \"counts_by_rule\": {{");
        let counts = self.counts();
        for (i, (rule, n)) in counts.iter().enumerate() {
            let comma = if i + 1 < counts.len() { "," } else { "" };
            let _ = writeln!(s, "    \"{rule}\": {n}{comma}");
        }
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let comma = if i + 1 < self.findings.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{ \"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\" }}{comma}",
                escape(f.rule),
                escape(&f.path),
                f.line,
                f.col,
                escape(&f.message)
            );
        }
        let _ = writeln!(s, "  ]");
        s.push('}');
        s.push('\n');
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_rule_and_position() {
        let f = Finding::new("panic-unwrap", "crates/sim/src/a.rs", 12, 5, "msg".into());
        let r = f.render();
        assert!(r.contains("error[panic-unwrap]: msg"));
        assert!(r.contains("crates/sim/src/a.rs:12:5"));
    }

    #[test]
    fn json_escapes_quotes_and_counts_rules() {
        let mut rep = ScanReport::default();
        rep.findings.push(Finding::new(
            "det-collections",
            "a.rs",
            1,
            1,
            "uses \"HashMap\"".into(),
        ));
        rep.findings.push(Finding::new(
            "det-collections",
            "b.rs",
            2,
            2,
            "again".into(),
        ));
        let j = rep.to_json();
        assert!(j.contains("\\\"HashMap\\\""));
        assert!(j.contains("\"det-collections\": 2"));
        assert!(j.contains("\"finding_count\": 2"));
    }
}
