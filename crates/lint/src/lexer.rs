//! A hand-rolled token-level lexer for Rust source, in the same
//! in-tree-parser discipline as `nakamoto_sim::spec`: no external
//! crates, no syntax tree — just a faithful token stream with enough
//! structure for the lint rules to match on.
//!
//! The lexer's one job is to never mistake *text* for *code*: a
//! `HashMap` inside a nested block comment, an `unwrap()` inside a raw
//! string, or a `'h'` char literal must not produce tokens, while
//! lifetimes (`'a`), numeric literals with range dots (`0..n`), and
//! `r#"…"#` raw strings with any number of hashes must all lex through
//! without desynchronising the stream. Comments are not discarded:
//! they are collected separately so the waiver layer can read
//! `// detlint: allow(…)` directives.

/// The coarse classification the rule layer matches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `unwrap`, `r#raw_id`).
    Ident,
    /// A single punctuation character (`.`, `[`, `!`, …). Multi-char
    /// operators appear as consecutive `Punct` tokens; rules that need
    /// `..` or `::` look at adjacency.
    Punct,
    /// A literal: string, raw string, byte string, char, or number.
    /// The payload text is *not* re-scanned by any rule.
    Literal,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The token text (for `Punct`, exactly one character).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Tok {
    /// True if this token is the given punctuation character.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(ch as u8))
    }

    /// True if this token is an identifier with exactly the given name.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// A comment, preserved for the waiver layer.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text *after* the `//` / `/*` marker (closing `*/`
    /// excluded for block comments).
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// True when no code token precedes the comment on its line, i.e.
    /// the comment owns the line (a waiver there applies to the next
    /// code line rather than to its own).
    pub own_line: bool,
    /// True for `/* … */` block comments (which may not carry waivers).
    pub block: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct SourceFile {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl SourceFile {
    /// The first code-token line strictly after `line`, if any — where
    /// an own-line waiver comment attaches.
    #[must_use]
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.tokens.iter().map(|t| t.line).find(|&l| l > line)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. The lexer is total: any input
/// produces a stream (unterminated strings/comments simply run to end
/// of file), so the rule layer never has to handle a parse abort.
#[must_use]
pub fn lex(src: &str) -> SourceFile {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    i: usize,
    line: u32,
    col: u32,
    /// Whether a code token has been emitted on the current line
    /// (drives `Comment::own_line`).
    line_has_code: bool,
    out: SourceFile,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            src,
            i: 0,
            line: 1,
            col: 1,
            line_has_code: false,
            out: SourceFile::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes one character, maintaining line/column counters.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.line_has_code = false;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.line_has_code = true;
        self.out.tokens.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> SourceFile {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                'r' | 'b' if self.starts_string_prefix() => self.prefixed_literal(line, col),
                c if is_ident_start(c) => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                '"' => {
                    self.bump();
                    self.string_body(line, col);
                }
                '\'' => self.quote(line, col),
                _ => {
                    self.bump();
                    self.push_tok(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    /// True when the cursor sits on a raw/byte string prefix (`r"`,
    /// `r#`, `b"`, `b'`, `br"`, `br#`) rather than a plain identifier.
    /// `r#ident` (a raw identifier, hash NOT followed by `"` or more
    /// hashes then `"`) is excluded by checking what follows the hashes.
    fn starts_string_prefix(&self) -> bool {
        let (mut j, byte) = match self.peek(0) {
            Some('b') => {
                if matches!(self.peek(1), Some('"') | Some('\'')) {
                    return true;
                }
                if self.peek(1) == Some('r') {
                    (2, true)
                } else {
                    return false;
                }
            }
            Some('r') => (1, false),
            _ => return false,
        };
        let _ = byte;
        // After `r` / `br`: zero or more `#` then `"` means raw string.
        let mut hashes = 0usize;
        while self.peek(j) == Some('#') {
            j += 1;
            hashes += 1;
        }
        // `r#ident` is a raw identifier, not a string — it has exactly
        // one hash and an identifier char after it; any hashes followed
        // by `"` is a raw string.
        self.peek(j) == Some('"') && (hashes > 0 || self.peek(j).is_some())
    }

    fn prefixed_literal(&mut self, line: u32, col: u32) {
        // Consume the prefix letters.
        if self.peek(0) == Some('b') {
            self.bump();
            match self.peek(0) {
                Some('"') => {
                    self.bump();
                    self.string_body(line, col);
                    return;
                }
                Some('\'') => {
                    self.bump();
                    self.char_body(line, col);
                    return;
                }
                Some('r') => {
                    self.bump();
                }
                _ => unreachable_prefix(),
            }
        } else {
            self.bump(); // the `r`
        }
        // Raw string: count hashes, expect `"`, then scan for the
        // closing `"` followed by the same number of hashes.
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes {
                    if self.peek(0) == Some('#') {
                        self.bump();
                        seen += 1;
                    } else {
                        // Not the terminator: the quote and hashes were
                        // literal content.
                        text.push('"');
                        for _ in 0..seen {
                            text.push('#');
                        }
                        continue 'outer;
                    }
                }
                break;
            }
            text.push(c);
        }
        self.push_tok(TokKind::Literal, text, line, col);
    }

    /// Body of a `"…"` string, opening quote already consumed.
    fn string_body(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                '"' => break,
                c => text.push(c),
            }
        }
        self.push_tok(TokKind::Literal, text, line, col);
    }

    /// Body of a `'…'` char literal, opening quote already consumed.
    fn char_body(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                '\'' => break,
                c => text.push(c),
            }
        }
        self.push_tok(TokKind::Literal, text, line, col);
    }

    /// A `'` is either a char literal or a lifetime/label. The
    /// discriminator: `'x'` (closing quote right after one scalar) is a
    /// char; `'ident` with no closing quote is a lifetime; an escape
    /// (`'\n'`) is always a char.
    fn quote(&mut self, line: u32, col: u32) {
        self.bump(); // the opening quote
        match self.peek(0) {
            Some('\\') => self.char_body(line, col),
            Some(c) if is_ident_start(c) => {
                if self.peek(1) == Some('\'') {
                    self.char_body(line, col);
                } else {
                    // Lifetime or loop label: consume the identifier.
                    let mut name = String::from("'");
                    while let Some(c) = self.peek(0) {
                        if is_ident_continue(c) {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push_tok(TokKind::Lifetime, name, line, col);
                }
            }
            // Punctuation char literal, e.g. `'('` or `'"'`.
            Some(_) => self.char_body(line, col),
            None => {}
        }
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push_tok(TokKind::Ident, text, line, col);
    }

    /// Numeric literal. Range dots must survive: `0..n` lexes as the
    /// number `0`, two `.` puncts, then `n` — a `.` is only part of the
    /// number when followed by a digit and no `.` was consumed yet.
    fn number(&mut self, line: u32, col: u32) {
        let start = self.i;
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                let prev = self.chars[self.i.saturating_sub(1)];
                self.bump();
                // Exponent sign: `1e-3` / `2.5E+7`.
                if (c == 'e' || c == 'E')
                    && !prev.is_alphabetic()
                    && matches!(self.peek(0), Some('+') | Some('-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    self.bump();
                }
            } else if c == '.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.push_tok(TokKind::Literal, text, line, col);
    }

    fn line_comment(&mut self, line: u32) {
        let own_line = !self.line_has_code;
        self.bump();
        self.bump(); // the two slashes
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.i].iter().collect();
        self.out.comments.push(Comment {
            text,
            line,
            own_line,
            block: false,
        });
    }

    /// Block comment with full nesting support: `/* /* inner */ still
    /// comment */` only closes when the depth returns to zero.
    fn block_comment(&mut self, line: u32) {
        let own_line = !self.line_has_code;
        self.bump();
        self.bump(); // `/*`
        let start = self.i;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let end = self.i.min(self.chars.len()).saturating_sub(2).max(start);
        let text: String = self.chars[start..end].iter().collect();
        self.out.comments.push(Comment {
            text,
            line,
            own_line,
            block: true,
        });
        let _ = self.src;
    }
}

/// `prefixed_literal` is only entered after `starts_string_prefix`
/// vetted the shape, so the `b`-arm fallthrough cannot occur; kept as
/// a named function so the invariant is searchable.
fn unreachable_prefix() {
    debug_assert!(false, "string prefix vetted by starts_string_prefix");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_string_contents_produce_no_tokens() {
        let src = r##"let x = r#"foo.unwrap() HashMap"#; let y = 1;"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"y".to_string()));
    }

    #[test]
    fn raw_string_with_more_hashes_than_terminator_candidates() {
        let src = r###"let s = r##"a "# b"## ; after"###;
        let f = lex(src);
        let lit: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .collect();
        assert_eq!(lit[0].text, r##"a "# b"##);
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn nested_block_comment_is_one_comment() {
        let src = "/* outer /* HashMap */ still */ fn f() {}";
        let f = lex(src);
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains("HashMap"));
        assert!(
            !f.tokens.iter().any(|t| t.is_ident("HashMap")),
            "comment text leaked into tokens"
        );
        assert!(f.tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn lifetimes_do_not_eat_following_code() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { x }";
        let f = lex(src);
        let lifetimes: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        assert!(f.tokens.iter().any(|t| t.is_ident("str")));
    }

    #[test]
    fn char_literals_including_escapes_and_punctuation() {
        let src = r"let a = 'x'; let b = '\n'; let c = '\''; let d = '('; let e = '\u{41}';";
        let f = lex(src);
        assert_eq!(
            f.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            0
        );
        // All five let-bindings survive.
        assert_eq!(f.tokens.iter().filter(|t| t.is_ident("let")).count(), 5);
    }

    #[test]
    fn range_dots_survive_number_lexing() {
        let f = lex("for i in 0..10 { v[i..=j]; }");
        let dots = f.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 4, "0..10 and i..=j contribute two dots each");
    }

    #[test]
    fn float_exponent_forms() {
        let f = lex("let x = 1.5e-3 + 2E+7 + 0xfe + 1_000.0;");
        assert_eq!(
            f.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count(),
            4
        );
    }

    #[test]
    fn comment_own_line_flag() {
        let f = lex("// alone\nlet x = 1; // trailing\n");
        assert!(f.comments[0].own_line);
        assert!(!f.comments[1].own_line);
    }

    #[test]
    fn unterminated_constructs_do_not_loop() {
        let _ = lex("/* never closed");
        let _ = lex("let s = \"never closed");
        let _ = lex("let s = r#\"never closed");
        let _ = lex("let c = '");
    }

    #[test]
    fn doc_comments_are_comments() {
        let f = lex("/// calls .unwrap()\n//! and .expect()\nfn g() {}");
        assert_eq!(f.comments.len(), 2);
        assert!(!f.tokens.iter().any(|t| t.is_ident("unwrap")));
    }
}
