//! Negative: full-range reborrows are infallible, `.get` is checked,
//! and brackets that are not index expressions do not count.
pub fn views(xs: &[u32], n: usize) -> (&[u32], Option<&[u32]>, [u8; 2]) {
    let all = &xs[..];
    let checked = xs.get(..n);
    let literal = [0u8, 1u8];
    let _built = vec![1u32, 2];
    (all, checked, literal)
}
