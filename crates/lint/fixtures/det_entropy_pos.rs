//! Positive: ambient entropy / environment reads.
pub fn roll() -> u64 {
    let _threads = std::env::var("RAYON_NUM_THREADS");
    thread_rng()
}

fn thread_rng() -> u64 {
    0
}
