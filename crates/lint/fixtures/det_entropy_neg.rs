//! Negative: seeded generators and near-miss identifiers.
pub fn roll(seed: u64) -> u64 {
    let environment = seed; // `environment` is not `env::var`
    let var = environment.wrapping_mul(3); // bare `var` without `env::`
    var
}
