//! Positive: malformed waivers.
pub fn first(xs: &[u32]) -> u32 {
    // detlint: allow(panic-unwrap)
    let a = *xs.first().unwrap();
    let b = *xs.last().unwrap(); // detlint: allow(no-such-rule) -- the rule name is wrong
    a + b
}
