//! Negative: `expect`-named helpers are not `.expect()` calls.
pub struct Cursor {
    pos: usize,
}

impl Cursor {
    pub fn expect_char(&mut self, _ch: char) -> Option<()> {
        self.pos += 1;
        Some(())
    }
}

pub fn drive(c: &mut Cursor) -> Option<()> {
    c.expect_char('=')
}

#[cfg(test)]
mod tests {
    #[test]
    fn expect_is_fine_in_tests() {
        [1u32].first().expect("non-empty");
    }
}
