//! Positive: uncompensated float folds.
pub fn total(xs: &[f64]) -> f64 {
    let direct: f64 = xs.iter().sum();
    let turbo = xs.iter().sum::<f64>();
    let prod = xs.iter().product::<f32>() as f64;
    direct + turbo + prod
}
