pub struct Spec {
    pub experiment: String,
    pub trials: u64,
}
