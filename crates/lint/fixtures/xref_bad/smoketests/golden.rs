#[test]
fn runs_nothing() {}
