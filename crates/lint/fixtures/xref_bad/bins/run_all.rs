fn main() {}
