#[test]
fn something_else() {}
