//! Positive: panicking macros in library code.
pub fn decode(index: u8) -> u8 {
    match index {
        0 => 0,
        1 => unreachable!("caller filtered"),
        2 => todo!(),
        _ => panic!("index {index} out of range"),
    }
}
