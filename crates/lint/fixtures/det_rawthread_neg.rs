//! Negative fixture: thread-flavoured text that is not a raw spawn.
//! Doc prose naming `std::thread::scope` must not fire, nor comments,
//! strings, or unrelated paths that merely contain the ident.

/// The executor replaced every `thread::spawn` call site.
pub fn pool_width(thread: usize) -> usize {
    // one pool per process owns every thread::scope in the workspace
    let spawn = thread + 1;
    let doc = "thread::scope(|s| s.spawn(...))";
    doc.len() + spawn
}

pub mod thread {
    pub fn sleep_rounds() -> u64 {
        0
    }
}

pub fn not_a_spawn() -> u64 {
    thread::sleep_rounds()
}
