//! Negative: `panic` as a plain identifier, and macros under test.
pub fn stats(panic: u64) -> u64 {
    let panic_count = panic + 1; // ident, no `!`
    panic_count
}

#[cfg(test)]
mod tests {
    #[test]
    #[should_panic]
    fn panics_are_fine_in_tests() {
        panic!("expected");
    }
}
