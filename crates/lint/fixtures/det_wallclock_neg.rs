//! Negative: durations are plain data, not clock reads.
use std::time::Duration;

pub fn tick() -> Duration {
    Duration::from_millis(1)
}
