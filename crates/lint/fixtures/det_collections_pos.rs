//! Positive: seed-order-dependent collections in simulation code.
use std::collections::HashMap;

pub fn index() -> HashMap<u32, u32> {
    HashMap::new()
}

pub fn dedup(xs: &[u32]) -> std::collections::HashSet<u32> {
    xs.iter().copied().collect()
}
