//! Negative: ordered collections, plus `HashMap` mentioned only in
//! text the lexer must not confuse with code.
use std::collections::BTreeMap;

// A comment naming HashMap is not a use of HashMap.
pub fn index() -> BTreeMap<u32, u32> {
    let _doc = "HashMap has seed-dependent order";
    let _raw = r##"so does HashSet"##;
    BTreeMap::new()
}
