//! Negative: violations suppressed by justified waivers, both trailing
//! and own-line.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // detlint: allow(panic-unwrap) -- callers pass a non-empty slice by contract
}

pub fn tail(xs: &[u32]) -> &[u32] {
    // detlint: allow(panic-slice-index) -- callers pass a non-empty slice by contract
    &xs[1..]
}
