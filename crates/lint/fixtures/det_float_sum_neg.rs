//! Negative: integer folds, even when the statement later casts the
//! result to float.
pub fn mean(xs: &[u64]) -> f64 {
    let n = xs.len() as f64;
    xs.iter().sum::<u64>() as f64 / n
}

pub fn count(xs: &[u64]) -> u64 {
    xs.iter().sum()
}
