//! Positive: a waiver with nothing to suppress is itself an error.
pub fn clean() -> u32 {
    // detlint: allow(panic-unwrap) -- stale justification
    41 + 1
}
