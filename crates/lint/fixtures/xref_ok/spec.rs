pub struct Spec {
    pub experiment: String,
    pub trials: u64,
    pub seed: u64,
}
