#[test]
fn run_all_entry_emits_json() {}
