#[test]
fn runs_demo_spec() {
    let _ = "specs/demo.toml";
}
