fn main() {}
