#![forbid(unsafe_code)]
//! Negative: the crate root asserts the attribute.
pub fn noop() {}
