//! Positive: bounded range indexing can panic on a bad bound.
pub fn windows(xs: &[u32], n: usize) -> (&[u32], &[u32], u32) {
    let head = &xs[..n];
    let tail = &xs[1..];
    let mid = xs[1..=n].len() as u32;
    (head, tail, mid)
}
