//! Negative: unwrap only in test code, text, or as a different
//! identifier.
pub fn first(xs: &[u32]) -> u32 {
    // .unwrap() in a comment is not a call.
    let _doc = r#"xs.first().unwrap() would panic here"#;
    xs.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let xs = [1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
