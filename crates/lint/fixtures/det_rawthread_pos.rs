//! Positive fixture: raw thread creation outside the executor module.

pub fn scoped_fan_out(work: &[u64]) -> u64 {
    let mut total = 0;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            total = work.iter().sum::<u64>();
        });
    });
    total
}

pub fn detached_worker() {
    let handle = std::thread::spawn(|| 1 + 1);
    drop(handle);
}

pub fn named_worker() {
    let builder = std::thread::Builder::new();
    drop(builder);
}
