//! Negative: text that looks like violations must never fire — the
//! lexer has to see strings, raw strings, chars and nested comments.
pub fn stress<'a>(s: &'a str) -> (&'a str, char, String) {
    /* outer HashMap /* nested HashSet */ still HashMap */
    let raw = r##"xs.unwrap() and ys.expect("boom") and panic!()"##;
    let ch = '"';
    let esc = '\'';
    let quoted = format!("Instant::now() {raw} {ch} {esc}");
    (s, 'x', quoted)
}
