#![forbid(unsafe_code)]
//! A vendored, API-compatible subset of the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace is offline, so the real
//! crates-io criterion cannot be fetched. This shim implements exactly the
//! surface the `crates/bench/benches/*` files use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], [`Throughput`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! warm-up + timed-batch measurement loop, so `cargo bench` still produces
//! meaningful per-iteration timings and `cargo bench --no-run` guards the
//! benches against bit-rot. Swapping back to the real crate is a one-line
//! change in the workspace manifest.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement settings plus the entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        run_one(id, sample_size, measurement_time, None, f);
        self
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples collected for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Records the amount of work per iteration so results can be reported
    /// as throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a parameterised benchmark, passing `input` through to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_one(
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Marks the group as complete.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group, usually `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id with both a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// A benchmark id carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// The amount of work one benchmark iteration processes.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    mean_ns: f64,
}

impl Bencher {
    /// Measures `routine` by running warm-up iterations followed by timed
    /// batches, recording the mean wall-clock time per iteration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and batch-size calibration: grow the batch until it takes
        // at least ~1ms so Instant overhead is amortised.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }

        let deadline = Instant::now() + self.measurement_time;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn run_one<F>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        measurement_time,
        mean_ns: 0.0,
    };
    f(&mut bencher);
    let per_iter = bencher.mean_ns;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            let rate = n as f64 * 1e9 / per_iter;
            println!("{id:<60} {per_iter:>14.1} ns/iter {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            let rate = n as f64 * 1e9 / per_iter;
            println!("{id:<60} {per_iter:>14.1} ns/iter {rate:>14.0} B/s");
        }
        _ => println!("{id:<60} {per_iter:>14.1} ns/iter"),
    }
}

/// Declares a function that runs the listed benchmark targets with a
/// default [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs this group's benchmark targets.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares a `main` that runs the listed [`criterion_group!`] functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            sample_size: 5,
            measurement_time: Duration::from_millis(10),
        };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5).throughput(Throughput::Elements(1));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 10).label, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
