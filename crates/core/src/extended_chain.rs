//! The concatenation chain `C_{F‖P}` of Section V-A: the state
//! `F_{t−Δ−1} S_{t−Δ} … S_t` whose `HN^{≥Δ}‖H₁N^Δ` vertex is a
//! *convergence opportunity*.
//!
//! Key results implemented here:
//!
//! * Eq. (40): `π_{F‖P}(f s⁽¹⁾…s^{(Δ+1)}) = π_F(f)·Π P[s⁽ⁱ⁾]`.
//! * Eq. (44): `π_{F‖P}(HN^{≥Δ}‖H₁N^Δ) = ᾱ^Δ·α₁·ᾱ^Δ = ᾱ^{2Δ}α₁`.
//! * Proposition 1: `‖φ‖_π ≤ 1/√(min π_{F‖P})` with
//!   `min π_{F‖P} = min π_F · (min{p^{µn}, (1−p)^{µn}})^{Δ+1}`.
//! * Inequality (47): the Chung-et-al. lower-tail bound on
//!   `C(t₀, t₀+T−1)`.

use crate::params::ProtocolParams;
use crate::suffix_chain;
use crate::Result;
use markov::concentration::{ln_pi_norm_worst_case, WalkBoundParams};

/// Eq. (44) in log space: `ln π_{F‖P}(HN^{≥Δ}‖H₁N^Δ) = 2Δ·ln ᾱ + ln α₁`.
///
/// This equals [`crate::theorem1::ln_convergence_rate`]; re-derived here
/// through the chain decomposition (Eq. 40) as a consistency check:
/// `π_F(HN^{≥Δ})·P[H₁]·P[N]^Δ`.
pub fn ln_convergence_state_probability(params: &ProtocolParams) -> Result<f64> {
    let ln_pi_f = suffix_chain::ln_long_gap_probability(params.alpha(), params.delta())?;
    let ln_h1 = params.ln_alpha1();
    let ln_n_run = params.delta() as f64 * params.ln_alpha_bar();
    Ok(ln_pi_f + ln_h1 + ln_n_run)
}

/// Proposition 1's minimum detailed-state probability in log space:
/// `ln min_{s} P[s] = min{µn·ln p, µn·ln(1−p)}` (the rarest detailed
/// state is `H_{µn}` — all honest miners succeed — or `N`, whichever is
/// smaller).
#[must_use]
pub fn ln_min_detailed_state_probability(params: &ProtocolParams) -> f64 {
    let mu_n = params.mu_n();
    (mu_n * params.p().ln()).min(mu_n * (-params.p()).ln_1p())
}

/// Proposition 1's `ln min π_{F‖P}`:
/// `ln min π_F + (Δ+1)·ln min P[s]`.
///
/// # Errors
///
/// Propagates parameter validation from the suffix-chain closed form.
pub fn ln_min_pi(params: &ProtocolParams) -> Result<f64> {
    let ln_min_f = suffix_chain::ln_min_stationary(params.alpha(), params.delta())?;
    Ok(ln_min_f + (params.delta() as f64 + 1.0) * ln_min_detailed_state_probability(params))
}

/// Proposition 1's bound `ln ‖φ‖_π ≤ −½·ln min π_{F‖P}`.
///
/// # Errors
///
/// Propagates parameter validation.
pub fn ln_phi_pi_norm_bound(params: &ProtocolParams) -> Result<f64> {
    Ok(ln_pi_norm_worst_case(ln_min_pi(params)?))
}

/// A conservative surrogate for the 1/8-mixing time `τ(1/8, ᾱ, Δ)` of
/// `C_{F‖P}`.
///
/// The chain `C_{F‖P}` appends a sliding window of `Δ+1` detailed states
/// to `C_F`, so its mixing time is at most `τ_F(1/8) + Δ + 1` (the
/// window refreshes completely in `Δ+1` steps once `C_F` has mixed).
/// For `C_F` itself we use the coupling bound: from any two starts the
/// chains coalesce at the first `H` round followed by a common suffix,
/// giving `τ_F(1/8) ≤ ⌈ln 8 / α⌉ + 2Δ`.
#[must_use]
pub fn mixing_time_surrogate(params: &ProtocolParams) -> u64 {
    let alpha = params.alpha();
    let tau_f = (8f64.ln() / alpha).ceil() as u64 + 2 * params.delta();
    tau_f + params.delta() + 1
}

/// Inequality (47): the Chung-et-al. lower-tail bound on the number of
/// convergence opportunities over `T` rounds, in natural log:
///
/// `ln P[C ≤ (1−δ₂)·E C] ≤ ln c + ln ‖φ‖_π − δ₂²·T·ᾱ^{2Δ}α₁/(72τ)`.
///
/// `tau` overrides the mixing-time surrogate when the caller has a
/// better (e.g. numerically computed) value.
///
/// # Errors
///
/// Propagates parameter validation; rejects `δ₂ ∉ (0,1)`.
pub fn ln_lower_tail_bound(
    params: &ProtocolParams,
    t: u64,
    delta2: f64,
    tau: Option<u64>,
) -> Result<f64> {
    if !(delta2 > 0.0 && delta2 < 1.0) {
        return Err(crate::Error::invalid(
            "delta2",
            format!("Ineq. (47) needs 0 < δ₂ < 1, got {delta2}"),
        ));
    }
    let tau = tau.unwrap_or_else(|| mixing_time_surrogate(params));
    let ln_rate = crate::theorem1::ln_convergence_rate(params);
    let ln_phi = ln_phi_pi_norm_bound(params)?;
    // Mirror WalkBoundParams::ln_lower_tail but keep the stationary mean
    // in log space (it can underflow f64 at huge Δ).
    let exponent = -delta2 * delta2 * ln_rate.exp() * t as f64 / (72.0 * tau as f64);
    // When the rate underflows, exponent is −0.0 and the bound is
    // trivially ≥ 1 — still correct, just vacuous.
    Ok(ln_phi + exponent)
}

/// Rounds `T` needed for Ineq. (47)'s bound to drop below `target`,
/// using the mixing-time surrogate; `None` when the rate underflows so
/// badly that no finite `T` fits in `u64`.
#[must_use]
pub fn rounds_for_tail_target(params: &ProtocolParams, delta2: f64, target_ln: f64) -> Option<u64> {
    let tau = mixing_time_surrogate(params);
    let ln_rate = crate::theorem1::ln_convergence_rate(params);
    let rate = ln_rate.exp();
    if rate <= 0.0 {
        return None;
    }
    let ln_phi = ln_phi_pi_norm_bound(params).ok()?;
    let needed = (ln_phi - target_ln) * 72.0 * tau as f64 / (delta2 * delta2 * rate);
    if needed > u64::MAX as f64 {
        None
    } else {
        Some(needed.ceil().max(1.0) as u64)
    }
}

/// Builds the Ineq.-(47) parameters as a reusable
/// [`WalkBoundParams`] with an explicit `‖φ‖_π` supplied by the caller
/// (e.g. `1.0` for a stationary start). Proposition 1's worst-case
/// norm is intentionally *not* defaulted here: `min π_{F‖P}` involves
/// `p^{µn(Δ+1)}`, which overflows `exp` for essentially all parameters
/// — use [`ln_lower_tail_bound`] for the worst-case-start bound.
///
/// # Errors
///
/// Propagates parameter validation; fails if the stationary mean
/// underflows to zero (use the log-space functions then).
pub fn walk_bound_params(
    params: &ProtocolParams,
    t: u64,
    phi_pi_norm: f64,
) -> Result<WalkBoundParams> {
    let mean = crate::theorem1::ln_convergence_rate(params).exp();
    if mean == 0.0 {
        return Err(crate::Error::invalid(
            "params",
            "stationary mean underflows f64; use ln_lower_tail_bound",
        ));
    }
    Ok(WalkBoundParams {
        steps: t,
        stationary_mean: mean,
        mixing_time_eighth: mixing_time_surrogate(params),
        phi_pi_norm,
    })
}

/// Explicit construction of `C_{F‖P}` for *tiny* parameters, used to
/// verify Eq. (40) / Appendix J mechanically: the state space is
/// `Suffix-Set × Detailed-State-Set^{Δ+1}` with detailed states
/// `{N, H₁, …, H_{µn}}`, so it only fits in memory for small `µn` and
/// `Δ` — exactly what a numerical proof of the product form needs.
pub mod explicit {
    use crate::{Error, Result};
    use markov::chain::{MarkovChain, MarkovChainBuilder};
    use nakamoto_sim::events::SuffixState;
    use probability::binomial::Binomial;

    /// The explicitly enumerated chain plus its state decoding.
    #[derive(Debug, Clone)]
    pub struct ExplicitChain {
        /// The transition structure.
        pub chain: MarkovChain,
        /// Number of suffix states (`2Δ+1`).
        pub n_suffix: usize,
        /// Number of detailed states (`µn + 1`).
        pub n_detail: usize,
        /// Window length (`Δ + 1`).
        pub window: usize,
        /// Detailed-state probabilities `P[s]` (index 0 = N, `h` = `H_h`).
        pub detail_probs: Vec<f64>,
        /// Δ used to build the chain.
        pub delta: u64,
    }

    impl ExplicitChain {
        /// Flat index of `(suffix, window of detailed states)`.
        #[must_use]
        pub fn encode(&self, suffix: usize, window: &[usize]) -> usize {
            assert_eq!(window.len(), self.window);
            let mut idx = suffix;
            for &d in window {
                idx = idx * self.n_detail + d;
            }
            idx
        }

        /// Inverse of [`ExplicitChain::encode`].
        #[must_use]
        pub fn decode(&self, mut index: usize) -> (usize, Vec<usize>) {
            let mut window = vec![0usize; self.window];
            for slot in (0..self.window).rev() {
                window[slot] = index % self.n_detail;
                index /= self.n_detail;
            }
            (index, window)
        }

        /// The product-form stationary probability of Eq. (40):
        /// `π_F(f)·Π P[s⁽ⁱ⁾]`.
        #[must_use]
        pub fn product_form(&self, pi_f: &[f64], index: usize) -> f64 {
            let (suffix, window) = self.decode(index);
            let mut p = pi_f[suffix];
            for &d in &window {
                p *= self.detail_probs[d];
            }
            p
        }

        /// Flat index of the convergence-opportunity state
        /// `HN^{≥Δ}‖H₁N^Δ`.
        #[must_use]
        pub fn convergence_state(&self) -> usize {
            let suffix = SuffixState::LongGap.index(self.delta);
            let mut window = vec![0usize; self.window];
            window[0] = 1; // H₁ at the front of the window, then N^Δ.
            self.encode(suffix, &window)
        }
    }

    /// Builds `C_{F‖P}` for an integer honest population `mu_n`,
    /// hardness `p` and delay `delta`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if the state space exceeds
    /// 100 000 states or a parameter is out of range.
    pub fn build(mu_n: u64, p: f64, delta: u64) -> Result<ExplicitChain> {
        if delta == 0 {
            return Err(Error::invalid("delta", "Δ must be at least 1"));
        }
        let n_suffix = SuffixState::count(delta);
        let n_detail = mu_n as usize + 1;
        let window = delta as usize + 1;
        let n_states = n_suffix
            .checked_mul(n_detail.checked_pow(window as u32).ok_or_else(too_big)?)
            .ok_or_else(too_big)?;
        if n_states > 100_000 {
            return Err(too_big());
        }
        let binom = Binomial::new(mu_n, p).map_err(Error::from)?;
        let detail_probs: Vec<f64> = (0..=mu_n).map(|h| binom.pmf(h)).collect();

        let proto = ExplicitChain {
            chain: MarkovChain::from_rows(vec![vec![1.0]]).expect("placeholder"), // detlint: allow(panic-expect) -- a literal 1x1 row [1.0] is always row-stochastic
            n_suffix,
            n_detail,
            window,
            detail_probs: detail_probs.clone(),
            delta,
        };

        let mut b = MarkovChainBuilder::new(n_states);
        for state in 0..n_states {
            let (suffix, win) = proto.decode(state);
            // The suffix absorbs the oldest window entry.
            let absorbed_is_h = win[0] >= 1;
            let new_suffix = step_suffix(suffix, absorbed_is_h, delta);
            for (new_detail, &prob) in detail_probs.iter().enumerate() {
                if prob == 0.0 {
                    continue;
                }
                let mut new_win = Vec::with_capacity(window);
                new_win.extend_from_slice(&win[1..]); // detlint: allow(panic-slice-index) -- decode always yields exactly `window` >= 1 entries
                new_win.push(new_detail);
                let target = proto.encode(new_suffix, &new_win);
                b.add(state, target, prob).map_err(Error::from)?;
            }
        }
        let chain = b.build().map_err(Error::from)?;
        Ok(ExplicitChain { chain, ..proto })
    }

    fn too_big() -> Error {
        Error::invalid(
            "delta",
            "explicit C_{F‖P} limited to ≤ 1e5 states; use the product form beyond",
        )
    }

    /// One step of the `C_F` transition given whether the absorbed
    /// round was `H` (mirrors `nakamoto_sim::events::SuffixTracker`).
    fn step_suffix(suffix: usize, is_h: bool, delta: u64) -> usize {
        let s = SuffixState::from_index(suffix, delta);
        let next = match (s, is_h) {
            (SuffixState::RecentH, true) => SuffixState::RecentH,
            (SuffixState::RecentH, false) => {
                if delta >= 2 {
                    SuffixState::ShortGap(1)
                } else {
                    SuffixState::LongGap
                }
            }
            (SuffixState::ShortGap(_), true) => SuffixState::RecentH,
            (SuffixState::ShortGap(a), false) => {
                if a < delta - 1 {
                    SuffixState::ShortGap(a + 1)
                } else {
                    SuffixState::LongGap
                }
            }
            (SuffixState::LongGap, false) => SuffixState::LongGap,
            (SuffixState::LongGap, true) => SuffixState::AfterLongGap(0),
            (SuffixState::AfterLongGap(_), true) => SuffixState::RecentH,
            (SuffixState::AfterLongGap(b), false) => {
                if b < delta - 1 {
                    SuffixState::AfterLongGap(b + 1)
                } else {
                    SuffixState::LongGap
                }
            }
        };
        next.index(delta)
    }
}

#[cfg(test)]
mod explicit_tests {
    use super::explicit;
    use crate::suffix_chain;
    use markov::stationary::{stationarity_residual, stationary_gth};
    use markov::structure::is_ergodic;

    /// Appendix J, numerically: the stationary distribution of the
    /// explicitly built C_{F‖P} equals the product form of Eq. (40).
    #[test]
    fn eq_40_product_form_is_stationary() {
        // µn = 2, p = 0.2, Δ = 1 → 3·3² = 27 states.
        let (mu_n, p, delta) = (2u64, 0.2f64, 1u64);
        let ec = explicit::build(mu_n, p, delta).unwrap();
        assert!(is_ergodic(&ec.chain));
        let alpha = 1.0 - (1.0 - p).powi(mu_n as i32);
        let pi_f = suffix_chain::closed_form_stationary(alpha, delta).unwrap();
        let product: Vec<f64> = (0..ec.chain.n_states())
            .map(|s| ec.product_form(&pi_f, s))
            .collect();
        // Product form sums to 1 and is stationary for the chain.
        let total: f64 = product.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "Σ = {total}");
        assert!(
            stationarity_residual(&ec.chain, &product) < 1e-13,
            "residual {}",
            stationarity_residual(&ec.chain, &product)
        );
        // And matches the generic solver.
        let numeric = stationary_gth(&ec.chain).unwrap();
        for (a, b) in numeric.iter().zip(product.iter()) {
            assert!((a - b).abs() < 1e-11, "{a} vs {b}");
        }
    }

    /// Eq. (44) read directly off the explicit chain: the stationary
    /// mass of the HN^{≥Δ}‖H₁N^Δ vertex equals ᾱ^{2Δ}α₁.
    #[test]
    fn eq_44_on_explicit_chain() {
        let (mu_n, p, delta) = (3u64, 0.15f64, 2u64);
        let ec = explicit::build(mu_n, p, delta).unwrap();
        let numeric = stationary_gth(&ec.chain).unwrap();
        let conv = ec.convergence_state();
        let alpha_bar = (1.0 - p).powi(mu_n as i32);
        let alpha1 = mu_n as f64 * p * (1.0 - p).powi(mu_n as i32 - 1);
        let expected = alpha_bar.powi(2 * delta as i32) * alpha1;
        assert!(
            (numeric[conv] - expected).abs() < 1e-12,
            "π = {} vs ᾱ^{{2Δ}}α₁ = {expected}",
            numeric[conv]
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ec = explicit::build(2, 0.3, 1).unwrap();
        for s in 0..ec.chain.n_states() {
            let (suffix, window) = ec.decode(s);
            assert_eq!(ec.encode(suffix, &window), s);
        }
    }

    #[test]
    fn rejects_oversized_state_space() {
        assert!(explicit::build(50, 0.1, 4).is_err());
        assert!(explicit::build(2, 0.1, 0).is_err());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;

    fn small() -> ProtocolParams {
        ProtocolParams::new(100, 3, 1e-3, 0.2).unwrap()
    }

    #[test]
    fn eq_44_two_derivations_agree() {
        // Eq. (44) via the chain decomposition must equal Theorem 1's
        // direct ᾱ^{2Δ}α₁.
        for params in [
            small(),
            ProtocolParams::from_c(100_000, 10_000_000_000_000, 3.0, 0.3).unwrap(),
            ProtocolParams::new(1_000, 64, 1e-6, 0.45).unwrap(),
        ] {
            let via_chain = ln_convergence_state_probability(&params).unwrap();
            let direct = crate::theorem1::ln_convergence_rate(&params);
            assert!(
                (via_chain - direct).abs() < 1e-9 * (1.0 + direct.abs()),
                "chain {via_chain} vs direct {direct}"
            );
        }
    }

    #[test]
    fn min_detailed_state_is_truly_minimal() {
        // Compare against the explicit detailed-state distribution at an
        // integer µn: P[H_h] = C(µn,h)p^h(1-p)^{µn-h} plus P[N].
        let params = small(); // µn = 80
        let mu_n = params.mu_n() as u64;
        let d = probability::binomial::Binomial::new(mu_n, params.p()).unwrap();
        let mut min_p = d.prob_zero(); // P[N] = P[X=0]
        for h in 1..=mu_n {
            let mass = d.pmf(h);
            if mass > 0.0 {
                min_p = min_p.min(mass);
            }
        }
        let ln_formula = ln_min_detailed_state_probability(&params);
        // Formula is a lower bound (p^{µn} ≤ rarest achievable mass).
        assert!(
            ln_formula <= min_p.ln() + 1e-9,
            "formula {ln_formula} vs empirical {}",
            min_p.ln()
        );
    }

    #[test]
    fn min_pi_below_convergence_state() {
        let params = small();
        let min_pi = ln_min_pi(&params).unwrap();
        let conv = ln_convergence_state_probability(&params).unwrap();
        assert!(min_pi <= conv, "min π must lower-bound every state");
    }

    #[test]
    fn phi_norm_bound_at_least_one() {
        let params = small();
        let ln_phi = ln_phi_pi_norm_bound(&params).unwrap();
        assert!(ln_phi >= 0.0, "‖φ‖_π ≥ 1 always");
    }

    #[test]
    fn tail_bound_decays_with_t() {
        let params = small();
        let b1 = ln_lower_tail_bound(&params, 100_000, 0.5, None).unwrap();
        let b2 = ln_lower_tail_bound(&params, 1_000_000, 0.5, None).unwrap();
        assert!(b2 < b1, "bound must tighten with T: {b1} vs {b2}");
    }

    #[test]
    fn tail_bound_respects_tau_override() {
        let params = small();
        let loose = ln_lower_tail_bound(&params, 500_000, 0.5, Some(10_000)).unwrap();
        let tight = ln_lower_tail_bound(&params, 500_000, 0.5, Some(10)).unwrap();
        assert!(tight < loose);
    }

    #[test]
    fn rounds_for_target_achieves_target() {
        let params = small();
        let target_ln = (1e-6f64).ln();
        let t = rounds_for_tail_target(&params, 0.5, target_ln).unwrap();
        let achieved = ln_lower_tail_bound(&params, t, 0.5, None).unwrap();
        assert!(
            achieved <= target_ln + 1e-6,
            "achieved {achieved} vs {target_ln}"
        );
    }

    #[test]
    fn walk_bound_params_roundtrip() {
        // With a stationary start (‖φ‖_π = 1) the struct's bound must
        // match the log-space formula minus the worst-case φ term.
        let params = small();
        let wb = walk_bound_params(&params, 250_000, 1.0).unwrap();
        wb.validate().unwrap();
        let via_struct = wb.ln_lower_tail(0.5).unwrap();
        let via_fn = ln_lower_tail_bound(&params, 250_000, 0.5, Some(wb.mixing_time_eighth))
            .unwrap()
            - ln_phi_pi_norm_bound(&params).unwrap();
        assert!(
            (via_struct - via_fn).abs() < 1e-9 * (1.0 + via_fn.abs()),
            "{via_struct} vs {via_fn}"
        );
    }

    #[test]
    fn walk_bound_params_rejects_underflow_regime() {
        let params = ProtocolParams::new(100_000, 10_000_000_000_000, 1e-12, 0.3).unwrap();
        assert!(walk_bound_params(&params, 100, 1.0).is_err());
        // But the log-space path still works.
        assert!(ln_lower_tail_bound(&params, 100, 0.5, None).is_ok());
    }

    #[test]
    fn delta2_validation() {
        let params = small();
        assert!(ln_lower_tail_bound(&params, 100, 0.0, None).is_err());
        assert!(ln_lower_tail_bound(&params, 100, 1.0, None).is_err());
    }

    #[test]
    fn mixing_surrogate_scales_with_delta_and_alpha() {
        let fast = ProtocolParams::new(100, 2, 1e-2, 0.2).unwrap();
        let slow = ProtocolParams::new(100, 2, 1e-5, 0.2).unwrap();
        assert!(mixing_time_surrogate(&slow) > mixing_time_surrogate(&fast));
        let small_d = ProtocolParams::new(100, 2, 1e-3, 0.2).unwrap();
        let big_d = ProtocolParams::new(100, 50, 1e-3, 0.2).unwrap();
        assert!(mixing_time_surrogate(&big_d) > mixing_time_surrogate(&small_d));
    }
}
