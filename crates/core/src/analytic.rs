//! The analytic entry point of the spec-driven experiment layer: maps
//! a simulator configuration (the `[base]` of an experiment spec) to
//! the paper's theorem-1/2/3 predictions, so every simulated cell can
//! carry its analytic bound alongside the empirical Wilson interval.
//!
//! The paper's central empirical claim is that the Monte-Carlo failure
//! rates respect the analytic consistency region; this module packages
//! the region's three descriptions — Theorem 1's margin
//! `ln(ᾱ^{2Δ}α₁) − ln(pνn)`, Theorem 2's neat bound `c > 2µ/ln(µ/ν)`,
//! and Theorem 3's split conditions — into one [`AnalyticBounds`]
//! record that the `experiment` harness attaches to each cell. For
//! rare-event cells it additionally exposes the race-analysis failure
//! scale ([`AnalyticBounds::race_failure_scale`]) and a
//! three-standard-error bound-vs-estimate verdict
//! ([`compare_to_bound`]) so splitting estimates can be judged against
//! the theory they probe.
//!
//! # Example
//!
//! ```
//! use consistency_core::analytic;
//! use nakamoto_sim::config::SimConfig;
//!
//! let cfg = SimConfig::from_c(100, 4, 3.0, 0.2, 7)?;
//! let bounds = analytic::for_sim_config(&cfg).expect("ν > 0");
//! assert!(bounds.theorem1_holds, "c = 3 at ν = 0.2 is consistent");
//! let (e_c, e_a) = bounds.expected_counts(10_000);
//! assert!(e_c > e_a, "more convergence opportunities than adversary blocks");
//! # Ok::<(), nakamoto_sim::config::ConfigError>(())
//! ```

use crate::catchup;
use crate::params::ProtocolParams;
use crate::{numax, pss, theorem1, theorem2, theorem3};
use nakamoto_sim::config::SimConfig;

/// Reference `(ε₁, ε₂)` used for the Theorem-3 split-condition check
/// (the same pair `lemma_audit` exercises); Theorem 3 holding at one
/// valid ε-pair is sufficient for consistency.
pub const THEOREM3_EPSILONS: (f64, f64) = (0.1, 0.1);

/// The paper's predictions for one parameter point, attached to every
/// simulated cell by the spec-driven `experiment` harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticBounds {
    /// The validated parameters the bounds were computed from.
    pub params: ProtocolParams,
    /// The paper's `c = 1/(pnΔ)`.
    pub c: f64,
    /// Theorem 1's log margin `ln(ᾱ^{2Δ}α₁) − ln(pνn)` (Ineq. 10).
    pub theorem1_ln_margin: f64,
    /// Whether Theorem 1 holds for *some* positive `δ₁` (margin > 0).
    pub theorem1_holds: bool,
    /// The largest admissible `δ₁`, when the margin is positive.
    pub theorem1_max_delta1: Option<f64>,
    /// Per-round convergence-opportunity rate `ᾱ^{2Δ}α₁` in log space
    /// (Eq. 44; may be far below `f64` range in linear space).
    pub ln_convergence_rate: f64,
    /// Per-round adversary block rate `pνn` (Eq. 27).
    pub adversary_rate: f64,
    /// Theorem 2's neat bound `2µ/ln(µ/ν)` on `c` (Ineq. 11).
    pub theorem2_neat_bound_c: f64,
    /// Whether `c` exceeds the neat bound.
    pub theorem2_holds: bool,
    /// Whether Theorem 3's split conditions hold at
    /// [`THEOREM3_EPSILONS`].
    pub theorem3_holds: bool,
    /// The paper's `ν_max(c)` from inverting the neat bound, when the
    /// solver converges.
    pub nu_max_c: Option<f64>,
    /// The PSS attack threshold `ν > (2c+1−√(4c²+1))/2` for the same
    /// `c` (Figure 1's red line).
    pub pss_attack_nu: f64,
}

impl AnalyticBounds {
    /// Expected convergence opportunities and adversary blocks over a
    /// `t`-round horizon: `(E[C], E[A])` of Eqs. 26–27, the pair the
    /// simulator's counters validate.
    #[must_use]
    pub fn expected_counts(&self, t: u64) -> (f64, f64) {
        (
            theorem1::expected_convergence_opportunities(&self.params, t),
            theorem1::expected_adversary_blocks(&self.params, t),
        )
    }

    /// The strongest applicable consistency verdict: `true` when any
    /// of the three theorems certifies the point.
    #[must_use]
    pub fn consistent(&self) -> bool {
        self.theorem1_holds || self.theorem2_holds || self.theorem3_holds
    }

    /// The analytic *scale* of the `T`-consistency failure probability:
    /// the catch-up probability `(q/(1−q))^T` of the private-chain race
    /// at the effective adversarial share
    /// `q = pνn / (pνn + ᾱ^{2Δ}α₁)` (see
    /// [`catchup::effective_adversary_share`]). This is the reference
    /// the rare-event splitting estimator is compared against: not a
    /// proven bound on the simulated failure rate, but the exponent the
    /// paper's race analysis predicts, so estimate and scale should
    /// agree within a modest constant factor.
    ///
    /// Returns `None` when the point is outside the race analysis —
    /// `q ≥ ½` (the adversary wins the race outright, every depth is
    /// eventually reached) or a convergence rate that underflows.
    ///
    /// ```
    /// use consistency_core::analytic;
    /// use nakamoto_sim::config::SimConfig;
    ///
    /// let cfg = SimConfig::from_c(100, 4, 3.0, 0.15, 7)?;
    /// let bounds = analytic::for_sim_config(&cfg).expect("ν > 0");
    /// let scale = bounds.race_failure_scale(13).expect("q < ½ here");
    /// assert!(scale > 0.0 && scale < 1e-6, "theorem-scale rarity");
    /// # Ok::<(), nakamoto_sim::config::ConfigError>(())
    /// ```
    #[must_use]
    pub fn race_failure_scale(&self, threshold: u64) -> Option<f64> {
        let q = catchup::effective_adversary_share(&self.params)?;
        let z = u32::try_from(threshold).ok()?;
        catchup::catchup_probability(q, z).ok()
    }

    /// Compares an empirical failure estimate against
    /// [`race_failure_scale`](Self::race_failure_scale) for one
    /// threshold; see [`compare_to_bound`] for the verdict rule.
    #[must_use]
    pub fn compare_race_estimate(
        &self,
        threshold: u64,
        estimate: f64,
        standard_error: Option<f64>,
    ) -> Option<BoundComparison> {
        let bound = self.race_failure_scale(threshold)?;
        Some(compare_to_bound(bound, estimate, standard_error))
    }
}

/// How an empirical failure estimate relates to an analytic reference
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundVerdict {
    /// The estimate is at or below the reference.
    WithinBound,
    /// The estimate exceeds the reference by more than three standard
    /// errors — statistically clear disagreement.
    ExceedsBound,
    /// The estimate is above the reference but within three standard
    /// errors of it (or carries no finite error estimate), so the
    /// comparison is not statistically resolvable.
    Inconclusive,
}

/// One bound-vs-estimate comparison, as attached to experiment cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundComparison {
    /// The analytic reference value.
    pub bound: f64,
    /// The empirical estimate.
    pub estimate: f64,
    /// One standard error of the estimate, when available.
    pub standard_error: Option<f64>,
    /// The verdict under the three-standard-error rule.
    pub verdict: BoundVerdict,
}

/// The three-standard-error comparison rule: `WithinBound` when
/// `estimate ≤ bound`; `ExceedsBound` when `estimate − 3·SE > bound`;
/// `Inconclusive` otherwise (including when no standard error is
/// available — e.g. a starved splitting chain).
///
/// ```
/// use consistency_core::analytic::{compare_to_bound, BoundVerdict};
///
/// let c = compare_to_bound(1e-6, 8e-7, Some(2e-7));
/// assert_eq!(c.verdict, BoundVerdict::WithinBound);
/// let c = compare_to_bound(1e-6, 5e-6, Some(1e-6));
/// assert_eq!(c.verdict, BoundVerdict::ExceedsBound);
/// let c = compare_to_bound(1e-6, 2e-6, Some(1e-6));
/// assert_eq!(c.verdict, BoundVerdict::Inconclusive);
/// ```
#[must_use]
pub fn compare_to_bound(bound: f64, estimate: f64, standard_error: Option<f64>) -> BoundComparison {
    let verdict = if estimate <= bound {
        BoundVerdict::WithinBound
    } else {
        match standard_error {
            Some(se) if estimate - 3.0 * se > bound => BoundVerdict::ExceedsBound,
            _ => BoundVerdict::Inconclusive,
        }
    };
    BoundComparison {
        bound,
        estimate,
        standard_error,
        verdict,
    }
}

/// Computes every bound for validated parameters.
#[must_use]
pub fn bounds(params: &ProtocolParams) -> AnalyticBounds {
    let ln_margin = theorem1::ln_margin(params);
    let c = params.c();
    let (eps1, eps2) = THEOREM3_EPSILONS;
    AnalyticBounds {
        params: *params,
        c,
        theorem1_ln_margin: ln_margin,
        theorem1_holds: ln_margin > 0.0,
        theorem1_max_delta1: theorem1::max_delta1(params),
        ln_convergence_rate: theorem1::ln_convergence_rate(params),
        adversary_rate: theorem1::adversary_rate(params),
        theorem2_neat_bound_c: theorem2::neat_bound(params.nu()),
        theorem2_holds: params.is_consistent_by_neat_bound(),
        theorem3_holds: theorem3::holds(params, eps1, eps2),
        nu_max_c: numax::nu_max_for_c(c).ok(),
        pss_attack_nu: pss::attack_nu_threshold(c),
    }
}

/// Maps a simulator configuration — the `[base]` of an experiment spec
/// — to the paper's bounds. Returns `None` when the configuration lies
/// outside the analysis's parameter range (the simulator additionally
/// admits `ν = 0` as an adversary-free baseline, where every bound is
/// vacuous).
#[must_use]
pub fn for_sim_config(cfg: &SimConfig) -> Option<AnalyticBounds> {
    let params = ProtocolParams::new(
        cfg.n_miners,
        cfg.delta,
        cfg.hardness,
        cfg.adversary_fraction,
    )
    .ok()?;
    Some(bounds(&params))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The simulator's exact `markov` backend duplicates this crate's
    /// `effective_adversary_share` derivation (the dependency graph
    /// runs core → sim, so the simulator cannot call it); this pins
    /// the two implementations to each other across the parameter
    /// space so the duplicated formula cannot drift.
    #[test]
    fn sim_exact_backend_shares_the_effective_adversary_derivation() {
        for (n, delta, c, nu) in [
            (100u64, 4u64, 3.0, 0.15),
            (100, 4, 1.0, 0.3),
            (50, 2, 0.5, 0.45),
            (1_000, 8, 10.0, 0.05),
        ] {
            let cfg = SimConfig::from_c(n, delta, c, nu, 7).unwrap();
            let q_sim = nakamoto_sim::exact::effective_adversary_share(&cfg)
                .expect("ν > 0 stays inside the race analysis here");
            let bounds = for_sim_config(&cfg).expect("ν > 0 carries bounds");
            let q_core = catchup::effective_adversary_share(&bounds.params)
                .expect("same analysis, core route");
            assert!(
                (q_sim - q_core).abs() <= 1e-14 * q_core,
                "n={n} Δ={delta} c={c} ν={nu}: sim q_eff {q_sim:.17} drifted from \
                 core q_eff {q_core:.17}"
            );
        }
    }

    #[test]
    fn consistent_point_certified_by_all_bounds() {
        let cfg = SimConfig::from_c(1_000, 4, 50.0, 0.1, 0).unwrap();
        let b = for_sim_config(&cfg).unwrap();
        assert!(b.theorem1_holds && b.theorem1_ln_margin > 0.0);
        assert!(b.theorem1_max_delta1.unwrap() > 0.0);
        assert!(b.theorem2_holds && b.c > b.theorem2_neat_bound_c);
        assert!(b.theorem3_holds);
        assert!(b.consistent());
        let (e_c, e_a) = b.expected_counts(100_000);
        assert!(e_c > e_a && e_a > 0.0);
        let nu_max = b.nu_max_c.unwrap();
        assert!(
            nu_max > 0.1,
            "at c = 50 the admissible ν_max {nu_max} clears the configured ν"
        );
    }

    #[test]
    fn inconsistent_point_fails_all_bounds() {
        let cfg = SimConfig::from_c(1_000, 4, 0.2, 0.4, 0).unwrap();
        let b = for_sim_config(&cfg).unwrap();
        assert!(!b.theorem1_holds && b.theorem1_ln_margin < 0.0);
        assert!(b.theorem1_max_delta1.is_none());
        assert!(!b.theorem2_holds);
        assert!(!b.theorem3_holds);
        assert!(!b.consistent());
    }

    #[test]
    fn adversary_free_baseline_has_no_bounds() {
        let cfg = SimConfig::from_c(100, 4, 1.0, 0.0, 0).unwrap();
        assert!(for_sim_config(&cfg).is_none(), "ν = 0 is out of range");
    }

    #[test]
    fn bounds_agree_with_the_theorem_modules() {
        let params = ProtocolParams::from_c(100, 4, 2.0, 0.25).unwrap();
        let b = bounds(&params);
        assert_eq!(b.theorem1_ln_margin, theorem1::ln_margin(&params));
        assert_eq!(b.theorem2_neat_bound_c, theorem2::neat_bound(0.25));
        assert_eq!(b.adversary_rate, theorem1::adversary_rate(&params));
        assert_eq!(
            b.theorem1_holds,
            theorem1::max_delta1(&params).is_some(),
            "margin sign and max_delta1 agree"
        );
    }

    #[test]
    fn race_scale_decays_geometrically_in_threshold() {
        let cfg = SimConfig::from_c(100, 4, 3.0, 0.15, 7).unwrap();
        let b = for_sim_config(&cfg).unwrap();
        let s6 = b.race_failure_scale(6).unwrap();
        let s12 = b.race_failure_scale(12).unwrap();
        assert!(s6 > s12 && s12 > 0.0);
        // (q/(1−q))^12 = ((q/(1−q))^6)², so the ratio is the square.
        assert!((s12 - s6 * s6).abs() < 1e-12 * s6);
    }

    #[test]
    fn race_scale_is_none_when_the_adversary_wins() {
        // Far below the consistency region the effective share passes
        // ½ and the race analysis no longer bounds anything.
        let cfg = SimConfig::from_c(1_000, 8, 0.2, 0.4, 0).unwrap();
        let b = for_sim_config(&cfg).unwrap();
        assert!(b.race_failure_scale(6).is_none());
    }

    #[test]
    fn verdicts_follow_the_three_sigma_rule() {
        assert_eq!(
            compare_to_bound(1e-6, 9e-7, Some(1e-8)).verdict,
            BoundVerdict::WithinBound
        );
        assert_eq!(
            compare_to_bound(1e-6, 1e-5, Some(1e-6)).verdict,
            BoundVerdict::ExceedsBound
        );
        assert_eq!(
            compare_to_bound(1e-6, 1.5e-6, Some(1e-6)).verdict,
            BoundVerdict::Inconclusive
        );
        // No error estimate (starved splitting chain): never a clear
        // exceedance.
        assert_eq!(
            compare_to_bound(1e-6, 1.0, None).verdict,
            BoundVerdict::Inconclusive
        );
        // Exactly on the bound counts as within.
        assert_eq!(
            compare_to_bound(1e-6, 1e-6, None).verdict,
            BoundVerdict::WithinBound
        );
    }

    #[test]
    fn compare_race_estimate_uses_the_scale_as_reference() {
        let cfg = SimConfig::from_c(100, 4, 3.0, 0.15, 7).unwrap();
        let b = for_sim_config(&cfg).unwrap();
        let scale = b.race_failure_scale(13).unwrap();
        let cmp = b
            .compare_race_estimate(13, scale * 0.5, Some(scale * 0.1))
            .unwrap();
        assert_eq!(cmp.bound, scale);
        assert_eq!(cmp.verdict, BoundVerdict::WithinBound);
    }

    /// The Figure-1 scale must survive: log-space margins stay finite
    /// at Δ = 10¹³.
    #[test]
    fn figure1_scale_is_finite() {
        let params = ProtocolParams::from_c(100_000, 10_000_000_000_000, 3.0, 0.3).unwrap();
        let b = bounds(&params);
        assert!(b.theorem1_ln_margin.is_finite());
        assert!(b.ln_convergence_rate.is_finite());
        assert!(b.theorem1_holds, "c = 3 at ν = 0.3 is inside the region");
    }
}
