//! Figure 1: maximum tolerable adversarial fraction `ν_max` versus
//! `c = 1/(pnΔ)` for three bounds — this paper's neat bound (magenta),
//! PSS consistency (blue) and the PSS attack (red).
//!
//! The paper plots `c ∈ [0.1, 100]` on a log axis with `n = 10⁵` and
//! `Δ = 10¹³`.

use crate::{numax, pss, Result};

/// Figure 1's published axis range.
pub const C_MIN: f64 = 0.1;
/// Figure 1's published axis range.
pub const C_MAX: f64 = 100.0;
/// Figure 1's `n`.
pub const FIGURE1_N: u64 = 100_000;
/// Figure 1's `Δ`.
pub const FIGURE1_DELTA: u64 = 10_000_000_000_000;

/// One point of Figure 1: the three curves evaluated at `c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure1Point {
    /// The x-coordinate `c = 1/(pnΔ)`.
    pub c: f64,
    /// This paper's bound (magenta): `ν` solving `2µ/ln(µ/ν) = c`.
    pub ours: f64,
    /// PSS consistency (blue): `½(2−c+√(c²−2c))`; 0 below `c = 2`.
    pub pss_consistency: f64,
    /// PSS attack (red): `(2c+1−√(4c²+1))/2`.
    pub pss_attack: f64,
}

/// Generates `n_points` log-spaced samples of Figure 1 over
/// `[C_MIN, C_MAX]`.
///
/// # Errors
///
/// Propagates solver failures (not observed on the published range).
///
/// ```
/// use consistency_core::figure1::generate;
/// let pts = generate(50)?;
/// assert_eq!(pts.len(), 50);
/// // Magenta strictly above blue everywhere (the paper's headline).
/// assert!(pts.iter().all(|p| p.ours >= p.pss_consistency));
/// # Ok::<(), consistency_core::Error>(())
/// ```
pub fn generate(n_points: usize) -> Result<Vec<Figure1Point>> {
    generate_range(C_MIN, C_MAX, n_points)
}

/// Generates log-spaced samples over a custom `c` range.
///
/// # Errors
///
/// Returns [`crate::Error::InvalidParameter`] for an empty or invalid
/// range.
pub fn generate_range(c_min: f64, c_max: f64, n_points: usize) -> Result<Vec<Figure1Point>> {
    if !(c_min > 0.0 && c_max > c_min) {
        return Err(crate::Error::invalid(
            "c_min",
            format!("need 0 < c_min < c_max, got [{c_min}, {c_max}]"),
        ));
    }
    if n_points < 2 {
        return Err(crate::Error::invalid("n_points", "need at least 2 points"));
    }
    let ln_lo = c_min.ln();
    let ln_hi = c_max.ln();
    let mut out = Vec::with_capacity(n_points);
    for i in 0..n_points {
        let t = i as f64 / (n_points - 1) as f64;
        let c = (ln_lo + t * (ln_hi - ln_lo)).exp();
        out.push(point_at(c)?);
    }
    Ok(out)
}

/// Evaluates the three curves at one `c`.
///
/// # Errors
///
/// Propagates solver failures.
pub fn point_at(c: f64) -> Result<Figure1Point> {
    Ok(Figure1Point {
        c,
        ours: numax::nu_max_for_c(c)?,
        pss_consistency: pss::consistency_nu_max(c).unwrap_or(0.0),
        pss_attack: pss::attack_nu_threshold(c),
    })
}

/// Renders the curve data as the tab-separated table printed by the
/// `figure1` bench binary.
#[must_use]
pub fn to_table(points: &[Figure1Point]) -> String {
    let mut s = String::from("c\tours(magenta)\tpss_consistency(blue)\tpss_attack(red)\n");
    for p in points {
        s.push_str(&format!(
            "{:.6}\t{:.6}\t{:.6}\t{:.6}\n",
            p.c, p.ours, p.pss_consistency, p.pss_attack
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_ordered_as_in_paper() {
        // Magenta strictly above blue, red strictly above magenta, for
        // every sampled c (the gap the paper's future-work discusses).
        let pts = generate(200).unwrap();
        for p in &pts {
            assert!(
                p.ours >= p.pss_consistency,
                "c={}: ours {} < blue {}",
                p.c,
                p.ours,
                p.pss_consistency
            );
            assert!(
                p.pss_attack > p.ours,
                "c={}: red {} ≤ ours {}",
                p.c,
                p.pss_attack,
                p.ours
            );
        }
        // Strict separation once the blue line is non-trivial.
        for p in pts.iter().filter(|p| p.c > 2.1) {
            assert!(p.ours > p.pss_consistency);
        }
    }

    #[test]
    fn endpoints_match_axis() {
        let pts = generate(100).unwrap();
        assert!((pts.first().unwrap().c - C_MIN).abs() < 1e-12);
        assert!((pts.last().unwrap().c - C_MAX).abs() < 1e-9);
    }

    #[test]
    fn blue_zero_below_two() {
        let pts = generate_range(0.1, 1.9, 20).unwrap();
        assert!(pts.iter().all(|p| p.pss_consistency == 0.0));
    }

    #[test]
    fn all_curves_monotone_in_c() {
        let pts = generate(100).unwrap();
        for w in pts.windows(2) {
            assert!(w[1].ours >= w[0].ours);
            assert!(w[1].pss_consistency >= w[0].pss_consistency);
            assert!(w[1].pss_attack >= w[0].pss_attack);
        }
    }

    #[test]
    fn known_values_on_curves() {
        // At c = 3: ours solves 2µ/ln(µ/ν) = 3; blue = ½(−1+√3);
        // red = ½(7−√37).
        let p = point_at(3.0).unwrap();
        let blue_expected = 0.5 * (2.0 - 3.0 + 3f64.sqrt());
        let red_expected = 0.5 * (7.0 - 37f64.sqrt());
        assert!((p.pss_consistency - blue_expected).abs() < 1e-12);
        assert!((p.pss_attack - red_expected).abs() < 1e-12);
        let g = 2.0 * (1.0 - p.ours) / ((1.0 - p.ours) / p.ours).ln();
        assert!((g - 3.0).abs() < 1e-9);
    }

    #[test]
    fn table_rendering() {
        let pts = generate_range(1.0, 10.0, 3).unwrap();
        let table = to_table(&pts);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("c\t"));
        assert!(lines[1].starts_with("1.000000\t"));
    }

    #[test]
    fn range_validation() {
        assert!(generate_range(0.0, 1.0, 10).is_err());
        assert!(generate_range(2.0, 1.0, 10).is_err());
        assert!(generate_range(1.0, 2.0, 1).is_err());
    }
}
