//! Catch-up analysis of the private-chain race: the probability that an
//! adversary starting `z` blocks behind ever overtakes the honest
//! chain, and the confirmation depths that make double-spends unlikely.
//!
//! This quantifies the attack side of the paper's Figure 1: the
//! consistency bound guarantees convergence opportunities outpace
//! adversary blocks; when they do not, the adversary wins this race.
//! The closed form is Nakamoto's `(q/p)^z` random-walk result; we also
//! compute it exactly on a truncated birth–death chain via
//! `markov::absorption` as a cross-validation of both components.

use crate::{Error, Result};
use markov::absorption::analyze;
use markov::chain::MarkovChainBuilder;

/// Probability that the adversary, currently `z` blocks behind, ever
/// catches up, when each next block is adversarial with probability
/// `q` and honest with `1 − q` (`q < ½`): `(q/(1−q))^z`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] unless `0 < q < ½`.
///
/// ```
/// use consistency_core::catchup::catchup_probability;
/// let p = catchup_probability(0.3, 6)?;
/// assert!((p - (0.3f64 / 0.7).powi(6)).abs() < 1e-15);
/// # Ok::<(), consistency_core::Error>(())
/// ```
pub fn catchup_probability(q: f64, z: u32) -> Result<f64> {
    validate_q(q)?;
    Ok((q / (1.0 - q)).powi(z as i32))
}

/// Catch-up probability computed on a truncated birth–death chain with
/// states `{caught-up, 1 behind, …, horizon behind}`, absorbed at both
/// "caught up" (deficit 0) and "hopelessly behind" (deficit = horizon).
/// The absorbing far barrier kills trajectories that wander past the
/// horizon, so the result *under*-estimates the closed form and
/// converges to it geometrically as `horizon − z` grows (gambler's
/// ruin: `((µ'/ν')^{h−z} − 1)/((µ'/ν')^h − 1) → (ν'/µ')^z`).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for out-of-domain `q`, `z = 0`
/// or `z ≥ horizon`; propagates linear-algebra failures.
pub fn catchup_probability_markov(q: f64, z: u32, horizon: u32) -> Result<f64> {
    validate_q(q)?;
    if z == 0 {
        return Err(Error::invalid("z", "deficit must be at least 1"));
    }
    if z >= horizon {
        return Err(Error::invalid(
            "z",
            format!("deficit {z} must be below the horizon {horizon}"),
        ));
    }
    let h = horizon as usize;
    let mut b = MarkovChainBuilder::new(h + 1);
    b.add(0, 0, 1.0).map_err(Error::from)?; // caught up: absorbing
    b.add(h, h, 1.0).map_err(Error::from)?; // hopeless: absorbing
    for d in 1..h {
        // Adversary block: deficit −1; honest block: deficit +1.
        b.add(d, d - 1, q).map_err(Error::from)?;
        b.add(d, d + 1, 1.0 - q).map_err(Error::from)?;
    }
    let chain = b.build().map_err(Error::from)?;
    let analysis = analyze(&chain).map_err(Error::from)?;
    Ok(analysis.probability(z as usize, 0))
}

/// Smallest confirmation depth `z` with catch-up probability at most
/// `target` — the "how many confirmations" question.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] unless `0 < q < ½` and
/// `0 < target < 1`.
pub fn confirmations_for_risk(q: f64, target: f64) -> Result<u32> {
    validate_q(q)?;
    if !(target > 0.0 && target < 1.0) {
        return Err(Error::invalid(
            "target",
            format!("must lie in (0, 1), got {target}"),
        ));
    }
    let per_block = (q / (1.0 - q)).ln();
    debug_assert!(per_block < 0.0);
    Ok((target.ln() / per_block).ceil().max(1.0) as u32)
}

/// The effective adversarial block share in the Δ-delay model: honest
/// blocks only contribute to the race when they arrive in convergence-
/// opportunity-like slots, so the race ratio the paper's Lemma 1
/// implies is `q_eff = pνn / (pνn + ᾱ^{2Δ}α₁)` — adversary rate vs
/// convergence-opportunity rate.
///
/// Returns `None` when the convergence rate underflows relative to the
/// adversary rate (race hopeless for honest parties).
#[must_use]
pub fn effective_adversary_share(params: &crate::params::ProtocolParams) -> Option<f64> {
    let ln_conv = crate::theorem1::ln_convergence_rate(params);
    let adv = crate::theorem1::adversary_rate(params);
    let conv = ln_conv.exp();
    if conv == 0.0 {
        return None;
    }
    Some(adv / (adv + conv))
}

fn validate_q(q: f64) -> Result<()> {
    if !(q > 0.0 && q < 0.5) || q.is_nan() {
        return Err(Error::invalid(
            "q",
            format!("adversary share must lie in (0, 1/2), got {q}"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;

    #[test]
    fn closed_form_matches_nakamoto_table() {
        // Nakamoto §11: q = 0.1, z = 5 → ≈ 0.0000169 per the pure
        // random-walk term (q/p)^z.
        let p = catchup_probability(0.1, 5).unwrap();
        assert!((p - (1.0f64 / 9.0).powi(5)).abs() < 1e-12);
        assert!(p < 2e-5 && p > 1e-5);
    }

    #[test]
    fn markov_truncation_converges_to_closed_form() {
        for &q in &[0.1, 0.3, 0.45] {
            for z in [1u32, 3, 6] {
                let closed = catchup_probability(q, z).unwrap();
                let coarse = catchup_probability_markov(q, z, z + 10).unwrap();
                let fine = catchup_probability_markov(q, z, z + 80).unwrap();
                // Absorbing truncation underestimates, and refining the
                // horizon shrinks the error.
                assert!(coarse <= closed + 1e-12, "q={q}, z={z}");
                assert!(
                    (fine - closed).abs() <= (coarse - closed).abs() + 1e-12,
                    "q={q}, z={z}"
                );
                assert!(
                    (fine - closed).abs() < 1e-6,
                    "q={q}, z={z}: fine {fine} vs closed {closed}"
                );
            }
        }
    }

    #[test]
    fn markov_matches_gamblers_ruin_closed_form() {
        // At finite horizon the truncated probability IS the gambler's
        // ruin formula: (r^{h−z} − 1)/(r^h − 1) with r = (1−q)/q.
        let q = 0.35f64;
        let r = (1.0 - q) / q;
        for (z, h) in [(2u32, 7u32), (3, 12), (5, 9)] {
            let expected = (r.powi((h - z) as i32) - 1.0) / (r.powi(h as i32) - 1.0);
            let got = catchup_probability_markov(q, z, h).unwrap();
            assert!(
                (got - expected).abs() < 1e-10,
                "z={z}, h={h}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn markov_validation_rejects_bad_inputs() {
        assert!(catchup_probability_markov(0.3, 0, 10).is_err());
        assert!(catchup_probability_markov(0.3, 10, 10).is_err());
        assert!(catchup_probability_markov(0.3, 11, 10).is_err());
        assert!(catchup_probability_markov(0.6, 1, 10).is_err());
        assert!(catchup_probability(0.0, 1).is_err());
    }

    #[test]
    fn confirmations_monotone_in_adversary_share() {
        let weak = confirmations_for_risk(0.1, 1e-3).unwrap();
        let strong = confirmations_for_risk(0.4, 1e-3).unwrap();
        assert!(strong > weak, "{strong} vs {weak}");
        // And in the target.
        let lax = confirmations_for_risk(0.3, 1e-2).unwrap();
        let strict = confirmations_for_risk(0.3, 1e-6).unwrap();
        assert!(strict > lax);
    }

    #[test]
    fn confirmations_achieve_their_target() {
        for &q in &[0.1, 0.25, 0.45] {
            for &target in &[1e-2, 1e-4, 1e-8] {
                let z = confirmations_for_risk(q, target).unwrap();
                assert!(catchup_probability(q, z).unwrap() <= target);
                if z > 1 {
                    assert!(catchup_probability(q, z - 1).unwrap() > target);
                }
            }
        }
    }

    #[test]
    fn effective_share_tracks_theorem1_margin() {
        // Below the neat bound the effective share exceeds 1/2 (the
        // adversary wins the race); above it, it is below 1/2.
        let nu = 0.3;
        let neat = crate::theorem2::neat_bound(nu);
        let good = ProtocolParams::from_c(1_000, 8, neat * 2.0, nu).unwrap();
        let bad = ProtocolParams::from_c(1_000, 8, neat * 0.4, nu).unwrap();
        assert!(effective_adversary_share(&good).unwrap() < 0.5);
        assert!(effective_adversary_share(&bad).unwrap() > 0.5);
    }
}
