//! Theorem 2: the neat bound. Consistency holds when constants
//! `0 < ε₁ < 1`, `ε₂ > 0` exist with (Ineq. 11)
//!
//! ```text
//! c ≥ max{ (2µ/ln(µ/ν) + 1/Δ)·(1+ε₂)/(1−ε₁),
//!          ((ln(µ/ν)+1)·µ) / (ε₁·Δ·ln(µ/ν)) }
//! ```
//!
//! and, under the Remark-1 ranges for `ν` (Ineq. 12), the bound
//! simplifies to Ineq. (13): `c` just slightly greater than
//! `2µ/ln(µ/ν)`.

use crate::params::ProtocolParams;
use crate::{Error, Result};

/// The paper's headline expression `2µ/ln(µ/ν)` (Figure 1's magenta
/// line, with `µ = 1 − ν`).
///
/// # Panics
///
/// Panics unless `0 < ν < ½`.
///
/// ```
/// use consistency_core::theorem2::neat_bound;
/// // ν = 0.3: 2·0.7/ln(7/3) ≈ 1.6523.
/// assert!((neat_bound(0.3) - 1.652).abs() < 1e-3);
/// ```
#[must_use]
pub fn neat_bound(nu: f64) -> f64 {
    assert!(nu > 0.0 && nu < 0.5, "ν must lie in (0, 1/2), got {nu}");
    let mu = 1.0 - nu;
    2.0 * mu / (mu / nu).ln()
}

/// The right-hand side of Ineq. (11) for given `(ν, Δ, ε₁, ε₂)`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] unless `0 < ε₁ < 1` and `ε₂ > 0`.
pub fn c_bound(nu: f64, delta: u64, eps1: f64, eps2: f64) -> Result<f64> {
    validate_epsilons(eps1, eps2)?;
    if !(nu > 0.0 && nu < 0.5) {
        return Err(Error::invalid(
            "nu",
            format!("must lie in (0, 1/2), got {nu}"),
        ));
    }
    let mu = 1.0 - nu;
    let ell = (mu / nu).ln();
    let d = delta as f64;
    let first = (2.0 * mu / ell + 1.0 / d) * (1.0 + eps2) / (1.0 - eps1);
    let second = (ell + 1.0) * mu / (eps1 * d * ell);
    Ok(first.max(second))
}

/// Checks Theorem 2's condition (Ineq. 11) at specific `(ε₁, ε₂)`.
///
/// # Errors
///
/// Same contract as [`c_bound`].
pub fn holds(params: &ProtocolParams, eps1: f64, eps2: f64) -> Result<bool> {
    Ok(params.c() >= c_bound(params.nu(), params.delta(), eps1, eps2)?)
}

/// Checks whether *any* admissible `(ε₁, ε₂)` makes Ineq. (11) hold, by
/// minimising the bound over `ε₁` (the bound is monotone increasing in
/// `ε₂`, so `ε₂ → 0` is optimal; the max of a decreasing and an
/// increasing function of `ε₁` is minimised where they cross).
#[must_use]
pub fn holds_for_some_epsilons(params: &ProtocolParams) -> bool {
    params.c() > infimum_c_bound(params.nu(), params.delta())
}

/// The infimum over admissible `(ε₁, ε₂)` of Ineq. (11)'s right-hand
/// side. Strictly speaking the infimum is not attained (`ε₂ > 0` is
/// open), so consistency needs `c` strictly greater.
#[must_use]
pub fn infimum_c_bound(nu: f64, delta: u64) -> f64 {
    assert!(nu > 0.0 && nu < 0.5, "ν must lie in (0, 1/2), got {nu}");
    // With ε₂ → 0 the two branches are
    //   f(ε₁) = (2µ/L + 1/Δ)/(1−ε₁)   (increasing in ε₁)
    //   g(ε₁) = (L+1)µ/(ε₁·Δ·L)       (decreasing in ε₁)
    // The max is minimised at the crossing (or at ε₁ → 1 if g stays
    // above f, which cannot happen since g → (L+1)µ/(ΔL) finite and
    // f → ∞). Solve f = g: a quadratic in ε₁.
    let mu = 1.0 - nu;
    let ell = (mu / nu).ln();
    let d = delta as f64;
    let a = 2.0 * mu / ell + 1.0 / d;
    let b = (ell + 1.0) * mu / (d * ell);
    // a·ε₁ = b·(1−ε₁)  ⇒  ε₁ = b/(a+b).
    let eps1 = b / (a + b);
    let eps1 = eps1.clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
    let f = a / (1.0 - eps1);
    let g = b / eps1;
    f.max(g)
}

fn validate_epsilons(eps1: f64, eps2: f64) -> Result<()> {
    if !(eps1 > 0.0 && eps1 < 1.0) || eps1.is_nan() {
        return Err(Error::invalid(
            "eps1",
            format!("Theorem 2 requires 0 < ε₁ < 1, got {eps1}"),
        ));
    }
    if !(eps2 > 0.0) || eps2.is_nan() {
        return Err(Error::invalid(
            "eps2",
            format!("Theorem 2 requires ε₂ > 0, got {eps2}"),
        ));
    }
    Ok(())
}

/// The Remark-1 range of admissible `ν` (Ineq. 12) for exponent
/// constants `δ₁, δ₂` with `δ₁ + δ₂ < 1`:
/// `1/(1+exp(Δ^{δ₁})) ≤ ν ≤ 1/(1+exp(1/(Δ^{δ₂}−1)))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NuRange {
    /// Lower end of the admissible ν interval.
    pub lo: f64,
    /// Upper end of the admissible ν interval.
    pub hi: f64,
}

impl NuRange {
    /// `true` iff `nu` lies in the closed interval.
    #[must_use]
    pub fn contains(&self, nu: f64) -> bool {
        (self.lo..=self.hi).contains(&nu)
    }
}

/// Computes the Remark-1 `ν` range (Ineq. 12).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] unless `δ₁, δ₂ > 0`,
/// `δ₁ + δ₂ < 1` and `Δ^{δ₂} > 1`.
pub fn remark1_nu_range(delta: u64, d1: f64, d2: f64) -> Result<NuRange> {
    validate_remark1_exponents(d1, d2)?;
    let d = delta as f64;
    let lo = 1.0 / (1.0 + d.powf(d1).exp());
    let pow2 = d.powf(d2);
    if pow2 <= 1.0 {
        return Err(Error::invalid(
            "d2",
            format!("Δ^δ₂ must exceed 1, got {pow2}"),
        ));
    }
    let hi = 1.0 / (1.0 + (1.0 / (pow2 - 1.0)).exp());
    Ok(NuRange { lo, hi })
}

/// The Ineq.-(13) inflation factor `(1 + Δ^{δ₁−1})/(1 − Δ^{δ₁+δ₂−1})`
/// that multiplies `2µ/ln(µ/ν)·(1+ε₂)`.
///
/// # Errors
///
/// Same contract as [`remark1_nu_range`].
pub fn remark1_factor(delta: u64, d1: f64, d2: f64) -> Result<f64> {
    validate_remark1_exponents(d1, d2)?;
    let d = delta as f64;
    let numerator = 1.0 + d.powf(d1 - 1.0);
    let denominator = 1.0 - d.powf(d1 + d2 - 1.0);
    if denominator <= 0.0 {
        return Err(Error::invalid(
            "d1",
            format!("Δ^(δ₁+δ₂−1) must stay below 1, got denominator {denominator}"),
        ));
    }
    Ok(numerator / denominator)
}

/// The full Ineq.-(13) bound: `2µ/ln(µ/ν) · (1+ε₂) · remark1_factor`.
///
/// # Errors
///
/// Same contract as [`remark1_factor`] plus ε₂ validation.
pub fn remark1_c_bound(nu: f64, delta: u64, d1: f64, d2: f64, eps2: f64) -> Result<f64> {
    if !(eps2 > 0.0) {
        return Err(Error::invalid(
            "eps2",
            format!("must be positive, got {eps2}"),
        ));
    }
    Ok(neat_bound(nu) * (1.0 + eps2) * remark1_factor(delta, d1, d2)?)
}

fn validate_remark1_exponents(d1: f64, d2: f64) -> Result<()> {
    if !(d1 > 0.0) || d1.is_nan() {
        return Err(Error::invalid("d1", format!("must be positive, got {d1}")));
    }
    if !(d2 > 0.0) || d2.is_nan() {
        return Err(Error::invalid("d2", format!("must be positive, got {d2}")));
    }
    if !(d1 + d2 < 1.0) {
        return Err(Error::invalid(
            "d1",
            format!("Remark 1 requires δ₁ + δ₂ < 1, got {}", d1 + d2),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DELTA13: u64 = 10_000_000_000_000; // Δ = 10¹³ as in Figure 1.

    #[test]
    fn neat_bound_monotone_increasing_in_nu() {
        let mut prev = 0.0;
        for i in 1..50 {
            let nu = i as f64 / 100.0;
            let b = neat_bound(nu);
            assert!(b > prev, "bound must increase with ν");
            prev = b;
        }
    }

    #[test]
    fn neat_bound_limits() {
        // ν → 0: bound → 0. ν → ½: bound → ∞.
        assert!(neat_bound(1e-9) < 0.1);
        assert!(neat_bound(0.5 - 1e-12) > 1e10);
    }

    #[test]
    fn c_bound_exceeds_neat_bound() {
        // Ineq. (11)'s RHS is strictly above the asymptotic 2µ/L.
        for &nu in &[0.1, 0.25, 0.4] {
            let b = c_bound(nu, DELTA13, 0.01, 0.01).unwrap();
            assert!(b > neat_bound(nu));
        }
    }

    #[test]
    fn infimum_close_to_neat_bound_at_figure1_delta() {
        // Remark 1's point: at Δ = 1e13 the infimum over (ε₁, ε₂) is
        // within a tiny factor of 2µ/L for moderate ν.
        for &nu in &[0.01, 0.1, 0.3, 0.45] {
            let inf = infimum_c_bound(nu, DELTA13);
            let neat = neat_bound(nu);
            assert!(inf >= neat);
            assert!(
                inf / neat < 1.0 + 1e-4,
                "ν={nu}: infimum {inf} vs neat {neat}"
            );
        }
    }

    #[test]
    fn infimum_dominated_by_second_branch_at_small_delta() {
        // At small Δ the (L+1)µ/(ε₁ΔL) branch matters; the infimum is
        // then well above the neat bound.
        let inf = infimum_c_bound(0.3, 2);
        assert!(inf > neat_bound(0.3) * 1.5);
    }

    #[test]
    fn holds_matches_c_comparison() {
        let p = crate::params::ProtocolParams::from_c(100_000, DELTA13, 3.0, 0.3).unwrap();
        assert!(holds(&p, 0.01, 0.01).unwrap());
        assert!(holds_for_some_epsilons(&p));
        let p = crate::params::ProtocolParams::from_c(100_000, DELTA13, 1.0, 0.3).unwrap();
        assert!(!holds(&p, 0.01, 0.01).unwrap());
        assert!(!holds_for_some_epsilons(&p));
    }

    #[test]
    fn epsilon_validation() {
        assert!(c_bound(0.3, 10, 0.0, 0.1).is_err());
        assert!(c_bound(0.3, 10, 1.0, 0.1).is_err());
        assert!(c_bound(0.3, 10, 0.5, 0.0).is_err());
        assert!(c_bound(0.6, 10, 0.5, 0.1).is_err());
    }

    #[test]
    fn remark1_first_parameterisation_matches_paper() {
        // δ₁ = 1/6, δ₂ = 1/2 at Δ = 1e13 → Ineq. (14): 10⁻⁶³ ≤ ν ≤ 0.5−10⁻⁷
        // and factor ≈ 1 + 5·10⁻⁵ (Ineq. 15).
        let range = remark1_nu_range(DELTA13, 1.0 / 6.0, 0.5).unwrap();
        assert!(range.lo < 1e-62 && range.lo > 1e-66, "lo = {:e}", range.lo);
        let hi_gap = 0.5 - range.hi;
        assert!(hi_gap < 1e-6 && hi_gap > 1e-8, "hi gap = {hi_gap:e}");
        let factor = remark1_factor(DELTA13, 1.0 / 6.0, 0.5).unwrap();
        assert!(
            factor > 1.0 && factor - 1.0 < 5e-5,
            "factor − 1 = {:e}",
            factor - 1.0
        );
    }

    #[test]
    fn remark1_second_parameterisation_matches_paper() {
        // δ₁ = 1/8, δ₂ = 2/3 at Δ = 1e13 → Ineq. (16): 10⁻¹⁸ ≤ ν ≤ 0.5−10⁻⁹
        // and factor ≈ 1 + 2·10⁻³ (Ineq. 17).
        let range = remark1_nu_range(DELTA13, 1.0 / 8.0, 2.0 / 3.0).unwrap();
        assert!(range.lo < 1e-17 && range.lo > 1e-20, "lo = {:e}", range.lo);
        let hi_gap = 0.5 - range.hi;
        assert!(hi_gap < 1e-8 && hi_gap > 1e-10, "hi gap = {hi_gap:e}");
        let factor = remark1_factor(DELTA13, 1.0 / 8.0, 2.0 / 3.0).unwrap();
        assert!(
            factor > 1.0 && factor - 1.0 < 2e-3,
            "factor − 1 = {:e}",
            factor - 1.0
        );
    }

    #[test]
    fn remark1_range_contains_typical_nu() {
        let range = remark1_nu_range(DELTA13, 1.0 / 6.0, 0.5).unwrap();
        for &nu in &[1e-9, 0.1, 0.25, 0.4, 0.49] {
            assert!(range.contains(nu), "ν = {nu} should be covered");
        }
    }

    #[test]
    fn remark1_c_bound_slightly_above_neat() {
        let nu = 0.3;
        let b = remark1_c_bound(nu, DELTA13, 1.0 / 6.0, 0.5, 1e-6).unwrap();
        let neat = neat_bound(nu);
        assert!(b > neat);
        assert!(b / neat < 1.0 + 1e-4, "ratio {}", b / neat);
    }

    #[test]
    fn remark1_validation() {
        assert!(remark1_nu_range(DELTA13, 0.6, 0.5).is_err(), "δ₁+δ₂ ≥ 1");
        assert!(remark1_nu_range(DELTA13, -0.1, 0.5).is_err());
        assert!(remark1_factor(DELTA13, 0.5, 0.5).is_err());
        assert!(remark1_c_bound(0.3, DELTA13, 1.0 / 6.0, 0.5, 0.0).is_err());
    }
}
