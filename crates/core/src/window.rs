//! Sliding-window analysis of Lemma 1: in every window of `T` rounds,
//! the number of convergence opportunities should exceed the number of
//! adversary blocks (with overwhelming probability in `T`).
//!
//! Whole-run totals can hide locally bad windows; this module scans a
//! per-round simulation log for the *worst* window, which is the
//! quantity Lemma 1 actually constrains.

use crate::{Error, Result};
use nakamoto_sim::execution::RoundRecord;

/// Result of a worst-window scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowReport {
    /// Window length scanned.
    pub window: u64,
    /// Number of windows examined.
    pub n_windows: u64,
    /// Minimum of (convergence opportunities − adversary blocks) over
    /// all windows.
    pub worst_margin: i64,
    /// Start round (0-based into the log) of the worst window.
    pub worst_start: u64,
    /// Number of windows with a non-positive margin (Lemma 1 violated
    /// in that window).
    pub violating_windows: u64,
}

impl WindowReport {
    /// `true` iff every window satisfied Lemma 1's premise
    /// (`C_window > A_window`).
    #[must_use]
    pub fn all_windows_safe(&self) -> bool {
        self.violating_windows == 0
    }
}

/// Scans all length-`window` windows of a round log with prefix sums
/// (O(len) time, O(len) space).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] if `window == 0` or the log is
/// shorter than one window.
pub fn worst_window(log: &[RoundRecord], window: u64) -> Result<WindowReport> {
    if window == 0 {
        return Err(Error::invalid("window", "must be at least 1 round"));
    }
    let w = window as usize;
    if log.len() < w {
        return Err(Error::invalid(
            "window",
            format!("log has {} rounds, shorter than the window {w}", log.len()),
        ));
    }
    // Prefix sums of (convergence − adversary).
    let mut prefix = Vec::with_capacity(log.len() + 1);
    prefix.push(0i64);
    let mut acc = 0i64;
    for r in log {
        acc += i64::from(r.convergence_completed) - i64::from(r.adversary);
        prefix.push(acc);
    }
    let mut worst_margin = i64::MAX;
    let mut worst_start = 0u64;
    let mut violating = 0u64;
    for start in 0..=(log.len() - w) {
        let margin = prefix[start + w] - prefix[start];
        if margin < worst_margin {
            worst_margin = margin;
            worst_start = start as u64;
        }
        if margin <= 0 {
            violating += 1;
        }
    }
    Ok(WindowReport {
        window,
        n_windows: (log.len() - w + 1) as u64,
        worst_margin,
        worst_start,
        violating_windows: violating,
    })
}

/// Convenience: runs a fresh simulation with round logging and scans
/// the requested window lengths.
///
/// # Errors
///
/// Propagates [`worst_window`] errors (window longer than the run).
pub fn simulate_and_scan(
    params: &crate::params::ProtocolParams,
    adversary: Box<dyn nakamoto_sim::adversary::Adversary>,
    rounds: u64,
    windows: &[u64],
    seed: u64,
) -> Result<Vec<WindowReport>> {
    let mut sim = nakamoto_sim::execution::Simulation::new(params.to_sim_config(seed), adversary);
    sim.enable_round_log();
    sim.run(rounds);
    let log = sim.round_log().expect("logging enabled"); // detlint: allow(panic-expect) -- enable_round_log() was called two lines above
    windows.iter().map(|&w| worst_window(log, w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;
    use nakamoto_sim::adversary::{ImmediateReleaseAdversary, PrivateChainAdversary};

    fn record(honest: u32, adversary: u32, conv: bool) -> RoundRecord {
        RoundRecord {
            honest,
            adversary,
            convergence_completed: conv,
        }
    }

    #[test]
    fn rejects_degenerate_windows() {
        let log = vec![record(0, 0, false); 10];
        assert!(worst_window(&log, 0).is_err());
        assert!(worst_window(&log, 11).is_err());
        assert!(worst_window(&log, 10).is_ok());
    }

    #[test]
    fn hand_computed_margins() {
        // conv at rounds 0, 3; adversary blocks at rounds 1 (2 blocks), 4.
        let log = vec![
            record(1, 0, true),
            record(0, 2, false),
            record(0, 0, false),
            record(1, 0, true),
            record(0, 1, false),
        ];
        let r = worst_window(&log, 2).unwrap();
        // Windows: [0,1]=1−2=−1, [1,2]=−2, [2,3]=1, [3,4]=1−1=0.
        assert_eq!(r.n_windows, 4);
        assert_eq!(r.worst_margin, -2);
        assert_eq!(r.worst_start, 1);
        assert_eq!(r.violating_windows, 3);
        assert!(!r.all_windows_safe());
        // Whole-log window.
        let r = worst_window(&log, 5).unwrap();
        assert_eq!(r.worst_margin, 2 - 3);
        assert_eq!(r.n_windows, 1);
    }

    #[test]
    fn safe_regime_has_safe_large_windows() {
        // Deep inside the consistent region, large windows always have
        // positive margin.
        let params = ProtocolParams::from_c(100, 2, 20.0, 0.1).unwrap();
        let reports = simulate_and_scan(
            &params,
            Box::new(PrivateChainAdversary::new(2)),
            300_000,
            &[50_000, 100_000],
            404,
        )
        .unwrap();
        for r in &reports {
            assert!(
                r.all_windows_safe(),
                "window {}: worst margin {} at {}",
                r.window,
                r.worst_margin,
                r.worst_start
            );
        }
    }

    #[test]
    fn small_windows_violate_even_in_safe_regime() {
        // Tiny windows contain no convergence opportunities at all, so
        // violations are expected — Lemma 1 is asymptotic in T.
        let params = ProtocolParams::from_c(100, 2, 20.0, 0.3).unwrap();
        let reports = simulate_and_scan(
            &params,
            Box::new(ImmediateReleaseAdversary::new()),
            100_000,
            &[10],
            405,
        )
        .unwrap();
        assert!(!reports[0].all_windows_safe());
    }

    #[test]
    fn unsafe_regime_violates_large_windows() {
        let params = ProtocolParams::from_c(100, 4, 0.2, 0.45).unwrap();
        let reports = simulate_and_scan(
            &params,
            Box::new(PrivateChainAdversary::new(4)),
            200_000,
            &[100_000],
            406,
        )
        .unwrap();
        assert!(reports[0].worst_margin < 0);
    }

    #[test]
    fn worst_margin_monotone_in_window_length_for_uniform_logs() {
        // For an all-adversary log the margin is −window.
        let log = vec![record(0, 1, false); 100];
        for w in [1u64, 10, 100] {
            let r = worst_window(&log, w).unwrap();
            assert_eq!(r.worst_margin, -(w as i64));
        }
    }
}
