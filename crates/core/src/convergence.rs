//! Monte-Carlo validation of the paper's expectation identities against
//! the protocol simulator:
//!
//! * Eq. (26): `E[C(t₀,t₀+T−1)] = T·ᾱ^{2Δ}α₁`,
//! * Eq. (27): `E[A(t₀,t₀+T−1)] = T·p·ν·n`,
//! * Eqs. (37a–d): empirical suffix-state occupancy vs. closed form.

use crate::params::ProtocolParams;
use crate::suffix_chain;
use crate::Result;
use nakamoto_sim::adversary::ImmediateReleaseAdversary;
use nakamoto_sim::execution::run_simulation;
use nakamoto_sim::metrics::SimReport;
use nakamoto_sim::montecarlo::TrialPlan;

/// Outcome of one validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRow {
    /// Parameters used.
    pub params: ProtocolParams,
    /// Rounds simulated.
    pub rounds: u64,
    /// Analytic `E[C] = T·ᾱ^{2Δ}α₁` (Eq. 26). The analytic rate uses
    /// the *simulator's* integer honest count, so small-n rounding of
    /// `µn` does not contaminate the comparison.
    pub expected_convergence: f64,
    /// Measured convergence opportunities.
    pub measured_convergence: u64,
    /// Analytic `E[A] = T·p·νn` (Eq. 27), integer adversary count.
    pub expected_adversary: f64,
    /// Measured adversary blocks.
    pub measured_adversary: u64,
    /// Closed-form suffix stationary distribution (Eq. 37).
    pub expected_suffix: Vec<f64>,
    /// Empirical suffix distribution from the run.
    pub measured_suffix: Vec<f64>,
    /// The full simulator report.
    pub report: SimReport,
}

impl ValidationRow {
    /// Relative error of the convergence count vs. Eq. (26).
    #[must_use]
    pub fn convergence_rel_error(&self) -> f64 {
        (self.measured_convergence as f64 - self.expected_convergence).abs()
            / self.expected_convergence.max(1.0)
    }

    /// Relative error of the adversary count vs. Eq. (27).
    #[must_use]
    pub fn adversary_rel_error(&self) -> f64 {
        (self.measured_adversary as f64 - self.expected_adversary).abs()
            / self.expected_adversary.max(1.0)
    }

    /// Largest absolute gap between measured and closed-form suffix
    /// occupancy.
    pub fn suffix_max_abs_error(&self) -> f64 {
        self.expected_suffix
            .iter()
            .zip(self.measured_suffix.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// The Eq. 26/27 expectations recomputed with the *simulator's* integer
/// miner counts (`n_honest = n − round(νn)`), matching what the oracle
/// actually samples — shared by the single-run and multi-trial paths so
/// the two can never drift.
struct IntegerPopulationExpectations {
    /// `α` for the integer honest population.
    alpha: f64,
    /// `E[C] = T·ᾱ^{2Δ}α₁` (Eq. 26).
    expected_convergence: f64,
    /// `E[A] = T·p·νn` (Eq. 27).
    expected_adversary: f64,
}

fn integer_population_expectations(
    params: &ProtocolParams,
    cfg: &nakamoto_sim::config::SimConfig,
    rounds: u64,
) -> IntegerPopulationExpectations {
    let n_honest = cfg.n_honest();
    let n_adv = cfg.n_adversary();
    let p = params.p();
    let ln_alpha_bar = n_honest as f64 * (-p).ln_1p();
    let alpha = -ln_alpha_bar.exp_m1();
    let ln_alpha1 = (p * n_honest as f64).ln() + (n_honest as f64 - 1.0) * (-p).ln_1p();
    let ln_rate = 2.0 * params.delta() as f64 * ln_alpha_bar + ln_alpha1;
    IntegerPopulationExpectations {
        alpha,
        expected_convergence: rounds as f64 * ln_rate.exp(),
        expected_adversary: rounds as f64 * p * n_adv as f64,
    }
}

/// Runs the simulator with an honestly-behaving adversary and compares
/// measured counts against the analytic identities.
///
/// # Errors
///
/// Propagates parameter validation failures.
pub fn validate(params: &ProtocolParams, rounds: u64, seed: u64) -> Result<ValidationRow> {
    let cfg = params.to_sim_config(seed);
    let report = run_simulation(cfg, Box::new(ImmediateReleaseAdversary::new()), rounds);

    let IntegerPopulationExpectations {
        alpha,
        expected_convergence,
        expected_adversary,
    } = integer_population_expectations(params, &cfg, rounds);

    let expected_suffix = suffix_chain::closed_form_stationary(alpha, params.delta())?;
    let measured_suffix: Vec<f64> = if report.suffix_rounds > 0 {
        report
            .suffix_occupancy
            .iter()
            .map(|&x| x as f64 / report.suffix_rounds as f64)
            .collect()
    } else {
        vec![0.0; expected_suffix.len()]
    };

    Ok(ValidationRow {
        params: *params,
        rounds,
        expected_convergence,
        measured_convergence: report.convergence_opportunities,
        expected_adversary,
        measured_adversary: report.adversary_blocks,
        expected_suffix,
        measured_suffix,
        report,
    })
}

/// Multi-trial validation: Eq. 26/27 expectations against the mean of
/// independent Monte-Carlo trials, with a standard error that makes
/// "is the gap just noise?" quantitative.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialValidationRow {
    /// Parameters used.
    pub params: ProtocolParams,
    /// Rounds per trial.
    pub rounds: u64,
    /// Number of trials.
    pub trials: u64,
    /// Analytic `E[C]` per trial (Eq. 26).
    pub expected_convergence: f64,
    /// Mean measured convergence opportunities per trial.
    pub mean_convergence: f64,
    /// Standard error of the per-trial convergence mean.
    pub sem_convergence: f64,
    /// Analytic `E[A]` per trial (Eq. 27).
    pub expected_adversary: f64,
    /// Mean measured adversary blocks per trial.
    pub mean_adversary: f64,
    /// Standard error of the per-trial adversary mean.
    pub sem_adversary: f64,
}

impl TrialValidationRow {
    /// Relative error of the mean convergence count vs. Eq. (26).
    #[must_use]
    pub fn convergence_rel_error(&self) -> f64 {
        (self.mean_convergence - self.expected_convergence).abs()
            / self.expected_convergence.max(1.0)
    }

    /// Relative error of the mean adversary count vs. Eq. (27).
    #[must_use]
    pub fn adversary_rel_error(&self) -> f64 {
        (self.mean_adversary - self.expected_adversary).abs() / self.expected_adversary.max(1.0)
    }

    /// Gap between the convergence mean and Eq. 26 in standard errors.
    #[must_use]
    pub fn convergence_z_score(&self) -> f64 {
        (self.mean_convergence - self.expected_convergence) / self.sem_convergence.max(1e-12)
    }
}

/// Mean and standard error of per-trial counts via the workspace's
/// Welford accumulator (SEM is 0 for a single trial, where the sample
/// variance is undefined).
fn mean_and_sem(counts: &[u64]) -> (f64, f64) {
    let mut moments = probability::summation::RunningMoments::new();
    for &c in counts {
        moments.push(c as f64);
    }
    let sem = if moments.count() < 2 {
        0.0
    } else {
        moments.standard_error()
    };
    (moments.mean(), sem)
}

/// Runs `trials` parallel honest-baseline simulations and compares the
/// per-trial means of `C` and `A` against Eqs. 26/27.
///
/// `seed` is the master seed of the trial fan-out (disjoint
/// `jump()`-derived streams per trial; results are independent of the
/// machine's thread count).
///
/// # Errors
///
/// Propagates parameter validation failures.
pub fn validate_trials(
    params: &ProtocolParams,
    rounds: u64,
    trials: u64,
    seed: u64,
) -> Result<TrialValidationRow> {
    let cfg = params.to_sim_config(seed);
    let run = TrialPlan::new(cfg, rounds, trials)
        .map_err(|e| crate::Error::invalid("trials", e.to_string()))?
        .run(|_| ImmediateReleaseAdversary::new());

    let IntegerPopulationExpectations {
        expected_convergence,
        expected_adversary,
        ..
    } = integer_population_expectations(params, &cfg, rounds);

    let (mean_convergence, sem_convergence) = mean_and_sem(&run.aggregate.convergence_counts);
    let (mean_adversary, sem_adversary) = mean_and_sem(&run.aggregate.adversary_counts);
    Ok(TrialValidationRow {
        params: *params,
        rounds,
        trials,
        expected_convergence,
        mean_convergence,
        sem_convergence,
        expected_adversary,
        mean_adversary,
        sem_adversary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A configuration where convergence opportunities are frequent:
    /// α ≈ 0.09, Δ = 2.
    fn fast_params() -> ProtocolParams {
        ProtocolParams::new(100, 2, 1e-3, 0.2).unwrap()
    }

    #[test]
    fn multi_trial_validation_tightens_on_expectations() {
        let params = fast_params();
        let row = validate_trials(&params, 150_000, 8, 99).unwrap();
        assert_eq!(row.trials, 8);
        assert!(
            row.convergence_rel_error() < 0.1,
            "Eq. 26 multi-trial: mean {} vs expected {}",
            row.mean_convergence,
            row.expected_convergence
        );
        assert!(
            row.adversary_rel_error() < 0.05,
            "Eq. 27 multi-trial: mean {} vs expected {}",
            row.mean_adversary,
            row.expected_adversary
        );
        assert!(row.sem_convergence > 0.0);
        // The mean should sit within ~4 standard errors of the theory.
        assert!(
            row.convergence_z_score().abs() < 4.0,
            "z = {}",
            row.convergence_z_score()
        );
    }

    #[test]
    fn multi_trial_deterministic_given_seed() {
        let params = fast_params();
        let a = validate_trials(&params, 20_000, 4, 5).unwrap();
        let b = validate_trials(&params, 20_000, 4, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn eq_26_and_27_validated_by_simulation() {
        let params = fast_params();
        let rounds = 600_000;
        let row = validate(&params, rounds, 1234).unwrap();
        assert!(
            row.expected_convergence > 500.0,
            "test needs a frequent pattern, got E[C] = {}",
            row.expected_convergence
        );
        assert!(
            row.convergence_rel_error() < 0.1,
            "Eq. 26: measured {} vs expected {}",
            row.measured_convergence,
            row.expected_convergence
        );
        assert!(
            row.adversary_rel_error() < 0.05,
            "Eq. 27: measured {} vs expected {}",
            row.measured_adversary,
            row.expected_adversary
        );
    }

    #[test]
    fn eq_37_suffix_occupancy_validated() {
        let params = fast_params();
        let row = validate(&params, 400_000, 77).unwrap();
        assert!(
            row.suffix_max_abs_error() < 0.01,
            "Eq. 37: max abs error {}",
            row.suffix_max_abs_error()
        );
        // Distributions both sum to 1.
        let sum: f64 = row.measured_suffix.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let params = fast_params();
        let a = validate(&params, 50_000, 5).unwrap();
        let b = validate(&params, 50_000, 5).unwrap();
        assert_eq!(a.measured_convergence, b.measured_convergence);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn delta_one_edge_case() {
        let params = ProtocolParams::new(50, 1, 2e-3, 0.1).unwrap();
        let row = validate(&params, 300_000, 9).unwrap();
        assert!(
            row.convergence_rel_error() < 0.1,
            "Δ=1: rel err {}",
            row.convergence_rel_error()
        );
    }
}
