//! A reconstruction of the Kiffer–Rajaraman–shelat (CCS 2018)
//! Markov-chain bound, for the paper's Section-IV discussion.
//!
//! The paper reports that reference \[6\]'s computation of the expected
//! inter-arrival lengths `ℓ₁₁`/`ℓ₁₀` uses `1/(µp)` where it should use
//! `1/α = 1/(1−(1−p)^{µn})` — i.e. it conflates the *per-miner* success
//! rate `µp` with the *aggregate per-round* honest success probability
//! `α`. We expose both variants so the ablation bench can show how far
//! the erroneous rate drifts (a factor ≈ n for small `p`).
//!
//! This is a documented reconstruction, not a transcription of \[6\]
//! (whose full constants live in its own appendix); what matters for the
//! paper's argument — and what we reproduce — is the *ratio* between the
//! corrected and uncorrected interarrival estimates and the resulting
//! sufficient conditions.

use crate::params::ProtocolParams;

/// Corrected expected waiting time between `H` rounds: `1/α`.
#[must_use]
pub fn interarrival_corrected(params: &ProtocolParams) -> f64 {
    1.0 / params.alpha()
}

/// The reported-as-incorrect waiting time: `1/(µp)` (per-miner rate,
/// missing the aggregation over `n` miners).
#[must_use]
pub fn interarrival_incorrect(params: &ProtocolParams) -> f64 {
    1.0 / (params.mu() * params.p())
}

/// The ratio `incorrect / corrected = α/(µp)` — approaches `n` as
/// `p → 0` (showing the mistake is not a constant-factor slip).
#[must_use]
pub fn interarrival_error_factor(params: &ProtocolParams) -> f64 {
    interarrival_incorrect(params) / interarrival_corrected(params)
}

/// Kiffer-style sufficient condition with the **corrected** rate: the
/// convergence-opportunity rate must exceed the adversary rate, i.e.
/// `ᾱ^{2Δ}α₁ > pνn` (Theorem 1 at `δ₁ → 0`).
#[must_use]
pub fn corrected_condition_holds(params: &ProtocolParams) -> bool {
    crate::theorem1::ln_margin(params) > 0.0
}

/// Kiffer-style condition with the **incorrect** interarrival: the
/// same inequality evaluated on *per-miner* rates throughout (honest
/// rate `µp` instead of `α`, adversary rate `νp` instead of `νnp`) —
/// the systematic substitution the `1/(µp)` slip corresponds to.
#[must_use]
pub fn incorrect_condition_holds(params: &ProtocolParams) -> bool {
    ln_incorrect_margin(params) > 0.0
}

/// Log-margin of the incorrect variant (for plotting the ablation).
#[must_use]
pub fn ln_incorrect_margin(params: &ProtocolParams) -> f64 {
    let rate = params.mu() * params.p(); // erroneous "α" = µp
    if rate >= 1.0 {
        return f64::NEG_INFINITY;
    }
    let ln_bar = (-rate).ln_1p();
    let ln_alpha1 = rate.ln() + ln_bar; // one success then none
    let ln_conv = 2.0 * params.delta() as f64 * ln_bar + ln_alpha1;
    ln_conv - (params.p() * params.nu()).ln() // erroneous "β" = νp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;

    fn params() -> ProtocolParams {
        ProtocolParams::new(1_000, 8, 1e-6, 0.25).unwrap()
    }

    #[test]
    fn error_factor_approaches_n() {
        // α ≈ µnp for small p, so α/(µp) ≈ n.
        let p = params();
        let f = interarrival_error_factor(&p);
        assert!((f - 1_000.0).abs() < 5.0, "factor {f}");
    }

    #[test]
    fn corrected_matches_theorem1_zero_delta() {
        let p = params();
        assert_eq!(
            corrected_condition_holds(&p),
            crate::theorem1::ln_margin(&p) > 0.0
        );
    }

    #[test]
    fn incorrect_condition_is_wildly_optimistic() {
        // With the per-miner rate the "convergence rate" is far too
        // high relative to pνn/… — at parameters where the corrected
        // condition fails, the incorrect one can still pass.
        let bad = ProtocolParams::from_c(1_000, 8, 0.5, 0.4).unwrap();
        assert!(!corrected_condition_holds(&bad));
        assert!(
            incorrect_condition_holds(&bad),
            "the uncorrected bound should (wrongly) accept these parameters"
        );
    }

    #[test]
    fn both_agree_deep_inside_safe_region() {
        let safe = ProtocolParams::from_c(1_000, 8, 100.0, 0.1).unwrap();
        assert!(corrected_condition_holds(&safe));
        assert!(incorrect_condition_holds(&safe));
    }

    #[test]
    fn margins_ordered() {
        // The incorrect margin always exceeds the corrected one in the
        // small-p regime (ᾱ' ≫ ᾱ, both raised to 2Δ).
        for &c in &[0.5, 1.0, 3.0] {
            let p = ProtocolParams::from_c(1_000, 8, c, 0.3).unwrap();
            assert!(
                ln_incorrect_margin(&p) > crate::theorem1::ln_margin(&p),
                "c={c}"
            );
        }
    }
}
