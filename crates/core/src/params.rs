//! The paper's model parameters (Table I) and derived quantities
//! (Eqs. 7–9), with all the constraints of Eqs. (1)–(3) enforced at
//! construction.

use crate::{Error, Result};
use probability::logfloat::LogFloat;

/// Validated protocol parameters `(n, Δ, p, ν)`.
///
/// Derived quantities are computed in log space where needed so the
/// type stays exact at the paper's Figure-1 scale (`Δ = 10¹³`,
/// `p ≈ 10⁻¹⁸`).
///
/// # Examples
///
/// ```
/// use consistency_core::params::ProtocolParams;
///
/// let params = ProtocolParams::new(100_000, 10_000_000_000_000, 1e-18, 0.2)?;
/// assert!((params.mu() - 0.8).abs() < 1e-15);
/// assert!(params.alpha() > 0.0 && params.alpha() < 1.0);
/// # Ok::<(), consistency_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolParams {
    n: u64,
    delta: u64,
    p: f64,
    nu: f64,
}

impl ProtocolParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless all the paper's model
    /// constraints hold: `n ≥ 4` (Eq. 3), `0 < ν < ½` (Eq. 2),
    /// `0 < p < 1`, `Δ ≥ 1`.
    pub fn new(n: u64, delta: u64, p: f64, nu: f64) -> Result<Self> {
        if n < 4 {
            return Err(Error::invalid(
                "n",
                format!("Eq. (3) requires n ≥ 4, got {n}"),
            ));
        }
        if delta == 0 {
            return Err(Error::invalid("delta", "Δ must be at least 1 round"));
        }
        if !(p > 0.0 && p < 1.0) || p.is_nan() {
            return Err(Error::invalid(
                "p",
                format!("hardness must lie in (0, 1), got {p}"),
            ));
        }
        if !(nu > 0.0 && nu < 0.5) || nu.is_nan() {
            return Err(Error::invalid(
                "nu",
                format!("Eq. (2) requires 0 < ν < 1/2, got {nu}"),
            ));
        }
        Ok(ProtocolParams { n, delta, p, nu })
    }

    /// Builds parameters from the paper's evaluation axis: given
    /// `(n, Δ, c, ν)`, sets `p = 1/(c·n·Δ)`.
    ///
    /// # Errors
    ///
    /// Same contract as [`ProtocolParams::new`]; additionally rejects
    /// non-positive `c`.
    pub fn from_c(n: u64, delta: u64, c: f64, nu: f64) -> Result<Self> {
        if !(c > 0.0) || c.is_nan() {
            return Err(Error::invalid("c", format!("must be positive, got {c}")));
        }
        let p = 1.0 / (c * n as f64 * delta as f64);
        ProtocolParams::new(n, delta, p, nu)
    }

    /// Number of miners `n`.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Maximum message delay `Δ`.
    #[must_use]
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// Proof-of-work hardness `p`.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Adversarial fraction `ν`.
    #[must_use]
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// Honest fraction `µ = 1 − ν` (Eq. 1).
    #[must_use]
    pub fn mu(&self) -> f64 {
        1.0 - self.nu
    }

    /// Honest computational mass `µn` (a real number; the simulator
    /// rounds it to a miner count).
    #[must_use]
    pub fn mu_n(&self) -> f64 {
        self.mu() * self.n as f64
    }

    /// Adversarial computational mass `νn`.
    #[must_use]
    pub fn nu_n(&self) -> f64 {
        self.nu * self.n as f64
    }

    /// `ln(µ/ν)`, the paper's recurring logarithm.
    #[must_use]
    pub fn ln_mu_over_nu(&self) -> f64 {
        (self.mu() / self.nu).ln()
    }

    /// The paper's `c = 1/(pnΔ)`: expected number of Δ-delays before
    /// some block is mined.
    #[must_use]
    pub fn c(&self) -> f64 {
        1.0 / (self.p * self.n as f64 * self.delta as f64)
    }

    /// `ln ᾱ = µn·ln(1−p)` — log of the probability that no honest
    /// miner succeeds in a round (Eq. 8), exact for any scale.
    #[must_use]
    pub fn ln_alpha_bar(&self) -> f64 {
        self.mu_n() * (-self.p).ln_1p()
    }

    /// `ᾱ = (1−p)^{µn}` (Eq. 8).
    #[must_use]
    pub fn alpha_bar(&self) -> f64 {
        self.ln_alpha_bar().exp()
    }

    /// `α = 1 − (1−p)^{µn}` (Eq. 7), computed without cancellation.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        -self.ln_alpha_bar().exp_m1()
    }

    /// `ln α₁ = ln(pµn) + (µn−1)·ln(1−p)` (Eq. 9).
    #[must_use]
    pub fn ln_alpha1(&self) -> f64 {
        (self.p * self.mu_n()).ln() + (self.mu_n() - 1.0) * (-self.p).ln_1p()
    }

    /// `α₁ = pµn·(1−p)^{µn−1}` (Eq. 9): exactly one honest success.
    #[must_use]
    pub fn alpha1(&self) -> f64 {
        self.ln_alpha1().exp()
    }

    /// `ᾱ` as a [`LogFloat`] (useful for `ᾱ^{2Δ}` at huge Δ).
    #[must_use]
    pub fn alpha_bar_log(&self) -> LogFloat {
        LogFloat::from_ln(self.ln_alpha_bar())
    }

    /// `α₁` as a [`LogFloat`].
    #[must_use]
    pub fn alpha1_log(&self) -> LogFloat {
        LogFloat::from_ln(self.ln_alpha1())
    }

    /// The paper's headline check: `c > 2µ/ln(µ/ν)` (the asymptotic
    /// form of Theorem 2's bound, Figure 1's magenta line).
    #[must_use]
    pub fn is_consistent_by_neat_bound(&self) -> bool {
        self.c() > crate::theorem2::neat_bound(self.nu)
    }

    /// Converts to a simulator configuration (same `(n, ν, p, Δ)`).
    #[must_use]
    pub fn to_sim_config(&self, seed: u64) -> nakamoto_sim::config::SimConfig {
        nakamoto_sim::config::SimConfig::new(self.n, self.nu, self.p, self.delta, seed)
            .expect("ProtocolParams constraints are a superset of SimConfig's") // detlint: allow(panic-expect) -- ProtocolParams validation is strictly stronger than SimConfig validation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_params(c: f64, nu: f64) -> ProtocolParams {
        ProtocolParams::from_c(100_000, 10_000_000_000_000, c, nu).unwrap()
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(ProtocolParams::new(3, 1, 0.1, 0.2).is_err());
        assert!(ProtocolParams::new(10, 0, 0.1, 0.2).is_err());
        assert!(ProtocolParams::new(10, 1, 0.0, 0.2).is_err());
        assert!(ProtocolParams::new(10, 1, 1.0, 0.2).is_err());
        assert!(ProtocolParams::new(10, 1, 0.1, 0.0).is_err());
        assert!(ProtocolParams::new(10, 1, 0.1, 0.5).is_err());
        assert!(ProtocolParams::from_c(10, 1, 0.0, 0.2).is_err());
        assert!(ProtocolParams::from_c(10, 1, -2.0, 0.2).is_err());
    }

    #[test]
    fn mu_nu_sum_to_one() {
        let p = ProtocolParams::new(100, 5, 1e-4, 0.3).unwrap();
        assert!((p.mu() + p.nu() - 1.0).abs() < 1e-15);
        assert!((p.mu_n() + p.nu_n() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn c_round_trips_through_from_c() {
        let p = figure1_params(3.0, 0.25);
        assert!((p.c() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_quantities_match_binomial() {
        // Cross-check α, ᾱ, α₁ against the probability crate's binomial
        // at an integer µn.
        let p = ProtocolParams::new(1000, 2, 1e-4, 0.2).unwrap();
        let mu_n = p.mu_n() as u64; // 800, exact
        let d = probability::binomial::Binomial::new(mu_n, 1e-4).unwrap();
        assert!((p.alpha_bar() - d.prob_zero()).abs() < 1e-14);
        assert!((p.alpha() - d.prob_positive()).abs() < 1e-14);
        // α₁ goes through ln_choose on the binomial side; allow a few
        // ulps of divergence between the two formulations.
        assert!((p.alpha1() - d.pmf(1)).abs() < 1e-12 * p.alpha1());
    }

    #[test]
    fn alpha_identities() {
        for &(n, delta, pw, nu) in &[
            (100u64, 2u64, 1e-3f64, 0.1f64),
            (1000, 8, 1e-5, 0.3),
            (100_000, 1_000, 1e-11, 0.45),
        ] {
            let p = ProtocolParams::new(n, delta, pw, nu).unwrap();
            assert!((p.alpha() + p.alpha_bar() - 1.0).abs() < 1e-12);
            assert!(p.alpha1() <= p.alpha() * (1.0 + 1e-12));
            assert!(p.alpha1() > 0.0);
        }
    }

    #[test]
    fn log_quantities_survive_figure1_scale() {
        // Δ = 1e13, c = 0.1 → p = 1/(0.1·1e5·1e13) = 1e-17.
        let p = figure1_params(0.1, 0.3);
        let two_delta = 2.0 * p.delta() as f64;
        let ln_rate = two_delta * p.ln_alpha_bar() + p.ln_alpha1();
        assert!(ln_rate.is_finite(), "log-space must not overflow");
        // Linear space would underflow ᾱ^{2Δ} here? For c = 0.1:
        // ln ᾱ = −µnp = −0.7e5·1e-17 = −7e-13, ×2Δ = −14: fine. For a
        // harsher check push c down via larger p.
        let harsh = ProtocolParams::new(100_000, 10_000_000_000_000, 1e-12, 0.3).unwrap();
        let ln_rate = 2.0 * harsh.delta() as f64 * harsh.ln_alpha_bar() + harsh.ln_alpha1();
        assert!(ln_rate < -1e6, "deep underflow regime reached: {ln_rate}");
        assert_eq!(
            harsh
                .alpha_bar_log()
                .powi(2 * harsh.delta() as i64)
                .to_f64(),
            0.0,
            "sanity: linear space underflows to zero"
        );
    }

    #[test]
    fn neat_bound_check_matches_figure1_examples() {
        // At ν = 0.3: bound = 2·0.7/ln(7/3) ≈ 1.652. c = 3 passes,
        // c = 1 fails.
        assert!(figure1_params(3.0, 0.3).is_consistent_by_neat_bound());
        assert!(!figure1_params(1.0, 0.3).is_consistent_by_neat_bound());
    }

    #[test]
    fn sim_config_conversion() {
        let p = ProtocolParams::new(100, 4, 1e-3, 0.25).unwrap();
        let cfg = p.to_sim_config(42);
        assert_eq!(cfg.n_miners, 100);
        assert_eq!(cfg.delta, 4);
        assert_eq!(cfg.seed, 42);
        assert!((cfg.adversary_fraction - 0.25).abs() < 1e-15);
    }
}

// Deterministic randomized sweeps (in-tree RNG; proptest is unavailable
// in the offline build environment).
#[cfg(test)]
mod randomized_tests {
    use super::*;
    use probability::rng::{RandomSource, SplitMix64};

    const CASES: usize = 256;

    #[test]
    fn alpha_complement_identity() {
        let mut rng = SplitMix64::new(0xFA_01);
        for _ in 0..CASES {
            let n = rng.next_range(4, 999_999);
            let delta = rng.next_range(1, 999);
            let p_exp = -15.0 + rng.next_f64() * 13.0;
            let nu = 0.01 + rng.next_f64() * 0.48;
            let p = 10f64.powf(p_exp);
            let params = ProtocolParams::new(n, delta, p, nu).unwrap();
            assert!((params.alpha() + params.alpha_bar() - 1.0).abs() < 1e-12);
            assert!(params.ln_alpha_bar() <= 0.0);
            assert!(params.ln_alpha1() <= 1e-12);
        }
    }

    #[test]
    fn c_positive_and_consistent_with_p() {
        let mut rng = SplitMix64::new(0xFA_02);
        for _ in 0..CASES {
            let n = rng.next_range(4, 999_999);
            let delta = rng.next_range(1, 9_999);
            let c = 0.01 + rng.next_f64() * 999.99;
            let nu = 0.01 + rng.next_f64() * 0.48;
            let params = ProtocolParams::from_c(n, delta, c, nu).unwrap();
            assert!(
                (params.c() - c).abs() < 1e-6 * c,
                "c mismatch: {} vs {c}",
                params.c()
            );
        }
    }
}
