//! Chain growth and chain quality — the two companion properties the
//! paper's Section II surveys and names as future work for its proof
//! technique. We provide the standard analytic bounds and wire them to
//! the simulator for validation.
//!
//! * **Chain growth** (Pass–Seeman–Shelat style): over any window, the
//!   honest chain grows at rate at least `g = ᾱ·α/(ᾱ + αΔ)`-shaped; we
//!   expose the common lower bound `α/(1 + αΔ)` (an `H` round grows the
//!   chain unless it falls in another block's Δ-shadow) and the
//!   immediate-release exact rate `α_h + νnp`.
//! * **Chain quality**: the fraction of honest blocks in any window of
//!   an honest chain is at least `1 − ν/µ`-shaped in the synchronous
//!   limit; the Δ-delay bound degrades with `αΔ`.

use crate::params::ProtocolParams;

/// Lower bound on chain growth rate (blocks per round) in the Δ-delay
/// model: `α / (1 + α·Δ)`. Every honest success grows the chain unless
/// it lands within Δ rounds of an earlier unpropagated success.
#[must_use]
pub fn growth_lower_bound(params: &ProtocolParams) -> f64 {
    let alpha = params.alpha();
    alpha / (1.0 + alpha * params.delta() as f64)
}

/// Upper bound on chain growth rate: `α + pνn` (every honest `H` round
/// plus every adversarial success can contribute at most one height).
#[must_use]
pub fn growth_upper_bound(params: &ProtocolParams) -> f64 {
    params.alpha() + crate::theorem1::adversary_rate(params)
}

/// Exact growth rate under immediate-release behaviour with a single
/// honest group (validated against the simulator): `α + pνn` with the
/// adversary's sequential blocks all counting.
#[must_use]
pub fn growth_immediate_release(params: &ProtocolParams) -> f64 {
    params.alpha() + crate::theorem1::adversary_rate(params)
}

/// Chain-quality lower bound in the ideal (synchronous, immediate
/// publish) regime: honest share of the chain `α/(α + pνn)`.
#[must_use]
pub fn quality_ideal(params: &ProtocolParams) -> f64 {
    let alpha = params.alpha();
    alpha / (alpha + crate::theorem1::adversary_rate(params))
}

/// Pessimistic quality lower bound under withholding in the Δ-delay
/// model: the adversary can waste one honest block per adversarial
/// block (by matching), so the honest share drops to
/// `max(0, (α·ᾱ^Δ − pνn) / α·ᾱ^Δ)`-shaped. We expose the standard
/// `1 − pνn/(α·ᾱ^Δ)` form, clamped to `[0, 1]`.
#[must_use]
pub fn quality_adversarial_lower_bound(params: &ProtocolParams) -> f64 {
    let effective_honest = (params.delta() as f64 * params.ln_alpha_bar()).exp() * params.alpha();
    if effective_honest <= 0.0 {
        return 0.0;
    }
    (1.0 - crate::theorem1::adversary_rate(params) / effective_honest).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;
    use nakamoto_sim::adversary::{ImmediateReleaseAdversary, PrivateChainAdversary};
    use nakamoto_sim::execution::run_simulation;

    fn params() -> ProtocolParams {
        ProtocolParams::new(200, 4, 1e-3, 0.25).unwrap()
    }

    #[test]
    fn growth_bounds_ordered() {
        for &c in &[0.5, 1.0, 5.0, 50.0] {
            for &nu in &[0.1, 0.4] {
                let p = ProtocolParams::from_c(500, 8, c, nu).unwrap();
                assert!(growth_lower_bound(&p) <= growth_upper_bound(&p));
                assert!(growth_lower_bound(&p) > 0.0);
            }
        }
    }

    #[test]
    fn growth_lower_bound_tightens_with_larger_c() {
        // Slower mining (larger c) → smaller αΔ → bounds converge.
        let fast = ProtocolParams::from_c(500, 8, 0.5, 0.2).unwrap();
        let slow = ProtocolParams::from_c(500, 8, 50.0, 0.2).unwrap();
        let gap = |p: &ProtocolParams| {
            (growth_upper_bound(p) - growth_lower_bound(p)) / growth_upper_bound(p)
        };
        assert!(gap(&slow) < gap(&fast));
    }

    #[test]
    fn quality_ideal_near_mu_for_small_p() {
        // α ≈ µnp, so quality_ideal ≈ µnp/(µnp + νnp) = µ.
        let p = ProtocolParams::from_c(1_000, 8, 20.0, 0.3).unwrap();
        assert!((quality_ideal(&p) - 0.7).abs() < 0.01);
    }

    #[test]
    fn adversarial_quality_below_ideal() {
        let p = params();
        assert!(quality_adversarial_lower_bound(&p) <= quality_ideal(&p));
    }

    #[test]
    fn simulated_growth_within_bounds() {
        let p = params();
        let cfg = p.to_sim_config(2025);
        let report = run_simulation(cfg, Box::new(ImmediateReleaseAdversary::new()), 200_000);
        let g = report.chain_growth_rate();
        assert!(
            g >= growth_lower_bound(&p) * 0.95,
            "growth {g} below lower bound {}",
            growth_lower_bound(&p)
        );
        assert!(
            g <= growth_upper_bound(&p) * 1.05,
            "growth {g} above upper bound {}",
            growth_upper_bound(&p)
        );
    }

    #[test]
    fn simulated_quality_between_bounds() {
        let p = params();
        let cfg = p.to_sim_config(2026);
        let honest = run_simulation(cfg, Box::new(ImmediateReleaseAdversary::new()), 200_000);
        assert!(
            (honest.chain_quality() - quality_ideal(&p)).abs() < 0.05,
            "quality {} vs ideal {}",
            honest.chain_quality(),
            quality_ideal(&p)
        );
        let attacked_cfg = p.to_sim_config(2027);
        let attacked = run_simulation(
            attacked_cfg,
            Box::new(PrivateChainAdversary::new(p.delta())),
            200_000,
        );
        assert!(
            attacked.chain_quality() >= quality_adversarial_lower_bound(&p) - 0.05,
            "attacked quality {} below pessimistic bound {}",
            attacked.chain_quality(),
            quality_adversarial_lower_bound(&p)
        );
    }
}
