//! Theorem 1: Nakamoto's protocol satisfies consistency if
//! `ᾱ^{2Δ}·α₁ ≥ (1+δ₁)·p·ν·n` for some constant `δ₁ > 0` (Ineq. 10).
//!
//! Section V shows Ineq. (10) is equivalent to
//! `E[C(t₀,t₀+T−1)] ≥ (1+δ₁)·E[A(t₀,t₀+T−1)]` (Ineq. 18) with
//! `E[C] = T·ᾱ^{2Δ}α₁` (Eq. 26) and `E[A] = T·p·ν·n` (Eq. 27). All
//! quantities here are computed in log space, so the checks remain exact
//! at `Δ = 10¹³`.

use crate::params::ProtocolParams;
use probability::logfloat::LogFloat;

/// `ln(ᾱ^{2Δ}·α₁)` — log of the per-round convergence-opportunity
/// probability (Eq. 44).
#[must_use]
pub fn ln_convergence_rate(params: &ProtocolParams) -> f64 {
    2.0 * params.delta() as f64 * params.ln_alpha_bar() + params.ln_alpha1()
}

/// The per-round convergence-opportunity probability `ᾱ^{2Δ}·α₁` as a
/// [`LogFloat`] (may be far below `f64` range).
#[must_use]
pub fn convergence_rate(params: &ProtocolParams) -> LogFloat {
    LogFloat::from_ln(ln_convergence_rate(params))
}

/// The per-round adversary block rate `p·ν·n` (Eq. 27's per-round mean).
#[must_use]
pub fn adversary_rate(params: &ProtocolParams) -> f64 {
    params.p() * params.nu_n()
}

/// The margin of Ineq. (10) in log space:
/// `ln(ᾱ^{2Δ}α₁) − ln(pνn)`.
///
/// Theorem 1's condition holds for constant `δ₁` iff this is
/// `≥ ln(1+δ₁)`; in particular a positive margin means *some* positive
/// `δ₁` exists.
#[must_use]
pub fn ln_margin(params: &ProtocolParams) -> f64 {
    ln_convergence_rate(params) - adversary_rate(params).ln()
}

/// Checks Ineq. (10) for a given `δ₁`.
///
/// # Panics
///
/// Panics if `delta1 ≤ 0` (Theorem 1 requires a positive constant).
#[must_use]
pub fn holds(params: &ProtocolParams, delta1: f64) -> bool {
    assert!(delta1 > 0.0, "Theorem 1 requires δ₁ > 0");
    ln_margin(params) >= delta1.ln_1p()
}

/// The largest `δ₁` for which Ineq. (10) holds, or `None` when even
/// `δ₁ → 0` fails (margin ≤ 0).
#[must_use]
pub fn max_delta1(params: &ProtocolParams) -> Option<f64> {
    let margin = ln_margin(params);
    if margin <= 0.0 {
        return None;
    }
    Some(margin.exp_m1())
}

/// `E[C(t₀, t₀+T−1)] = T·ᾱ^{2Δ}α₁` (Eq. 26).
#[must_use]
pub fn expected_convergence_opportunities(params: &ProtocolParams, t: u64) -> f64 {
    t as f64 * ln_convergence_rate(params).exp()
}

/// `E[A(t₀, t₀+T−1)] = T·p·ν·n` (Eq. 27).
#[must_use]
pub fn expected_adversary_blocks(params: &ProtocolParams, t: u64) -> f64 {
    t as f64 * adversary_rate(params)
}

/// The paper's explicit constants of Eq. (23), chosen so that
/// `(1−δ₂)(1+δ₁) − (1+δ₃) > 0`:
/// `δ₂ = 1 − (1+δ₁)^{−1/3}`, `δ₃ = (1+δ₁)^{1/3} − 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackConstants {
    /// Lower-tail slack for `C` (Ineq. 19).
    pub delta2: f64,
    /// Upper-tail slack for `A` (Ineq. 20).
    pub delta3: f64,
}

/// Computes Eq. (23)'s constants from `δ₁`.
///
/// # Panics
///
/// Panics if `delta1 ≤ 0`.
#[must_use]
pub fn slack_constants(delta1: f64) -> SlackConstants {
    assert!(delta1 > 0.0, "δ₁ must be positive");
    let third_root = (1.0 + delta1).powf(1.0 / 3.0);
    SlackConstants {
        delta2: 1.0 - 1.0 / third_root,
        delta3: third_root - 1.0,
    }
}

/// The guaranteed gap of display (24):
/// `[(1+δ₁)^{2/3} − (1+δ₁)^{1/3}]·E[A(t₀,t₀+T−1)]` — the lower bound on
/// `C − A` that holds with probability `1 − e^{−Ω(T)}`.
#[must_use]
pub fn guaranteed_gap(params: &ProtocolParams, delta1: f64, t: u64) -> f64 {
    assert!(delta1 > 0.0, "δ₁ must be positive");
    let b = 1.0 + delta1;
    (b.powf(2.0 / 3.0) - b.powf(1.0 / 3.0)) * expected_adversary_blocks(params, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;

    fn safe_params() -> ProtocolParams {
        // c = 50 at ν = 0.1 — deep inside the consistent region.
        ProtocolParams::from_c(1_000, 4, 50.0, 0.1).unwrap()
    }

    fn unsafe_params() -> ProtocolParams {
        // c = 0.2 at ν = 0.4 — far below any bound.
        ProtocolParams::from_c(1_000, 4, 0.2, 0.4).unwrap()
    }

    #[test]
    fn margin_positive_in_safe_regime() {
        assert!(ln_margin(&safe_params()) > 0.0);
        assert!(holds(&safe_params(), 0.1));
        assert!(max_delta1(&safe_params()).is_some());
    }

    #[test]
    fn margin_negative_in_unsafe_regime() {
        assert!(ln_margin(&unsafe_params()) < 0.0);
        assert!(!holds(&unsafe_params(), 0.1));
        assert!(max_delta1(&unsafe_params()).is_none());
    }

    #[test]
    fn max_delta1_is_tight() {
        let p = safe_params();
        let d = max_delta1(&p).unwrap();
        assert!(holds(&p, d * (1.0 - 1e-9)));
        assert!(!holds(&p, d * (1.0 + 1e-6)));
    }

    #[test]
    fn expectations_scale_linearly_in_t() {
        let p = safe_params();
        let e1 = expected_convergence_opportunities(&p, 1_000);
        let e2 = expected_convergence_opportunities(&p, 2_000);
        assert!((e2 - 2.0 * e1).abs() < 1e-9 * e2.abs().max(1.0));
        let a1 = expected_adversary_blocks(&p, 1_000);
        let a2 = expected_adversary_blocks(&p, 2_000);
        assert!((a2 - 2.0 * a1).abs() < 1e-9 * a2);
    }

    #[test]
    fn condition_10_equals_condition_18() {
        // Ineq. (10) ⇔ Ineq. (18): E[C] ≥ (1+δ₁)E[A] for any T.
        let p = safe_params();
        let delta1 = 0.25;
        let t = 10_000u64;
        let lhs_10 = holds(&p, delta1);
        let lhs_18 = expected_convergence_opportunities(&p, t)
            >= (1.0 + delta1) * expected_adversary_blocks(&p, t);
        assert_eq!(lhs_10, lhs_18);
    }

    #[test]
    fn slack_constants_satisfy_eq_23_identity() {
        for &d1 in &[0.01, 0.5, 2.0, 10.0] {
            let s = slack_constants(d1);
            assert!(s.delta2 > 0.0 && s.delta2 < 1.0);
            assert!(s.delta3 > 0.0);
            // (1−δ₂)(1+δ₁) = (1+δ₁)^{2/3} and (1+δ₃) = (1+δ₁)^{1/3}, so
            // the Eq. (24) coefficient is positive.
            let coeff = (1.0 - s.delta2) * (1.0 + d1) - (1.0 + s.delta3);
            let expected = (1.0 + d1).powf(2.0 / 3.0) - (1.0 + d1).powf(1.0 / 3.0);
            assert!((coeff - expected).abs() < 1e-12);
            assert!(coeff > 0.0);
        }
    }

    #[test]
    fn guaranteed_gap_positive_and_grows_with_t() {
        let p = safe_params();
        let g1 = guaranteed_gap(&p, 0.5, 1_000);
        let g2 = guaranteed_gap(&p, 0.5, 2_000);
        assert!(g1 > 0.0);
        assert!((g2 - 2.0 * g1).abs() < 1e-9 * g2);
    }

    #[test]
    fn log_space_survives_figure1_scale() {
        let p = ProtocolParams::from_c(100_000, 10_000_000_000_000, 2.0, 0.3).unwrap();
        let m = ln_margin(&p);
        assert!(m.is_finite());
        // At c = 2 > neat bound ≈ 1.652 for ν = 0.3, Theorem 1's margin
        // must be positive even at Δ = 1e13.
        assert!(m > 0.0, "margin {m}");
    }

    #[test]
    fn theorem1_tracks_neat_bound_asymptotically() {
        // For large Δ and n, Theorem 1's threshold in c approaches
        // 2µ/ln(µ/ν): check the sign flips near the neat bound.
        let nu = 0.25;
        let neat = crate::theorem2::neat_bound(nu);
        let above = ProtocolParams::from_c(100_000, 1_000_000, neat * 1.05, nu).unwrap();
        let below = ProtocolParams::from_c(100_000, 1_000_000, neat * 0.95, nu).unwrap();
        assert!(ln_margin(&above) > 0.0);
        assert!(ln_margin(&below) < 0.0);
    }
}
