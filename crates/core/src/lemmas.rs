//! Lemmas 2–8 and Propositions 1–2: the chain of sufficient conditions
//! (displays 52–59) that turns Theorem 1's inequality into the neat
//! bound. Every lemma is exposed as *both sides of its inequality*, so
//! the implication chain can be audited mechanically on parameter grids
//! (see the `lemma_audit` bench binary).
//!
//! Throughout, `L = ln(µ/ν)` and quantities involving `x^{1/(2Δ)}` are
//! computed via `exp/expm1` so they stay exact at `Δ = 10¹³`.

use crate::params::ProtocolParams;

/// `(ν/µ)^{1/(2Δ)}`, computed as `exp(−L/(2Δ))`.
#[must_use]
pub fn nu_over_mu_root(params: &ProtocolParams) -> f64 {
    (-params.ln_mu_over_nu() / (2.0 * params.delta() as f64)).exp()
}

/// `1 − (ν/µ)^{1/(2Δ)}` without cancellation (`−expm1(−L/(2Δ))`).
#[must_use]
pub fn one_minus_nu_over_mu_root(params: &ProtocolParams) -> f64 {
    -(-params.ln_mu_over_nu() / (2.0 * params.delta() as f64)).exp_m1()
}

/// **Lemma 2** (Appendix B). Under `0 < pµn < 1`:
/// `ᾱ ≥ ((1+δ₁)/(1−pµn) · ν/µ)^{1/(2Δ)}` (Ineq. 66) implies Theorem 1's
/// `ᾱ^{2Δ}α₁ ≥ (1+δ₁)pνn` (Ineq. 10).
///
/// Returns `(lhs_holds, rhs_holds)` so callers can assert the
/// implication `lhs → rhs`.
#[must_use]
pub fn lemma2(params: &ProtocolParams, delta1: f64) -> (bool, bool) {
    let p_mu_n = params.p() * params.mu_n();
    assert!(
        p_mu_n > 0.0 && p_mu_n < 1.0,
        "Lemma 2 requires 0 < pµn < 1, got {p_mu_n}"
    );
    // ln of Ineq. (66)'s RHS.
    let ln_rhs66 = (delta1.ln_1p() - (-p_mu_n).ln_1p() - params.ln_mu_over_nu())
        / (2.0 * params.delta() as f64);
    let lhs = params.ln_alpha_bar() >= ln_rhs66;
    let rhs = crate::theorem1::ln_margin(params) >= delta1.ln_1p();
    (lhs, rhs)
}

/// **Lemma 3** (Appendix C). Under Ineq. (50) with constant `ε₁`, for
/// `δ₄` above the (68) threshold and `δ₁` from Eq. (69):
/// `((1+δ₁)/(1−pµn))^{1/(2Δ)} ≤ 1 + δ₄/(2Δ)` (Ineq. 70).
///
/// Returns `(lhs, rhs)` of Ineq. (70) so the caller can assert
/// `lhs ≤ rhs`.
#[must_use]
pub fn lemma3(params: &ProtocolParams, eps1: f64, eps2: f64) -> (f64, f64) {
    let consts =
        crate::theorem3::Constants::new(eps1, eps2, params.nu()).expect("validated upstream"); // detlint: allow(panic-expect) -- valid eps/nu is a documented precondition of the lemma helpers
    let p_mu_n = params.p() * params.mu_n();
    let two_delta = 2.0 * params.delta() as f64;
    let lhs = ((consts.delta1.ln_1p() - (-p_mu_n).ln_1p()) / two_delta).exp();
    let rhs = 1.0 + consts.delta4 / two_delta;
    (lhs, rhs)
}

/// **Lemma 4** (Appendix D). Under `0 < δ₄ < L`, the condition
/// `c ≥ 1/(nΔ·(1 − [(1+δ₄/(2Δ))(ν/µ)^{1/(2Δ)}]^{1/(µn)}))` (Ineq. 74)
/// implies `ᾱ ≥ (1+δ₄/(2Δ))(ν/µ)^{1/(2Δ)}` (Ineq. 71).
///
/// Returns `(c_threshold_74, alpha_bar_target_71_ln)` — the caller
/// compares `params.c()` to the first and `ln ᾱ` to the second.
#[must_use]
pub fn lemma4(params: &ProtocolParams, delta4: f64) -> (f64, f64) {
    assert_delta4_range(params, delta4);
    let two_delta = 2.0 * params.delta() as f64;
    // y = ln[(1+δ₄/(2Δ))·(ν/µ)^{1/(2Δ)}] < 0 by Proposition 2.
    let y = (delta4 / two_delta).ln_1p() - params.ln_mu_over_nu() / two_delta;
    debug_assert!(y < 0.0, "Proposition 2 violated: y = {y}");
    // Ineq. (74): c ≥ 1/(nΔ·(1 − e^{y/(µn)})).
    let denom = -(y / params.mu_n()).exp_m1();
    let c_threshold = 1.0 / (params.n() as f64 * params.delta() as f64 * denom);
    (c_threshold, y)
}

/// **Proposition 2** (Appendix E): under `0 < δ₄ < L`,
/// `1 − (1+δ₄/(2Δ))(ν/µ)^{1/(2Δ)} > 0`. Returns that quantity.
#[must_use]
pub fn proposition2(params: &ProtocolParams, delta4: f64) -> f64 {
    assert_delta4_range(params, delta4);
    let two_delta = 2.0 * params.delta() as f64;
    let y = (delta4 / two_delta).ln_1p() - params.ln_mu_over_nu() / two_delta;
    -y.exp_m1()
}

/// **Lemma 5** (Appendix F): the simpler threshold
/// `µ/(Δ·[1−(1+δ₄/(2Δ))(ν/µ)^{1/(2Δ)}])` (Ineq. 77's RHS) dominates
/// Lemma 4's threshold (Ineq. 74's RHS).
///
/// Returns `(lemma5_threshold, lemma4_threshold)`; Lemma 5 asserts
/// `lemma5_threshold ≥ lemma4_threshold`.
#[must_use]
pub fn lemma5(params: &ProtocolParams, delta4: f64) -> (f64, f64) {
    let a = proposition2(params, delta4);
    let lemma5_threshold = params.mu() / (params.delta() as f64 * a);
    let (lemma4_threshold, _) = lemma4(params, delta4);
    (lemma5_threshold, lemma4_threshold)
}

/// **Lemma 6** (Appendix G): Ineq. (79) —
/// `1/(1−(ν/µ)^{1/(2Δ)}) · (1 + δ₄/(L−δ₄))` strictly exceeds
/// `1/(1−(1+δ₄/(2Δ))(ν/µ)^{1/(2Δ)})`.
///
/// Returns `(lhs, rhs)` of Ineq. (79); the lemma asserts `lhs > rhs`.
#[must_use]
pub fn lemma6(params: &ProtocolParams, delta4: f64) -> (f64, f64) {
    assert_delta4_range(params, delta4);
    let ell = params.ln_mu_over_nu();
    let lhs = (1.0 + delta4 / (ell - delta4)) / one_minus_nu_over_mu_root(params);
    let rhs = 1.0 / proposition2(params, delta4);
    (lhs, rhs)
}

/// **Lemma 7** (Appendix H): Ineq. (82) —
/// `2/L ≤ 1/(Δ·[1−(ν/µ)^{1/(2Δ)}]) ≤ 2/L + 1/Δ`.
///
/// Returns `(lower, middle, upper)`.
#[must_use]
pub fn lemma7(params: &ProtocolParams) -> (f64, f64, f64) {
    let ell = params.ln_mu_over_nu();
    let lower = 2.0 / ell;
    let middle = 1.0 / (params.delta() as f64 * one_minus_nu_over_mu_root(params));
    let upper = 2.0 / ell + 1.0 / params.delta() as f64;
    (lower, middle, upper)
}

/// **Lemma 8** (Appendix I): with δ₄ from Eq. (60),
/// `1 + δ₄/(L−δ₄) < (1+ε₂)/(1−ε₁)`.
///
/// Returns `(lhs, rhs)`.
#[must_use]
pub fn lemma8(nu: f64, eps1: f64, eps2: f64) -> (f64, f64) {
    let consts = crate::theorem3::Constants::new(eps1, eps2, nu).expect("validated upstream"); // detlint: allow(panic-expect) -- valid eps/nu is a documented precondition of the lemma helpers
    let ell = ((1.0 - nu) / nu).ln();
    let lhs = 1.0 + consts.delta4 / (ell - consts.delta4);
    let rhs = (1.0 + eps2) / (1.0 - eps1);
    (lhs, rhs)
}

/// **Proposition 1** (Appendix A): `min π_{F‖P}` — see
/// [`crate::extended_chain::ln_min_pi`] for the log-space value; this
/// re-export exists so the lemma audit can exercise the whole appendix
/// from one module.
pub use crate::extended_chain::ln_min_pi as proposition1_ln_min_pi;

/// Audits the full implication chain (52)–(59) at one parameter point:
/// if Theorem 3's premises hold, every downstream implication must fire.
/// Returns an error message naming the first broken link, if any.
pub fn audit_chain(
    params: &ProtocolParams,
    eps1: f64,
    eps2: f64,
) -> std::result::Result<(), String> {
    let consts =
        crate::theorem3::Constants::new(eps1, eps2, params.nu()).map_err(|e| e.to_string())?;
    let ell = params.ln_mu_over_nu();

    // Premise checks (Theorem 3's conditions).
    let premises = crate::theorem3::holds(params, eps1, eps2);

    // Structural facts that must hold for admissible constants.
    if !(consts.delta4 > 0.0 && consts.delta4 < ell) {
        return Err(format!("δ₄ = {} outside (0, L = {ell})", consts.delta4));
    }
    if consts.delta1 <= 0.0 {
        return Err(format!("δ₁ = {} not positive", consts.delta1));
    }
    if proposition2(params, consts.delta4) <= 0.0 {
        return Err("Proposition 2 failed".into());
    }
    let (l3_lhs, l3_rhs) = lemma3(params, eps1, eps2);
    let (l5_a, l5_b) = lemma5(params, consts.delta4);
    if l5_a + 1e-15 < l5_b {
        return Err(format!("Lemma 5 failed: {l5_a} < {l5_b}"));
    }
    let (l6_lhs, l6_rhs) = lemma6(params, consts.delta4);
    if l6_lhs <= l6_rhs {
        return Err(format!("Lemma 6 failed: {l6_lhs} ≤ {l6_rhs}"));
    }
    let (l7_lo, l7_mid, l7_hi) = lemma7(params);
    if !(l7_lo <= l7_mid * (1.0 + 1e-12) && l7_mid <= l7_hi * (1.0 + 1e-12)) {
        return Err(format!("Lemma 7 failed: {l7_lo} ≤ {l7_mid} ≤ {l7_hi}"));
    }
    let (l8_lhs, l8_rhs) = lemma8(params.nu(), eps1, eps2);
    if l8_lhs >= l8_rhs {
        return Err(format!("Lemma 8 failed: {l8_lhs} ≥ {l8_rhs}"));
    }

    if !premises {
        // Premises fail: nothing further to check at this point.
        return Ok(());
    }

    // Premises hold → Lemma 3's conclusion (70) must hold …
    if l3_lhs > l3_rhs * (1.0 + 1e-12) {
        return Err(format!("Lemma 3 conclusion failed: {l3_lhs} > {l3_rhs}"));
    }
    // … and the whole chain must deliver Theorem 1 for δ₁ from Eq. (61).
    let (c_threshold_74, alpha_target) = lemma4(params, consts.delta4);
    // Ineq. (51) + Lemmas 5–8 imply Ineq. (74):
    if params.c() + 1e-12 < c_threshold_74 {
        return Err(format!(
            "chain broke before Lemma 4: c = {} < threshold {c_threshold_74}",
            params.c()
        ));
    }
    // Ineq. (74) ⇒ Ineq. (71): ᾱ ≥ target.
    if params.ln_alpha_bar() < alpha_target - 1e-12 {
        return Err(format!(
            "Lemma 4 conclusion failed: ln ᾱ = {} < {alpha_target}",
            params.ln_alpha_bar()
        ));
    }
    // Ineq. (71) + Lemma 3 ⇒ Ineq. (66) ⇒ Ineq. (10).
    let (l2_lhs, l2_rhs) = lemma2(params, consts.delta1);
    if l2_lhs && !l2_rhs {
        return Err("Lemma 2 implication failed".into());
    }
    if !l2_rhs {
        return Err(format!(
            "Theorem 1 failed under Theorem 3's premises (δ₁ = {})",
            consts.delta1
        ));
    }
    Ok(())
}

fn assert_delta4_range(params: &ProtocolParams, delta4: f64) {
    let ell = params.ln_mu_over_nu();
    assert!(
        delta4 > 0.0 && delta4 < ell,
        "Lemmas 4–7 require 0 < δ₄ < ln(µ/ν) = {ell}, got {delta4}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;
    use crate::theorem3::Constants;

    fn params(c: f64, nu: f64, delta: u64) -> ProtocolParams {
        ProtocolParams::from_c(10_000, delta, c, nu).unwrap()
    }

    #[test]
    fn lemma2_implication_on_grid() {
        let mut checked = 0;
        for &nu in &[0.1, 0.3, 0.45] {
            for &c in &[0.5, 1.0, 2.0, 5.0, 20.0] {
                for &delta in &[1u64, 4, 64] {
                    let p = params(c, nu, delta);
                    if p.p() * p.mu_n() >= 1.0 {
                        continue; // outside Lemma 2's precondition (65)
                    }
                    for &d1 in &[0.01, 0.5, 2.0] {
                        let (lhs, rhs) = lemma2(&p, d1);
                        assert!(
                            !lhs || rhs,
                            "Lemma 2 broken at ν={nu}, c={c}, Δ={delta}, δ₁={d1}"
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 50, "grid too sparse after filtering: {checked}");
    }

    #[test]
    fn lemma3_conclusion_under_pn_condition() {
        // When Ineq. (50) holds, (70) must follow with Eq. (60)/(61)
        // constants.
        for &nu in &[0.1, 0.3] {
            for &eps1 in &[0.2, 0.8] {
                let eps2 = 0.5;
                // Choose c large enough that pn ≤ budget.
                let budget = crate::theorem3::pn_budget(nu, eps1);
                let delta = 100u64;
                // pn = 1/(cΔ) ≤ budget ⇔ c ≥ 1/(budget·Δ).
                let c = 1.2 / (budget * delta as f64);
                let p = params(c, nu, delta);
                assert!(crate::theorem3::pn_condition_holds(&p, eps1));
                let (lhs, rhs) = lemma3(&p, eps1, eps2);
                assert!(lhs <= rhs * (1.0 + 1e-12), "(70) failed: {lhs} > {rhs}");
            }
        }
    }

    #[test]
    fn proposition2_positive_on_range() {
        for &nu in &[0.05, 0.25, 0.45] {
            for &delta in &[1u64, 16, 1_000_000] {
                let p = params(2.0, nu, delta);
                let ell = p.ln_mu_over_nu();
                for &frac in &[0.01, 0.5, 0.99] {
                    let d4 = frac * ell;
                    assert!(proposition2(&p, d4) > 0.0, "ν={nu}, Δ={delta}, δ₄={d4}");
                }
            }
        }
    }

    #[test]
    fn lemma5_inequality_holds() {
        for &nu in &[0.1, 0.4] {
            for &delta in &[1u64, 8, 10_000] {
                let p = params(3.0, nu, delta);
                let d4 = 0.3 * p.ln_mu_over_nu();
                let (a, b) = lemma5(&p, d4);
                assert!(a + 1e-15 >= b, "ν={nu}, Δ={delta}: {a} < {b}");
            }
        }
    }

    #[test]
    fn lemma6_strict_inequality() {
        for &nu in &[0.1, 0.3, 0.45] {
            for &delta in &[1u64, 64, 1_000_000] {
                let p = params(3.0, nu, delta);
                let d4 = 0.4 * p.ln_mu_over_nu();
                let (lhs, rhs) = lemma6(&p, d4);
                assert!(lhs > rhs, "ν={nu}, Δ={delta}: {lhs} ≤ {rhs}");
            }
        }
    }

    #[test]
    fn lemma7_sandwich() {
        for &nu in &[0.01, 0.2, 0.49] {
            for &delta in &[1u64, 2, 100, 10_000_000_000_000] {
                let p = ProtocolParams::from_c(100_000, delta, 3.0, nu).unwrap();
                let (lo, mid, hi) = lemma7(&p);
                assert!(lo <= mid * (1.0 + 1e-12), "ν={nu}, Δ={delta}: {lo} > {mid}");
                assert!(mid <= hi * (1.0 + 1e-12), "ν={nu}, Δ={delta}: {mid} > {hi}");
            }
        }
    }

    #[test]
    fn lemma7_tight_at_large_delta() {
        // As Δ → ∞ the middle term converges to 2/L.
        let p = ProtocolParams::from_c(100_000, 10_000_000_000_000, 3.0, 0.3).unwrap();
        let (lo, mid, _) = lemma7(&p);
        assert!((mid - lo) / lo < 1e-10, "middle {mid} far from 2/L {lo}");
    }

    #[test]
    fn lemma8_strict_inequality() {
        for &nu in &[0.05, 0.25, 0.45] {
            for &eps1 in &[0.1, 0.5, 0.9] {
                for &eps2 in &[0.01, 1.0] {
                    let (lhs, rhs) = lemma8(nu, eps1, eps2);
                    assert!(lhs < rhs, "ν={nu}, ε₁={eps1}, ε₂={eps2}: {lhs} ≥ {rhs}");
                }
            }
        }
    }

    #[test]
    fn audit_chain_passes_in_consistent_regime() {
        // Pick points safely above Theorem 3's bound.
        for &nu in &[0.1, 0.3] {
            for &delta in &[100u64, 100_000] {
                let eps1 = 0.3;
                let eps2 = 0.2;
                let bound = crate::theorem2::c_bound(nu, delta, eps1, eps2).unwrap();
                let p = params(bound * 1.5, nu, delta);
                audit_chain(&p, eps1, eps2)
                    .unwrap_or_else(|e| panic!("audit failed at ν={nu}, Δ={delta}: {e}"));
            }
        }
    }

    #[test]
    fn audit_chain_ok_when_premises_fail() {
        // Premises failing is not an error: the chain is vacuous there.
        let p = params(0.1, 0.4, 10);
        assert!(audit_chain(&p, 0.3, 0.2).is_ok());
    }

    #[test]
    fn delta1_from_constants_works_in_lemma2() {
        let nu = 0.2;
        let delta = 1_000u64;
        let eps1 = 0.25;
        let eps2 = 0.25;
        let bound = crate::theorem2::c_bound(nu, delta, eps1, eps2).unwrap();
        let p = params(bound * 2.0, nu, delta);
        let consts = Constants::new(eps1, eps2, nu).unwrap();
        let (_, rhs) = lemma2(&p, consts.delta1);
        assert!(rhs, "Theorem 1 must hold with the chain's δ₁");
    }
}
