#![forbid(unsafe_code)]
//! The paper's contribution: consistency analysis of Nakamoto's
//! blockchain protocol in asynchronous (Δ-delay) networks, deriving the
//! neat bound `c > 2µ/ln(µ/ν)`.
//!
//! Module map (one module per artefact of the paper):
//!
//! * [`params`] — the model parameters of Table I with the validation
//!   constraints of Eqs. (1)–(3) and the derived quantities `α`, `ᾱ`,
//!   `α₁`, `c` (Eqs. 7–9).
//! * [`theorem1`] — Theorem 1: `ᾱ^{2Δ}α₁ ≥ (1+δ₁)pνn` suffices for
//!   consistency; expectations `E[C]` (Eq. 26) and `E[A]` (Eq. 27).
//! * [`theorem2`] — Theorem 2's neat bound (Ineq. 11) and the Remark-1
//!   machinery (Ineqs. 12–17).
//! * [`theorem3`] — Theorem 3's split conditions (Ineqs. 50–51) and the
//!   constants δ₄ (Eq. 60), δ₁ (Eq. 61).
//! * [`lemmas`] — Lemmas 2–8 and Propositions 1–2 as checkable
//!   inequalities with both sides exposed.
//! * [`suffix_chain`] — the suffix Markov chain `C_F` of Fig. 2 built
//!   explicitly (2Δ+1 states) with its closed-form stationary
//!   distribution (Eqs. 37a–37d).
//! * [`extended_chain`] — the concatenation chain `C_{F‖P}`: the
//!   convergence-opportunity probability `ᾱ^{2Δ}α₁` (Eq. 44),
//!   Proposition 1's `min π_{F‖P}`, and the Inequality-(47) tail bound.
//! * [`pss`] — the Pass–Seeman–Shelat comparison bounds: consistency
//!   `ν < ½(2−c+√(c²−2c))` and the Remark-8.5 attack
//!   `ν > (2c+1−√(4c²+1))/2`.
//! * [`kiffer`] — a reconstruction of the (corrected vs. reported
//!   incorrect) Kiffer-et-al. CCS'18 bound for the paper's Section IV
//!   ablation.
//! * [`numax`] — solvers inverting each bound into `ν_max(c)`.
//! * [`figure1`] — the three curves of Figure 1.
//! * [`convergence`] — Monte-Carlo validation glue against
//!   `nakamoto_sim`.
//! * [`analytic`] — the spec-driven experiment layer's entry point:
//!   one record bundling every theorem's prediction for a simulator
//!   configuration, overlaid on simulated cells by the `experiment`
//!   harness.
//!
//! # Example: the headline claim
//!
//! ```
//! use consistency_core::params::ProtocolParams;
//! use consistency_core::theorem2;
//!
//! // Figure 1 parameters, ν = 0.3.
//! let params = ProtocolParams::from_c(100_000, 10_000_000_000_000, 3.0, 0.3)?;
//! // c = 3 exceeds the neat bound 2µ/ln(µ/ν) ≈ 1.65 → consistent.
//! assert!(params.c() > theorem2::neat_bound(0.3));
//! assert!(params.is_consistent_by_neat_bound());
//! # Ok::<(), consistency_core::Error>(())
//! ```

pub mod analytic;
pub mod catchup;
pub mod chain_metrics;
pub mod convergence;
pub mod extended_chain;
pub mod figure1;
pub mod kiffer;
pub mod lemmas;
pub mod numax;
pub mod params;
pub mod pss;
pub mod suffix_chain;
pub mod theorem1;
pub mod theorem2;
pub mod theorem3;
pub mod window;

mod error;

pub use error::Error;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;
