//! Theorem 3: the split form of Theorem 2's condition, plus the paper's
//! explicit constants δ₄ (Eq. 60) and δ₁ (Eq. 61) that thread through
//! Lemmas 2–8.
//!
//! Consistency holds when constants `0 < ε₁ < 1`, `ε₂ > 0` satisfy
//!
//! * Ineq. (50): `p·n ≤ ε₁·ln(µ/ν) / ((ln(µ/ν)+1)·µ)` and
//! * Ineq. (51): `c ≥ (2µ/ln(µ/ν) + 1/Δ)·(1+ε₂)/(1−ε₁)`.

use crate::params::ProtocolParams;
use crate::{Error, Result};

/// Validated `(ε₁, ε₂)` pair together with the derived constants
/// δ₄ (Eq. 60) and δ₁ (Eq. 61) for a given adversarial fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constants {
    /// Theorem 3's ε₁ (controls the p·n budget).
    pub eps1: f64,
    /// Theorem 3's ε₂ (slack above the neat bound).
    pub eps2: f64,
    /// Eq. (60): `δ₄ = (ε₁+ε₂)L / (ε₁+ε₂+(1−ε₁)(L+1))`, `L = ln(µ/ν)`.
    pub delta4: f64,
    /// Eq. (61): `δ₁ = (1+δ₄)(1 − ε₁L/(L+1)) − 1`.
    pub delta1: f64,
}

impl Constants {
    /// Computes the constants for `(ε₁, ε₂, ν)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] unless `0 < ε₁ < 1`, `ε₂ > 0`
    /// and `0 < ν < ½`.
    pub fn new(eps1: f64, eps2: f64, nu: f64) -> Result<Self> {
        if !(eps1 > 0.0 && eps1 < 1.0) || eps1.is_nan() {
            return Err(Error::invalid(
                "eps1",
                format!("must lie in (0,1), got {eps1}"),
            ));
        }
        if !(eps2 > 0.0) || eps2.is_nan() {
            return Err(Error::invalid(
                "eps2",
                format!("must be positive, got {eps2}"),
            ));
        }
        if !(nu > 0.0 && nu < 0.5) {
            return Err(Error::invalid(
                "nu",
                format!("must lie in (0, 1/2), got {nu}"),
            ));
        }
        let mu = 1.0 - nu;
        let ell = (mu / nu).ln();
        let delta4 = (eps1 + eps2) * ell / (eps1 + eps2 + (1.0 - eps1) * (ell + 1.0));
        let delta1 = (1.0 + delta4) * (1.0 - eps1 * ell / (ell + 1.0)) - 1.0;
        Ok(Constants {
            eps1,
            eps2,
            delta4,
            delta1,
        })
    }
}

/// Ineq. (50)'s right-hand side: the admissible `p·n` budget.
///
/// # Panics
///
/// Panics unless `0 < ε₁ < 1` and `0 < ν < ½`.
#[must_use]
pub fn pn_budget(nu: f64, eps1: f64) -> f64 {
    assert!(eps1 > 0.0 && eps1 < 1.0, "ε₁ must lie in (0, 1)");
    assert!(nu > 0.0 && nu < 0.5, "ν must lie in (0, 1/2)");
    let mu = 1.0 - nu;
    let ell = (mu / nu).ln();
    eps1 * ell / ((ell + 1.0) * mu)
}

/// Checks Ineq. (50): `p·n ≤ pn_budget`.
#[must_use]
pub fn pn_condition_holds(params: &ProtocolParams, eps1: f64) -> bool {
    params.p() * params.n() as f64 <= pn_budget(params.nu(), eps1)
}

/// Ineq. (51)'s right-hand side.
///
/// # Panics
///
/// Panics unless `0 < ε₁ < 1`, `ε₂ > 0`, `0 < ν < ½`.
#[must_use]
pub fn c_bound(nu: f64, delta: u64, eps1: f64, eps2: f64) -> f64 {
    assert!(eps1 > 0.0 && eps1 < 1.0, "ε₁ must lie in (0, 1)");
    assert!(eps2 > 0.0, "ε₂ must be positive");
    let neat = crate::theorem2::neat_bound(nu);
    (neat + 1.0 / delta as f64) * (1.0 + eps2) / (1.0 - eps1)
}

/// Checks Ineq. (51).
#[must_use]
pub fn c_condition_holds(params: &ProtocolParams, eps1: f64, eps2: f64) -> bool {
    params.c() >= c_bound(params.nu(), params.delta(), eps1, eps2)
}

/// Checks Theorem 3's full condition (both Ineq. 50 and 51).
#[must_use]
pub fn holds(params: &ProtocolParams, eps1: f64, eps2: f64) -> bool {
    pn_condition_holds(params, eps1) && c_condition_holds(params, eps1, eps2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;

    #[test]
    fn constants_positive_for_admissible_inputs() {
        // The paper proves δ₄ > 0 and δ₁ > 0 (display 62–63).
        for &eps1 in &[0.01, 0.3, 0.9] {
            for &eps2 in &[0.01, 1.0, 10.0] {
                for &nu in &[0.01, 0.25, 0.49] {
                    let c = Constants::new(eps1, eps2, nu).unwrap();
                    assert!(c.delta4 > 0.0, "δ₄ ≤ 0 at ε₁={eps1}, ε₂={eps2}, ν={nu}");
                    assert!(c.delta1 > 0.0, "δ₁ ≤ 0 at ε₁={eps1}, ε₂={eps2}, ν={nu}");
                }
            }
        }
    }

    #[test]
    fn delta4_below_ln_mu_over_nu() {
        // Remark 5 / Ineq. (73): δ₄ < ln(µ/ν) always.
        for &nu in &[0.05f64, 0.2, 0.4, 0.49] {
            let ell = ((1.0 - nu) / nu).ln();
            let c = Constants::new(0.5, 0.5, nu).unwrap();
            assert!(c.delta4 < ell, "δ₄ = {} ≥ L = {ell}", c.delta4);
        }
    }

    #[test]
    fn delta4_above_lemma3_threshold() {
        // Display (62): δ₄ > ε₁L/(1+(1−ε₁)L).
        for &nu in &[0.05f64, 0.2, 0.45] {
            for &eps1 in &[0.1, 0.5, 0.9] {
                let eps2 = 0.25;
                let ell = ((1.0 - nu) / nu).ln();
                let c = Constants::new(eps1, eps2, nu).unwrap();
                let threshold = eps1 * ell / (1.0 + (1.0 - eps1) * ell);
                assert!(
                    c.delta4 > threshold,
                    "δ₄ = {} ≤ threshold {threshold}",
                    c.delta4
                );
            }
        }
    }

    #[test]
    fn constants_validation() {
        assert!(Constants::new(0.0, 0.1, 0.2).is_err());
        assert!(Constants::new(1.0, 0.1, 0.2).is_err());
        assert!(Constants::new(0.5, 0.0, 0.2).is_err());
        assert!(Constants::new(0.5, 0.1, 0.6).is_err());
    }

    #[test]
    fn theorem3_combination_equals_theorem2_inequality_11() {
        // Section VI-B: (50) ∧ (51) ⇔ Ineq. (11). Verify the ⇔ on a grid.
        for &nu in &[0.1, 0.3] {
            for &c in &[0.5, 2.0, 5.0, 50.0] {
                for &delta in &[10u64, 10_000] {
                    let params = ProtocolParams::from_c(10_000, delta, c, nu).unwrap();
                    let eps1 = 0.2;
                    let eps2 = 0.1;
                    let t3 = holds(&params, eps1, eps2);
                    // Ineq. (11) is c ≥ max{branch1, branch2}. Note
                    // pn ≤ ε₁L/((L+1)µ) ⇔ c ≥ (L+1)µ/(ε₁ΔL).
                    let t2 = crate::theorem2::holds(&params, eps1, eps2).unwrap();
                    assert_eq!(t3, t2, "mismatch at ν={nu}, c={c}, Δ={delta}");
                }
            }
        }
    }

    #[test]
    fn pn_condition_equivalent_to_c_form() {
        // pn ≤ ε₁L/((L+1)µ) ⇔ c = 1/(pnΔ) ≥ (L+1)µ/(ε₁ΔL).
        let params = ProtocolParams::from_c(1_000, 100, 2.0, 0.3).unwrap();
        let eps1 = 0.3;
        let mu = params.mu();
        let ell = params.ln_mu_over_nu();
        let lhs = pn_condition_holds(&params, eps1);
        let rhs = params.c() >= (ell + 1.0) * mu / (eps1 * params.delta() as f64 * ell);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn larger_eps1_relaxes_pn_but_tightens_c() {
        let nu = 0.25;
        assert!(pn_budget(nu, 0.8) > pn_budget(nu, 0.1));
        assert!(c_bound(nu, 100, 0.8, 0.1) > c_bound(nu, 100, 0.1, 0.1));
    }
}
