//! The suffix-of-previous-and-current-states Markov chain `C_F`
//! (paper Fig. 2), built explicitly as a [`markov::chain::MarkovChain`]
//! on `2Δ+1` states, together with its closed-form stationary
//! distribution (Eqs. 37a–37d).
//!
//! State indexing matches
//! [`nakamoto_sim::events::SuffixState`]: `0 = HN^{≤Δ−1}H`,
//! `a ∈ 1..Δ = HN^{≤Δ−1}HN^a`, `Δ = HN^{≥Δ}`,
//! `Δ+1+b = HN^{≥Δ}HN^b`.

use crate::{Error, Result};
use markov::chain::{MarkovChain, MarkovChainBuilder};
use nakamoto_sim::events::SuffixState;

/// Validates the chain inputs: per-round honest success probability
/// `alpha ∈ (0, 1)` and `Δ ≥ 1`.
fn validate(alpha: f64, delta: u64) -> Result<()> {
    if !(alpha > 0.0 && alpha < 1.0) || alpha.is_nan() {
        return Err(Error::invalid(
            "alpha",
            format!("α must lie in (0, 1), got {alpha}"),
        ));
    }
    if delta == 0 {
        return Err(Error::invalid("delta", "Δ must be at least 1"));
    }
    Ok(())
}

/// Builds `C_F` for honest-success probability `alpha` and delay `delta`.
///
/// Transition rules (paper's ①–④ in Section V-A): every state moves to
/// `HN^{≤Δ−1}H` on `H` except `HN^{≥Δ}` (which moves to
/// `HN^{≥Δ}HN⁰`), and every state moves one `N` deeper on `N`, spilling
/// into `HN^{≥Δ}` once Δ consecutive `N`s accumulate.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for out-of-range inputs. Chains
/// at `Δ` beyond ~10⁶ states are rejected as a resource guard.
pub fn build_chain(alpha: f64, delta: u64) -> Result<MarkovChain> {
    validate(alpha, delta)?;
    if delta > 500_000 {
        return Err(Error::invalid(
            "delta",
            format!("explicit chain limited to Δ ≤ 5·10⁵ (2Δ+1 states), got {delta}"),
        ));
    }
    let n_states = SuffixState::count(delta);
    let alpha_bar = 1.0 - alpha;
    let mut b = MarkovChainBuilder::new(n_states);
    let idx = |s: SuffixState| s.index(delta);

    let on_n_from_recent = if delta >= 2 {
        idx(SuffixState::ShortGap(1))
    } else {
        idx(SuffixState::LongGap)
    };
    // ③ / ①: HN^{≤Δ−1}H.
    b.add(idx(SuffixState::RecentH), idx(SuffixState::RecentH), alpha)
        .map_err(Error::from)?;
    b.add(idx(SuffixState::RecentH), on_n_from_recent, alpha_bar)
        .map_err(Error::from)?;
    // ①: short-gap arms.
    for a in 1..delta {
        let from = idx(SuffixState::ShortGap(a));
        b.add(from, idx(SuffixState::RecentH), alpha)
            .map_err(Error::from)?;
        let to = if a < delta - 1 {
            idx(SuffixState::ShortGap(a + 1))
        } else {
            idx(SuffixState::LongGap)
        };
        b.add(from, to, alpha_bar).map_err(Error::from)?;
    }
    // ④: HN^{≥Δ}.
    b.add(
        idx(SuffixState::LongGap),
        idx(SuffixState::AfterLongGap(0)),
        alpha,
    )
    .map_err(Error::from)?;
    b.add(
        idx(SuffixState::LongGap),
        idx(SuffixState::LongGap),
        alpha_bar,
    )
    .map_err(Error::from)?;
    // ②: after-long-gap arms.
    for arm in 0..delta {
        let from = idx(SuffixState::AfterLongGap(arm));
        b.add(from, idx(SuffixState::RecentH), alpha)
            .map_err(Error::from)?;
        let to = if arm < delta - 1 {
            idx(SuffixState::AfterLongGap(arm + 1))
        } else {
            idx(SuffixState::LongGap)
        };
        b.add(from, to, alpha_bar).map_err(Error::from)?;
    }
    b.build().map_err(Error::from)
}

/// The closed-form stationary distribution of `C_F` (Eqs. 37a–37d):
///
/// ```text
/// π(HN^{≤Δ−1}H)    = α(1−ᾱ^Δ)          (37a)
/// π(HN^{≤Δ−1}HN^a) = α(1−ᾱ^Δ)·ᾱ^a      (37b)
/// π(HN^{≥Δ})       = ᾱ^Δ               (37c)
/// π(HN^{≥Δ}HN^b)   = α·ᾱ^{Δ+b}         (37d)
/// ```
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for out-of-range inputs.
pub fn closed_form_stationary(alpha: f64, delta: u64) -> Result<Vec<f64>> {
    validate(alpha, delta)?;
    let alpha_bar = 1.0 - alpha;
    let d = delta as usize;
    let ln_ab = alpha_bar.ln();
    let ab_pow = |k: u64| (k as f64 * ln_ab).exp();
    let one_minus_ab_delta = -((delta as f64) * ln_ab).exp_m1();
    let mut pi = vec![0.0; SuffixState::count(delta)];
    pi[SuffixState::RecentH.index(delta)] = alpha * one_minus_ab_delta;
    for a in 1..delta {
        pi[SuffixState::ShortGap(a).index(delta)] = alpha * one_minus_ab_delta * ab_pow(a);
    }
    pi[SuffixState::LongGap.index(delta)] = ab_pow(delta);
    for b in 0..delta {
        pi[SuffixState::AfterLongGap(b).index(delta)] = alpha * ab_pow(delta + b);
    }
    debug_assert_eq!(pi.len(), 2 * d + 1);
    Ok(pi)
}

/// `min_v π_F(v)` (Eq. 99 in Appendix A):
/// `α·ᾱ^{Δ−1}·min{1−ᾱ^Δ, ᾱ^Δ}`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for out-of-range inputs.
pub fn min_stationary(alpha: f64, delta: u64) -> Result<f64> {
    Ok(ln_min_stationary(alpha, delta)?.exp())
}

/// Log-space version of [`min_stationary`], exact at `Δ = 10¹³`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for out-of-range inputs.
pub fn ln_min_stationary(alpha: f64, delta: u64) -> Result<f64> {
    validate(alpha, delta)?;
    let ln_ab = (-alpha).ln_1p();
    let ln_ab_delta = delta as f64 * ln_ab;
    // ln(1 − ᾱ^Δ), stable in both regimes.
    let ln_one_minus = probability::special::ln_1m_exp(ln_ab_delta);
    Ok(alpha.ln() + (delta as f64 - 1.0) * ln_ab + ln_one_minus.min(ln_ab_delta))
}

/// The stationary probability of the `HN^{≥Δ}` state (Eq. 37c) in log
/// space: `Δ·ln ᾱ`. This is the `π_F(HN^{≥Δ})` factor of Eq. (44).
pub fn ln_long_gap_probability(alpha: f64, delta: u64) -> Result<f64> {
    validate(alpha, delta)?;
    Ok(delta as f64 * (-alpha).ln_1p())
}

#[cfg(test)]
mod tests {
    use super::*;
    use markov::stationary::{stationarity_residual, stationary_gth};
    use markov::structure;

    #[test]
    fn chain_is_ergodic() {
        for &delta in &[1u64, 2, 5, 16] {
            let chain = build_chain(0.3, delta).unwrap();
            assert_eq!(chain.n_states(), 2 * delta as usize + 1);
            assert!(structure::is_irreducible(&chain), "Δ={delta}");
            assert!(structure::is_ergodic(&chain), "Δ={delta}");
        }
    }

    #[test]
    fn closed_form_sums_to_one() {
        for &delta in &[1u64, 2, 8, 64, 1024] {
            for &alpha in &[1e-6, 0.01, 0.3, 0.9, 1.0 - 1e-9] {
                let pi = closed_form_stationary(alpha, delta).unwrap();
                let total: f64 = probability::summation::compensated_sum(&pi);
                assert!(
                    (total - 1.0).abs() < 1e-12,
                    "Δ={delta}, α={alpha}: Σπ = {total}"
                );
                assert!(pi.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn closed_form_matches_gth_numerically() {
        // The paper's Eq. (37) must agree with the generic solver on the
        // explicitly built chain — the strongest check that both the
        // chain construction and the closed form transcribe Fig. 2
        // correctly.
        for &delta in &[1u64, 2, 3, 8, 32] {
            for &alpha in &[0.05, 0.3, 0.7] {
                let chain = build_chain(alpha, delta).unwrap();
                let numeric = stationary_gth(&chain).unwrap();
                let closed = closed_form_stationary(alpha, delta).unwrap();
                for (i, (a, b)) in numeric.iter().zip(closed.iter()).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-12 * (1.0 + a.abs()),
                        "Δ={delta}, α={alpha}, state {i}: gth {a} vs closed {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn closed_form_is_stationary_for_chain() {
        let alpha = 0.2;
        let delta = 6;
        let chain = build_chain(alpha, delta).unwrap();
        let pi = closed_form_stationary(alpha, delta).unwrap();
        assert!(stationarity_residual(&chain, &pi) < 1e-14);
    }

    #[test]
    fn min_stationary_matches_vector_minimum() {
        for &delta in &[1u64, 4, 16] {
            for &alpha in &[0.05, 0.5, 0.95] {
                let pi = closed_form_stationary(alpha, delta).unwrap();
                let vec_min = pi.iter().copied().fold(f64::INFINITY, f64::min);
                let formula = min_stationary(alpha, delta).unwrap();
                assert!(
                    (vec_min - formula).abs() < 1e-14 * (1.0 + vec_min),
                    "Δ={delta}, α={alpha}: {vec_min} vs {formula}"
                );
            }
        }
    }

    #[test]
    fn ln_min_stationary_survives_figure1_scale() {
        let v = ln_min_stationary(1e-14, 10_000_000_000_000).unwrap();
        assert!(v.is_finite());
        assert!(v < 0.0);
    }

    #[test]
    fn long_gap_probability_eq_37c() {
        let alpha = 0.25f64;
        let delta = 7u64;
        let pi = closed_form_stationary(alpha, delta).unwrap();
        let ln_pl = ln_long_gap_probability(alpha, delta).unwrap();
        let from_vec = pi[nakamoto_sim::events::SuffixState::LongGap.index(delta)];
        assert!((ln_pl.exp() - from_vec).abs() < 1e-14);
        assert!((ln_pl.exp() - (1.0 - alpha).powi(7)).abs() < 1e-14);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(build_chain(0.0, 4).is_err());
        assert!(build_chain(1.0, 4).is_err());
        assert!(build_chain(0.5, 0).is_err());
        assert!(build_chain(0.5, 1_000_000).is_err());
        assert!(closed_form_stationary(-0.1, 4).is_err());
        assert!(min_stationary(0.5, 0).is_err());
    }

    #[test]
    fn empirical_occupancy_matches_closed_form() {
        // Random-walk the explicit chain and compare occupancy to π.
        use markov::walk::RandomWalk;
        use probability::rng::Xoshiro256PlusPlus;
        let alpha = 0.3;
        let delta = 3;
        let chain = build_chain(alpha, delta).unwrap();
        let pi = closed_form_stationary(alpha, delta).unwrap();
        let rng = Xoshiro256PlusPlus::seed_from_u64(13);
        let mut walk = RandomWalk::new(&chain, 0, rng);
        let t = 400_000;
        let occ = walk.occupancy(t);
        for (s, (&count, &expected)) in occ.iter().zip(pi.iter()).enumerate() {
            let freq = count as f64 / t as f64;
            assert!(
                (freq - expected).abs() < 0.01,
                "state {s}: freq {freq} vs π {expected}"
            );
        }
    }
}
