//! The Pass–Seeman–Shelat (Eurocrypt 2017) comparison bounds, as recast
//! by the paper's Section I:
//!
//! * **Consistency (blue line)** — PSS's condition
//!   `α[1−(2Δ+2)α] > β` simplifies to `c > 2(1−ν)²/(1−2ν)`, i.e.
//!   `ν < ½(2−c+√(c²−2c))` for `c > 2`.
//! * **Attack (red line)** — Remark 8.5's attack succeeds when
//!   `1/c > 1/ν − 1/(1−ν)`, i.e. `ν > (2c+1−√(4c²+1))/2`.

use crate::params::ProtocolParams;
use crate::{Error, Result};
use probability::rootfind::{bisect, RootConfig};

/// PSS's approximate maximum tolerable adversarial fraction at a given
/// `c`: `ν_max = ½(2−c+√(c²−2c))`, defined for `c > 2` (returns `None`
/// below — PSS guarantees nothing there).
///
/// ```
/// use consistency_core::pss::consistency_nu_max;
/// assert!(consistency_nu_max(1.5).is_none());
/// let v = consistency_nu_max(10.0).unwrap();
/// assert!(v > 0.3 && v < 0.5);
/// ```
#[must_use]
pub fn consistency_nu_max(c: f64) -> Option<f64> {
    if !(c > 2.0) {
        return None;
    }
    Some(0.5 * (2.0 - c + (c * c - 2.0 * c).sqrt()))
}

/// The inverse direction: the `c` PSS requires to tolerate a given `ν`:
/// `c > 2(1−ν)²/(1−2ν)` (diverges as ν → ½).
///
/// # Panics
///
/// Panics unless `0 < ν < ½`.
#[must_use]
pub fn consistency_c_required(nu: f64) -> f64 {
    assert!(nu > 0.0 && nu < 0.5, "ν must lie in (0, 1/2), got {nu}");
    2.0 * (1.0 - nu) * (1.0 - nu) / (1.0 - 2.0 * nu)
}

/// Remark 8.5's attack threshold: the attack breaks consistency when
/// `ν > (2c+1−√(4c²+1))/2`.
///
/// # Panics
///
/// Panics unless `c > 0`.
#[must_use]
pub fn attack_nu_threshold(c: f64) -> f64 {
    assert!(c > 0.0, "c must be positive, got {c}");
    0.5 * (2.0 * c + 1.0 - (4.0 * c * c + 1.0).sqrt())
}

/// PSS's *exact* consistency condition `α[1−(2Δ+2)α] > β` with
/// `α = 1−(1−p)^{µn}` and `β = νnp` (before the paper's Section-I
/// approximations).
#[must_use]
pub fn exact_consistency_holds(params: &ProtocolParams) -> bool {
    let alpha = params.alpha();
    let beta = params.nu_n() * params.p();
    let factor = 1.0 - (2.0 * params.delta() as f64 + 2.0) * alpha;
    alpha * factor > beta
}

/// Solves the exact PSS condition for `ν_max` at fixed `(n, Δ, c)` by
/// bisection over `ν` (the condition is monotone: raising `ν` lowers
/// `α`'s honest mass and raises `β`).
///
/// Returns `None` when even a vanishing adversary violates the exact
/// condition (i.e. `c` too small).
///
/// # Errors
///
/// Propagates root-finder failures (not observed for valid inputs).
pub fn exact_consistency_nu_max(n: u64, delta: u64, c: f64) -> Result<Option<f64>> {
    let margin = |nu: f64| -> Result<f64> {
        let params = ProtocolParams::from_c(n, delta, c, nu)?;
        let alpha = params.alpha();
        let beta = params.nu_n() * params.p();
        Ok(alpha * (1.0 - (2.0 * params.delta() as f64 + 2.0) * alpha) - beta)
    };
    let lo = 1e-12;
    let hi = 0.5 - 1e-12;
    let m_lo = margin(lo)?;
    if m_lo <= 0.0 {
        return Ok(None);
    }
    let m_hi = margin(hi)?;
    if m_hi > 0.0 {
        return Ok(Some(hi));
    }
    let root = bisect(
        |nu| margin(nu).expect("validated range"), // detlint: allow(panic-expect) -- bisect probes only inside [lo, hi], where margin was just shown Ok
        lo,
        hi,
        RootConfig::default(),
    )
    .map_err(Error::from)?;
    Ok(Some(root))
}

/// `true` iff the Remark-8.5 attack applies at these parameters:
/// `1/c > 1/ν − 1/(1−ν)`.
#[must_use]
pub fn attack_applies(params: &ProtocolParams) -> bool {
    1.0 / params.c() > 1.0 / params.nu() - 1.0 / params.mu()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_nu_max_behaviour() {
        assert!(consistency_nu_max(2.0).is_none());
        assert!(consistency_nu_max(0.5).is_none());
        // Just above 2 the tolerance is tiny; it grows towards 1/2.
        let near = consistency_nu_max(2.01).unwrap();
        assert!(near > 0.0 && near < 0.1, "near-threshold ν_max {near}");
        let far = consistency_nu_max(1_000.0).unwrap();
        assert!(far > 0.49 && far < 0.5, "asymptotic ν_max {far}");
        // Monotone in c.
        assert!(consistency_nu_max(5.0).unwrap() < consistency_nu_max(50.0).unwrap());
    }

    #[test]
    fn nu_max_inverts_c_required() {
        for &nu in &[0.05, 0.2, 0.4] {
            let c = consistency_c_required(nu);
            let back = consistency_nu_max(c).unwrap();
            assert!((back - nu).abs() < 1e-9, "ν={nu} → c={c} → ν={back}");
        }
    }

    #[test]
    fn attack_threshold_behaviour() {
        // ν_attack(c) = ½(2c+1−√(4c²+1)): ≈ ½ − 1/(8c) for large c,
        // small for small c.
        let big = attack_nu_threshold(1_000.0);
        assert!((big - (0.5 - 1.0 / 8_000.0)).abs() < 1e-6);
        let small = attack_nu_threshold(0.1);
        assert!(small > 0.0 && small < 0.2);
        // Monotone increasing in c.
        assert!(attack_nu_threshold(1.0) < attack_nu_threshold(10.0));
    }

    #[test]
    fn attack_line_above_consistency_line() {
        // Figure 1's red line sits strictly above the blue line: an
        // attack needs more adversarial power than the proof tolerates.
        for &c in &[2.5, 3.0, 10.0, 100.0] {
            let blue = consistency_nu_max(c).unwrap();
            let red = attack_nu_threshold(c);
            assert!(red > blue, "c={c}: red {red} ≤ blue {blue}");
        }
    }

    #[test]
    fn attack_applies_matches_threshold() {
        let c = 5.0;
        let threshold = attack_nu_threshold(c);
        let above = ProtocolParams::from_c(1_000, 10, c, (threshold + 0.49) / 2.0).unwrap();
        assert!(above.nu() > threshold);
        assert!(attack_applies(&above));
        let below = ProtocolParams::from_c(1_000, 10, c, threshold * 0.5).unwrap();
        assert!(!attack_applies(&below));
    }

    #[test]
    fn exact_condition_close_to_approximation_at_figure1_scale() {
        // At n = 1e5, Δ = 1e13 the exact α[1−(2Δ+2)α] > β condition and
        // the closed-form blue line agree closely.
        let n = 100_000;
        let delta = 10_000_000_000_000;
        for &c in &[3.0, 5.0, 10.0] {
            let exact = exact_consistency_nu_max(n, delta, c).unwrap().unwrap();
            let approx = consistency_nu_max(c).unwrap();
            assert!(
                (exact - approx).abs() < 0.01,
                "c={c}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn exact_condition_none_below_threshold() {
        let r = exact_consistency_nu_max(100_000, 10_000_000_000_000, 1.5).unwrap();
        assert!(r.is_none(), "c = 1.5 < 2 cannot satisfy PSS");
    }

    #[test]
    fn exact_consistency_holds_flips_at_boundary() {
        let n = 100_000;
        let delta = 10_000_000_000_000;
        let c = 5.0;
        let numax = exact_consistency_nu_max(n, delta, c).unwrap().unwrap();
        let ok = ProtocolParams::from_c(n, delta, c, numax * 0.9).unwrap();
        let bad = ProtocolParams::from_c(n, delta, c, (numax + 0.5) / 2.0).unwrap();
        assert!(exact_consistency_holds(&ok));
        assert!(!exact_consistency_holds(&bad));
    }

    #[test]
    fn paper_ordering_between_our_bound_and_pss() {
        // The paper's headline (Fig. 1): our ν_max is strictly above
        // PSS's for every c — and both stay below the attack line.
        for &c in &[2.5, 3.0, 10.0, 30.0, 100.0] {
            let ours = crate::numax::nu_max_for_c(c).unwrap();
            let pss = consistency_nu_max(c).unwrap();
            let attack = attack_nu_threshold(c);
            assert!(ours > pss, "c={c}: ours {ours} ≤ pss {pss}");
            assert!(attack > ours, "c={c}: attack {attack} ≤ ours {ours}");
        }
    }
}
