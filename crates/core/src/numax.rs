//! Solvers inverting the paper's bounds into `ν_max(c)` — the quantity
//! Figure 1 plots.

use crate::{Error, Result};
use probability::rootfind::{brent, RootConfig};

/// The neat bound as a function of ν: `g(ν) = 2(1−ν)/ln((1−ν)/ν)`.
/// Strictly increasing on `(0, ½)` with `g(0⁺) = 0` and `g(½⁻) = ∞`.
fn neat_bound_curve(nu: f64) -> f64 {
    2.0 * (1.0 - nu) / ((1.0 - nu) / nu).ln()
}

/// Solves `2µ/ln(µ/ν) = c` for the maximum tolerable `ν ∈ (0, ½)` —
/// Figure 1's magenta line. (Strictly, consistency needs `ν` *below*
/// the returned value since the paper's condition is a strict
/// inequality.)
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for non-positive `c`; solver
/// failures (never observed for valid `c`) propagate as
/// [`Error::Numerical`].
///
/// ```
/// use consistency_core::numax::nu_max_for_c;
/// let v = nu_max_for_c(3.0)?;
/// // Verify: 2(1−ν)/ln((1−ν)/ν) = 3 at the returned ν.
/// assert!((2.0 * (1.0 - v) / ((1.0 - v) / v).ln() - 3.0).abs() < 1e-9);
/// # Ok::<(), consistency_core::Error>(())
/// ```
pub fn nu_max_for_c(c: f64) -> Result<f64> {
    if !(c > 0.0) || c.is_nan() {
        return Err(Error::invalid("c", format!("must be positive, got {c}")));
    }
    // Substitute ν = e^{−u}: the solution can be astronomically small
    // (ν ≈ e^{−2/c} for tiny c), so solving in u keeps full relative
    // precision. g(e^{−u}) is decreasing in u.
    let g = |u: f64| neat_bound_curve((-u).exp());
    let u_lo = std::f64::consts::LN_2 + 1e-13; // ν just below 1/2
    let u_hi = 705.0; // ν ≈ 1e-306
    if g(u_lo) <= c {
        return Ok((-u_lo).exp());
    }
    if g(u_hi) >= c {
        return Ok((-u_hi).exp());
    }
    let u = brent(
        |u| g(u) - c,
        u_lo,
        u_hi,
        RootConfig {
            x_tol: 1e-13,
            ..RootConfig::default()
        },
    )
    .map_err(Error::from)?;
    Ok((-u).exp())
}

/// Solves Theorem 2's *full* Ineq. (11) (at its infimum over ε₁, ε₂)
/// for `ν_max` at finite `Δ`. For large Δ this converges to
/// [`nu_max_for_c`].
///
/// # Errors
///
/// Same contract as [`nu_max_for_c`].
pub fn nu_max_theorem2(c: f64, delta: u64) -> Result<f64> {
    if !(c > 0.0) || c.is_nan() {
        return Err(Error::invalid("c", format!("must be positive, got {c}")));
    }
    if delta == 0 {
        return Err(Error::invalid("delta", "Δ must be at least 1"));
    }
    let bound = |nu: f64| crate::theorem2::infimum_c_bound(nu, delta);
    let lo = 1e-12;
    let hi = 0.5 - 1e-14;
    if bound(hi) <= c {
        return Ok(hi);
    }
    if bound(lo) >= c {
        // Even a vanishing adversary needs more c at this Δ.
        return Ok(0.0);
    }
    brent(|nu| bound(nu) - c, lo, hi, RootConfig::default()).map_err(Error::from)
}

/// The `c` the neat bound requires for a given `ν` — the inverse of
/// [`nu_max_for_c`], re-exported for symmetry with
/// [`crate::pss::consistency_c_required`].
///
/// # Panics
///
/// Panics unless `0 < ν < ½`.
#[must_use]
pub fn c_required(nu: f64) -> f64 {
    crate::theorem2::neat_bound(nu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverts_neat_bound() {
        for &c in &[0.1, 0.5, 1.0, 3.0, 30.0, 100.0] {
            let nu = nu_max_for_c(c).unwrap();
            assert!(nu > 0.0 && nu < 0.5);
            let back = c_required(nu);
            assert!((back - c).abs() < 1e-7 * c, "c={c} → ν={nu} → c={back}");
        }
    }

    #[test]
    fn monotone_in_c() {
        let mut prev = 0.0;
        for &c in &[0.1, 0.3, 1.0, 2.0, 3.0, 10.0, 30.0, 100.0] {
            let nu = nu_max_for_c(c).unwrap();
            assert!(nu > prev, "ν_max must increase with c");
            prev = nu;
        }
    }

    #[test]
    fn approaches_half_for_huge_c() {
        let nu = nu_max_for_c(1e9).unwrap();
        assert!(nu > 0.499_999);
    }

    #[test]
    fn tiny_c_tiny_nu() {
        let nu = nu_max_for_c(0.01).unwrap();
        assert!(nu < 1e-30, "ν_max = {nu:e} should be astronomically small");
    }

    #[test]
    fn rejects_bad_c() {
        assert!(nu_max_for_c(0.0).is_err());
        assert!(nu_max_for_c(-1.0).is_err());
        assert!(nu_max_for_c(f64::NAN).is_err());
    }

    #[test]
    fn theorem2_numax_converges_to_neat_at_large_delta() {
        for &c in &[1.0, 3.0, 10.0] {
            let asymptotic = nu_max_for_c(c).unwrap();
            let finite = nu_max_theorem2(c, 10_000_000_000_000).unwrap();
            assert!(
                (asymptotic - finite).abs() < 1e-4,
                "c={c}: neat {asymptotic} vs Thm2 {finite}"
            );
            // Finite-Δ bound is stricter: tolerates (weakly) less.
            assert!(finite <= asymptotic + 1e-12);
        }
    }

    #[test]
    fn theorem2_numax_much_smaller_at_tiny_delta() {
        let asymptotic = nu_max_for_c(3.0).unwrap();
        let finite = nu_max_theorem2(3.0, 1).unwrap();
        assert!(finite < asymptotic, "finite-Δ must be stricter");
    }

    #[test]
    fn theorem2_numax_zero_when_c_too_small() {
        // At Δ = 1 the second branch forces a sizeable floor on c even
        // for ν → 0.
        let v = nu_max_theorem2(0.05, 1).unwrap();
        assert_eq!(v, 0.0);
    }
}
