use std::fmt;

/// Error type for the consistency analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A model parameter violates the paper's constraints (Eqs. 1–3).
    InvalidParameter {
        /// Parameter name (e.g. `"nu"`).
        name: &'static str,
        /// Description of the violated constraint.
        message: String,
    },
    /// A numerical solver failed.
    Numerical(probability::Error),
    /// A Markov-chain computation failed.
    Markov(markov::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Error::Numerical(e) => write!(f, "numerical failure: {e}"),
            Error::Markov(e) => write!(f, "markov failure: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Numerical(e) => Some(e),
            Error::Markov(e) => Some(e),
            Error::InvalidParameter { .. } => None,
        }
    }
}

impl From<probability::Error> for Error {
    fn from(e: probability::Error) -> Self {
        Error::Numerical(e)
    }
}

impl From<markov::Error> for Error {
    fn from(e: markov::Error) -> Self {
        Error::Markov(e)
    }
}

impl Error {
    /// Shorthand constructor for [`Error::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        Error::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = Error::invalid("nu", "must be below 1/2");
        assert!(e.to_string().contains("nu"));
        assert!(std::error::Error::source(&e).is_none());

        let inner = probability::Error::NoBracket { lo: 0.0, hi: 1.0 };
        let e: Error = inner.into();
        assert!(e.to_string().contains("numerical"));
        assert!(std::error::Error::source(&e).is_some());

        let inner = markov::Error::BadShape {
            message: "empty".into(),
        };
        let e: Error = inner.into();
        assert!(e.to_string().contains("markov"));
    }
}
