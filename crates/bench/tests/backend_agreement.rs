//! Cross-backend agreement: the exact Markov backend against the
//! Monte-Carlo backend it replaces, on the committed
//! `examples/specs/markov_exact.toml` grid. Where both backends can
//! see the event, the sampled Wilson 95% interval must contain the
//! exact answer — the analytic backend may sharpen the sampler, never
//! contradict it. The suite also pins the truncation-error bound to
//! observed cap sensitivity: doubling the race cap must move the
//! answer by no more than the bound claimed at the smaller cap.

use consistency_bench::experiment;
use markov::race;
use nakamoto_sim::spec::ExperimentSpec;

const GOLDEN_SPEC: &str = include_str!("../../../examples/specs/markov_exact.toml");

/// The committed golden grid pits one `backend = "markov"` cell
/// against one `backend = "montecarlo"` cell of the same base
/// parameters. On every threshold the exact answer must fall inside
/// the sampled Wilson 95% interval.
#[test]
fn wilson_interval_contains_the_exact_answer_on_the_golden_grid() {
    let mut spec = ExperimentSpec::parse(GOLDEN_SPEC).expect("committed spec parses");
    // Shrink the sampled cell's budget (CI speed); the exact cell is
    // budget-free, and a Wilson interval is valid at any trial count.
    experiment::apply_budget(&mut spec, Some(1000), Some(32), None, None, None);
    let results = experiment::run_spec(&spec).expect("committed spec runs");
    assert_eq!(results.len(), 2, "one exact cell, one sampled cell");
    let exact = results[0].exact().expect("first cell solves exactly");
    let sampled = &results[1]
        .wilson()
        .expect("second cell samples trials")
        .aggregate;
    assert_eq!(
        results[0].spec.base.n_miners, results[1].spec.base.n_miners,
        "the two cells must describe the same protocol parameters"
    );
    for estimate in &exact.estimates {
        let wilson = sampled
            .failure_interval(estimate.threshold, 1.96)
            .expect("the sampled cell carries every threshold");
        assert!(
            wilson.lo <= estimate.probability && estimate.probability <= wilson.hi,
            "exact P[¬{}-cons] = {:e} outside the Wilson 95% interval [{:e}, {:e}]",
            estimate.threshold,
            estimate.probability,
            wilson.lo,
            wilson.hi,
        );
    }
}

/// The exact cell's answers must agree with the race module called
/// directly, and the analytic closed-form race scale must dominate
/// them (the capped solve under-counts the infinite race).
#[test]
fn exact_cell_matches_the_race_solve_and_the_analytic_scale() {
    let spec = ExperimentSpec::parse(GOLDEN_SPEC).expect("committed spec parses");
    let results = experiment::run_spec(&spec).expect("committed spec runs");
    let cell = &results[0];
    let exact = cell.exact().expect("markov cell first");
    let bounds = cell.analytic.as_ref().expect("ν > 0 carries bounds");
    for estimate in &exact.estimates {
        let direct = race::violation_probability(exact.q, estimate.threshold, exact.cap)
            .expect("validated inputs");
        assert_eq!(estimate.probability, direct.probability);
        assert_eq!(estimate.truncation_error, direct.truncation_error);
        let scale = bounds
            .race_failure_scale(estimate.threshold)
            .expect("q < ½ on the golden grid");
        // Allow the truncation bound plus float noise between the
        // linear solve and the closed-form power.
        assert!(
            estimate.probability <= scale + estimate.truncation_error + 1e-9 * scale,
            "exact answer {:e} above the closed-form scale {scale:e}",
            estimate.probability,
        );
    }
}

/// The truncation-error bound must dominate observed cap sensitivity:
/// doubling the cap moves the answer by less than the bound reported
/// at the smaller cap, across sub- and near-critical shares.
#[test]
fn truncation_bound_dominates_cap_doubling() {
    for q in [0.15, 0.25, 0.35, 0.45] {
        for threshold in [2u64, 5, 9] {
            for cap in [threshold + 4, threshold + 16, threshold + 64] {
                let small = race::violation_probability(q, threshold, cap).unwrap();
                let doubled = race::violation_probability(q, threshold, 2 * cap).unwrap();
                let shift = (doubled.probability - small.probability).abs();
                assert!(
                    shift <= small.truncation_error + 1e-15,
                    "q={q} T={threshold} cap={cap}: doubling the cap moved the answer \
                     by {shift:e}, above the claimed bound {:e}",
                    small.truncation_error,
                );
                // Larger caps can only tighten the claimed bound.
                assert!(doubled.truncation_error <= small.truncation_error + 1e-18);
            }
        }
    }
}
