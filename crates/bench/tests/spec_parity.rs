//! Bit-identity of the spec-driven sweep paths with the pre-spec
//! hard-coded harness binaries: for a fixed seed, every cell of the
//! committed `examples/specs/{attack,scenario,compose}_sweep.toml`
//! grids must aggregate **bit-identically** to the loops the old
//! binaries ran. The replicas below are verbatim ports of those loops
//! (same per-cell SplitMix64 seed streams, same plan construction);
//! the cell seeds don't depend on the budget, so parity at the tiny
//! test budgets implies parity at the committed defaults.

use consistency_bench::experiment;
use nakamoto_sim::adversary::{BalanceAdversary, PrivateChainAdversary};
use nakamoto_sim::compose::{ComposedAdversary, Composition, SubSpec};
use nakamoto_sim::config::SimConfig;
use nakamoto_sim::montecarlo::{TrialAggregate, TrialPlan};
use nakamoto_sim::scenario::{PhaseSpec, Regime, Scenario, ScenarioPlan, StrategyKind};
use nakamoto_sim::spec::ExperimentSpec;
use probability::rng::{RandomSource, SplitMix64};

const ROUNDS: u64 = 400;
const TRIALS: u64 = 2;

fn spec_aggregates(source: &str, rounds: u64, trials: u64) -> Vec<TrialAggregate> {
    let mut spec = ExperimentSpec::parse(source).expect("committed spec parses");
    experiment::apply_budget(&mut spec, Some(rounds), Some(trials), None, None, None);
    experiment::run_spec(&spec)
        .expect("committed spec runs")
        .into_iter()
        .map(|cell| match cell.estimate {
            nakamoto_sim::spec::Estimate::Wilson(run) => run.aggregate,
            _ => panic!("the committed sweep specs sample Wilson trials"),
        })
        .collect()
}

/// The pre-spec `attack_sweep` loop, verbatim.
#[test]
fn attack_sweep_spec_path_is_bit_identical_to_the_pre_spec_loop() {
    let via_spec = spec_aggregates(
        include_str!("../../../examples/specs/attack_sweep.toml"),
        ROUNDS,
        TRIALS,
    );
    let (n, delta, t_consistency) = (100u64, 4u64, 12u64);
    let mut cell_seeds = SplitMix64::new(0x00A7_7AC4_5EED);
    let mut at = 0usize;
    for &c in &[0.5f64, 1.0, 2.0] {
        for &nu in &[0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45] {
            let private_seed = cell_seeds.next_u64();
            let balance_seed = cell_seeds.next_u64();
            let run_cell = |seed: u64, balance: bool| {
                let cfg = SimConfig::from_c(n, delta, c, nu, seed).expect("valid");
                let plan = TrialPlan::new(cfg, ROUNDS, TRIALS)
                    .expect("non-empty plan")
                    .thresholds(vec![t_consistency]);
                if balance {
                    plan.run(move |_| BalanceAdversary::new(delta))
                } else {
                    plan.run(move |_| PrivateChainAdversary::new(delta))
                }
            };
            assert_eq!(
                via_spec[at],
                run_cell(private_seed, false).aggregate,
                "private cell (c = {c}, ν = {nu})"
            );
            assert_eq!(
                via_spec[at + 1],
                run_cell(balance_seed, true).aggregate,
                "balance cell (c = {c}, ν = {nu})"
            );
            at += 2;
        }
    }
    assert_eq!(at, via_spec.len(), "every spec cell was compared");
}

/// The pre-spec `scenario_sweep` grid, verbatim.
#[test]
fn scenario_sweep_spec_path_is_bit_identical_to_the_pre_spec_loop() {
    let via_spec = spec_aggregates(
        include_str!("../../../examples/specs/scenario_sweep.toml"),
        ROUNDS,
        TRIALS,
    );
    let windows: [(StrategyKind, Regime); 4] = [
        (StrategyKind::PrivateChain, Regime::Adversarial),
        (StrategyKind::Balance, Regime::Adversarial),
        (StrategyKind::PrivateChain, Regime::Eclipse { group: 1 }),
        (StrategyKind::Composed(0), Regime::Adversarial),
    ];
    let compositions = vec![Composition::new(vec![
        SubSpec::new(StrategyKind::Balance, 1),
        SubSpec::new(StrategyKind::Selfish, 1),
    ])
    .expect("valid composition")];
    let (n, delta, c, base_nu, t_consistency) = (100u64, 4u64, 1.0, 0.10, 12u64);
    let mut cell_seeds = SplitMix64::new(0x5CE7_A210_5EED);
    let mut at = 0usize;
    for &nu in &[0.15, 0.25, 0.35, 0.45] {
        for &(strategy, regime) in &windows {
            let seed = cell_seeds.next_u64();
            let base = SimConfig::from_c(n, delta, c, base_nu, seed).expect("valid base");
            let scenario = Scenario::with_compositions(
                base,
                vec![
                    PhaseSpec::new(ROUNDS, StrategyKind::Honest, Regime::Calm),
                    PhaseSpec::new(ROUNDS, strategy, regime).with_power(nu),
                    PhaseSpec::new(ROUNDS, StrategyKind::Honest, Regime::Calm),
                ],
                compositions.clone(),
            )
            .expect("valid scenario");
            let run = ScenarioPlan::new(scenario, TRIALS)
                .expect("non-empty plan")
                .thresholds(vec![t_consistency])
                .run();
            assert_eq!(
                via_spec[at],
                run.aggregate,
                "scenario cell (ν = {nu}, window {:?})",
                (strategy, regime)
            );
            at += 1;
        }
    }
    assert_eq!(at, via_spec.len(), "every spec cell was compared");
}

/// The pre-spec `compose_sweep` grid, verbatim.
#[test]
fn compose_sweep_spec_path_is_bit_identical_to_the_pre_spec_loop() {
    let via_spec = spec_aggregates(
        include_str!("../../../examples/specs/compose_sweep.toml"),
        ROUNDS,
        TRIALS,
    );
    let pairs: [(StrategyKind, StrategyKind); 3] = [
        (StrategyKind::Balance, StrategyKind::Selfish),
        (StrategyKind::Balance, StrategyKind::PrivateChain),
        (StrategyKind::PrivateChain, StrategyKind::Selfish),
    ];
    let splits: [(u64, u64); 5] = [(4, 0), (3, 1), (2, 2), (1, 3), (0, 4)];
    let (n, delta, c, nu, t_consistency) = (100u64, 4u64, 1.0, 0.40, 12u64);
    let mut cell_seeds = SplitMix64::new(0x000C_0390_5EED);
    let mut at = 0usize;
    for &(wa, wb) in &splits {
        for &(a, b) in &pairs {
            let seed = cell_seeds.next_u64();
            let cfg = SimConfig::from_c(n, delta, c, nu, seed).expect("valid");
            let composition = Composition::new(vec![SubSpec::new(a, wa), SubSpec::new(b, wb)])
                .expect("valid composition");
            let run = TrialPlan::new(cfg, ROUNDS, TRIALS)
                .expect("non-empty plan")
                .thresholds(vec![t_consistency])
                .run(move |_| ComposedAdversary::new(cfg.delta, composition.clone()));
            assert_eq!(
                via_spec[at],
                run.aggregate,
                "composed cell ({wa}:{wb}, pair {:?})",
                (a, b)
            );
            at += 1;
        }
    }
    assert_eq!(at, via_spec.len(), "every spec cell was compared");
}
