//! Process-level regression test for the one-pool-per-process
//! contract: an N-cell experiment grid goes through **one** shared
//! executor pool, not N thread scopes. It lives alone in its own
//! integration-test binary so no sibling test races the global pool's
//! creation or width configuration.

use consistency_bench::experiment;
use nakamoto_sim::executor;
use nakamoto_sim::spec::ExperimentSpec;

const GRID_SPEC: &str = r#"
    [experiment]
    trials = 2
    thresholds = [12]

    [base]
    n_miners = 100
    delta = 4
    c = 2.0
    adversary_fraction = 0.25
    seed = 11

    [stationary]
    strategy = "private-chain"
    rounds = 400

    [sweep]
    seed = 5

    [[sweep.axis]]
    label = "nu"

    [[sweep.axis.cell]]
    label = "0.15"
    patch = { "base.adversary_fraction" = 0.15 }

    [[sweep.axis.cell]]
    label = "0.25"
    patch = { "base.adversary_fraction" = 0.25 }

    [[sweep.axis.cell]]
    label = "0.35"
    patch = { "base.adversary_fraction" = 0.35 }
"#;

#[test]
fn an_n_cell_grid_spawns_one_pool_not_n_scopes() {
    assert_eq!(
        executor::global_pools_created(),
        0,
        "this test owns the process: the pool must not pre-exist"
    );
    assert!(
        executor::configure_global_width(2),
        "width is configurable before first use"
    );
    let spec = ExperimentSpec::parse(GRID_SPEC).unwrap();

    let first = experiment::run_spec_streaming(&spec, 2, |_, _| {}).unwrap();
    assert_eq!(first.len(), 3);
    let after_first = executor::global_stats();
    assert_eq!(
        executor::global_pools_created(),
        1,
        "one pool, created lazily"
    );
    assert_eq!(executor::global_width(), 2, "--jobs width sticks");
    assert_eq!(
        after_first.threads_spawned, 2,
        "exactly the pool width, not one scope per cell"
    );

    // A second grid reuses the same workers: no new pool, no new
    // threads, just more jobs through the same queues.
    let second = experiment::run_spec_streaming(&spec, 2, |_, _| {}).unwrap();
    let after_second = executor::global_stats();
    assert_eq!(executor::global_pools_created(), 1);
    assert_eq!(after_second.threads_spawned, after_first.threads_spawned);
    assert!(after_second.jobs_submitted > after_first.jobs_submitted);

    // And pooled execution is still deterministic run to run.
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.wilson().unwrap().aggregate, b.wilson().unwrap().aggregate);
    }
}
