//! Smoke tests: one per harness binary in `src/bin/`, exercising each
//! binary's core entry functions on tiny parameters so a refactor that
//! breaks a harness code path fails `cargo test` instead of waiting to be
//! caught by someone running the binary by hand.

use consistency_core::params::ProtocolParams;
use nakamoto_sim::adversary::{BalanceAdversary, ImmediateReleaseAdversary, PrivateChainAdversary};
use nakamoto_sim::config::SimConfig;
use nakamoto_sim::execution::{run_simulation, run_simulation_with};
use nakamoto_sim::montecarlo::TrialPlan;
use nakamoto_sim::selfish::SelfishMiningAdversary;

const ROUNDS: u64 = 2_000;

fn tiny_params() -> ProtocolParams {
    ProtocolParams::from_c(100, 2, 3.0, 0.25).expect("valid tiny parameters")
}

/// `figure1`: curve generation and the exact-PSS cross-check.
#[test]
fn figure1_entry() {
    let pts = consistency_core::figure1::generate(5).unwrap();
    assert_eq!(pts.len(), 5);
    let table = consistency_core::figure1::to_table(&pts);
    assert!(!table.is_empty());
    let exact = consistency_core::pss::exact_consistency_nu_max(
        consistency_core::figure1::FIGURE1_N,
        consistency_core::figure1::FIGURE1_DELTA,
        3.0,
    )
    .unwrap()
    .expect("a consistency region exists at c = 3");
    assert!(exact > 0.0 && exact < 0.5);
}

/// `table1`: parameter construction and every derived quantity.
#[test]
fn table1_entry() {
    let p = ProtocolParams::from_c(100_000, 10_000_000_000_000, 3.0, 0.3).unwrap();
    assert!(p.alpha() > 0.0 && p.alpha() < 1.0);
    assert!(p.alpha1() > 0.0);
    assert!((p.c() - 3.0).abs() < 1e-9);
    assert!(p.is_consistent_by_neat_bound());
}

/// `remark1`: the admissible ν ranges and inflation factors.
#[test]
fn remark1_entry() {
    let delta = 10_000_000_000_000u64;
    let range = consistency_core::theorem2::remark1_nu_range(delta, 1.0 / 6.0, 0.5).unwrap();
    assert!(range.lo < range.hi && range.hi < 0.5);
    let factor = consistency_core::theorem2::remark1_factor(delta, 1.0 / 6.0, 0.5).unwrap();
    assert!(factor > 1.0);
    let bound =
        consistency_core::theorem2::remark1_c_bound(0.25, delta, 1.0 / 6.0, 0.5, 1e-6).unwrap();
    assert!(bound > consistency_core::theorem2::neat_bound(0.25));
}

/// `attack_sweep`: ν_max solvers plus both attack adversaries on the
/// multi-trial engine with a Wilson-interval failure rate.
#[test]
fn attack_sweep_entry() {
    let nu_max = consistency_core::numax::nu_max_for_c(3.0).unwrap();
    assert!(nu_max > 0.0 && nu_max < 0.5);
    let cfg = SimConfig::new(50, 0.25, 1e-3, 2, 7).unwrap();
    let plan = TrialPlan::new(cfg, ROUNDS, 3)
        .expect("non-empty plan")
        .thresholds(vec![12]);
    let private = plan.run(|_| PrivateChainAdversary::new(2));
    let balance = plan.run(|_| BalanceAdversary::new(2));
    assert_eq!(private.aggregate.total_rounds(), 3 * ROUNDS);
    assert_eq!(balance.aggregate.total_rounds(), 3 * ROUNDS);
    let wilson = private.aggregate.failure_interval(12, 1.96).unwrap();
    assert!(wilson.lo <= wilson.estimate && wilson.estimate <= wilson.hi);
}

/// `scenario_sweep`: a three-phase scenario cell (power shift +
/// strategy switch + eclipse window) on the scenario Monte-Carlo
/// engine, with the Wilson-CI failure rate and thread-count
/// determinism the phase diagram relies on.
#[test]
fn scenario_sweep_entry() {
    use nakamoto_sim::scenario::{PhaseSpec, Regime, Scenario, ScenarioPlan, StrategyKind};
    let base = SimConfig::from_c(100, 4, 1.0, 0.1, 77).unwrap();
    let scenario = Scenario::new(
        base,
        vec![
            PhaseSpec::new(ROUNDS / 2, StrategyKind::Honest, Regime::Calm),
            PhaseSpec::new(
                ROUNDS / 2,
                StrategyKind::PrivateChain,
                Regime::Eclipse { group: 1 },
            )
            .with_power(0.4),
            PhaseSpec::new(ROUNDS / 2, StrategyKind::Honest, Regime::Calm),
        ],
    )
    .unwrap();
    assert_eq!(scenario.group_count(), 2);
    let plan = ScenarioPlan::new(scenario, 3).unwrap().thresholds(vec![12]);
    let run = plan.clone().with_threads(1).run();
    assert_eq!(run.aggregate.trials, 3);
    assert_eq!(run.aggregate.rounds_per_trial, 3 * (ROUNDS / 2));
    let wilson = run.aggregate.failure_interval(12, 1.96).unwrap();
    assert!(wilson.lo <= wilson.estimate && wilson.estimate <= wilson.hi);
    let run2 = plan.with_threads(2).run();
    assert_eq!(
        run.aggregate, run2.aggregate,
        "scenario aggregate must be thread-count independent"
    );
}

/// `compose_sweep`: a composed-adversary cell on the multi-trial
/// engine — pure-strategy edge rows must reproduce the bare adversary
/// bit-for-bit, mixed rows must run and tally.
#[test]
fn compose_sweep_entry() {
    use nakamoto_sim::compose::{ComposedAdversary, Composition, SubSpec};
    use nakamoto_sim::scenario::StrategyKind;
    let cfg = SimConfig::from_c(100, 4, 1.0, 0.4, 99).unwrap();
    let composition = |wa: u64, wb: u64| {
        Composition::new(vec![
            SubSpec::new(StrategyKind::Balance, wa),
            SubSpec::new(StrategyKind::Selfish, wb),
        ])
        .unwrap()
    };
    let plan = TrialPlan::new(cfg, ROUNDS, 3)
        .expect("non-empty plan")
        .thresholds(vec![12]);
    let mixed = plan.run(move |_| ComposedAdversary::new(cfg.delta, composition(1, 1)));
    assert_eq!(mixed.aggregate.trials, 3);
    assert!(mixed.aggregate.total_adversary_blocks > 0);
    let pure_edge = plan.run(move |_| ComposedAdversary::new(cfg.delta, composition(1, 0)));
    let bare = plan.run(move |_| BalanceAdversary::new(cfg.delta));
    assert_eq!(
        pure_edge.aggregate, bare.aggregate,
        "the 1:0 row must reproduce the bare strategy"
    );
}

/// `scenario_fuzz`: a deterministic slice of the fuzz gate's budget,
/// plus the replay entry point.
#[test]
fn scenario_fuzz_entry() {
    use nakamoto_sim::fuzz::{run_case, ScenarioFuzzer};
    let stats = ScenarioFuzzer::new(0xC1_5EED)
        .run(6)
        .unwrap_or_else(|failure| panic!("{failure}\n{}", failure.repro_toml()));
    assert_eq!(stats.cases, 6);
    assert!(run_case(0xC1_5EED, 0).is_ok());
}

/// `scenario_fuzz --replay`: a written repro file loads back through
/// the experiment-spec parser, reconstructs exactly the case its
/// `[fuzz]` coordinates name, and re-runs the invariant checks — the
/// full write → parse → verify → re-check loop of the replay flag.
#[test]
fn scenario_fuzz_replay_entry() {
    use nakamoto_sim::fuzz::{check_scenario, sample_scenario_for, FuzzFailure};
    use nakamoto_sim::spec::ExperimentSpec;
    let (master_seed, case) = (0xC1_5EED, 4u64);
    let failure = FuzzFailure {
        master_seed,
        case,
        invariant: "pruning-liveness",
        detail: "smoke repro (healthy case)".into(),
        scenario: sample_scenario_for(master_seed, case),
    };
    let path = std::env::temp_dir().join("bin_smoke_scenario_fuzz_repro.toml");
    std::fs::write(&path, failure.repro_toml()).expect("repro written");
    let source = std::fs::read_to_string(&path).expect("repro read back");
    let _ = std::fs::remove_file(&path);
    let spec = ExperimentSpec::parse(&source).expect("repro parses as an experiment spec");
    let fuzz = spec.fuzz.clone().expect("replay coordinates present");
    assert_eq!((fuzz.master_seed, fuzz.case), (master_seed, case));
    let scenario = spec.scenario().expect("repro scenario rebuilds");
    assert_eq!(
        scenario,
        sample_scenario_for(fuzz.master_seed, fuzz.case),
        "the repro body must match its replay coordinates"
    );
    check_scenario(&scenario).expect("a healthy case replays clean");
}

/// `experiment`: golden-file smoke — every committed spec under
/// `examples/specs/` parses, expands, runs at a tiny budget, and
/// renders well-formed JSON; the theorem1_check spec's JSON must carry
/// the theorem-1 analytic bound alongside the simulated Wilson CI.
#[test]
fn experiment_entry_runs_every_committed_spec() {
    use consistency_bench::experiment;
    use nakamoto_sim::spec::ExperimentSpec;
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("examples/specs exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    paths.sort();
    // The literal stem list keeps every committed spec pinned to this
    // smoke test (detlint's xref-spec-used rule cross-checks it): a new
    // spec must be added here, a deleted one must be removed.
    let expected = [
        "adaptive_stopping",
        "attack_sweep",
        "attack_window",
        "compose_sweep",
        "markov_exact",
        "rare_event",
        "scenario_sweep",
        "theorem1_check",
    ];
    let stems: Vec<_> = paths
        .iter()
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        stems, expected,
        "committed specs drifted from the pinned list"
    );
    for path in &paths {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(path).expect("spec readable");
        let mut spec = ExperimentSpec::parse(&source)
            .unwrap_or_else(|e| panic!("{name}: committed spec must parse: {e}"));
        experiment::apply_budget(&mut spec, Some(200), Some(2), None, None, None);
        let results = experiment::run_spec(&spec)
            .unwrap_or_else(|e| panic!("{name}: committed spec must run: {e}"));
        assert!(!results.is_empty(), "{name}: at least one cell");
        let json = experiment::to_json(&name, &results);
        assert!(
            experiment::json_is_well_formed(&json),
            "{name}: malformed JSON:\n{json}"
        );
        if name == "theorem1_check" {
            assert!(
                json.contains("\"theorem1_ln_margin\"") && json.contains("\"estimate\""),
                "{name}: the analytic overlay must ride beside the Wilson interval:\n{json}"
            );
            let bounds = results[0].analytic.as_ref().expect("ν > 0 carries bounds");
            assert!(bounds.theorem1_holds, "c = 3 at ν = 0.3 is consistent");
        }
        if name == "markov_exact" {
            // Budget overrides must leave the exact backend exact: the
            // cell carries probabilities with truncation bounds, not a
            // two-trial Wilson interval.
            let exact = results[0].exact().expect("markov backend selected");
            assert!(
                exact.estimates.iter().all(|e| e.probability > 0.0
                    && e.truncation_error.is_finite()
                    && e.truncation_error < e.probability),
                "{name}: exact estimates must dominate their truncation bounds"
            );
            assert!(
                json.contains("\"backend\": \"markov\"") && json.contains("\"truncation_error\""),
                "{name}: the JSON must carry the exact block:\n{json}"
            );
        }
    }
}

/// `bench_sim`: the throughput harness's workloads at tiny budgets —
/// a statically dispatched single run plus a parallel trial fan-out.
#[test]
fn bench_sim_entry() {
    let cfg = SimConfig::from_c(100, 4, 3.0, 0.25, 42).unwrap();
    let report = run_simulation_with(cfg, PrivateChainAdversary::new(4), ROUNDS);
    assert_eq!(report.rounds, ROUNDS);
    let run = TrialPlan::new(cfg, 500, 4)
        .expect("non-empty plan")
        .run(|_| BalanceAdversary::new(4));
    assert!(run.rounds_per_sec > 0.0);
    assert_eq!(run.aggregate.trials, 4);
}

/// `stationary_check`: suffix chain construction, closed form vs GTH vs
/// power iteration, ergodicity, Kac return times.
#[test]
fn stationary_check_entry() {
    let (alpha, delta) = (0.2, 3u64);
    let chain = consistency_core::suffix_chain::build_chain(alpha, delta).unwrap();
    let closed = consistency_core::suffix_chain::closed_form_stationary(alpha, delta).unwrap();
    assert!(markov::structure::is_ergodic(&chain));
    let gth = markov::stationary::stationary_gth(&chain).unwrap();
    let power =
        markov::stationary::stationary_power(&chain, markov::stationary::PowerConfig::default())
            .unwrap();
    for ((a, b), c) in closed.iter().zip(&gth).zip(&power) {
        assert!((a - b).abs() < 1e-10 && (a - c).abs() < 1e-8);
    }
    let ret = markov::hitting::expected_return_time(&chain, 0).unwrap();
    assert!((ret - 1.0 / gth[0]).abs() < 1e-6);
}

/// `convergence_validation`: the Monte-Carlo validation rows (single
/// run and multi-trial).
#[test]
fn convergence_validation_entry() {
    let row = consistency_core::convergence::validate(&tiny_params(), ROUNDS, 1).unwrap();
    assert!(row.measured_convergence > 0);
    assert!(row.convergence_rel_error().is_finite());
    assert!(row.adversary_rel_error().is_finite());
    assert!(row.suffix_max_abs_error() < 1.0);
    let trials =
        consistency_core::convergence::validate_trials(&tiny_params(), ROUNDS, 3, 1).unwrap();
    assert_eq!(trials.trials, 3);
    assert!(trials.mean_convergence > 0.0);
    assert!(trials.convergence_z_score().is_finite());
}

/// `concentration`: expectations, the Chung-et-al. walk bound, and the
/// Arratia–Gordon adversary tail bound.
#[test]
fn concentration_entry() {
    let params = tiny_params();
    let e_c = consistency_core::theorem1::expected_convergence_opportunities(&params, ROUNDS);
    let e_a = consistency_core::theorem1::expected_adversary_blocks(&params, ROUNDS);
    assert!(e_c > 0.0 && e_a > 0.0);
    let ln_tail = consistency_core::extended_chain::walk_bound_params(&params, ROUNDS, 1.0)
        .unwrap()
        .ln_lower_tail(0.05)
        .unwrap();
    assert!(ln_tail <= 0.0);
    let t_nu_n = ROUNDS * params.to_sim_config(0).n_adversary();
    let tail = probability::chernoff::adversary_tail_bound(t_nu_n, params.p(), 0.05).unwrap();
    assert!(tail > 0.0 && tail <= 1.0);
}

/// `lemma_audit`: Theorem 3's split condition and the lemma chain.
#[test]
fn lemma_audit_entry() {
    let params = ProtocolParams::from_c(10_000, 4, 5.0, 0.2).unwrap();
    if consistency_core::theorem3::holds(&params, 0.1, 0.1) {
        consistency_core::lemmas::audit_chain(&params, 0.1, 0.1).unwrap();
    }
}

/// `kiffer_ablation`: corrected vs incorrect interarrival estimates.
#[test]
fn kiffer_ablation_entry() {
    let params = ProtocolParams::from_c(1_000, 8, 3.0, 0.25).unwrap();
    let corrected = consistency_core::kiffer::interarrival_corrected(&params);
    let incorrect = consistency_core::kiffer::interarrival_incorrect(&params);
    assert!(corrected > 0.0 && incorrect > 0.0);
}

/// `catchup_table`: closed-form catch-up probability vs absorbing chain.
#[test]
fn catchup_table_entry() {
    let closed = consistency_core::catchup::catchup_probability(0.3, 3).unwrap();
    let markov = consistency_core::catchup::catchup_probability_markov(0.3, 3, 103).unwrap();
    assert!((closed - markov).abs() < 1e-6);
    let cfg = SimConfig::from_c(50, 2, 1.0, 0.3, 9).unwrap();
    let report = run_simulation(cfg, Box::new(PrivateChainAdversary::new(2)), ROUNDS);
    assert_eq!(report.rounds, ROUNDS);
}

/// `chain_metrics`: growth/quality metrics under three adversaries.
#[test]
fn chain_metrics_entry() {
    let cfg = SimConfig::from_c(50, 2, 2.0, 0.2, 555).unwrap();
    for adversary in [
        run_simulation(cfg, Box::new(ImmediateReleaseAdversary::new()), ROUNDS),
        run_simulation(cfg, Box::new(PrivateChainAdversary::new(2)), ROUNDS),
        run_simulation(cfg, Box::new(SelfishMiningAdversary::new(2)), ROUNDS),
    ] {
        assert!(adversary.chain_growth_rate() > 0.0);
        assert!(adversary.chain_quality() > 0.0 && adversary.chain_quality() <= 1.0);
    }
}

/// `window_scan`: the sliding-window Lemma-1 scan.
#[test]
fn window_scan_entry() {
    let reports = consistency_core::window::simulate_and_scan(
        &tiny_params(),
        Box::new(PrivateChainAdversary::new(2)),
        ROUNDS,
        &[500],
        88,
    )
    .unwrap();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].window, 500);
}
