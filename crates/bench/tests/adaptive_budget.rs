//! The committed adaptive-stopping sweep must pay for itself: every
//! cell of `examples/specs/adaptive_stopping.toml` has to meet the
//! spec's target half-width on **every** threshold while the sweep as
//! a whole spends at least 3x fewer trials than the fixed budget
//! would. The test shrinks rounds-per-trial (CI speed), not the trial
//! budget or the target — the stopping rule faces the same Wilson
//! arithmetic either way.

use consistency_bench::experiment;
use nakamoto_sim::montecarlo::STOP_Z;
use nakamoto_sim::spec::ExperimentSpec;

#[test]
fn adaptive_sweep_meets_target_at_a_fraction_of_the_fixed_budget() {
    let mut spec = ExperimentSpec::parse(include_str!(
        "../../../examples/specs/adaptive_stopping.toml"
    ))
    .expect("committed spec parses");
    let budget = spec.run.trials;
    let target = spec
        .run
        .stop_half_width
        .expect("committed spec declares a stopping target");
    assert!(spec.run.batch_width > 1, "spec exercises the batch engine");
    experiment::apply_budget(&mut spec, Some(400), None, None, None, None);

    let results = experiment::run_spec(&spec).expect("committed spec runs");
    assert!(!results.is_empty());
    let mut adaptive_total = 0u64;
    for cell in &results {
        let name = experiment::cell_name(cell);
        let aggregate = &cell.wilson().expect("adaptive cells sample").aggregate;
        adaptive_total += aggregate.trials;
        assert!(
            aggregate.trials < budget,
            "cell {name} burned the whole budget ({} trials)",
            aggregate.trials
        );
        for &(t, _) in &aggregate.failure_counts {
            let half_width = aggregate
                .half_width(t, STOP_Z)
                .expect("aggregate carries every plan threshold");
            assert!(
                half_width <= target,
                "cell {name} stopped at {} trials with half-width {half_width:.4} > {target} \
                 at threshold {t}",
                aggregate.trials
            );
        }
    }
    let fixed_total = budget * results.len() as u64;
    assert!(
        adaptive_total * 3 <= fixed_total,
        "adaptive spend {adaptive_total} is not 3x below the fixed budget {fixed_total}"
    );
}
