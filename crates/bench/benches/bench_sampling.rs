//! Criterion bench: the DESIGN.md ablation between binomial sampling
//! strategies inside the mining oracle (direct Bernoulli vs BINV vs
//! quantile inversion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use probability::binomial::Binomial;
use probability::rng::Xoshiro256PlusPlus;
use std::hint::black_box;

fn bench_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_sample");
    // (n, p) spanning the three sampling regimes.
    let cases = [
        ("direct/n=16", 16u64, 0.3),
        ("binv/np=0.08", 10_000u64, 8e-6),
        ("binv/np=10", 10_000u64, 1e-3),
        ("quantile/np=500", 10_000u64, 0.05),
    ];
    for (label, n, p) in cases {
        let dist = Binomial::new(n, p).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(label), &dist, |b, d| {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(9);
            b.iter(|| black_box(d.sample(&mut rng)));
        });
    }
    group.finish();
}

fn bench_tail_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_tails");
    let d = Binomial::new(100_000, 1e-4).unwrap();
    group.bench_function("cdf_incomplete_beta", |b| {
        b.iter(|| d.cdf(black_box(12)).unwrap());
    });
    group.bench_function("ln_pmf", |b| {
        b.iter(|| d.ln_pmf(black_box(12)));
    });
    group.finish();
}

criterion_group!(benches, bench_binomial, bench_tail_functions);
criterion_main!(benches);
