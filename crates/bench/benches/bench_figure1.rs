//! Criterion bench: cost of regenerating Figure 1's curves (solver
//! throughput for the three ν_max inversions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_curves(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1");
    for &points in &[10usize, 100] {
        group.bench_with_input(BenchmarkId::new("generate", points), &points, |b, &n| {
            b.iter(|| consistency_core::figure1::generate(black_box(n)).unwrap());
        });
    }
    group.bench_function("nu_max_for_c(3.0)", |b| {
        b.iter(|| consistency_core::numax::nu_max_for_c(black_box(3.0)).unwrap());
    });
    group.bench_function("pss_exact_numax(n=1e5,D=1e13,c=3)", |b| {
        b.iter(|| {
            consistency_core::pss::exact_consistency_nu_max(
                black_box(100_000),
                black_box(10_000_000_000_000),
                black_box(3.0),
            )
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_curves);
criterion_main!(benches);
