//! Criterion bench: simulator round throughput across population size,
//! Δ, and adversary strategy — the budget that sizes every Monte-Carlo
//! experiment in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nakamoto_sim::adversary::{BalanceAdversary, ImmediateReleaseAdversary, PrivateChainAdversary};
use nakamoto_sim::config::SimConfig;
use nakamoto_sim::execution::run_simulation;
use std::hint::black_box;

const ROUNDS: u64 = 20_000;

fn bench_round_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.throughput(Throughput::Elements(ROUNDS));
    // Each iteration simulates 20k rounds; keep the sample budget small
    // so the full suite stays in CI range.
    group.sample_size(10);
    for &n in &[100u64, 1_000, 10_000] {
        let cfg = SimConfig::new(n, 0.25, 1.0 / (3.0 * n as f64 * 4.0), 4, 1).unwrap();
        group.bench_with_input(BenchmarkId::new("immediate_release", n), &cfg, |b, cfg| {
            b.iter(|| {
                run_simulation(
                    black_box(*cfg),
                    Box::new(ImmediateReleaseAdversary::new()),
                    ROUNDS,
                )
            });
        });
    }
    let cfg = SimConfig::new(1_000, 0.25, 1.0 / (3.0 * 1_000.0 * 4.0), 4, 1).unwrap();
    group.bench_function("private_chain/1000", |b| {
        b.iter(|| {
            run_simulation(
                black_box(cfg),
                Box::new(PrivateChainAdversary::new(4)),
                ROUNDS,
            )
        });
    });
    group.bench_function("balance/1000", |b| {
        b.iter(|| run_simulation(black_box(cfg), Box::new(BalanceAdversary::new(4)), ROUNDS));
    });
    group.finish();
}

criterion_group!(benches, bench_round_loop);
criterion_main!(benches);
