//! Criterion bench: simulator round throughput across population size,
//! Δ, and adversary strategy — the budget that sizes every Monte-Carlo
//! experiment in EXPERIMENTS.md.
//!
//! All entries drive the statically dispatched engine
//! (`run_simulation_with`); `boxed_dispatch/1000` keeps the historical
//! `Box<dyn Adversary>` entry point measured alongside it, and
//! `montecarlo_4trials/1000` exercises the parallel trial fan-out
//! end-to-end (thread count = available parallelism).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nakamoto_sim::adversary::{BalanceAdversary, ImmediateReleaseAdversary, PrivateChainAdversary};
use nakamoto_sim::config::SimConfig;
use nakamoto_sim::execution::{run_simulation, run_simulation_with};
use nakamoto_sim::montecarlo::TrialPlan;
use std::hint::black_box;

const ROUNDS: u64 = 20_000;

fn bench_round_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.throughput(Throughput::Elements(ROUNDS));
    // Each iteration simulates 20k rounds; keep the sample budget small
    // so the full suite stays in CI range.
    group.sample_size(10);
    for &n in &[100u64, 1_000, 10_000] {
        let cfg = SimConfig::new(n, 0.25, 1.0 / (3.0 * n as f64 * 4.0), 4, 1).unwrap();
        group.bench_with_input(BenchmarkId::new("immediate_release", n), &cfg, |b, cfg| {
            b.iter(|| {
                run_simulation_with(black_box(*cfg), ImmediateReleaseAdversary::new(), ROUNDS)
            });
        });
    }
    let cfg = SimConfig::new(1_000, 0.25, 1.0 / (3.0 * 1_000.0 * 4.0), 4, 1).unwrap();
    group.bench_function("private_chain/1000", |b| {
        b.iter(|| run_simulation_with(black_box(cfg), PrivateChainAdversary::new(4), ROUNDS));
    });
    group.bench_function("balance/1000", |b| {
        b.iter(|| run_simulation_with(black_box(cfg), BalanceAdversary::new(4), ROUNDS));
    });
    // Historical boxed entry point: the gap to private_chain/1000 is
    // the residual cost of dynamic dispatch.
    group.bench_function("boxed_dispatch/1000", |b| {
        b.iter(|| {
            run_simulation(
                black_box(cfg),
                Box::new(PrivateChainAdversary::new(4)),
                ROUNDS,
            )
        });
    });
    group.finish();

    let mut group = c.benchmark_group("montecarlo");
    group.throughput(Throughput::Elements(4 * ROUNDS));
    group.sample_size(10);
    group.bench_function("private_chain_4trials/1000", |b| {
        b.iter(|| {
            TrialPlan::new(black_box(cfg), ROUNDS, 4)
                .unwrap()
                .thresholds(vec![12])
                .run(|_| PrivateChainAdversary::new(4))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_round_loop);
criterion_main!(benches);
