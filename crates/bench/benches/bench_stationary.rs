//! Criterion bench: the DESIGN.md ablation between stationary-
//! distribution solvers on the suffix chain `C_F` — closed form (O(Δ))
//! vs GTH (O(Δ³)) vs power iteration (O(Δ·steps)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use markov::stationary::{stationary_gth, stationary_power, PowerConfig};
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let alpha = 0.2;
    let mut group = c.benchmark_group("stationary");
    for &delta in &[4u64, 16, 64] {
        let chain = consistency_core::suffix_chain::build_chain(alpha, delta).unwrap();
        group.bench_with_input(BenchmarkId::new("closed_form", delta), &delta, |b, &d| {
            b.iter(|| {
                consistency_core::suffix_chain::closed_form_stationary(black_box(alpha), d).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("gth", delta), &delta, |b, _| {
            b.iter(|| stationary_gth(black_box(&chain)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("power", delta), &delta, |b, _| {
            b.iter(|| {
                stationary_power(
                    black_box(&chain),
                    PowerConfig {
                        tol: 1e-12,
                        damping: 0.5,
                        ..PowerConfig::default()
                    },
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
