//! Shared table-cell formatting for the harness binaries.
//!
//! The Wilson-interval cell (`estimate [lo, hi]`) used to be
//! re-implemented in `attack_sweep`, `scenario_sweep`, `compose_sweep`
//! and `concentration` with drifting precision; these helpers are the
//! single source of that formatting for both the pivot tables and the
//! spec-driven `experiment` harness.

use nakamoto_sim::montecarlo::{TrialAggregate, WilsonInterval};

/// The standard failure-rate cell: `estimate [lo, hi]` at two
/// decimals (e.g. `0.40 [0.12, 0.77]`).
#[must_use]
pub fn ci_cell(w: &WilsonInterval) -> String {
    format!("{:.2} [{:.2}, {:.2}]", w.estimate, w.lo, w.hi)
}

/// Just the interval bracket at a chosen precision (the concentration
/// tables print the estimate separately): `[lo, hi]`.
#[must_use]
pub fn ci_bracket(w: &WilsonInterval, decimals: usize) -> String {
    format!("[{:.decimals$}, {:.decimals$}]", w.lo, w.hi)
}

/// The failure-rate cell for threshold `t` of an aggregate, or `"n/a"`
/// when the threshold was not tallied (or the aggregate is empty).
#[must_use]
pub fn failure_cell(aggregate: &TrialAggregate, t: u64, z: f64) -> String {
    aggregate
        .failure_interval(t, z)
        .map_or_else(|| "n/a".into(), |w| ci_cell(&w))
}

/// The deepest disturbance a cell observed: max of the worst reorg and
/// the worst cross-group divergence (the `depth` column of the sweeps).
#[must_use]
pub fn depth_cell(aggregate: &TrialAggregate) -> u64 {
    aggregate
        .max_reorg_depth
        .max(aggregate.max_divergence_depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_cell_formats_two_decimals() {
        let w = WilsonInterval::new(2, 5, 1.96);
        let cell = ci_cell(&w);
        assert_eq!(
            cell,
            format!("{:.2} [{:.2}, {:.2}]", w.estimate, w.lo, w.hi)
        );
        assert!(cell.starts_with("0.40 ["), "{cell}");
    }

    #[test]
    fn ci_bracket_respects_precision() {
        let w = WilsonInterval::new(1, 4, 1.96);
        assert_eq!(ci_bracket(&w, 3), format!("[{:.3}, {:.3}]", w.lo, w.hi));
        assert!(ci_bracket(&w, 1).len() < ci_bracket(&w, 4).len());
    }

    #[test]
    fn failure_cell_handles_missing_thresholds() {
        use nakamoto_sim::adversary::PrivateChainAdversary;
        use nakamoto_sim::config::SimConfig;
        use nakamoto_sim::montecarlo::TrialPlan;
        let cfg = SimConfig::from_c(60, 2, 1.0, 0.3, 5).unwrap();
        let run = TrialPlan::new(cfg, 500, 3)
            .unwrap()
            .thresholds(vec![12])
            .run(|_| PrivateChainAdversary::new(2));
        let cell = failure_cell(&run.aggregate, 12, 1.96);
        assert!(cell.contains('['), "{cell}");
        assert_eq!(failure_cell(&run.aggregate, 7, 1.96), "n/a");
        assert!(depth_cell(&run.aggregate) >= run.aggregate.max_reorg_depth);
    }
}
