//! The spec-driven experiment runner: loads an [`ExperimentSpec`]
//! (single run or sweep grid), executes every cell on the backend the
//! spec selects — sampled Wilson trials, rare-event splitting, or the
//! exact Markov race solve — and reports each cell's estimate **with
//! the paper's analytic bounds overlaid**
//! ([`consistency_core::analytic`]) — as a human table and as
//! machine-readable JSON.
//!
//! This module is the common plumbing behind the unified `experiment`
//! binary and the ported `attack_sweep` / `scenario_sweep` /
//! `compose_sweep` harnesses; the binaries only differ in how they
//! pivot the flat cell list for display.

use consistency_core::analytic::{self, AnalyticBounds, BoundComparison, BoundVerdict};
use nakamoto_sim::exact::{ExactEstimate, ExactRun};
use nakamoto_sim::executor::{self, TaskKind};
use nakamoto_sim::montecarlo::MonteCarloRun;
use nakamoto_sim::spec::{Estimate, ExperimentCell, ExperimentMode, ExperimentSpec, SpecError};
use nakamoto_sim::splitting::SplittingRun;
use std::sync::Arc;

/// One executed cell: its sweep labels, the concrete spec it ran, the
/// backend-tagged estimate, and the analytic overlay (absent for the
/// adversary-free `ν = 0` baseline, which the bounds don't cover).
#[derive(Debug, Clone)]
pub struct CellResult {
    /// One label per sweep axis (empty for a single-run spec).
    pub labels: Vec<String>,
    /// The concrete (sweep-free) spec this cell ran.
    pub spec: ExperimentSpec,
    /// Rounds each trial simulated (bookkeeping only for exact cells).
    pub rounds_per_trial: u64,
    /// The backend-tagged estimate the cell's plan produced.
    pub estimate: Estimate,
    /// The paper's predictions for the cell's *binding* parameters:
    /// the `[base]` config for stationary cells, the highest-ν phase
    /// configuration for scenario cells (a bound computed from a calm
    /// base would say nothing about the attack window actually driving
    /// the cell's failure rate).
    pub analytic: Option<AnalyticBounds>,
}

impl CellResult {
    /// The Wilson Monte-Carlo run, for cells that sampled one.
    #[must_use]
    pub fn wilson(&self) -> Option<&MonteCarloRun> {
        match &self.estimate {
            Estimate::Wilson(run) => Some(run),
            _ => None,
        }
    }

    /// The splitting run, for cells that selected the splitting
    /// estimator.
    #[must_use]
    pub fn splitting(&self) -> Option<&SplittingRun> {
        match &self.estimate {
            Estimate::Splitting(run) => Some(run),
            _ => None,
        }
    }

    /// The exact Markov solve, for `backend = "markov"` cells.
    #[must_use]
    pub fn exact(&self) -> Option<&ExactRun> {
        match &self.estimate {
            Estimate::Exact(run) => Some(run),
            _ => None,
        }
    }
}

/// Expands and runs every cell of a spec, returning results in sweep
/// order. All cells are submitted to the shared executor pool at once
/// (see [`run_spec_streaming`]); on a one-worker pool this degenerates
/// to the historical sequential walk.
///
/// # Errors
///
/// Returns [`SpecError`] if expansion or per-cell validation fails.
pub fn run_spec(spec: &ExperimentSpec) -> Result<Vec<CellResult>, SpecError> {
    run_spec_streaming(spec, 0, |_, _| {})
}

/// Expands a spec and submits **all cells at once** as one composite
/// job on the shared [`nakamoto_sim::executor`] pool, so independent
/// cells pipeline across the same workers and grid wall-clock
/// approaches `max(cell)` instead of `sum(cell)` on a multi-core host.
///
/// `jobs` bounds how many cells occupy pool slots concurrently; `0`
/// uses the pool's own width (the `--jobs` CLI flag routes here).
/// Cells *complete* in an arbitrary order — `on_cell(index, &result)`
/// fires in completion order for streaming progress — but the returned
/// `Vec` is always in sweep order, and each cell's estimate is a pure
/// function of its own spec, so the results (and any JSON rendered
/// from them) are byte-identical to the sequential walk at every job
/// count.
///
/// # Errors
///
/// Returns [`SpecError`] if expansion or per-cell validation fails
/// (the earliest failing cell in sweep order wins).
pub fn run_spec_streaming<C>(
    spec: &ExperimentSpec,
    jobs: usize,
    mut on_cell: C,
) -> Result<Vec<CellResult>, SpecError>
where
    C: FnMut(usize, &CellResult),
{
    let cells = spec.expand()?;
    let total = cells.len() as u64;
    let width = if jobs == 0 {
        executor::global_width()
    } else {
        jobs
    };
    let cells = Arc::new(cells);
    let results = executor::run_ordered_with(
        total,
        width,
        TaskKind::Composite,
        move |i| run_cell(cells[i as usize].clone()),
        |i, result: &Result<CellResult, SpecError>| {
            if let Ok(cell) = result {
                on_cell(i as usize, cell);
            }
        },
    );
    results.into_iter().collect()
}

/// Runs one concrete cell.
///
/// # Errors
///
/// Returns [`SpecError`] if the cell's plan fails validation.
pub fn run_cell(cell: ExperimentCell) -> Result<CellResult, SpecError> {
    let outcome = cell.spec.plan()?.execute();
    let analytic = analytic::for_sim_config(&binding_config(&cell.spec)?);
    Ok(CellResult {
        labels: cell.labels,
        spec: cell.spec,
        rounds_per_trial: outcome.rounds_per_trial,
        estimate: outcome.estimate,
        analytic,
    })
}

/// The configuration the analytic overlay is computed from: the
/// `[base]` config for stationary cells; for scenario cells, the
/// effective configuration of the **highest-ν phase** (ties broken
/// towards the earliest such phase) — the binding attack regime, since
/// a calm-base bound says nothing about the window that drives the
/// failure rate.
///
/// # Errors
///
/// Returns [`SpecError`] if a scenario spec fails validation.
pub fn binding_config(spec: &ExperimentSpec) -> Result<nakamoto_sim::config::SimConfig, SpecError> {
    match &spec.mode {
        ExperimentMode::Stationary { .. } => Ok(spec.base),
        ExperimentMode::Scenario(_) => {
            let scenario = spec.scenario()?;
            Ok((0..scenario.phases().len())
                .map(|i| scenario.phase_config(i))
                .reduce(|best, cfg| {
                    if cfg.adversary_fraction > best.adversary_fraction {
                        cfg
                    } else {
                        best
                    }
                })
                .expect("a scenario has at least one phase"))
        }
    }
}

/// Applies the harness budget overrides (`--rounds`, `--trials`,
/// `--threads`, `--seed`, `--batch`) onto a parsed spec: `rounds`
/// rescales the stationary run or *every* scenario phase, the rest
/// override the run settings / base seed. This is how CI smokes every
/// committed spec at tiny budgets without editing the files.
///
/// `batch` overwrites `run.batch_width`; on a scenario spec a width
/// above 1 then fails validation loudly (scenario cells run the scalar
/// engine), matching the CLI's fail-loud convention.
///
/// An override is a hard cap for the whole run, so sweep-cell patches
/// targeting the same budget path (`experiment.trials`,
/// `stationary.rounds`, `phase.N.rounds`, `experiment.batch_width`)
/// are dropped — otherwise expansion would silently re-apply the
/// spec's full budget *after* the override, defeating a tiny-budget
/// smoke.
pub fn apply_budget(
    spec: &mut ExperimentSpec,
    rounds: Option<u64>,
    trials: Option<u64>,
    threads: Option<usize>,
    seed: Option<u64>,
    batch: Option<u64>,
) {
    if let Some(rounds) = rounds {
        match &mut spec.mode {
            ExperimentMode::Stationary { rounds: r, .. } => *r = rounds,
            ExperimentMode::Scenario(phases) => {
                for phase in phases {
                    phase.rounds = rounds;
                }
            }
        }
    }
    if let Some(trials) = trials {
        spec.run.trials = trials;
        // `--trials` is the cell-budget knob, so it also caps the
        // splitting effort: an explicit `splitting_effort = 512` must
        // not let a tiny-budget smoke run 512 replicas per level
        // (effort 0 already follows `trials`).
        if spec.run.splitting.effort != 0 {
            spec.run.splitting.effort = spec.run.splitting.effort.min(trials.max(1));
        }
    }
    if let Some(threads) = threads {
        spec.run.threads = threads;
    }
    if let Some(seed) = seed {
        spec.base.seed = seed;
    }
    if let Some(batch) = batch {
        spec.run.batch_width = batch;
    }
    if let Some(sweep) = &mut spec.sweep {
        let overridden = |path: &str| {
            (trials.is_some()
                && (path == "experiment.trials" || path == "experiment.splitting_effort"))
                || (rounds.is_some()
                    && (path == "stationary.rounds"
                        || (path.starts_with("phase.") && path.ends_with(".rounds"))))
                || (batch.is_some() && path == "experiment.batch_width")
        };
        for axis in &mut sweep.axes {
            for cell in &mut axis.cells {
                cell.patches.retain(|(path, _)| !overridden(path));
            }
        }
    }
}

/// Prints the flat cell table: one row per cell with the depth (for
/// sampled cells), every threshold's estimate in the cell's backend —
/// a Wilson 95% CI, a splitting estimate with its relative error, or
/// the exact probability with its additive truncation bound — and the
/// theorem-1 margin / consistency verdict columns of the analytic
/// overlay. Splitting and exact cells get an extra `vs race bound`
/// column holding the verdict against the race-analysis failure scale
/// at the largest threshold.
pub fn print_table(results: &[CellResult]) {
    let thresholds: Vec<u64> = results
        .first()
        .map(|r| r.spec.run.thresholds.clone())
        .unwrap_or_default();
    let has_race_column = results
        .iter()
        .any(|r| !matches!(r.estimate, Estimate::Wilson(_)));
    let label_width = results
        .iter()
        .map(|r| cell_name(r).len())
        .chain(std::iter::once(4))
        .max()
        .unwrap_or(4);
    print!("{:<label_width$} {:>6}", "cell", "depth");
    for t in &thresholds {
        print!(" {:>23}", format!("P[¬{t}-cons]"));
    }
    if has_race_column {
        print!(" {:>14}", "vs race bound");
    }
    println!(" {:>13} {:>10}", "thm1 margin", "consistent");
    for result in results {
        let depth = result.wilson().map_or_else(
            || "—".into(),
            |run| crate::table::depth_cell(&run.aggregate).to_string(),
        );
        print!("{:<label_width$} {:>6}", cell_name(result), depth);
        for t in &thresholds {
            print!(" {:>23}", threshold_cell(result, *t));
        }
        if has_race_column {
            print!(" {:>14}", race_verdict_cell(result, &thresholds));
        }
        match &result.analytic {
            Some(bounds) => println!(
                " {:>13.3} {:>10}",
                bounds.theorem1_ln_margin,
                if bounds.consistent() { "yes" } else { "no" }
            ),
            None => println!(" {:>13} {:>10}", "—", "ν=0"),
        }
    }
}

/// One threshold's estimate as a table cell, in the backend the cell
/// ran: a Wilson 95% CI, a splitting `estimate ±relative-error`
/// (`0 (starved@ℓ)` for a starved chain), or the exact probability
/// with its additive truncation bound.
fn threshold_cell(result: &CellResult, t: u64) -> String {
    match &result.estimate {
        Estimate::Wilson(run) => crate::table::failure_cell(&run.aggregate, t, 1.96),
        Estimate::Splitting(run) => {
            let Some(estimate) = run.estimate_at(t) else {
                return "—".into();
            };
            match (estimate.relative_error, estimate.starved_at) {
                (Some(re), _) => format!("{:.3e} ±{:.0}%", estimate.probability, re * 100.0),
                (None, Some(level)) => format!("0 (starved@{level})"),
                (None, None) => "0".into(),
            }
        }
        Estimate::Exact(run) => {
            let Some(estimate) = run.estimate_at(t) else {
                return "—".into();
            };
            format!(
                "{:.6e} +≤{:.0e}",
                estimate.probability, estimate.truncation_error
            )
        }
    }
}

/// The bound-vs-estimate verdict at the *largest* threshold — the cell
/// the race-analysis comparison is about; `—` for Wilson cells or when
/// no race bound applies. Splitting estimates are judged under the
/// three-standard-error rule; exact answers under the sharper
/// truncation-bound rule of [`compare_exact`].
fn race_verdict_cell(result: &CellResult, thresholds: &[u64]) -> String {
    let (Some(&t), Some(bounds)) = (thresholds.iter().max(), result.analytic.as_ref()) else {
        return "—".into();
    };
    let comparison = match &result.estimate {
        Estimate::Wilson(_) => return "—".into(),
        Estimate::Splitting(run) => run.estimate_at(t).and_then(|estimate| {
            bounds.compare_race_estimate(t, estimate.probability, estimate.standard_error())
        }),
        Estimate::Exact(run) => run
            .estimate_at(t)
            .and_then(|estimate| compare_exact(bounds, estimate)),
    };
    match comparison {
        Some(cmp) => verdict_token(cmp.verdict).into(),
        None => "—".into(),
    }
}

/// Relative float tolerance granted when comparing an exact solve
/// against the closed-form race scale: the two compute the same
/// quantity along different arithmetic routes (a linear solve vs a
/// direct power), so they agree only to rounding — observed at a few
/// ulps, bounded generously here.
const EXACT_COMPARE_RTOL: f64 = 1e-9;

/// The race-analysis comparison for an exact estimate. The capped
/// solve provably under-counts the closed-form scale by at most the
/// truncation bound, so no statistical hedge applies: after allowing
/// that bound plus [`EXACT_COMPARE_RTOL`] of float slack, anything
/// above the scale is a genuine disagreement (`ExceedsBound`), and
/// everything else is `WithinBound` — never `Inconclusive`.
fn compare_exact(bounds: &AnalyticBounds, estimate: &ExactEstimate) -> Option<BoundComparison> {
    let bound = bounds.race_failure_scale(estimate.threshold)?;
    let tolerance = estimate.truncation_error + EXACT_COMPARE_RTOL * bound;
    let verdict = if estimate.probability <= bound + tolerance {
        BoundVerdict::WithinBound
    } else {
        BoundVerdict::ExceedsBound
    };
    Some(BoundComparison {
        bound,
        estimate: estimate.probability,
        standard_error: None,
        verdict,
    })
}

/// The JSON/table token for a [`BoundVerdict`].
#[must_use]
pub fn verdict_token(verdict: BoundVerdict) -> &'static str {
    match verdict {
        BoundVerdict::WithinBound => "within-bound",
        BoundVerdict::ExceedsBound => "exceeds-bound",
        BoundVerdict::Inconclusive => "inconclusive",
    }
}

/// The display name of a cell: its labels joined, or `single` for an
/// unswept spec.
#[must_use]
pub fn cell_name(result: &CellResult) -> String {
    if result.labels.is_empty() {
        "single".into()
    } else {
        result.labels.join(" / ")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON number, or `null` for non-finite values (JSON has no
/// infinities).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Rust float Display is already a valid JSON number.
        s
    } else {
        "null".into()
    }
}

/// Renders the executed cells as a machine-readable JSON document: a
/// `montecarlo` / `splitting` / `exact` block per cell (exactly one of
/// the three is non-null, matching the cell's backend-tagged
/// estimate), and the analytic-bound overlay (`analytic: null` for the
/// ν = 0 baseline).
#[must_use]
pub fn to_json(name: &str, results: &[CellResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"spec\": \"{}\",\n", json_escape(name)));
    out.push_str("  \"schema\": \"experiment-v2\",\n");
    out.push_str("  \"cells\": [\n");
    for (i, result) in results.iter().enumerate() {
        out.push_str("    {\n");
        let labels: Vec<String> = result
            .labels
            .iter()
            .map(|l| format!("\"{}\"", json_escape(l)))
            .collect();
        out.push_str(&format!("      \"labels\": [{}],\n", labels.join(", ")));
        out.push_str(&format!("      \"seed\": {},\n", result.spec.base.seed));
        out.push_str(&format!(
            "      \"backend\": \"{}\",\n",
            result.estimate.backend()
        ));
        out.push_str(&format!(
            "      \"estimator\": \"{}\",\n",
            result.spec.run.estimator
        ));
        out.push_str(&format!(
            "      \"rounds_per_trial\": {},\n",
            result.rounds_per_trial
        ));
        match result.wilson() {
            None => out.push_str("      \"montecarlo\": null,\n"),
            Some(run) => {
                let aggregate = &run.aggregate;
                out.push_str("      \"montecarlo\": {\n");
                out.push_str(&format!("        \"trials\": {},\n", aggregate.trials));
                out.push_str(&format!(
                    "        \"total_honest_blocks\": {},\n",
                    aggregate.total_honest_blocks
                ));
                out.push_str(&format!(
                    "        \"total_adversary_blocks\": {},\n",
                    aggregate.total_adversary_blocks
                ));
                out.push_str(&format!(
                    "        \"total_convergence_opportunities\": {},\n",
                    aggregate.total_convergence_opportunities
                ));
                out.push_str(&format!(
                    "        \"max_reorg_depth\": {},\n",
                    aggregate.max_reorg_depth
                ));
                out.push_str(&format!(
                    "        \"max_divergence_depth\": {},\n",
                    aggregate.max_divergence_depth
                ));
                out.push_str("        \"failures\": [");
                for (j, &(t, failures)) in aggregate.failure_counts.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let w = aggregate
                        .failure_interval(t, 1.96)
                        .expect("non-empty aggregate carries every plan threshold");
                    out.push_str(&format!(
                        "{{\"threshold\": {t}, \"failures\": {failures}, \"estimate\": {}, \"lo\": {}, \"hi\": {}}}",
                        json_f64(w.estimate),
                        json_f64(w.lo),
                        json_f64(w.hi)
                    ));
                }
                out.push_str("]\n");
                out.push_str("      },\n");
            }
        }
        match result.splitting() {
            None => out.push_str("      \"splitting\": null,\n"),
            Some(splitting) => {
                out.push_str("      \"splitting\": {\n");
                out.push_str(&format!(
                    "        \"effort\": {},\n",
                    splitting.levels.first().map_or(0, |l| l.effort)
                ));
                out.push_str(&format!(
                    "        \"total_rounds\": {},\n",
                    splitting.total_rounds
                ));
                out.push_str("        \"levels\": [");
                for (j, stage) in splitting.levels.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "{{\"level\": {}, \"hits\": {}, \"effort\": {}}}",
                        stage.level, stage.hits, stage.effort
                    ));
                }
                out.push_str("],\n");
                out.push_str("        \"estimates\": [");
                for (j, estimate) in splitting.estimates.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let comparison = result.analytic.as_ref().and_then(|b| {
                        b.compare_race_estimate(
                            estimate.threshold,
                            estimate.probability,
                            estimate.standard_error(),
                        )
                    });
                    out.push_str(&format!(
                        "{{\"threshold\": {}, \"probability\": {}, \"relative_error\": {}, \
                         \"standard_error\": {}, \"starved_at\": {}, \"race_bound\": {}, \
                         \"race_verdict\": {}}}",
                        estimate.threshold,
                        json_f64(estimate.probability),
                        estimate.relative_error.map_or("null".into(), json_f64),
                        estimate.standard_error().map_or("null".into(), json_f64),
                        estimate.starved_at.map_or("null".into(), |l| l.to_string()),
                        comparison.map_or("null".into(), |c| json_f64(c.bound)),
                        comparison.map_or("null".into(), |c| format!(
                            "\"{}\"",
                            verdict_token(c.verdict)
                        )),
                    ));
                }
                out.push_str("]\n");
                out.push_str("      },\n");
            }
        }
        match result.exact() {
            None => out.push_str("      \"exact\": null,\n"),
            Some(exact) => {
                out.push_str("      \"exact\": {\n");
                out.push_str(&format!("        \"q\": {},\n", json_f64(exact.q)));
                out.push_str(&format!("        \"cap\": {},\n", exact.cap));
                out.push_str("        \"estimates\": [");
                for (j, estimate) in exact.estimates.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let comparison = result
                        .analytic
                        .as_ref()
                        .and_then(|b| compare_exact(b, estimate));
                    out.push_str(&format!(
                        "{{\"threshold\": {}, \"probability\": {}, \"truncation_error\": {}, \
                         \"upper\": {}, \"expected_race_steps\": {}, \"race_bound\": {}, \
                         \"race_verdict\": {}}}",
                        estimate.threshold,
                        json_f64(estimate.probability),
                        json_f64(estimate.truncation_error),
                        json_f64(estimate.probability + estimate.truncation_error),
                        json_f64(estimate.expected_race_steps),
                        comparison.map_or("null".into(), |c| json_f64(c.bound)),
                        comparison.map_or("null".into(), |c| format!(
                            "\"{}\"",
                            verdict_token(c.verdict)
                        )),
                    ));
                }
                out.push_str("]\n");
                out.push_str("      },\n");
            }
        }
        match &result.analytic {
            None => out.push_str("      \"analytic\": null\n"),
            Some(b) => {
                let (e_c, e_a) = b.expected_counts(result.rounds_per_trial);
                out.push_str("      \"analytic\": {\n");
                out.push_str(&format!("        \"c\": {},\n", json_f64(b.c)));
                out.push_str(&format!(
                    "        \"theorem1_ln_margin\": {},\n",
                    json_f64(b.theorem1_ln_margin)
                ));
                out.push_str(&format!(
                    "        \"theorem1_holds\": {},\n",
                    b.theorem1_holds
                ));
                out.push_str(&format!(
                    "        \"theorem1_max_delta1\": {},\n",
                    b.theorem1_max_delta1.map_or("null".into(), json_f64)
                ));
                out.push_str(&format!(
                    "        \"expected_convergence_opportunities\": {},\n",
                    json_f64(e_c)
                ));
                out.push_str(&format!(
                    "        \"expected_adversary_blocks\": {},\n",
                    json_f64(e_a)
                ));
                out.push_str(&format!(
                    "        \"theorem2_neat_bound_c\": {},\n",
                    json_f64(b.theorem2_neat_bound_c)
                ));
                out.push_str(&format!(
                    "        \"theorem2_holds\": {},\n",
                    b.theorem2_holds
                ));
                out.push_str(&format!(
                    "        \"theorem3_holds\": {},\n",
                    b.theorem3_holds
                ));
                out.push_str(&format!(
                    "        \"nu_max_c\": {},\n",
                    b.nu_max_c.map_or("null".into(), json_f64)
                ));
                out.push_str(&format!(
                    "        \"pss_attack_nu\": {}\n",
                    json_f64(b.pss_attack_nu)
                ));
                out.push_str("      }\n");
            }
        }
        out.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// A minimal JSON well-formedness check (objects, arrays, strings,
/// numbers, booleans, null) used by the smoke tests; the CI job
/// additionally validates with `python3 -m json.tool`.
#[must_use]
pub fn json_is_well_formed(input: &str) -> bool {
    let chars: Vec<char> = input.chars().collect();
    let mut pos = 0usize;
    if !json_value(&chars, &mut pos) {
        return false;
    }
    skip_json_ws(&chars, &mut pos);
    pos == chars.len()
}

fn skip_json_ws(chars: &[char], pos: &mut usize) {
    while matches!(chars.get(*pos), Some(' ' | '\t' | '\n' | '\r')) {
        *pos += 1;
    }
}

fn json_value(chars: &[char], pos: &mut usize) -> bool {
    skip_json_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            skip_json_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return true;
            }
            loop {
                skip_json_ws(chars, pos);
                if !json_string(chars, pos) {
                    return false;
                }
                skip_json_ws(chars, pos);
                if chars.get(*pos) != Some(&':') {
                    return false;
                }
                *pos += 1;
                if !json_value(chars, pos) {
                    return false;
                }
                skip_json_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return true;
                    }
                    _ => return false,
                }
            }
        }
        Some('[') => {
            *pos += 1;
            skip_json_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return true;
            }
            loop {
                if !json_value(chars, pos) {
                    return false;
                }
                skip_json_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return true;
                    }
                    _ => return false,
                }
            }
        }
        Some('"') => json_string(chars, pos),
        Some('t') => json_literal(chars, pos, "true"),
        Some('f') => json_literal(chars, pos, "false"),
        Some('n') => json_literal(chars, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == '-' => {
            let start = *pos;
            while matches!(
                chars.get(*pos),
                Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
            ) {
                *pos += 1;
            }
            let token: String = chars[start..*pos].iter().collect();
            token.parse::<f64>().is_ok()
        }
        _ => false,
    }
}

fn json_string(chars: &[char], pos: &mut usize) -> bool {
    if chars.get(*pos) != Some(&'"') {
        return false;
    }
    *pos += 1;
    loop {
        match chars.get(*pos) {
            None => return false,
            Some('\\') => *pos += 2,
            Some('"') => {
                *pos += 1;
                return true;
            }
            Some(_) => *pos += 1,
        }
    }
}

fn json_literal(chars: &[char], pos: &mut usize, literal: &str) -> bool {
    for expected in literal.chars() {
        if chars.get(*pos) != Some(&expected) {
            return false;
        }
        *pos += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY_SPEC: &str = r#"
        [experiment]
        trials = 2
        thresholds = [12]

        [base]
        n_miners = 100
        delta = 4
        c = 2.0
        adversary_fraction = 0.25
        seed = 11

        [stationary]
        strategy = "private-chain"
        rounds = 500
    "#;

    #[test]
    fn single_spec_runs_one_cell_with_analytic_overlay() {
        let spec = ExperimentSpec::parse(TINY_SPEC).unwrap();
        let results = run_spec(&spec).unwrap();
        assert_eq!(results.len(), 1);
        let cell = &results[0];
        let run = cell.wilson().expect("default backend samples trials");
        assert_eq!(run.aggregate.trials, 2);
        assert_eq!(cell.rounds_per_trial, 500);
        let bounds = cell.analytic.as_ref().expect("ν > 0 carries bounds");
        assert!(bounds.theorem1_ln_margin.is_finite());
        print_table(&results); // must not panic
    }

    #[test]
    fn json_output_is_well_formed_and_carries_the_overlay() {
        let spec = ExperimentSpec::parse(TINY_SPEC).unwrap();
        let results = run_spec(&spec).unwrap();
        let json = to_json("tiny \"quoted\"", &results);
        assert!(json_is_well_formed(&json), "malformed:\n{json}");
        assert!(json.contains("\"theorem1_ln_margin\""));
        assert!(json.contains("\"estimate\""));
        assert!(json.contains("\\\"quoted\\\""));
    }

    #[test]
    fn budget_overrides_rescale_every_phase() {
        let mut spec = ExperimentSpec::parse(TINY_SPEC).unwrap();
        apply_budget(&mut spec, Some(100), Some(3), Some(1), Some(42), None);
        assert_eq!(spec.run.trials, 3);
        assert_eq!(spec.run.threads, 1);
        assert_eq!(spec.base.seed, 42);
        let ExperimentMode::Stationary { rounds, .. } = spec.mode else {
            panic!("stationary")
        };
        assert_eq!(rounds, 100);
    }

    /// Scenario cells must overlay the bound of the *attack* regime,
    /// not the calm base: the binding config is the highest-ν phase.
    #[test]
    fn scenario_overlay_uses_the_highest_power_phase() {
        let spec = ExperimentSpec::parse(
            r#"
            [experiment]
            trials = 1
            thresholds = [12]

            [base]
            n_miners = 100
            delta = 4
            c = 1.0
            adversary_fraction = 0.1
            seed = 3

            [[phase]]
            rounds = 200
            strategy = "honest"
            regime = "calm"

            [[phase]]
            rounds = 200
            strategy = "private-chain"
            regime = "adversarial"
            adversary_fraction = 0.4

            [[phase]]
            rounds = 200
            strategy = "honest"
            regime = "calm"
            "#,
        )
        .unwrap();
        let cfg = binding_config(&spec).unwrap();
        assert_eq!(cfg.adversary_fraction, 0.4, "attack phase binds");
        let results = run_spec(&spec).unwrap();
        let bounds = results[0].analytic.as_ref().unwrap();
        assert_eq!(bounds.params.nu(), 0.4, "overlay describes the window");
        assert!(
            !bounds.theorem1_holds,
            "c = 1 at ν = 0.4 lies outside the consistency region"
        );
    }

    /// A CLI budget override is a hard cap: sweep-cell patches on the
    /// same budget paths are dropped rather than silently re-applied
    /// after the override.
    #[test]
    fn budget_overrides_beat_sweep_budget_patches() {
        let source = r#"
            [experiment]
            trials = 9

            [base]
            n_miners = 100
            delta = 4
            c = 1.0
            adversary_fraction = 0.1
            seed = 0

            [stationary]
            strategy = "honest"
            rounds = 9000

            [sweep]
            seed = 5

            [[sweep.axis]]
            label = "budget"

            [[sweep.axis.cell]]
            label = "big"
            patch = { "experiment.trials" = 9, "stationary.rounds" = 9000, "experiment.batch_width" = 16, "base.adversary_fraction" = 0.2 }
        "#;
        let mut spec = ExperimentSpec::parse(source).unwrap();
        apply_budget(&mut spec, Some(50), Some(2), None, None, Some(4));
        let cells = spec.expand().unwrap();
        let cell = &cells[0];
        assert_eq!(cell.spec.run.trials, 2, "--trials caps the sweep cell");
        let ExperimentMode::Stationary { rounds, .. } = cell.spec.mode else {
            panic!("stationary")
        };
        assert_eq!(rounds, 50, "--rounds caps the sweep cell");
        assert_eq!(
            cell.spec.run.batch_width, 4,
            "--batch overrides the sweep cell's width patch"
        );
        assert_eq!(
            cell.spec.base.adversary_fraction, 0.2,
            "non-budget patches still apply"
        );
    }

    /// `--batch` is an execution-strategy knob, not a statistical one:
    /// the overridden run must produce bit-identical aggregates.
    #[test]
    fn batch_override_is_bit_identical_to_scalar() {
        let spec = ExperimentSpec::parse(TINY_SPEC).unwrap();
        let scalar = run_spec(&spec).unwrap();
        let mut batched_spec = ExperimentSpec::parse(TINY_SPEC).unwrap();
        apply_budget(&mut batched_spec, None, None, None, None, Some(8));
        assert_eq!(batched_spec.run.batch_width, 8);
        let batched = run_spec(&batched_spec).unwrap();
        assert_eq!(scalar.len(), batched.len());
        for (s, b) in scalar.iter().zip(&batched) {
            assert_eq!(s.wilson().unwrap().aggregate, b.wilson().unwrap().aggregate);
        }
    }

    const SWEEP_SPEC: &str = r#"
        [experiment]
        trials = 2
        thresholds = [12]

        [base]
        n_miners = 100
        delta = 4
        c = 2.0
        adversary_fraction = 0.25
        seed = 11

        [stationary]
        strategy = "private-chain"
        rounds = 400

        [sweep]
        seed = 5

        [[sweep.axis]]
        label = "nu"

        [[sweep.axis.cell]]
        label = "0.15"
        patch = { "base.adversary_fraction" = 0.15 }

        [[sweep.axis.cell]]
        label = "0.25"
        patch = { "base.adversary_fraction" = 0.25 }

        [[sweep.axis.cell]]
        label = "0.35"
        patch = { "base.adversary_fraction" = 0.35 }
    "#;

    /// Pipelining grid cells across the shared pool is an
    /// execution-strategy change only: the rendered JSON document must
    /// be byte-identical at every job count, and the streaming callback
    /// must see every cell exactly once.
    #[test]
    fn grid_json_is_byte_identical_at_every_job_count() {
        let spec = ExperimentSpec::parse(SWEEP_SPEC).unwrap();
        let sequential = run_spec_streaming(&spec, 1, |_, _| {}).unwrap();
        assert_eq!(sequential.len(), 3);
        let reference = to_json("sweep", &sequential);
        for jobs in [2, 4, 8] {
            let mut streamed = vec![0u32; sequential.len()];
            let results = run_spec_streaming(&spec, jobs, |i, _| streamed[i] += 1).unwrap();
            assert!(
                streamed.iter().all(|&c| c == 1),
                "jobs {jobs}: {streamed:?}"
            );
            assert_eq!(to_json("sweep", &results), reference, "jobs {jobs}");
        }
    }

    #[test]
    fn nu_zero_cells_carry_no_analytic_overlay() {
        let source = TINY_SPEC.replace("adversary_fraction = 0.25", "adversary_fraction = 0.0");
        let spec = ExperimentSpec::parse(&source).unwrap();
        let results = run_spec(&spec).unwrap();
        assert!(results[0].analytic.is_none());
        let json = to_json("baseline", &results);
        assert!(json.contains("\"analytic\": null"));
        assert!(json_is_well_formed(&json), "{json}");
        print_table(&results);
    }

    const SPLITTING_SPEC: &str = r#"
        [experiment]
        trials = 2
        thresholds = [3, 6]
        estimator = "splitting"
        splitting_effort = 24

        [base]
        n_miners = 100
        delta = 4
        c = 1.0
        adversary_fraction = 0.3
        seed = 11

        [stationary]
        strategy = "private-chain"
        rounds = 800
    "#;

    #[test]
    fn splitting_cells_carry_the_splitting_estimate() {
        let spec = ExperimentSpec::parse(SPLITTING_SPEC).unwrap();
        let results = run_spec(&spec).unwrap();
        let cell = &results[0];
        assert!(cell.wilson().is_none(), "splitting replaces the trials");
        let splitting = cell.splitting().expect("splitting selected");
        assert!(!splitting.levels.is_empty());
        assert_eq!(splitting.estimates.len(), 2);
        let json = to_json("splitting", &results);
        assert!(json_is_well_formed(&json), "malformed:\n{json}");
        assert!(json.contains("\"estimator\": \"splitting\""));
        assert!(json.contains("\"montecarlo\": null"));
        assert!(json.contains("\"race_verdict\""));
        assert!(json.contains("\"race_bound\""));
        print_table(&results); // must not panic
    }

    #[test]
    fn wilson_cells_have_null_splitting_and_exact() {
        let spec = ExperimentSpec::parse(TINY_SPEC).unwrap();
        let results = run_spec(&spec).unwrap();
        assert!(results[0].splitting().is_none());
        assert!(results[0].exact().is_none());
        let json = to_json("tiny", &results);
        assert!(json.contains("\"backend\": \"montecarlo\""));
        assert!(json.contains("\"estimator\": \"wilson\""));
        assert!(json.contains("\"splitting\": null"));
        assert!(json.contains("\"exact\": null"));
        assert!(json_is_well_formed(&json), "{json}");
    }

    const MARKOV_SPEC: &str = r#"
        [experiment]
        thresholds = [6, 12]
        backend = "markov"

        [base]
        n_miners = 100
        delta = 4
        c = 3.0
        adversary_fraction = 0.15
        seed = 7

        [stationary]
        strategy = "private-chain"
        rounds = 30000
    "#;

    #[test]
    fn markov_cells_carry_the_exact_solve_with_a_within_bound_verdict() {
        let spec = ExperimentSpec::parse(MARKOV_SPEC).unwrap();
        let results = run_spec(&spec).unwrap();
        let cell = &results[0];
        assert!(cell.wilson().is_none(), "exact cells never sample");
        let exact = cell.exact().expect("markov backend selected");
        assert_eq!(exact.estimates.len(), 2);
        // The capped solve under-counts the closed-form race scale, so
        // the analytic comparison must come back within-bound.
        assert_eq!(
            race_verdict_cell(cell, &cell.spec.run.thresholds),
            "within-bound"
        );
        let json = to_json("markov", &results);
        assert!(json_is_well_formed(&json), "malformed:\n{json}");
        assert!(json.contains("\"backend\": \"markov\""));
        assert!(json.contains("\"montecarlo\": null"));
        assert!(json.contains("\"truncation_error\""));
        assert!(json.contains("\"race_verdict\": \"within-bound\""));
        print_table(&results); // must not panic
    }

    /// `--trials` is the budget knob CI smokes with, so it must also
    /// cap an explicit (possibly huge) `splitting_effort`.
    #[test]
    fn trials_override_caps_splitting_effort() {
        let mut spec = ExperimentSpec::parse(SPLITTING_SPEC).unwrap();
        apply_budget(&mut spec, None, Some(2), None, None, None);
        assert_eq!(spec.run.trials, 2);
        assert_eq!(spec.run.splitting.effort, 2);
        spec.validate().unwrap();
        // The default effort (reuse `trials`) stays implicit.
        let source = SPLITTING_SPEC.replace("splitting_effort = 24\n", "");
        let mut spec = ExperimentSpec::parse(&source).unwrap();
        apply_budget(&mut spec, None, Some(2), None, None, None);
        assert_eq!(spec.run.splitting.effort, 0);
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        assert!(json_is_well_formed(
            r#"{"a": [1, -2.5e3, "x\n", true, null], "b": {}}"#
        ));
        assert!(!json_is_well_formed("{"));
        assert!(!json_is_well_formed(r#"{"a": }"#));
        assert!(!json_is_well_formed(r#"{"a": 1} trailing"#));
        assert!(!json_is_well_formed(r#"{"a": 1,}"#));
    }
}
