//! The **scenario experiment**: Wilson-CI phase diagrams for
//! time-varying runs. Each cell is a three-phase scenario — a calm
//! honest warm-up at the base adversary power, an *attack window*
//! (elevated power, attack strategy, adversarial or eclipse
//! scheduling), and a calm recovery — swept over the attack-window
//! power ν and four window shapes, with the empirical T-consistency
//! failure rate (95% Wilson interval) over parallel Monte-Carlo trials.
//!
//! Stationary sweeps (`attack_sweep`) answer "how much steady power
//! breaks consistency?"; this sweep answers the paper-adjacent
//! question "how much power *during a bounded window* breaks it?" —
//! the regime where the Δ-bounded worst-case bounds are loosest.
//!
//! The whole grid is **spec-driven**: the binary embeds the committed
//! `examples/specs/scenario_sweep.toml` and runs it through the shared
//! `consistency_bench::experiment` plumbing — run the `experiment`
//! binary on the same file for the flat table + JSON form.
//!
//! `cargo run --release -p consistency_bench --bin scenario_sweep \
//!     [rounds-per-phase] [trials]`
//!
//! Budgets and expected runtime: see EXPERIMENTS.md.

use consistency_bench::{cli, experiment, table};
use nakamoto_sim::executor;
use nakamoto_sim::scenario::{run_scenario, PhaseSpec, Regime, Scenario, StrategyKind};
use nakamoto_sim::spec::ExperimentSpec;
use probability::rng::{RandomSource, SplitMix64};

/// The committed golden spec this binary is the pivot-table view of.
const SPEC: &str = include_str!("../../../../examples/specs/scenario_sweep.toml");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = cli::Args::parse(
        "scenario_sweep [rounds-per-phase] [trials]",
        2,
        &["--threads", "--jobs"],
    )?;
    if let Some(jobs) = args.jobs {
        if !executor::configure_global_width(jobs) {
            eprintln!("--jobs: the executor pool already exists; the width is unchanged");
        }
    }
    let mut spec = ExperimentSpec::parse(SPEC).expect("committed spec parses");
    let rounds_per_phase = args.pos_u64(0)?.unwrap_or(20_000);
    let trials = args.pos_u64(1)?;
    experiment::apply_budget(
        &mut spec,
        Some(rounds_per_phase),
        trials,
        args.threads,
        None,
        None,
    );

    let base = spec.base;
    let trials = spec.run.trials;
    let t_consistency = *spec.run.thresholds.first().expect("spec carries T");
    let sweep = spec.sweep.clone().expect("committed spec sweeps");
    let [n_power, n_windows] = spec.sweep_shape()[..] else {
        panic!("committed spec has two axes")
    };
    let power_axis = &sweep.axes[0];
    let window_axis = &sweep.axes[1];

    consistency_bench::section(&format!(
        "Scenario sweep: calm warm-up (ν = {}) → attack window → calm recovery; \
         n = {}, Δ = {}, c = {}, {trials} trials × 3×{rounds_per_phase} rounds per cell",
        base.adversary_fraction,
        base.n_miners,
        base.delta,
        base.c(),
    ));
    print!("{:>8}", "ν_attack");
    for window in &window_axis.cells {
        print!(" {:>30}", window.label);
    }
    println!();
    print!("{:>8}", "");
    for _ in 0..n_windows {
        print!(
            " {}",
            format_args!(
                "{:>6} {:>23}",
                "depth",
                format!("P[¬{t_consistency}-cons] (95% CI)")
            )
        );
    }
    println!();

    let results = experiment::run_spec(&spec)?;
    assert_eq!(results.len(), n_power * n_windows);
    for (row, power) in power_axis.cells.iter().enumerate() {
        print!("{:>8}", power.label);
        for col in 0..n_windows {
            let cell = &results[row * n_windows + col];
            let aggregate = &cell.wilson().expect("committed spec samples").aggregate;
            let w = aggregate
                .failure_interval(t_consistency, 1.96)
                .expect("threshold was requested");
            print!(
                " {:>6} {:>23}",
                table::depth_cell(aggregate),
                table::ci_cell(&w)
            );
        }
        println!();
    }

    // Per-phase anatomy of one showcase cell: where in the scenario the
    // damage happens (and that it stops when the window closes). The
    // showcase master seed continues the sweep's SplitMix64 stream past
    // the grid cells, as the pre-spec binary did.
    let mut cell_seeds = SplitMix64::new(sweep.seed);
    for _ in 0..n_power * n_windows {
        cell_seeds.next_u64();
    }
    let mut showcase_base = base;
    showcase_base.seed = cell_seeds.next_u64();
    let scenario = Scenario::new(
        showcase_base,
        vec![
            PhaseSpec::new(rounds_per_phase, StrategyKind::Honest, Regime::Calm),
            PhaseSpec::new(
                rounds_per_phase,
                StrategyKind::PrivateChain,
                Regime::Eclipse { group: 1 },
            )
            .with_power(0.35),
            PhaseSpec::new(rounds_per_phase, StrategyKind::Honest, Regime::Calm),
        ],
    )?;
    consistency_bench::section(&format!(
        "Showcase cell anatomy: private+eclipse(1) window at ν = 0.35 ({rounds_per_phase} rounds per phase)"
    ));
    println!(
        "{:>7} {:>9} {:>9} {:>8} {:>8} {:>12} {:>12}",
        "phase", "honest", "adversary", "conv", "reorgs", "cum_reorg≤", "cum_diverg≤"
    );
    let report = run_scenario(&scenario);
    for (i, p) in report.phase_reports.iter().enumerate() {
        println!(
            "{:>7} {:>9} {:>9} {:>8} {:>8} {:>12} {:>12}",
            i,
            p.honest_blocks,
            p.adversary_blocks,
            p.convergence_opportunities,
            p.reorg_count,
            p.cumulative_max_reorg_depth,
            p.cumulative_max_divergence_depth,
        );
    }

    println!("\nShape to verify: failure rates grow with the attack-window power on every");
    println!("column; the eclipse column fails hardest (one group is cut off for the whole");
    println!("window); the composed column blends the balance divergence with selfish");
    println!("withholding under one budget; the showcase anatomy concentrates adversary");
    println!("blocks and depth growth in phase 1, with clean recovery in phase 2. Results");
    println!("are bit-identical for a fixed seed at any thread count.");
    Ok(())
}
