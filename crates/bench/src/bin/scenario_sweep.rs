//! The **scenario experiment**: Wilson-CI phase diagrams for
//! time-varying runs. Each cell is a three-phase scenario — a calm
//! honest warm-up at the base adversary power, an *attack window*
//! (elevated power, attack strategy, adversarial or eclipse
//! scheduling), and a calm recovery — swept over the attack-window
//! power ν and three window shapes, with the empirical T-consistency
//! failure rate (95% Wilson interval) over parallel Monte-Carlo trials.
//!
//! Stationary sweeps (`attack_sweep`) answer "how much steady power
//! breaks consistency?"; this sweep answers the paper-adjacent
//! question "how much power *during a bounded window* breaks it?" —
//! the regime where the Δ-bounded worst-case bounds are loosest.
//!
//! `cargo run --release -p consistency_bench --bin scenario_sweep \
//!     [rounds-per-phase] [trials]`
//!
//! Budgets and expected runtime: see EXPERIMENTS.md.

use nakamoto_sim::compose::{Composition, SubSpec};
use nakamoto_sim::config::{ConfigError, SimConfig};
use nakamoto_sim::montecarlo::MonteCarloRun;
use nakamoto_sim::scenario::{
    run_scenario, PhaseSpec, Regime, Scenario, ScenarioPlan, StrategyKind,
};
use probability::rng::{RandomSource, SplitMix64};

/// Master seed for the whole sweep; every cell derives its own master
/// seed from it through a SplitMix64 stream (disjoint trial streams
/// follow from the montecarlo jump() derivation).
const SWEEP_SEED: u64 = 0x5CE7_A210_5EED;

/// The four attack-window shapes swept as columns. `Composed(0)`
/// resolves against [`window_compositions`]: a balance+selfish mix
/// acting *simultaneously* over the window's power budget.
const WINDOWS: [(&str, StrategyKind, Regime); 4] = [
    (
        "private+fullΔ",
        StrategyKind::PrivateChain,
        Regime::Adversarial,
    ),
    ("balance+fullΔ", StrategyKind::Balance, Regime::Adversarial),
    (
        "private+eclipse(1)",
        StrategyKind::PrivateChain,
        Regime::Eclipse { group: 1 },
    ),
    (
        "bal:self 1:1+fullΔ",
        StrategyKind::Composed(0),
        Regime::Adversarial,
    ),
];

/// The composition table every cell scenario carries (only the
/// composed window references it).
fn window_compositions() -> Vec<Composition> {
    vec![Composition::new(vec![
        SubSpec::new(StrategyKind::Balance, 1),
        SubSpec::new(StrategyKind::Selfish, 1),
    ])
    .expect("valid composition")]
}

fn cell(
    base: SimConfig,
    rounds_per_phase: u64,
    trials: u64,
    strategy: StrategyKind,
    regime: Regime,
    attack_nu: f64,
    t_consistency: u64,
) -> Result<MonteCarloRun, ConfigError> {
    // `rounds_per_phase` and `trials` come from argv: bad values
    // surface as tidy ConfigErrors, not panics.
    let scenario = Scenario::with_compositions(
        base,
        vec![
            PhaseSpec::new(rounds_per_phase, StrategyKind::Honest, Regime::Calm),
            PhaseSpec::new(rounds_per_phase, strategy, regime).with_power(attack_nu),
            PhaseSpec::new(rounds_per_phase, StrategyKind::Honest, Regime::Calm),
        ],
        window_compositions(),
    )?;
    Ok(ScenarioPlan::new(scenario, trials)?
        .thresholds(vec![t_consistency])
        .run())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let rounds_per_phase: u64 = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(20_000);
    let trials: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(5);
    let n = 100u64;
    let delta = 4u64;
    let c = 1.0;
    let base_nu = 0.10;
    let t_consistency = 12u64;
    let mut cell_seeds = SplitMix64::new(SWEEP_SEED);

    consistency_bench::section(&format!(
        "Scenario sweep: calm warm-up (ν = {base_nu}) → attack window → calm recovery; \
         n = {n}, Δ = {delta}, c = {c}, {trials} trials × 3×{rounds_per_phase} rounds per cell"
    ));
    println!(
        "{:>8} {:>30} {:>30} {:>30} {:>30}",
        "ν_attack", WINDOWS[0].0, WINDOWS[1].0, WINDOWS[2].0, WINDOWS[3].0
    );
    println!(
        "{:>8} {} {} {} {}",
        "",
        format_args!("{:>6} {:>23}", "depth", "P[¬12-cons] (95% CI)"),
        format_args!("{:>6} {:>23}", "depth", "P[¬12-cons] (95% CI)"),
        format_args!("{:>6} {:>23}", "depth", "P[¬12-cons] (95% CI)"),
        format_args!("{:>6} {:>23}", "depth", "P[¬12-cons] (95% CI)"),
    );
    for &nu in &[0.15, 0.25, 0.35, 0.45] {
        print!("{nu:>8.2}");
        for &(_, strategy, regime) in &WINDOWS {
            let seed = cell_seeds.next_u64();
            let base = SimConfig::from_c(n, delta, c, base_nu, seed).expect("valid base");
            let run = cell(
                base,
                rounds_per_phase,
                trials,
                strategy,
                regime,
                nu,
                t_consistency,
            )?;
            let depth = run
                .aggregate
                .max_reorg_depth
                .max(run.aggregate.max_divergence_depth);
            let w = run
                .aggregate
                .failure_interval(t_consistency, 1.96)
                .expect("threshold was requested");
            print!(
                " {:>6} {:>23}",
                depth,
                format!("{:.2} [{:.2}, {:.2}]", w.estimate, w.lo, w.hi)
            );
        }
        println!();
    }

    // Per-phase anatomy of one showcase cell: where in the scenario the
    // damage happens (and that it stops when the window closes).
    let base = SimConfig::from_c(n, delta, c, base_nu, cell_seeds.next_u64()).expect("valid base");
    let scenario = Scenario::new(
        base,
        vec![
            PhaseSpec::new(rounds_per_phase, StrategyKind::Honest, Regime::Calm),
            PhaseSpec::new(
                rounds_per_phase,
                StrategyKind::PrivateChain,
                Regime::Eclipse { group: 1 },
            )
            .with_power(0.35),
            PhaseSpec::new(rounds_per_phase, StrategyKind::Honest, Regime::Calm),
        ],
    )?;
    consistency_bench::section(&format!(
        "Showcase cell anatomy: private+eclipse(1) window at ν = 0.35 ({rounds_per_phase} rounds per phase)"
    ));
    println!(
        "{:>7} {:>9} {:>9} {:>8} {:>8} {:>12} {:>12}",
        "phase", "honest", "adversary", "conv", "reorgs", "cum_reorg≤", "cum_diverg≤"
    );
    let report = run_scenario(&scenario);
    for (i, p) in report.phase_reports.iter().enumerate() {
        println!(
            "{:>7} {:>9} {:>9} {:>8} {:>8} {:>12} {:>12}",
            i,
            p.honest_blocks,
            p.adversary_blocks,
            p.convergence_opportunities,
            p.reorg_count,
            p.cumulative_max_reorg_depth,
            p.cumulative_max_divergence_depth,
        );
    }

    println!("\nShape to verify: failure rates grow with the attack-window power on every");
    println!("column; the eclipse column fails hardest (one group is cut off for the whole");
    println!("window); the composed column blends the balance divergence with selfish");
    println!("withholding under one budget; the showcase anatomy concentrates adversary");
    println!("blocks and depth growth in phase 1, with clean recovery in phase 2. Results");
    println!("are bit-identical for a fixed seed at any thread count.");
    Ok(())
}
