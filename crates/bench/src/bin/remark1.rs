//! Regenerates **Remark 1** (Inequalities 12–17): the admissible ν
//! ranges and bound-inflation factors for the two (δ₁, δ₂) parameter
//! sets at Δ = 10¹³.
//!
//! `cargo run -p consistency-bench --bin remark1`

use consistency_core::theorem2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let delta = 10_000_000_000_000u64;
    consistency_bench::section(
        "Remark 1: ranges of ν where c need only slightly exceed 2µ/ln(µ/ν)",
    );
    println!(
        "{:<14} {:<14} {:>14} {:>16} {:>16}",
        "δ₁", "δ₂", "ν_lo", "0.5 − ν_hi", "factor − 1"
    );
    for &(d1, d2, label) in &[
        (1.0 / 6.0, 0.5, "paper Ineq. (14)/(15)"),
        (1.0 / 8.0, 2.0 / 3.0, "paper Ineq. (16)/(17)"),
    ] {
        let range = theorem2::remark1_nu_range(delta, d1, d2)?;
        let factor = theorem2::remark1_factor(delta, d1, d2)?;
        println!(
            "{:<14.6} {:<14.6} {:>14.4e} {:>16.4e} {:>16.4e}   {label}",
            d1,
            d2,
            range.lo,
            0.5 - range.hi,
            factor - 1.0
        );
    }
    println!("\nPaper's reported values: (14) 1e-63 ≤ ν ≤ 0.5−1e-7 with factor 1+5e-5;");
    println!("                         (16) 1e-18 ≤ ν ≤ 0.5−1e-9 with factor 1+2e-3.");

    consistency_bench::section("Resulting c bounds at sample ν (Ineq. 13, ε₂ = 1e-6)");
    println!(
        "{:<8} {:>14} {:>18} {:>18}",
        "ν", "2µ/ln(µ/ν)", "bound (δ set 1)", "bound (δ set 2)"
    );
    for &nu in &[1e-9, 0.1, 0.25, 0.4, 0.49] {
        let neat = theorem2::neat_bound(nu);
        let b1 = theorem2::remark1_c_bound(nu, delta, 1.0 / 6.0, 0.5, 1e-6)?;
        let b2 = theorem2::remark1_c_bound(nu, delta, 1.0 / 8.0, 2.0 / 3.0, 1e-6)?;
        println!("{:<8} {:>14.6} {:>18.6} {:>18.6}", nu, neat, b1, b2);
    }
    Ok(())
}
