//! **Extension experiment**: Lemma 1 on sliding windows — the lemma's
//! premise is about *every* window of T rounds, not run totals; this
//! harness scans attack runs for the worst window at several T.
//!
//! `cargo run --release -p consistency-bench --bin window_scan [rounds]`

use consistency_core::params::ProtocolParams;
use consistency_core::window::simulate_and_scan;
use nakamoto_sim::adversary::PrivateChainAdversary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = consistency_bench::cli::Args::parse("window_scan [rounds]", 1, &[])?;
    let rounds = args.pos_u64(0)?.unwrap_or(300_000);
    let windows = [5_000u64, 20_000, 80_000];

    consistency_bench::section("Worst window of C − A under the private-chain attack (Δ = 2)");
    println!(
        "{:>6} {:>8} {:>10} {:>14} {:>14} {:>14}",
        "ν", "c/bound", "window", "worst C−A", "violating", "all safe"
    );
    for &nu in &[0.1, 0.25, 0.4] {
        let neat = consistency_core::theorem2::neat_bound(nu);
        for &factor in &[0.5, 2.0] {
            let params = ProtocolParams::from_c(100, 2, neat * factor, nu)?;
            let reports = simulate_and_scan(
                &params,
                Box::new(PrivateChainAdversary::new(2)),
                rounds,
                &windows,
                88_000 + (nu * 100.0) as u64,
            )?;
            for r in &reports {
                println!(
                    "{:>6} {:>8} {:>10} {:>14} {:>14} {:>14}",
                    nu,
                    format!("{factor}×"),
                    r.window,
                    r.worst_margin,
                    r.violating_windows,
                    r.all_windows_safe(),
                );
            }
        }
    }
    println!("\nShape: above the bound (2×) large windows are uniformly safe and the");
    println!("worst margin grows with the window; below it (0.5×) every window is");
    println!("in deficit — Lemma 1's premise fails at all scales simultaneously.");
    Ok(())
}
