//! Validates **Eq. 37 / Fig. 2**: the closed-form stationary
//! distribution of the suffix chain `C_F` against the GTH and
//! power-iteration solvers across a (Δ, α) grid, plus structural
//! checks (ergodicity) and Kac return times for the `HN^{≥Δ}` state.
//!
//! `cargo run --release -p consistency-bench --bin stationary_check`

use consistency_core::suffix_chain;
use markov::hitting::expected_return_time;
use markov::stationary::{stationarity_residual, stationary_gth, stationary_power, PowerConfig};
use markov::structure::is_ergodic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    consistency_bench::section("Eq. 37 closed form vs numeric stationary distributions");
    println!(
        "{:>5} {:>8} {:>10} {:>14} {:>14} {:>14} {:>14}",
        "Δ", "α", "states", "gth_max_err", "power_max_err", "residual", "kac_rel_err"
    );
    for &delta in &[1u64, 2, 4, 8, 16, 32, 64] {
        for &alpha in &[0.01f64, 0.1, 0.5, 0.9] {
            let chain = suffix_chain::build_chain(alpha, delta)?;
            assert!(is_ergodic(&chain), "C_F must be ergodic (paper §V-A)");
            let closed = suffix_chain::closed_form_stationary(alpha, delta)?;
            let gth = stationary_gth(&chain)?;
            let power = stationary_power(
                &chain,
                PowerConfig {
                    damping: 0.5,
                    ..PowerConfig::default()
                },
            )?;
            let max_err = |xs: &[f64]| {
                xs.iter()
                    .zip(closed.iter())
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            };
            let residual = stationarity_residual(&chain, &closed);
            let long_gap = delta as usize;
            let kac = expected_return_time(&chain, long_gap)?;
            let kac_err = (kac - 1.0 / closed[long_gap]).abs() / kac;
            println!(
                "{:>5} {:>8} {:>10} {:>14.3e} {:>14.3e} {:>14.3e} {:>14.3e}",
                delta,
                alpha,
                chain.n_states(),
                max_err(&gth),
                max_err(&power),
                residual,
                kac_err
            );
        }
    }
    println!("\nAll errors at f64 rounding level confirm the Fig. 2 transition");
    println!("structure and the Eq. 37 closed form agree.");
    Ok(())
}
