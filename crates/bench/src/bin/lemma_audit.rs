//! Audits **Lemmas 2–8 / displays (52)–(59)**: mechanically checks
//! every implication of the proof chain on a dense (ν, c, Δ, ε₁, ε₂)
//! grid.
//!
//! `cargo run --release -p consistency-bench --bin lemma_audit`

use consistency_core::lemmas;
use consistency_core::params::ProtocolParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    consistency_bench::section("Lemma chain audit over (ν, c, Δ, ε₁, ε₂)");
    let nus = [0.05, 0.15, 0.25, 0.35, 0.45];
    let cs = [0.3, 1.0, 2.0, 3.0, 5.0, 10.0, 50.0];
    let deltas = [1u64, 4, 16, 256, 65_536];
    let epsilons = [(0.1, 0.1), (0.3, 0.2), (0.7, 1.0)];

    let mut points = 0u64;
    let mut premise_holds = 0u64;
    let mut failures = Vec::new();
    for &nu in &nus {
        for &c in &cs {
            for &delta in &deltas {
                let params = ProtocolParams::from_c(10_000, delta, c, nu)?;
                for &(e1, e2) in &epsilons {
                    points += 1;
                    if consistency_core::theorem3::holds(&params, e1, e2) {
                        premise_holds += 1;
                    }
                    if let Err(e) = lemmas::audit_chain(&params, e1, e2) {
                        failures.push(format!("ν={nu}, c={c}, Δ={delta}, ε=({e1},{e2}): {e}"));
                    }
                }
            }
        }
    }
    println!("grid points checked:        {points}");
    println!("Theorem-3 premises held at: {premise_holds}");
    println!("broken implications:        {}", failures.len());
    for f in &failures {
        println!("  FAIL {f}");
    }

    consistency_bench::section("Lemma 7 sandwich tightness (Ineq. 82)");
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>14}",
        "Δ", "ν", "2/L", "middle", "2/L + 1/Δ"
    );
    for &delta in &[1u64, 16, 1_024, 10_000_000_000_000] {
        for &nu in &[0.1, 0.4] {
            let params = ProtocolParams::from_c(100_000, delta, 3.0, nu)?;
            let (lo, mid, hi) = lemmas::lemma7(&params);
            println!(
                "{:>10} {:>8} {:>14.8} {:>14.8} {:>14.8}",
                delta, nu, lo, mid, hi
            );
        }
    }

    if failures.is_empty() {
        println!("\nAll implications of the proof chain verified on the grid.");
        Ok(())
    } else {
        Err("lemma audit found broken implications".into())
    }
}
