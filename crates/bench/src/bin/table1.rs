//! Regenerates **Table I**: the paper's notation with concrete derived
//! values at the Figure-1 operating points.
//!
//! `cargo run -p consistency-bench --bin table1`

use consistency_core::params::ProtocolParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    consistency_bench::section("Table I: notation and derived values (n = 1e5, Δ = 1e13)");
    println!(
        "{:<6} {:>8} {:>8} {:>14} {:>14} {:>14} {:>14}",
        "c", "ν", "µ", "p = 1/(cnΔ)", "α", "ᾱ", "α₁"
    );
    for &c in &[0.5, 1.0, 3.0, 10.0, 100.0] {
        for &nu in &[0.1, 0.3, 0.45] {
            let p = ProtocolParams::from_c(100_000, 10_000_000_000_000, c, nu)?;
            println!(
                "{:<6} {:>8} {:>8} {:>14.4e} {:>14.6e} {:>14.12} {:>14.6e}",
                c,
                nu,
                p.mu(),
                p.p(),
                p.alpha(),
                p.alpha_bar(),
                p.alpha1()
            );
        }
    }
    println!("\nDefinitions (paper Table I):");
    println!("  p  — hardness of the proof of work");
    println!("  n  — number of miners, identical computing power");
    println!("  Δ  — maximum adversarial message delay (rounds)");
    println!("  c  — 1/(pnΔ): expected Δ-delays before some block is mined");
    println!("  µ/ν — honest/adversarial fraction of computational power (µ+ν = 1)");
    println!("  α  — P[some honest success in a round] = 1−(1−p)^(µn)   (Eq. 7)");
    println!("  ᾱ  — P[no honest success] = (1−p)^(µn)                  (Eq. 8)");
    println!("  α₁ — P[exactly one honest success] = pµn(1−p)^(µn−1)    (Eq. 9)");
    Ok(())
}
