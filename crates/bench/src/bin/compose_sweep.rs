//! The **composition experiment**: what does a fixed adversary budget
//! buy when it is *split across simultaneous strategies* instead of
//! spent on one?
//!
//! The paper's bounds are adversary-agnostic, so its worst case ranges
//! over exactly these mixtures. For three strategy pairs the sweep
//! fixes the total corrupted power ν and walks the weight split from
//! pure-first to pure-second (oracle-level hypergeometric allocation;
//! see `nakamoto_sim::compose`), reporting the deepest
//! reorg/divergence and the empirical T-consistency failure rate (95%
//! Wilson interval) over parallel Monte-Carlo trials — bit-identical
//! at any thread count.
//!
//! A second section shows the arbitration anatomy on one
//! balance+private composition: the same weights with the priority
//! order flipped, with the arbiter's throttled-release count.
//!
//! `cargo run --release -p consistency_bench --bin compose_sweep \
//!     [rounds] [trials]`
//!
//! Budgets and expected runtime: see EXPERIMENTS.md.

use nakamoto_sim::compose::{ComposedAdversary, Composition, SubSpec};
use nakamoto_sim::config::SimConfig;
use nakamoto_sim::execution::Simulation;
use nakamoto_sim::montecarlo::TrialPlan;
use nakamoto_sim::scenario::StrategyKind;
use probability::rng::{RandomSource, SplitMix64};

/// Master seed; every cell derives its own master seed from it.
const SWEEP_SEED: u64 = 0x000C_0390_5EED;

const PAIRS: [(&str, StrategyKind, StrategyKind); 3] = [
    (
        "balance+selfish",
        StrategyKind::Balance,
        StrategyKind::Selfish,
    ),
    (
        "balance+private",
        StrategyKind::Balance,
        StrategyKind::PrivateChain,
    ),
    (
        "private+selfish",
        StrategyKind::PrivateChain,
        StrategyKind::Selfish,
    ),
];

/// Weight splits `(first, second)` swept as rows.
const SPLITS: [(u64, u64); 5] = [(4, 0), (3, 1), (2, 2), (1, 3), (0, 4)];

fn composition(a: StrategyKind, wa: u64, b: StrategyKind, wb: u64) -> Composition {
    Composition::new(vec![SubSpec::new(a, wa), SubSpec::new(b, wb)]).expect("valid composition")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let rounds: u64 = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(20_000);
    let trials: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(5);
    let (n, delta, c, nu) = (100u64, 4u64, 1.0, 0.40);
    let t_consistency = 12u64;
    let mut cell_seeds = SplitMix64::new(SWEEP_SEED);

    consistency_bench::section(&format!(
        "Composition sweep: fixed ν = {nu} split across two simultaneous strategies; \
         n = {n}, Δ = {delta}, c = {c}, {trials} trials × {rounds} rounds per cell"
    ));
    println!(
        "{:>7} {:>37} {:>37} {:>37}",
        "split", PAIRS[0].0, PAIRS[1].0, PAIRS[2].0
    );
    println!(
        "{:>7} {} {} {}",
        "",
        format_args!("{:>6} {:>30}", "depth", "P[¬12-cons] (95% CI)"),
        format_args!("{:>6} {:>30}", "depth", "P[¬12-cons] (95% CI)"),
        format_args!("{:>6} {:>30}", "depth", "P[¬12-cons] (95% CI)"),
    );
    for &(wa, wb) in &SPLITS {
        print!("{:>7}", format!("{wa}:{wb}"));
        for &(_, a, b) in &PAIRS {
            let seed = cell_seeds.next_u64();
            let cfg = SimConfig::from_c(n, delta, c, nu, seed)?;
            let run = TrialPlan::new(cfg, rounds, trials)?
                .thresholds(vec![t_consistency])
                .run(|_| ComposedAdversary::new(cfg.delta, composition(a, wa, b, wb)));
            let depth = run
                .aggregate
                .max_reorg_depth
                .max(run.aggregate.max_divergence_depth);
            let w = run
                .aggregate
                .failure_interval(t_consistency, 1.96)
                .expect("threshold was requested");
            print!(
                " {:>6} {:>30}",
                depth,
                format!("{:.2} [{:.2}, {:.2}]", w.estimate, w.lo, w.hi)
            );
        }
        println!();
    }

    // Arbitration anatomy: same weights, flipped priority. Balance
    // first protects the view split (the arbiter throttles the fork
    // sub's view-merging reveals to Δ); fork-strategy first protects
    // its reveal timing instead.
    consistency_bench::section(&format!(
        "Arbitration anatomy: balance+private at 2:2, both priority orders ({rounds} rounds)"
    ));
    println!(
        "{:>18} {:>10} {:>10} {:>9} {:>11} {:>10}",
        "priority", "divergence", "reorg≤", "reorgs", "throttled", "quality"
    );
    for (label, first, second) in [
        (
            "balance,private",
            StrategyKind::Balance,
            StrategyKind::PrivateChain,
        ),
        (
            "private,balance",
            StrategyKind::PrivateChain,
            StrategyKind::Balance,
        ),
    ] {
        let cfg = SimConfig::from_c(n, delta, c, nu, 0xA3B1)?;
        let mut sim = Simulation::new(
            cfg,
            ComposedAdversary::new(cfg.delta, composition(first, 2, second, 2)),
        );
        sim.run(rounds);
        let report = sim.report();
        println!(
            "{:>18} {:>10} {:>10} {:>9} {:>11} {:>10.3}",
            label,
            report.max_divergence_depth,
            report.max_reorg_depth,
            report.reorg_count,
            sim.adversary().throttled_releases(),
            report.chain_quality(),
        );
    }

    println!("\nShape to verify: the 4:0 and 0:4 rows reproduce the pure strategies (a");
    println!("single-sub composition is bit-identical to the bare adversary); mixed rows");
    println!("interpolate, with the balance-heavy mixes carrying the divergence depth and");
    println!("the fork-heavy mixes the reorg depth. In the anatomy, only the balance-first");
    println!("order throttles releases. Results are bit-identical at any thread count.");
    Ok(())
}
