//! The **composition experiment**: what does a fixed adversary budget
//! buy when it is *split across simultaneous strategies* instead of
//! spent on one?
//!
//! The paper's bounds are adversary-agnostic, so its worst case ranges
//! over exactly these mixtures. For three strategy pairs the sweep
//! fixes the total corrupted power ν and walks the weight split from
//! pure-first to pure-second (oracle-level hypergeometric allocation;
//! see `nakamoto_sim::compose`), reporting the deepest
//! reorg/divergence and the empirical T-consistency failure rate (95%
//! Wilson interval) over parallel Monte-Carlo trials — bit-identical
//! at any thread count.
//!
//! The grid is **spec-driven**: the binary embeds the committed
//! `examples/specs/compose_sweep.toml` and runs it through the shared
//! `consistency_bench::experiment` plumbing — run the `experiment`
//! binary on the same file for the flat table + JSON form.
//!
//! A second section shows the arbitration anatomy on one
//! balance+private composition: the same weights with the priority
//! order flipped, with the arbiter's throttled-release count.
//!
//! `cargo run --release -p consistency_bench --bin compose_sweep \
//!     [rounds] [trials]`
//!
//! Budgets and expected runtime: see EXPERIMENTS.md.

use consistency_bench::{cli, experiment, table};
use nakamoto_sim::compose::{ComposedAdversary, Composition, SubSpec};
use nakamoto_sim::execution::Simulation;
use nakamoto_sim::executor;
use nakamoto_sim::scenario::StrategyKind;
use nakamoto_sim::spec::ExperimentSpec;

/// The committed golden spec this binary is the pivot-table view of.
const SPEC: &str = include_str!("../../../../examples/specs/compose_sweep.toml");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = cli::Args::parse(
        "compose_sweep [rounds] [trials]",
        2,
        &["--threads", "--jobs"],
    )?;
    if let Some(jobs) = args.jobs {
        if !executor::configure_global_width(jobs) {
            eprintln!("--jobs: the executor pool already exists; the width is unchanged");
        }
    }
    let mut spec = ExperimentSpec::parse(SPEC).expect("committed spec parses");
    let rounds = args.pos_u64(0)?.unwrap_or(20_000);
    let trials = args.pos_u64(1)?;
    experiment::apply_budget(&mut spec, Some(rounds), trials, args.threads, None, None);

    let base = spec.base;
    let trials = spec.run.trials;
    let t_consistency = *spec.run.thresholds.first().expect("spec carries T");
    let sweep = spec.sweep.clone().expect("committed spec sweeps");
    let [n_splits, n_pairs] = spec.sweep_shape()[..] else {
        panic!("committed spec has two axes")
    };
    let split_axis = &sweep.axes[0];
    let pair_axis = &sweep.axes[1];

    consistency_bench::section(&format!(
        "Composition sweep: fixed ν = {} split across two simultaneous strategies; \
         n = {}, Δ = {}, c = {}, {trials} trials × {rounds} rounds per cell",
        base.adversary_fraction,
        base.n_miners,
        base.delta,
        base.c(),
    ));
    print!("{:>7}", "split");
    for pair in &pair_axis.cells {
        print!(" {:>37}", pair.label);
    }
    println!();
    print!("{:>7}", "");
    for _ in 0..n_pairs {
        print!(
            " {}",
            format_args!(
                "{:>6} {:>30}",
                "depth",
                format!("P[¬{t_consistency}-cons] (95% CI)")
            )
        );
    }
    println!();

    let results = experiment::run_spec(&spec)?;
    assert_eq!(results.len(), n_splits * n_pairs);
    for (row, split) in split_axis.cells.iter().enumerate() {
        print!("{:>7}", split.label);
        for col in 0..n_pairs {
            let cell = &results[row * n_pairs + col];
            let aggregate = &cell.wilson().expect("committed spec samples").aggregate;
            let w = aggregate
                .failure_interval(t_consistency, 1.96)
                .expect("threshold was requested");
            print!(
                " {:>6} {:>30}",
                table::depth_cell(aggregate),
                table::ci_cell(&w)
            );
        }
        println!();
    }

    // Arbitration anatomy: same weights, flipped priority. Balance
    // first protects the view split (the arbiter throttles the fork
    // sub's view-merging reveals to Δ); fork-strategy first protects
    // its reveal timing instead.
    consistency_bench::section(&format!(
        "Arbitration anatomy: balance+private at 2:2, both priority orders ({rounds} rounds)"
    ));
    println!(
        "{:>18} {:>10} {:>10} {:>9} {:>11} {:>10}",
        "priority", "divergence", "reorg≤", "reorgs", "throttled", "quality"
    );
    for (label, first, second) in [
        (
            "balance,private",
            StrategyKind::Balance,
            StrategyKind::PrivateChain,
        ),
        (
            "private,balance",
            StrategyKind::PrivateChain,
            StrategyKind::Balance,
        ),
    ] {
        // Copy the spec's base verbatim (re-deriving it through
        // from_c(base.c()) would round-trip the hardness lossily) and
        // pin the anatomy's fixed seed.
        let mut cfg = base;
        cfg.seed = 0xA3B1;
        let composition = Composition::new(vec![SubSpec::new(first, 2), SubSpec::new(second, 2)])
            .expect("valid composition");
        let mut sim = Simulation::new(cfg, ComposedAdversary::new(cfg.delta, composition));
        sim.run(rounds);
        let report = sim.report();
        println!(
            "{:>18} {:>10} {:>10} {:>9} {:>11} {:>10.3}",
            label,
            report.max_divergence_depth,
            report.max_reorg_depth,
            report.reorg_count,
            sim.adversary().throttled_releases(),
            report.chain_quality(),
        );
    }

    println!("\nShape to verify: the 4:0 and 0:4 rows reproduce the pure strategies (a");
    println!("single-sub composition is bit-identical to the bare adversary); mixed rows");
    println!("interpolate, with the balance-heavy mixes carrying the divergence depth and");
    println!("the fork-heavy mixes the reorg depth. In the anatomy, only the balance-first");
    println!("order throttles releases. Results are bit-identical at any thread count.");
    Ok(())
}
