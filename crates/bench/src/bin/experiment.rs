//! The **unified spec-driven experiment harness**: loads any `.toml`
//! experiment spec (single run or sweep grid — see
//! `nakamoto_sim::spec` for the schema and `examples/specs/` for
//! committed examples), fans every cell out on the parallel
//! Monte-Carlo engine, and prints the cell table with empirical 95%
//! Wilson intervals **and** the paper's analytic bounds overlaid.
//! With `--out`, also writes the machine-readable JSON document.
//!
//! ```text
//! cargo run --release -p consistency_bench --bin experiment -- \
//!     <spec.toml> [--rounds N] [--trials N] [--threads N] [--seed S] [--batch W] [--out PATH]
//! ```
//!
//! `--rounds`/`--trials` override the spec's budgets (CI smokes every
//! committed spec this way), `--seed` overrides the base master seed
//! (sweep cells still derive theirs from the sweep stream), `--batch`
//! overrides the lockstep batch width (stationary specs only; the
//! aggregates are bit-identical at every width), `--out` writes JSON.
//! Budgets and expected runtimes: see EXPERIMENTS.md.

use consistency_bench::{cli, experiment};
use nakamoto_sim::spec::ExperimentSpec;

const USAGE: &str = "experiment <spec.toml> [--rounds N] [--trials N] [--threads N] [--seed S] \
                     [--batch W] [--out PATH]";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = cli::Args::parse(
        USAGE,
        1,
        &[
            "--rounds",
            "--trials",
            "--threads",
            "--seed",
            "--batch",
            "--out",
        ],
    )?;
    let path = args
        .positionals
        .first()
        .ok_or_else(|| format!("missing spec path; usage: {USAGE}"))?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut spec = ExperimentSpec::parse(&source).map_err(|e| format!("{path}: {e}"))?;
    experiment::apply_budget(
        &mut spec,
        args.rounds,
        args.trials,
        args.threads,
        args.seed,
        args.batch,
    );

    let name = std::path::Path::new(path)
        .file_stem()
        .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
    let shape = spec.sweep_shape();
    let cells: usize = shape.iter().product::<usize>().max(1);
    consistency_bench::section(&format!(
        "Experiment `{name}`: {cells} cell(s), {} trial(s) per cell",
        spec.run.trials
    ));
    if let Some(fuzz) = &spec.fuzz {
        println!(
            "fuzz repro: master_seed = {}, case = {}, invariant = `{}`",
            fuzz.master_seed, fuzz.case, fuzz.invariant
        );
    }

    let results = experiment::run_spec(&spec)?;
    experiment::print_table(&results);
    let rounds: u64 = results.iter().map(|r| r.estimate.simulated_rounds()).sum();
    let elapsed: f64 = results.iter().map(|r| r.estimate.elapsed_secs()).sum();
    println!("\n{rounds} simulated rounds in {elapsed:.2} s");

    if let Some(out) = &args.out {
        std::fs::write(out, experiment::to_json(&name, &results))
            .map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}
