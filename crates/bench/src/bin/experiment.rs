//! The **unified spec-driven experiment harness**: loads any `.toml`
//! experiment spec (single run or sweep grid — see
//! `nakamoto_sim::spec` for the schema and `examples/specs/` for
//! committed examples), submits every cell at once to the shared
//! executor pool so independent cells pipeline across the same
//! workers, and prints the cell table with empirical 95% Wilson
//! intervals **and** the paper's analytic bounds overlaid. With
//! `--out`, also writes the machine-readable JSON document.
//!
//! ```text
//! cargo run --release -p consistency_bench --bin experiment -- \
//!     <spec.toml> [--rounds N] [--trials N] [--threads N] [--jobs N] \
//!     [--seed S] [--batch W] [--out PATH] [--verbose]
//! ```
//!
//! `--rounds`/`--trials` override the spec's budgets (CI smokes every
//! committed spec this way), `--seed` overrides the base master seed
//! (sweep cells still derive theirs from the sweep stream), `--batch`
//! overrides the lockstep batch width (stationary specs only; the
//! aggregates are bit-identical at every width), `--jobs` fixes the
//! process-wide executor pool width (cells complete in any order, but
//! the table, totals, and JSON are byte-identical at every job count),
//! `--verbose` streams per-cell completions and the executor's
//! counters to stderr, `--out` writes JSON. Budgets and expected
//! runtimes: see EXPERIMENTS.md.

use consistency_bench::{cli, experiment};
use nakamoto_sim::executor;
use nakamoto_sim::spec::ExperimentSpec;

const USAGE: &str = "experiment <spec.toml> [--rounds N] [--trials N] [--threads N] [--jobs N] \
                     [--seed S] [--batch W] [--out PATH] [--verbose]";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = cli::Args::parse(
        USAGE,
        1,
        &[
            "--rounds",
            "--trials",
            "--threads",
            "--jobs",
            "--seed",
            "--batch",
            "--out",
            "--verbose",
        ],
    )?;
    if let Some(jobs) = args.jobs {
        if !executor::configure_global_width(jobs) {
            eprintln!("--jobs: the executor pool already exists; the width is unchanged");
        }
    }
    let path = args
        .positionals
        .first()
        .ok_or_else(|| format!("missing spec path; usage: {USAGE}"))?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut spec = ExperimentSpec::parse(&source).map_err(|e| format!("{path}: {e}"))?;
    experiment::apply_budget(
        &mut spec,
        args.rounds,
        args.trials,
        args.threads,
        args.seed,
        args.batch,
    );

    let name = std::path::Path::new(path)
        .file_stem()
        .map_or_else(|| path.clone(), |s| s.to_string_lossy().into_owned());
    let shape = spec.sweep_shape();
    let cells: usize = shape.iter().product::<usize>().max(1);
    consistency_bench::section(&format!(
        "Experiment `{name}`: {cells} cell(s), {} trial(s) per cell",
        spec.run.trials
    ));
    if let Some(fuzz) = &spec.fuzz {
        println!(
            "fuzz repro: master_seed = {}, case = {}, invariant = `{}`",
            fuzz.master_seed, fuzz.case, fuzz.invariant
        );
    }

    let verbose = args.verbose;
    let jobs = args.jobs.unwrap_or(0);
    let results = experiment::run_spec_streaming(&spec, jobs, |index, cell| {
        if verbose {
            // Completion order, to stderr: the stdout table and JSON
            // stay byte-identical with and without --verbose.
            eprintln!(
                "cell {}/{cells} done: [{}]",
                index + 1,
                cell.labels.join(", ")
            );
        }
    })?;
    experiment::print_table(&results);
    let rounds: u64 = results.iter().map(|r| r.estimate.simulated_rounds()).sum();
    let elapsed: f64 = results.iter().map(|r| r.estimate.elapsed_secs()).sum();
    println!("\n{rounds} simulated rounds in {elapsed:.2} s");
    if verbose {
        let stats = executor::global_stats();
        eprintln!(
            "executor: pool width {} ({} pool(s) created), {} thread(s) spawned, \
             {} job(s) queued + {} inline, {} task(s) executed, {} steal(s)",
            executor::global_width(),
            executor::global_pools_created(),
            stats.threads_spawned,
            stats.jobs_submitted,
            stats.jobs_inline,
            stats.tasks_executed,
            stats.steals,
        );
    }

    if let Some(out) = &args.out {
        std::fs::write(out, experiment::to_json(&name, &results))
            .map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}
