//! Regenerates **Figure 1**: ν_max vs c for the paper's bound (magenta),
//! PSS consistency (blue) and the PSS attack (red); n = 1e5, Δ = 1e13.
//!
//! `cargo run -p consistency-bench --bin figure1 [n_points]`

use consistency_core::{figure1, pss};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = consistency_bench::cli::Args::parse("figure1 [n_points]", 1, &[])?;
    let n_points = args.pos_usize(0)?.unwrap_or(41);
    consistency_bench::section("Figure 1: nu_max vs c (log-spaced grid)");
    let pts = figure1::generate(n_points)?;
    print!("{}", figure1::to_table(&pts));

    consistency_bench::section("Exact-PSS cross-check (alpha[1-(2D+2)alpha] > beta)");
    println!("c\texact_pss_numax\tclosed_form_blue");
    for &c in &[2.5, 3.0, 5.0, 10.0, 30.0, 100.0] {
        let exact = pss::exact_consistency_nu_max(figure1::FIGURE1_N, figure1::FIGURE1_DELTA, c)?
            .unwrap_or(0.0);
        let blue = pss::consistency_nu_max(c).unwrap_or(0.0);
        println!(
            "{c}\t{}\t{}",
            consistency_bench::fmt(exact),
            consistency_bench::fmt(blue)
        );
    }
    Ok(())
}
