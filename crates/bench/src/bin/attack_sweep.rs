//! The **attack experiment** behind Figure 1's red line: sweeps the
//! adversarial fraction ν under the private-chain and balance attacks
//! at several c and reports where T-consistency empirically fails,
//! alongside the analytic thresholds.
//!
//! `cargo run --release -p consistency-bench --bin attack_sweep [rounds]`

use consistency_core::{numax, pss};
use nakamoto_sim::adversary::{Adversary, BalanceAdversary, PrivateChainAdversary};
use nakamoto_sim::config::SimConfig;
use nakamoto_sim::execution::run_simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(150_000);
    let n = 100u64;
    let delta = 4u64;
    let t_consistency = 12u64;

    for &c in &[0.5f64, 1.0, 2.0] {
        consistency_bench::section(&format!(
            "Attack sweep at c = {c} (ours ν_max = {:.3}, PSS attack threshold = {:.3})",
            numax::nu_max_for_c(c)?,
            pss::attack_nu_threshold(c)
        ));
        println!("{:>6} {:>22} {:>22}", "ν", "private-chain", "balance");
        println!(
            "{:>6} {:>10} {:>11} {:>10} {:>11}",
            "", "max_reorg", "consistent", "divergence", "consistent"
        );
        for &nu in &[0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45] {
            let seed = (c * 1000.0) as u64 + (nu * 100.0) as u64;
            let run = |adv: Box<dyn Adversary>, seed: u64| {
                let cfg = SimConfig::from_c(n, delta, c, nu, seed).expect("valid");
                run_simulation(cfg, adv, rounds)
            };
            let private = run(Box::new(PrivateChainAdversary::new(delta)), seed);
            let balance = run(Box::new(BalanceAdversary::new(delta)), seed + 7);
            println!(
                "{:>6.2} {:>10} {:>11} {:>10} {:>11}",
                nu,
                private.max_reorg_depth,
                private.is_consistent(t_consistency),
                balance.max_divergence_depth,
                balance.is_consistent(t_consistency),
            );
        }
    }
    println!("\nShape to verify against the paper: failures start somewhere between");
    println!("the paper's ν_max (below it runs stay consistent) and ν = 1/2; smaller");
    println!("c tolerates less adversarial power on every line.");
    Ok(())
}
