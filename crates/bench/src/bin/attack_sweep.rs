//! The **attack experiment** behind Figure 1's red line: sweeps the
//! adversarial fraction ν under the private-chain and balance attacks
//! at several c and reports the empirical T-consistency failure *rate*
//! (with a 95% Wilson interval) over parallel Monte-Carlo trials,
//! alongside the analytic thresholds.
//!
//! The grid is **spec-driven**: the binary embeds the committed
//! `examples/specs/attack_sweep.toml` (axes c × ν × attack, per-cell
//! seeds from the sweep's SplitMix64 stream — disjoint by
//! construction) and runs it through the shared
//! `consistency_bench::experiment` plumbing — run the `experiment`
//! binary on the same file for the flat table + JSON form.
//!
//! `cargo run --release -p consistency_bench --bin attack_sweep [rounds-per-trial] [trials]`
//!
//! Budgets and expected runtime: see EXPERIMENTS.md.

use consistency_bench::{cli, experiment, table};
use consistency_core::{numax, pss};
use nakamoto_sim::executor;
use nakamoto_sim::spec::ExperimentSpec;

/// The committed golden spec this binary is the pivot-table view of.
const SPEC: &str = include_str!("../../../../examples/specs/attack_sweep.toml");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = cli::Args::parse(
        "attack_sweep [rounds-per-trial] [trials]",
        2,
        &["--threads", "--jobs"],
    )?;
    if let Some(jobs) = args.jobs {
        if !executor::configure_global_width(jobs) {
            eprintln!("--jobs: the executor pool already exists; the width is unchanged");
        }
    }
    let mut spec = ExperimentSpec::parse(SPEC).expect("committed spec parses");
    let rounds = args.pos_u64(0)?.unwrap_or(30_000);
    let trials = args.pos_u64(1)?;
    experiment::apply_budget(&mut spec, Some(rounds), trials, args.threads, None, None);

    let trials = spec.run.trials;
    let t_consistency = *spec.run.thresholds.first().expect("spec carries T");
    let sweep = spec.sweep.clone().expect("committed spec sweeps");
    let [n_c, n_nu, n_attacks] = spec.sweep_shape()[..] else {
        panic!("committed spec has three axes")
    };
    assert_eq!(n_attacks, 2, "private-chain and balance columns");

    let results = experiment::run_spec(&spec)?;
    assert_eq!(results.len(), n_c * n_nu * n_attacks);
    for ci in 0..n_c {
        // Every cell of this section shares c; read it back from the
        // patched config rather than re-parsing the axis label.
        let c = results[ci * n_nu * n_attacks].spec.base.c();
        consistency_bench::section(&format!(
            "Attack sweep at c = {c} (ours ν_max = {:.3}, PSS attack threshold = {:.3}); \
             {trials} trials × {rounds} rounds per cell",
            numax::nu_max_for_c(c)?,
            pss::attack_nu_threshold(c)
        ));
        println!("{:>6} {:>34} {:>34}", "ν", "private-chain", "balance");
        println!(
            "{:>6} {:>9} {:>24} {:>9} {:>24}",
            "", "max_reorg", "P[¬T-cons] (95% CI)", "max_div", "P[¬T-cons] (95% CI)"
        );
        for (ni, nu_cell) in sweep.axes[1].cells.iter().enumerate() {
            let at = (ci * n_nu + ni) * n_attacks;
            let private = &results[at]
                .wilson()
                .expect("committed spec samples")
                .aggregate;
            let balance = &results[at + 1]
                .wilson()
                .expect("committed spec samples")
                .aggregate;
            println!(
                "{:>6} {:>9} {:>24} {:>9} {:>24}",
                nu_cell.label,
                private.max_reorg_depth,
                table::failure_cell(private, t_consistency, 1.96),
                balance.max_divergence_depth,
                table::failure_cell(balance, t_consistency, 1.96),
            );
        }
    }
    println!("\nShape to verify against the paper: failure rates leave 0 somewhere between");
    println!("the paper's ν_max (below it runs stay consistent) and ν = 1/2; smaller");
    println!("c tolerates less adversarial power on every line.");
    Ok(())
}
