//! The **attack experiment** behind Figure 1's red line: sweeps the
//! adversarial fraction ν under the private-chain and balance attacks
//! at several c and reports the empirical T-consistency failure *rate*
//! (with a 95% Wilson interval) over parallel Monte-Carlo trials,
//! alongside the analytic thresholds.
//!
//! `cargo run --release -p consistency_bench --bin attack_sweep [rounds-per-trial] [trials]`
//!
//! Budgets and expected runtime: see EXPERIMENTS.md.

use consistency_core::{numax, pss};
use nakamoto_sim::adversary::{BalanceAdversary, PrivateChainAdversary};
use nakamoto_sim::config::SimConfig;
use nakamoto_sim::montecarlo::TrialPlan;
use probability::rng::{RandomSource, SplitMix64};

/// Master seed for the whole sweep; every cell derives its own seed
/// from it through a SplitMix64 stream, so no two cells (and hence no
/// two trials anywhere in the sweep) share an RNG stream.
const SWEEP_SEED: u64 = 0x00A7_7AC4_5EED;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let rounds: u64 = args
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(30_000);
    let trials: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(5);
    let n = 100u64;
    let delta = 4u64;
    let t_consistency = 12u64;
    let mut cell_seeds = SplitMix64::new(SWEEP_SEED);

    for &c in &[0.5f64, 1.0, 2.0] {
        consistency_bench::section(&format!(
            "Attack sweep at c = {c} (ours ν_max = {:.3}, PSS attack threshold = {:.3}); \
             {trials} trials × {rounds} rounds per cell",
            numax::nu_max_for_c(c)?,
            pss::attack_nu_threshold(c)
        ));
        println!("{:>6} {:>34} {:>34}", "ν", "private-chain", "balance");
        println!(
            "{:>6} {:>9} {:>24} {:>9} {:>24}",
            "", "max_reorg", "P[¬T-cons] (95% CI)", "max_div", "P[¬T-cons] (95% CI)"
        );
        for &nu in &[0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45] {
            // Disjoint per-cell master seeds (satellite fix: the old
            // `(c*1000) as u64 + (nu*100) as u64` arithmetic collided
            // across cells and correlated neighbours).
            let private_seed = cell_seeds.next_u64();
            let balance_seed = cell_seeds.next_u64();
            // `rounds`/`trials` come from argv: bad values surface as
            // tidy ConfigErrors from plan construction, not panics.
            let run_cell = |seed: u64, balance: bool| {
                let cfg = SimConfig::from_c(n, delta, c, nu, seed).expect("valid");
                let plan = TrialPlan::new(cfg, rounds, trials)?.thresholds(vec![t_consistency]);
                Ok::<_, nakamoto_sim::config::ConfigError>(if balance {
                    plan.run(|_| BalanceAdversary::new(delta))
                } else {
                    plan.run(|_| PrivateChainAdversary::new(delta))
                })
            };
            let private = run_cell(private_seed, false)?;
            let balance = run_cell(balance_seed, true)?;
            let fmt_ci = |run: &nakamoto_sim::montecarlo::MonteCarloRun| {
                let w = run
                    .aggregate
                    .failure_interval(t_consistency, 1.96)
                    .expect("threshold was requested");
                format!("{:.2} [{:.2}, {:.2}]", w.estimate, w.lo, w.hi)
            };
            println!(
                "{:>6.2} {:>9} {:>24} {:>9} {:>24}",
                nu,
                private.aggregate.max_reorg_depth,
                fmt_ci(&private),
                balance.aggregate.max_divergence_depth,
                fmt_ci(&balance),
            );
        }
    }
    println!("\nShape to verify against the paper: failure rates leave 0 somewhere between");
    println!("the paper's ν_max (below it runs stay consistent) and ν = 1/2; smaller");
    println!("c tolerates less adversarial power on every line.");
    Ok(())
}
