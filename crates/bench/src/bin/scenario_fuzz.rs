//! The **scenario fuzz gate**: runs the seeded scenario × composition
//! fuzzer ([`nakamoto_sim::fuzz::ScenarioFuzzer`]) for a case budget
//! and fails loudly — with a TOML repro written next to the binary —
//! when any engine invariant (thread-count bit-identity,
//! pruning-liveness, prefix monotonicity) breaks on a generated case.
//!
//! ```text
//! cargo run --release -p consistency_bench --bin scenario_fuzz -- \
//!     [--budget N] [--seed S | --seed-from-env] [--out PATH]
//! ```
//!
//! * `--budget N` — number of generated cases (default 2000).
//! * `--seed S` — master seed (default a fixed constant, so plain runs
//!   are reproducible).
//! * `--seed-from-env` — take the seed from `SCENARIO_FUZZ_SEED`, or
//!   `GITHUB_RUN_ID` as a fallback (how CI gets fresh coverage every
//!   run while keeping the failing seed in the job log and repro).
//! * `--out PATH` — where to write the failing case's TOML repro
//!   (default `scenario_fuzz_failure.toml`).
//!
//! Budgets and expected runtime: see EXPERIMENTS.md.

use nakamoto_sim::fuzz::ScenarioFuzzer;

/// Fixed default seed for reproducible local runs.
const DEFAULT_SEED: u64 = 0x5CE7_F022_5EED;

fn seed_from_env() -> u64 {
    for var in ["SCENARIO_FUZZ_SEED", "GITHUB_RUN_ID"] {
        if let Ok(value) = std::env::var(var) {
            if let Ok(seed) = value.trim().parse::<u64>() {
                return seed;
            }
        }
    }
    eprintln!("--seed-from-env: neither SCENARIO_FUZZ_SEED nor GITHUB_RUN_ID parse as u64; using the default seed");
    DEFAULT_SEED
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut budget: u64 = 2_000;
    let mut seed: u64 = DEFAULT_SEED;
    let mut out_path = String::from("scenario_fuzz_failure.toml");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--budget" => {
                budget = args.next().ok_or("--budget needs a value")?.parse()?;
            }
            "--seed" => {
                seed = args.next().ok_or("--seed needs a value")?.parse()?;
            }
            "--seed-from-env" => seed = seed_from_env(),
            "--out" => {
                out_path = args.next().ok_or("--out needs a value")?;
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }

    consistency_bench::section(&format!(
        "Scenario fuzz: {budget} random scenario × composition cases, master seed {seed:#x}"
    ));
    let started = std::time::Instant::now();
    match ScenarioFuzzer::new(seed).run(budget) {
        Ok(stats) => {
            println!(
                "PASS: {} cases ({} with composed phases), {} phases, {} scenario rounds \
                 per execution in {:.2} s",
                stats.cases,
                stats.composed_cases,
                stats.phases,
                stats.rounds,
                started.elapsed().as_secs_f64(),
            );
            println!("Invariants held: thread-count bit-identity, pruning-liveness, prefix monotonicity.");
            Ok(())
        }
        Err(failure) => {
            let repro = failure.repro_toml();
            std::fs::write(&out_path, &repro)?;
            eprintln!("FAIL: {failure}");
            eprintln!("repro written to {out_path}:\n{repro}");
            eprintln!(
                "replay: nakamoto_sim::fuzz::run_case({}, {})",
                failure.master_seed, failure.case
            );
            std::process::exit(1);
        }
    }
}
